// Ablation: what a small waiting room buys over the paper's pure-loss model.
//
// The utility analytic model staffs with Erlang-B (requests finding no free
// server are lost). Real front ends buffer a handful of requests; the
// M/M/c/K solver quantifies how many servers a buffer replaces at the same
// loss target — an extension beyond the paper that the same machinery
// supports.
#include <iostream>

#include "bench_common.hpp"
#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "queueing/staffing.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  bench::finish_flags(flags);

  bench::banner("Ablation -- waiting room vs servers at equal loss",
                "extension of the paper's pure-loss (Erlang-B) staffing");

  // The case-study consolidated CPU/disk streams at group-2 intensity, and
  // two synthetic heavier streams.
  struct Stream {
    const char* name;
    double lambda;
    double mu;
  };
  const Stream streams[] = {
      {"group-2 web disk stream", 278.2, 336.0},
      {"group-2 db cpu stream", 66.2, 90.0},
      {"10-erlang stream", 10.0, 1.0},
      {"50-erlang stream", 50.0, 1.0},
  };
  const double b = 0.01;

  AsciiTable table;
  table.set_header({"stream", "rho", "servers q=0", "q=2", "q=8", "q=32",
                    "saved by q=32", "mean wait q=32 (ms)"});
  for (const Stream& stream : streams) {
    const double rho = stream.lambda / stream.mu;
    const std::uint64_t base =
        queueing::erlang_b_servers(rho, b);
    const std::uint64_t q2 =
        queueing::staffing_with_queue(stream.lambda, stream.mu, 2, b);
    const std::uint64_t q8 =
        queueing::staffing_with_queue(stream.lambda, stream.mu, 8, b);
    const std::uint64_t q32 =
        queueing::staffing_with_queue(stream.lambda, stream.mu, 32, b);
    const auto metrics =
        queueing::solve_mmck(q32, q32 + 32, stream.lambda, stream.mu);
    table.add_row({stream.name, AsciiTable::format(rho, 2),
                   std::to_string(base), std::to_string(q2),
                   std::to_string(q8), std::to_string(q32),
                   std::to_string(base - q32),
                   AsciiTable::format(metrics.mean_wait_time * 1000.0, 1)});
  }
  table.print(std::cout, "minimum servers for B <= 1% vs waiting room size");

  std::cout << "\nconclusion: waiting room substitutes heavily for servers "
               "at the same loss target (3 of 4 servers on the case-study "
               "streams; ~20% of the fleet at 50 erlangs), at the cost of "
               "queueing delay -- the paper's pure-loss model is therefore "
               "a conservative planner, which is the safe side to err on.\n";
  return 0;
}
