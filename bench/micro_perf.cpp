// google-benchmark microbenchmarks for the library's hot paths: the Erlang
// solvers, the RNG, the event engine, and one full pool-simulation
// replication. Performance hygiene for the substrate, not a paper figure.
#include <benchmark/benchmark.h>

#include <functional>

#include "datacenter/pool_sim.hpp"
#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace vmcons;

void BM_ErlangB(benchmark::State& state) {
  const auto servers = static_cast<std::uint64_t>(state.range(0));
  const double rho = static_cast<double>(servers) * 0.9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queueing::erlang_b(servers, rho));
  }
}
BENCHMARK(BM_ErlangB)->Arg(8)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ErlangBServers(benchmark::State& state) {
  const double rho = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(queueing::erlang_b_servers(rho, 0.01));
  }
}
BENCHMARK(BM_ErlangBServers)->Arg(10)->Arg(1000)->Arg(100000);

void BM_MmckSolve(benchmark::State& state) {
  const auto servers = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queueing::solve_mmck(servers, servers * 2, servers * 0.8, 1.0));
  }
}
BENCHMARK(BM_MmckSolve)->Arg(8)->Arg(128)->Arg(2048);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.zipf(100000, 0.8));
  }
}
BENCHMARK(BM_RngZipf);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < 10000) {
        engine.schedule_in(1.0, tick);
      }
    };
    engine.schedule_in(1.0, tick);
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_PoolSimulationReplication(benchmark::State& state) {
  dc::PoolConfig config;
  config.arrival_rates = {130.0, 30.0};
  config.service_rates = {336.0, 90.0};
  config.servers = 3;
  config.horizon = 100.0;
  config.warmup = 10.0;
  std::uint64_t stream = 0;
  for (auto _ : state) {
    Rng rng(7, stream++);
    benchmark::DoNotOptimize(dc::simulate_pool(config, rng).overall_loss());
  }
}
BENCHMARK(BM_PoolSimulationReplication);

}  // namespace

BENCHMARK_MAIN();
