// Ablation: sensitivity of the model's staffing to the Poisson assumption.
//
// Section III-B1 assumes Poisson arrivals (citing user-initiated TCP
// session evidence) — and cites Paxson & Floyd's "Failure of Poisson
// Modeling" as the caveat. We replay the group-1 consolidated deployment
// with MMPP arrivals of growing burstiness at the model's N and measure how
// far the loss drifts above the target, then ask how many extra servers
// bursty traffic needs.
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/loss_network.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 3000.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Ablation -- arrival burstiness vs the Poisson assumption",
                "Song et al., CLUSTER 2009, Section III-B1 assumption 2");

  const core::ModelInputs inputs = bench::case_study_inputs(3);
  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();

  auto loss_at = [&](unsigned servers, double burst_ratio) {
    dc::LossNetworkConfig config;
    config.services = inputs.services;
    config.servers = servers;
    config.vm_count = 2;
    config.power = dc::PowerModel::paper_default(dc::Platform::kXen);
    config.horizon = horizon;
    config.warmup = horizon * 0.1;
    config.burst_ratio = burst_ratio;
    const auto estimate = sim::replicate_scalar(
        static_cast<std::size_t>(replications),
        1501 + static_cast<std::uint64_t>(burst_ratio * 10) + servers,
        [&](std::size_t, Rng& rng) {
          return simulate_loss_network(config, rng).pool.overall_loss();
        });
    return estimate.summary.mean();
  };

  const auto n = static_cast<unsigned>(plan.consolidated_servers);
  AsciiTable table;
  table.set_header({"burst ratio", "loss at N", "loss at N+1", "loss at N+2",
                    "servers to meet B"});
  for (const double ratio : {1.0, 2.0, 4.0, 8.0}) {
    const double at_n = loss_at(n, ratio);
    const double at_n1 = loss_at(n + 1, ratio);
    const double at_n2 = loss_at(n + 2, ratio);
    unsigned needed = n;
    if (at_n > inputs.target_loss) {
      needed = at_n1 <= inputs.target_loss ? n + 1
               : at_n2 <= inputs.target_loss ? n + 2
                                             : n + 3;
    }
    table.add_row({AsciiTable::format(ratio, 0), AsciiTable::format(at_n, 4),
                   AsciiTable::format(at_n1, 4), AsciiTable::format(at_n2, 4),
                   std::to_string(needed)});
  }
  table.print(std::cout, "group-1 consolidated pool, model N = " +
                             std::to_string(n) + ", target B = 1%");

  std::cout << "\nconclusion: at the model's N, Poisson traffic sits right "
               "at the loss target (the residual being the joint-resource "
               "blocking the per-resource model ignores), and every doubling "
               "of burstiness pushes the loss further past it -- ratio 8 "
               "roughly triples the Poisson loss. One extra server buys the "
               "target back across the whole burstiness range, quantifying "
               "the risk behind assumption 2.\n";
  return 0;
}
