// Ablation: the plan under parameter uncertainty — attacking the paper's
// own motivation ("performance unpredictability") with the model itself.
//
// Arrival forecasts and impact-factor measurements carry error; Monte Carlo
// propagation turns the point estimate N into a distribution. This bench
// sweeps the forecast error and prints the N distribution, the 95th-
// percentile plan, and the risk that the point estimate under-provisions.
#include <iostream>

#include "bench_common.hpp"
#include "core/robust.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const long long samples = flags.get_int("samples", 2000);
  bench::finish_flags(flags);

  bench::banner("Ablation -- robust planning under forecast uncertainty",
                "Song et al., CLUSTER 2009, Section I (unpredictability)");

  const core::ModelInputs inputs = bench::case_study_inputs(4);
  const auto point =
      core::UtilityAnalyticModel(inputs).solve().consolidated_servers;

  AsciiTable table;
  table.set_header({"arrival cv", "impact sd", "mean N", "N @ p95",
                    "underprovision risk", "N distribution"});
  for (const double arrival_cv : {0.05, 0.15, 0.30, 0.50}) {
    for (const double impact_sd : {0.02, 0.10}) {
      core::ParameterUncertainty uncertainty;
      uncertainty.arrival_cv = arrival_cv;
      uncertainty.service_cv = 0.05;
      uncertainty.impact_sd = impact_sd;
      const core::RobustPlan plan = core::robust_consolidated_plan(
          inputs, uncertainty, static_cast<std::size_t>(samples));
      std::string distribution;
      for (const auto& [n, count] : plan.n_histogram) {
        if (!distribution.empty()) {
          distribution += " ";
        }
        distribution += std::to_string(n) + ":" +
                        AsciiTable::format(100.0 * static_cast<double>(count) /
                                               static_cast<double>(samples),
                                           0) +
                        "%";
      }
      table.add_row({AsciiTable::format(arrival_cv, 2),
                     AsciiTable::format(impact_sd, 2),
                     AsciiTable::format(plan.mean_n, 2),
                     std::to_string(plan.n_at_quantile),
                     AsciiTable::format(plan.underprovision_risk, 3),
                     distribution});
    }
  }
  table.print(std::cout, "group-2 workloads, point estimate N = " +
                             std::to_string(point));

  std::cout << "\nconclusion: with realistic forecast error (cv ~0.15) the "
               "point estimate under-provisions in a sizeable fraction of "
               "worlds; provisioning the 95th-percentile N costs at most "
               "one extra server and removes nearly all of that risk -- a "
               "cheap robustness rider on the paper's model.\n";
  return 0;
}
