// Figure 11: experiment group 2 — eight dedicated servers consolidate to
// four shared servers, plus the CPU-utilization claim.
//
// The paper: performance on 4 consolidated servers matches 8 dedicated, and
// the average CPU utilization improves 1.7x (the model predicts 1.5x).
#include <iostream>

#include "bench_common.hpp"
#include "core/validation.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 1500.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Fig. 11 -- group 2: 8 dedicated vs 4 consolidated servers",
                "Song et al., CLUSTER 2009, Figure 11");

  const core::ModelInputs inputs = bench::case_study_inputs(4);
  core::ValidationOptions options;
  options.replications = static_cast<std::size_t>(replications);
  options.scenario.horizon = horizon;
  options.scenario.warmup = horizon * 0.1;

  const core::ValidationReport report = core::validate(inputs, options);

  AsciiTable table;
  table.set_header({"deployment", "servers", "web tput", "web loss",
                    "db tput", "db loss", "utilization"});
  auto add_row = [&](const std::string& name,
                     const core::DeploymentMeasurement& m) {
    table.add_row({name, std::to_string(m.servers),
                   AsciiTable::format(m.per_service_throughput[0].summary.mean(), 1),
                   AsciiTable::format(m.per_service_loss[0].summary.mean(), 4),
                   AsciiTable::format(m.per_service_throughput[1].summary.mean(), 1),
                   AsciiTable::format(m.per_service_loss[1].summary.mean(), 4),
                   AsciiTable::format(m.utilization.summary.mean(), 3)});
  };
  add_row("8 dedicated (4+4)", report.dedicated);
  add_row("4 consolidated", report.consolidated);
  table.print(std::cout);

  // CPU utilization specifically (what the paper measures with its 1.7x).
  core::UtilityAnalyticModel model(inputs);
  const auto cpu_util = sim::replicate_scalar(
      static_cast<std::size_t>(replications), 1147,
      [&](std::size_t, Rng& rng) {
        return dc::simulate_consolidated_detailed(inputs.services, 4,
                                                  options.scenario, rng)
            .resource_utilization[dc::Resource::kCpu];
      });

  std::cout << '\n';
  print_kv(std::cout, "measured busy-host utilization improvement (x)",
           report.measured_utilization_improvement(), 2);
  print_kv(std::cout, "model-predicted utilization improvement (x)",
           report.model.utilization_improvement, 2);
  print_kv(std::cout, "consolidated CPU utilization",
           cpu_util.summary.mean(), 3);
  std::cout << "\nshape check: 4 consolidated servers deliver the 8-server "
               "dedicated QoS, with utilization improving well beyond the "
               "paper's 1.5x predicted / 1.7x measured band.\n";
  return 0;
}
