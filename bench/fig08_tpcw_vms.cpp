// Figure 8: DB workload (TPC-W, 2.7 GB book database) vs VM count.
//
// (a) WIPS vs EBs for native Linux and 1..9 VMs. The signature result: the
//     native system and a single VM deliver only about HALF the throughput
//     of multi-VM configurations, because a single OS instance caps MySQL
//     ("OS software limits the performance improvement").
// (b) the CPU&software impact factor per VM count and its rational fit —
//     the paper reports a(v) = 1.85 v^2 / (v^2 + 0.85).
#include <iostream>

#include "bench_common.hpp"
#include "stats/regression.hpp"
#include "virt/calibration.hpp"
#include "workload/tpcw.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 150.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 8));
  bench::finish_flags(flags);

  bench::banner("Fig. 8 -- DB WIPS vs EBs per VM count",
                "Song et al., CLUSTER 2009, Figure 8(a)(b)");

  const std::vector<unsigned> eb_points{100, 300, 500, 800, 1200, 1700, 2300,
                                        3000};
  const std::vector<unsigned> vm_counts{1, 2, 3, 4, 6, 9};

  // --- (a) WIPS curves -----------------------------------------------------
  AsciiTable curves;
  std::vector<std::string> header{"EBs", "wips-limit", "native"};
  std::vector<std::vector<double>> columns;

  workload::TpcwConfig native;
  native.vm_count = 0;
  native.duration = duration;
  const auto native_points = workload::tpcw_sweep(native, eb_points, seed);
  {
    std::vector<double> column;
    for (const auto& point : native_points) {
      column.push_back(point.wips);
    }
    columns.push_back(std::move(column));
  }
  std::vector<virt::ThroughputCurve> vm_curves;
  virt::ThroughputCurve native_curve;
  native_curve.vm_count = 0;
  for (const auto& point : native_points) {
    native_curve.offered.push_back(point.ebs);
    native_curve.throughput.push_back(point.wips);
  }

  for (const unsigned vms : vm_counts) {
    header.push_back(std::to_string(vms) + "vm");
    workload::TpcwConfig config;
    config.vm_count = vms;
    config.duration = duration;
    const auto points = workload::tpcw_sweep(config, eb_points, seed + vms);
    virt::ThroughputCurve curve;
    curve.vm_count = vms;
    std::vector<double> column;
    for (const auto& point : points) {
      curve.offered.push_back(point.ebs);
      curve.throughput.push_back(point.wips);
      column.push_back(point.wips);
    }
    vm_curves.push_back(std::move(curve));
    columns.push_back(std::move(column));
  }

  curves.set_header(header);
  for (std::size_t r = 0; r < eb_points.size(); ++r) {
    std::vector<double> row;
    row.push_back(static_cast<double>(eb_points[r]) / native.think_time);
    for (const auto& column : columns) {
      row.push_back(column[r]);
    }
    curves.add_numeric_row(std::to_string(eb_points[r]), row, 1);
  }
  curves.print(std::cout, "(a) WIPS per EB population");

  // --- (b) impact factors + rational fit ----------------------------------
  const double saturation_from = 1700.0;  // EBs past every curve's knee
  const auto samples =
      virt::impact_factors(native_curve, vm_curves, saturation_from);
  AsciiTable impact_table;
  impact_table.set_header({"vms", "impact a(v)", "encoded curve"});
  for (const auto& sample : samples) {
    impact_table.add_row(
        {std::to_string(sample.vm_count), AsciiTable::format(sample.factor, 3),
         AsciiTable::format(
             virt::Impact::paper_db_cpu().raw_factor(sample.vm_count), 3)});
  }
  impact_table.print(std::cout,
                     "\n(b) impact factor of CPU&software per VM count");

  const RationalSaturatingFit fit = virt::calibrate_rational(samples);
  std::cout << "\nrational fit: a(v) = " << AsciiTable::format(fit.amplitude, 3)
            << " v^2 / (v^2 + " << AsciiTable::format(fit.half_point, 3)
            << "),  R^2 = " << AsciiTable::format(fit.r_squared, 4) << '\n';
  std::cout << "paper:        a(v) = 1.85 v^2 / (v^2 + 0.85)\n";
  std::cout << "\nshape check: native and 1 VM plateau at roughly half the "
               "multi-VM throughput (the single-OS software ceiling).\n";
  return 0;
}
