// Ablation: on-demand resource flowing vs static partition vs proportional
// share — the model's Section III-B4(1) application.
//
// The model's equal-server QoS bound says how much throughput the BEST
// possible allocation algorithm could deliver; we score the three policies
// of datacenter/pool_sim.hpp against it, including the cost of reallocation
// overhead for the adaptive policy.
#include <iostream>

#include "bench_common.hpp"
#include "core/applications.hpp"
#include "datacenter/cluster.hpp"
#include "datacenter/pool_sim.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 2000.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Ablation -- resource-flowing schedulers vs the model bound",
                "Song et al., CLUSTER 2009, Section III-B4(1)");

  // Consolidated pool: 3 servers x 6 slots (vCPU-grain sharing), hosting
  // the group-1 workloads, whose mix is deliberately asymmetric.
  const core::ModelInputs inputs = bench::case_study_inputs(3);
  const unsigned servers = 3;
  const unsigned slots = 6;

  dc::PoolConfig config;
  for (const auto& service : inputs.services) {
    config.arrival_rates.push_back(service.arrival_rate);
    config.service_rates.push_back(
        dc::consolidated_slot_rate(service, 2, slots));
  }
  config.servers = servers;
  config.slots_per_server = slots;
  config.horizon = horizon;
  config.warmup = horizon * 0.1;

  struct Policy {
    const char* name;
    dc::AllocationPolicy allocation;
    double overhead;
  };
  const Policy policies[] = {
      {"on-demand flowing (ideal)", dc::AllocationPolicy::kOnDemandFlowing, 0.0},
      {"static partition (even)", dc::AllocationPolicy::kStaticPartition, 0.0},
      {"proportional, free realloc", dc::AllocationPolicy::kProportionalShare, 0.0},
      {"proportional, 0.5s realloc", dc::AllocationPolicy::kProportionalShare, 0.5},
      {"proportional, 2s realloc", dc::AllocationPolicy::kProportionalShare, 2.0},
  };

  // The model's optimal (1 - B) for this consolidated pool.
  core::UtilityAnalyticModel model(inputs);
  const double optimal_delivery = 1.0 - model.consolidated_loss(servers);

  AsciiTable table;
  table.set_header({"policy", "loss", "delivered (1-B)", "score vs bound"});
  for (const Policy& policy : policies) {
    dc::PoolConfig variant = config;
    variant.allocation = policy.allocation;
    variant.realloc_overhead = policy.overhead;
    variant.realloc_interval = 5.0;
    const auto loss = sim::replicate_scalar(
        static_cast<std::size_t>(replications), 1401,
        [&](std::size_t, Rng& rng) {
          return dc::simulate_pool(variant, rng).overall_loss();
        });
    const double delivered = 1.0 - loss.summary.mean();
    table.add_row({policy.name, AsciiTable::format(loss.summary.mean(), 4),
                   AsciiTable::format(delivered, 4),
                   AsciiTable::format(delivered / optimal_delivery, 4)});
  }
  table.print(std::cout);

  std::cout << '\n';
  print_kv(std::cout, "model bound on delivered (1-B)", optimal_delivery, 4);
  std::cout << "\nconclusion: the closer a policy's score is to 1, the "
               "better the allocation algorithm -- exactly how the paper "
               "proposes using the model to evaluate on-demand resource "
               "allocation; reallocation overhead eats into the score.\n";
  return 0;
}
