// Microbenchmark for the SweepGrid planner: serial-cold (the pre-kernel
// behavior: every grid point re-runs the full Erlang-B recursions from
// scratch) vs the parallel sweep backed by the memoized incremental
// ErlangKernel, cold-cache and warm-cache. All three configurations are
// pure accelerations — the bench verifies the reports are identical before
// printing timings. Not a paper figure; performance hygiene for the
// what-if sweep path.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/metrics.hpp"

namespace vmcons::bench {
namespace {

using Clock = std::chrono::steady_clock;

double run_millis(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Case-study services under heavy load: `dedicated` dedicated servers per
/// service pushes the offered loads into the tens of thousands of Erlangs,
/// where each cold staffing search walks a long recurrence prefix.
core::ConsolidationPlanner heavy_planner(std::uint64_t dedicated,
                                         double target_loss) {
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, dedicated, target_loss);
  db.arrival_rate = core::intensive_workload(db, dedicated, target_loss);
  core::ConsolidationPlanner planner;
  planner.set_target_loss(target_loss).add_service(web).add_service(db);
  return planner;
}

bool same_reports(const std::vector<core::SweepCell>& a,
                  const std::vector<core::SweepCell>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ma = a[i].report.model;
    const auto& mb = b[i].report.model;
    if (ma.dedicated_servers != mb.dedicated_servers ||
        ma.consolidated_servers != mb.consolidated_servers ||
        ma.consolidated_blocking != mb.consolidated_blocking ||
        ma.power_saving != mb.power_saving) {
      return false;
    }
  }
  return true;
}

int run(int argc, const char** argv) {
  Flags flags(argc, argv);
  const auto losses_n = static_cast<std::size_t>(flags.get_int("losses", 10));
  const auto scales_n = static_cast<std::size_t>(flags.get_int("scales", 10));
  const auto dedicated =
      static_cast<std::uint64_t>(flags.get_int("servers", 20000));
  // Pass/fail threshold for the exit status; smoke runs (tiny grids whose
  // wall time is all fixed overhead) set this to 0 to check correctness
  // only.
  const double min_speedup = flags.get_double("min-speedup", 3.0);
  finish_flags(flags);

  banner("micro_sweep: serial-cold vs parallel memoized SweepGrid",
         "library performance hygiene (no paper figure)");
  metrics::registry().reset();

  const core::ConsolidationPlanner planner = heavy_planner(dedicated, 0.01);

  // Loss axis log-spaced 0.05 -> 1e-4, scale axis linear 0.5 -> 2.0.
  std::vector<double> losses;
  for (std::size_t i = 0; i < losses_n; ++i) {
    const double t = losses_n == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(losses_n - 1);
    losses.push_back(0.05 * std::pow(1e-4 / 0.05, t));
  }
  std::vector<double> scales;
  for (std::size_t i = 0; i < scales_n; ++i) {
    const double t = scales_n == 1
                         ? 0.0
                         : static_cast<double>(i) /
                               static_cast<double>(scales_n - 1);
    scales.push_back(0.5 + t * 1.5);
  }
  core::SweepGrid grid;
  grid.target_losses(losses).workload_scales(scales);
  std::cout << "grid: " << losses.size() << " losses x " << scales.size()
            << " scales = " << grid.size() << " plans, offered load ~"
            << static_cast<long long>(dedicated) << " Erlangs/service\n\n";

  core::SweepOptions serial_cold;
  serial_cold.parallel = false;
  serial_cold.memoize = false;

  queueing::ErlangKernel kernel;
  core::SweepOptions with_kernel;
  with_kernel.kernel = &kernel;

  std::vector<core::SweepCell> baseline;
  std::vector<core::SweepCell> cold;
  std::vector<core::SweepCell> warm;
  const double serial_ms =
      run_millis([&] { baseline = planner.sweep(grid, serial_cold); });
  const double cold_ms =
      run_millis([&] { cold = planner.sweep(grid, with_kernel); });
  const double warm_ms =
      run_millis([&] { warm = planner.sweep(grid, with_kernel); });

  if (!same_reports(baseline, cold) || !same_reports(baseline, warm)) {
    std::cerr << "FAIL: kernel-backed sweep diverged from serial baseline\n";
    return EXIT_FAILURE;
  }
  std::cout << "all " << grid.size()
            << " reports identical across configurations\n\n";

  AsciiTable table;
  table.set_header({"configuration", "wall ms", "speedup"});
  table.add_row({"serial, no memoization (old behavior)",
                 AsciiTable::format(serial_ms, 1), "1.0x"});
  table.add_row({"parallel, cold kernel",
                 AsciiTable::format(cold_ms, 1),
                 AsciiTable::format(serial_ms / cold_ms, 1) + "x"});
  table.add_row({"parallel, warm kernel",
                 AsciiTable::format(warm_ms, 1),
                 AsciiTable::format(serial_ms / warm_ms, 1) + "x"});
  table.print(std::cout,
              std::to_string(grid.size()) + "-point sweep wall time");

  const auto stats = kernel.stats();
  std::cout << "\nkernel: " << stats.evaluations << " Erlang evaluations, "
            << stats.cache_hits << " cache hits ("
            << AsciiTable::format(stats.hit_rate() * 100.0, 1)
            << "% hit rate), " << stats.steps << " recurrence steps\n\n";
  core::print_metrics(std::cout);

  const double speedup = serial_ms / cold_ms;
  std::cout << "\ncold-kernel speedup over the serial baseline: "
            << AsciiTable::format(speedup, 1) << "x (target >= "
            << AsciiTable::format(min_speedup, 1) << "x)\n";
  return speedup >= min_speedup ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace
}  // namespace vmcons::bench

int main(int argc, const char** argv) {
  try {
    return vmcons::bench::run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return EXIT_FAILURE;
  }
}
