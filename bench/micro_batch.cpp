// Microbenchmark for the columnar batch evaluator: object-at-a-time
// (one UtilityAnalyticModel::solve() per grid cell, stateless Erlang
// functions — the pre-batch behavior) vs one ScenarioBatch evaluated by the
// BatchEvaluator on a single thread, vs the sharded parallel evaluation,
// plus a thread-scaling sweep over fixed-size pools (1/2/4/8 workers)
// exercising the kernel's contention-free snapshot/arena path. Every
// configuration computes the same plans — the bench verifies the results
// are bit-identical before printing timings, then emits BENCH_batch.json
// (header with git rev + worker counts; plans/sec, wall ms, speedup per
// configuration). Not a paper figure; performance hygiene for the what-if
// sweep path.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/batch_eval.hpp"
#include "core/model.hpp"
#include "core/report.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::bench {
namespace {

using Clock = std::chrono::steady_clock;

double run_millis(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Minimum wall time over `reps` runs of `fn`. The box this bench runs on
/// may be shared/noisy; the minimum is the least-interfered sample and the
/// one the recorded JSON should carry. `fn` must reset its own state (cold
/// kernel, cleared outputs) so every rep measures identical work.
double best_of(int reps, const std::function<void()>& fn) {
  double best = run_millis(fn);
  for (int r = 1; r < reps; ++r) {
    best = std::min(best, run_millis(fn));
  }
  return best;
}

/// First number following `"key": ` in a JSON blob, searched from `from`.
/// Enough of a parser for the flat bench files this tool writes itself.
bool find_json_number(const std::string& text, const std::string& key,
                      double& out, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = text.find(needle, from);
  if (pos == std::string::npos) {
    return false;
  }
  out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool same_results(const std::vector<core::ModelResult>& a,
                  const std::vector<core::ModelResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].dedicated_servers != b[i].dedicated_servers ||
        a[i].consolidated_servers != b[i].consolidated_servers ||
        a[i].consolidated_blocking != b[i].consolidated_blocking ||
        a[i].dedicated_utilization != b[i].dedicated_utilization ||
        a[i].consolidated_utilization != b[i].consolidated_utilization ||
        a[i].power_saving != b[i].power_saving) {
      return false;
    }
  }
  return true;
}

int run(int argc, const char** argv) {
  Flags flags(argc, argv);
  const auto losses_n = static_cast<std::size_t>(flags.get_int("losses", 12));
  const auto scales_n = static_cast<std::size_t>(flags.get_int("scales", 12));
  const auto dedicated =
      static_cast<std::uint64_t>(flags.get_int("servers", 20000));
  // Pass/fail threshold for the exit status; smoke runs (tiny grids whose
  // wall time is all fixed overhead) set this to 0 to check correctness only.
  const double min_speedup = flags.get_double("min-speedup", 3.0);
  // Require batch_parallel >= this multiple of batch_1thread plans/sec.
  // Only enforced on machines with >= 4 hardware threads; elsewhere the
  // check is skipped with a notice (a 1-core box cannot demonstrate
  // parallel speedup no matter how contention-free the kernel is).
  const double min_parallel_speedup =
      flags.get_double("min-parallel-speedup", 0.0);
  // Each configuration is timed `reps` times and the minimum is reported:
  // the least-interfered sample on a noisy box.
  const int reps = static_cast<int>(std::max(1ll, flags.get_int("reps", 3)));
  // Regression gate against a previously recorded BENCH_batch.json:
  // batch_1thread plans/sec must be >= min-baseline-speedup x the recorded
  // value. Skipped with a notice when the baseline was recorded on a
  // different machine or grid (those numbers are not comparable).
  const std::string baseline_path = flags.get_string("baseline-json", "");
  const double min_baseline_speedup =
      flags.get_double("min-baseline-speedup", 0.0);
  const std::string json_path = flags.get_string("json", "BENCH_batch.json");
  const std::string git_rev = flags.get_string("git-rev", "unknown");
  finish_flags(flags);

  banner("micro_batch: object-at-a-time vs columnar ScenarioBatch",
         "library performance hygiene (no paper figure)");
  metrics::registry().reset();

  // The same grid shape micro_sweep uses: loss axis log-spaced 0.05 -> 1e-4,
  // scale axis linear 0.5 -> 2.0, over the heavy case-study workload. Points
  // at the same scale share offered loads, which is exactly the structure
  // the sorted batched kernel walk exploits.
  const core::ModelInputs base = case_study_inputs(dedicated);
  std::vector<core::ModelInputs> grid;
  grid.reserve(losses_n * scales_n);
  for (std::size_t s = 0; s < scales_n; ++s) {
    const double ts =
        scales_n == 1
            ? 0.0
            : static_cast<double>(s) / static_cast<double>(scales_n - 1);
    const double scale = 0.5 + ts * 1.5;
    for (std::size_t l = 0; l < losses_n; ++l) {
      const double tl =
          losses_n == 1
              ? 0.0
              : static_cast<double>(l) / static_cast<double>(losses_n - 1);
      core::ModelInputs cell = base;
      cell.target_loss = 0.05 * std::pow(1e-4 / 0.05, tl);
      for (auto& service : cell.services) {
        service.arrival_rate *= scale;
      }
      grid.push_back(std::move(cell));
    }
  }
  std::cout << "grid: " << losses_n << " losses x " << scales_n
            << " scales = " << grid.size() << " plans, offered load ~"
            << static_cast<long long>(dedicated) << " Erlangs/service\n\n";

  // Object-at-a-time: the pre-batch behavior — every cell solves its own
  // model through the stateless Erlang free functions.
  std::vector<core::ModelResult> object_results;
  const double object_ms = best_of(reps, [&] {
    object_results.clear();
    object_results.reserve(grid.size());
    for (const core::ModelInputs& cell : grid) {
      object_results.push_back(core::UtilityAnalyticModel(cell).solve());
    }
  });

  // Columnar, one thread: batch construction is part of the measured cost,
  // and the kernel is cleared per rep so every sample starts cold.
  queueing::ErlangKernel serial_kernel;
  core::BatchOptions serial_options;
  serial_options.parallel = false;
  serial_options.kernel = &serial_kernel;
  std::vector<core::ModelResult> serial_results;
  const double serial_ms = best_of(reps, [&] {
    serial_kernel.clear();
    const core::ScenarioBatch batch = core::ScenarioBatch::from_inputs(grid);
    serial_results = core::BatchEvaluator(serial_options).evaluate(batch);
  });

  // Columnar, sharded across the thread pool with its own cold kernel.
  queueing::ErlangKernel parallel_kernel;
  core::BatchOptions parallel_options;
  parallel_options.kernel = &parallel_kernel;
  std::vector<core::ModelResult> parallel_results;
  const double parallel_ms = best_of(reps, [&] {
    parallel_kernel.clear();
    const core::ScenarioBatch batch = core::ScenarioBatch::from_inputs(grid);
    parallel_results =
        core::BatchEvaluator(parallel_options).evaluate(batch);
  });

  // Quarantine overhead: same 1-thread columnar run with the fault-tolerant
  // policy (and its BatchOutcome bookkeeping) on a fault-free batch. The
  // fallback path never triggers without a failure, so this must sit within
  // noise of the fail-fast row — the bench verifies results stay identical
  // and reports the ratio for the record.
  queueing::ErlangKernel quarantine_kernel;
  core::BatchOptions quarantine_options;
  quarantine_options.parallel = false;
  quarantine_options.kernel = &quarantine_kernel;
  quarantine_options.policy = core::FailurePolicy::kQuarantine;
  std::vector<core::ModelResult> quarantine_results;
  std::size_t quarantine_failures = 0;
  const double quarantine_ms = best_of(reps, [&] {
    quarantine_kernel.clear();
    const core::ScenarioBatch batch = core::ScenarioBatch::from_inputs(grid);
    core::BatchOutcome outcome =
        core::BatchEvaluator(quarantine_options).evaluate_all(batch);
    quarantine_failures = outcome.failures.size();
    quarantine_results = std::move(outcome.results);
  });
  if (quarantine_failures != 0) {
    std::cerr << "FAIL: fault-free batch reported " << quarantine_failures
              << " quarantined cells\n";
    return EXIT_FAILURE;
  }

  // Thread-scaling sweep: fixed-size injected pools, cold kernel each, so
  // every row measures the same work under a known worker count.
  struct ThreadRow {
    std::size_t threads = 0;
    double ms = 0.0;
  };
  std::vector<ThreadRow> thread_rows;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    queueing::ErlangKernel kernel;
    core::BatchOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    std::vector<core::ModelResult> results;
    const double ms = best_of(reps, [&] {
      kernel.clear();
      const core::ScenarioBatch batch = core::ScenarioBatch::from_inputs(grid);
      results = core::BatchEvaluator(options).evaluate(batch);
    });
    if (!same_results(object_results, results)) {
      std::cerr << "FAIL: " << threads
                << "-thread batch diverged from per-scenario solve\n";
      return EXIT_FAILURE;
    }
    thread_rows.push_back({threads, ms});
  }

  // Heterogeneous fleet row: the same grid with a 3-class fleet attached to
  // every cell, exercising the staff_fleet kernel and the class-major power
  // blend. Staffing, blocking, and utilization must stay bit-identical to
  // the fleetless solve (the fleet pass is post-processing in reference
  // units); power intentionally differs (per-class wattages), so the
  // comparison below excludes it.
  std::vector<core::ModelInputs> hetero_grid = grid;
  for (core::ModelInputs& cell : hetero_grid) {
    cell.fleet.add(dc::ServerClass::reference("old-gen"));
    dc::ServerClass mid;
    mid.name = "mid-gen";
    for (const dc::Resource resource : dc::all_resources()) {
      mid.capacity[resource] = 1.5;
    }
    mid.power = dc::PowerModel{280.0, 340.0};
    mid.count = 64;
    cell.fleet.add(mid);
    dc::ServerClass fast;
    fast.name = "new-gen";
    for (const dc::Resource resource : dc::all_resources()) {
      fast.capacity[resource] = 2.0;
    }
    fast.power = dc::PowerModel{310.0, 390.0};
    fast.count = 16;
    cell.fleet.add(fast);
  }
  queueing::ErlangKernel hetero_kernel;
  core::BatchOptions hetero_options;
  hetero_options.parallel = false;
  hetero_options.kernel = &hetero_kernel;
  std::vector<core::ModelResult> hetero_results;
  const double hetero_ms = best_of(reps, [&] {
    hetero_kernel.clear();
    const core::ScenarioBatch batch =
        core::ScenarioBatch::from_inputs(hetero_grid);
    hetero_results = core::BatchEvaluator(hetero_options).evaluate(batch);
  });
  for (std::size_t i = 0; i < hetero_results.size(); ++i) {
    const core::ModelResult& a = object_results[i];
    const core::ModelResult& b = hetero_results[i];
    if (a.dedicated_servers != b.dedicated_servers ||
        a.consolidated_servers != b.consolidated_servers ||
        a.consolidated_blocking != b.consolidated_blocking ||
        a.dedicated_utilization != b.dedicated_utilization ||
        a.consolidated_utilization != b.consolidated_utilization ||
        !b.fleet.planned || b.fleet.classes.size() != 3) {
      std::cerr << "FAIL: 3-class fleet batch diverged from the fleetless "
                   "solve in a reference-unit field\n";
      return EXIT_FAILURE;
    }
  }

  if (!same_results(object_results, serial_results) ||
      !same_results(object_results, parallel_results) ||
      !same_results(object_results, quarantine_results)) {
    std::cerr << "FAIL: batch evaluation diverged from per-scenario solve\n";
    return EXIT_FAILURE;
  }
  std::cout << "all " << grid.size()
            << " plans bit-identical across configurations\n\n";

  // Per-kernel attribution: time the four hot kernels in isolation so the
  // headline speedup can be traced to the loop that earned it. The Erlang
  // query lists are reconstructed from the solved plans (exactly the
  // queries the batch kernels staged); the derive kernels re-run over a
  // copy of the solved results. Cold kernel per rep, minimum reported.
  std::vector<queueing::StaffingQuery> staff_queries;
  std::vector<queueing::BlockingQuery> eval_queries;
  for (std::size_t s = 0; s < serial_results.size(); ++s) {
    const core::ModelResult& result = serial_results[s];
    const double b = grid[s].target_loss;
    for (const core::ServicePlan& plan : result.dedicated) {
      for (const dc::Resource resource : dc::all_resources()) {
        if (plan.offered_load[resource] > 0.0) {
          staff_queries.push_back({plan.offered_load[resource], b});
          eval_queries.push_back({plan.servers, plan.offered_load[resource]});
        }
      }
    }
    for (const auto& plan : result.consolidated) {
      if (plan.demanded) {
        staff_queries.push_back({plan.offered_load, b});
        eval_queries.push_back({result.consolidated_servers,
                                plan.offered_load});
      }
    }
  }
  queueing::ErlangKernel stage_kernel;
  std::vector<std::uint64_t> staffed_out(staff_queries.size());
  std::vector<double> blocked_out(eval_queries.size());
  const double staffing_ms = best_of(reps, [&] {
    stage_kernel.clear();
    stage_kernel.servers_for_many(staff_queries, staffed_out);
  });
  const double eval_ms = best_of(reps, [&] {
    stage_kernel.clear();
    stage_kernel.eval_many(eval_queries, blocked_out);
  });
  const core::ScenarioBatch derive_batch =
      core::ScenarioBatch::from_inputs(grid);
  // The derive kernels only write fields they never read, so re-running
  // them over one solved copy is identical work every rep.
  std::vector<core::ModelResult> derive_scratch = serial_results;
  const double utility_ms = best_of(reps, [&] {
    core::batch_kernels::derive_utility(derive_batch, 0, grid.size(),
                                        derive_scratch);
  });
  const double power_ms = best_of(reps, [&] {
    core::batch_kernels::derive_power(derive_batch, 0, grid.size(),
                                      derive_scratch);
  });

  // A row whose worker count exceeds the physical core count measures
  // oversubscription, not scaling: its timings are marked unreliable in the
  // table and in BENCH_batch.json so nobody reads them as a regression.
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t shared_workers = ThreadPool::shared().size();
  const auto unreliable = [hardware](std::size_t workers) {
    return workers > hardware;
  };

  const double count = static_cast<double>(grid.size());
  AsciiTable table;
  table.set_header({"configuration", "wall ms", "plans/s", "speedup"});
  table.add_row({"object-at-a-time, serial (old behavior)",
                 AsciiTable::format(object_ms, 1),
                 AsciiTable::format(count / object_ms * 1000.0, 0), "1.0x"});
  table.add_row({"batch, 1 thread",
                 AsciiTable::format(serial_ms, 1),
                 AsciiTable::format(count / serial_ms * 1000.0, 0),
                 AsciiTable::format(object_ms / serial_ms, 1) + "x"});
  table.add_row({"batch, 1 thread, kQuarantine (fault-free)",
                 AsciiTable::format(quarantine_ms, 1),
                 AsciiTable::format(count / quarantine_ms * 1000.0, 0),
                 AsciiTable::format(object_ms / quarantine_ms, 1) + "x"});
  table.add_row({"batch, 1 thread, 3-class fleet",
                 AsciiTable::format(hetero_ms, 1),
                 AsciiTable::format(count / hetero_ms * 1000.0, 0),
                 AsciiTable::format(object_ms / hetero_ms, 1) + "x"});
  table.add_row({"batch, sharded parallel" +
                     std::string(unreliable(shared_workers) ? " [unreliable]"
                                                           : ""),
                 AsciiTable::format(parallel_ms, 1),
                 AsciiTable::format(count / parallel_ms * 1000.0, 0),
                 AsciiTable::format(object_ms / parallel_ms, 1) + "x"});
  bool any_unreliable = unreliable(shared_workers);
  for (const ThreadRow& row : thread_rows) {
    any_unreliable = any_unreliable || unreliable(row.threads);
    table.add_row({"batch, pool(" + std::to_string(row.threads) + ")" +
                       std::string(unreliable(row.threads) ? " [unreliable]"
                                                           : ""),
                   AsciiTable::format(row.ms, 1),
                   AsciiTable::format(count / row.ms * 1000.0, 0),
                   AsciiTable::format(object_ms / row.ms, 1) + "x"});
  }
  table.print(std::cout,
              std::to_string(grid.size()) + "-plan batch wall time");
  if (any_unreliable) {
    std::cout << "[unreliable]: row uses more workers than the " << hardware
              << " detected core(s); its timing measures oversubscription, "
                 "not scaling\n";
  }

  AsciiTable kernel_table;
  kernel_table.set_header(
      {"kernel (whole batch, isolated)", "wall ms", "queries",
       "% of batch_1thread"});
  const auto kernel_row = [&](const std::string& name, double ms,
                              std::size_t queries) {
    kernel_table.add_row({name, AsciiTable::format(ms, 2),
                          std::to_string(queries),
                          AsciiTable::format(ms / serial_ms * 100.0, 1) +
                              "%"});
  };
  kernel_row("staffing inverse (servers_for_many)", staffing_ms,
             staff_queries.size());
  kernel_row("erlang eval (eval_many)", eval_ms, eval_queries.size());
  kernel_row("utility derivation (derive_utility)", utility_ms, grid.size());
  kernel_row("power derivation (derive_power)", power_ms, grid.size());
  std::cout << "\n";
  kernel_table.print(
      std::cout,
      "per-kernel attribution (" +
          std::to_string(util::simd::kRecurrenceLanes) +
          " recurrence lanes; isolated cold-kernel reruns, so the rows "
          "need not sum to the pipeline time)");

  const auto stats = serial_kernel.stats();
  std::cout << "\n1-thread kernel: " << stats.evaluations
            << " Erlang evaluations, " << stats.cache_hits << " cache hits ("
            << AsciiTable::format(stats.hit_rate() * 100.0, 1)
            << "% hit rate), " << stats.steps << " recurrence steps\n\n";
  core::print_metrics(std::cout);

  // Snapshot the recorded baseline BEFORE overwriting json_path below —
  // bench.sh points both flags at the same file on purpose (gate the new
  // numbers against the previous recording, then replace it).
  std::string baseline;
  if (!baseline_path.empty()) {
    std::ifstream baseline_in(baseline_path);
    std::stringstream buffer;
    buffer << baseline_in.rdbuf();
    baseline = buffer.str();
  }

  std::ostringstream json;
  json.precision(6);
  json << std::fixed << "{\n";
  json << "  \"header\": {\"git_rev\": \"" << git_rev
       << "\", \"workers\": " << shared_workers
       << ", \"detected_cores\": " << hardware
       << ", \"hardware_concurrency\": " << hardware
       << ", \"lane_width\": " << util::simd::kRecurrenceLanes
       << ", \"native_lanes\": " << util::simd::kNativeDoubleLanes
       << ", \"reps\": " << reps << ", \"losses\": " << losses_n
       << ", \"scales\": " << scales_n << ", \"servers\": " << dedicated
       << "},\n";
  const auto emit = [&](const std::string& name, double ms,
                        std::size_t workers, bool last) {
    json << "  \"" << name << "\": {\"plans_per_sec\": "
         << count / ms * 1000.0 << ", \"ms_total\": " << ms
         << ", \"speedup_vs_object\": " << object_ms / ms
         << ", \"workers\": " << workers << ", \"unreliable\": "
         << (unreliable(workers) ? "true" : "false") << "}"
         << (last ? "\n" : ",\n");
  };
  emit("object_at_a_time", object_ms, 1, false);
  emit("batch_1thread", serial_ms, 1, false);
  emit("kernel_staffing_inverse", staffing_ms, 1, false);
  emit("kernel_erlang_eval", eval_ms, 1, false);
  emit("kernel_utility", utility_ms, 1, false);
  emit("kernel_power", power_ms, 1, false);
  emit("batch_quarantine", quarantine_ms, 1, false);
  emit("batch_parallel", parallel_ms, shared_workers, false);
  for (std::size_t i = 0; i < thread_rows.size(); ++i) {
    emit("batch_threads_" + std::to_string(thread_rows[i].threads),
         thread_rows[i].ms, thread_rows[i].threads, false);
  }
  emit("batch_hetero_3class", hetero_ms, 1, true);
  json << "}\n";
  std::ofstream out(json_path);
  out << json.str();
  out.close();
  std::cout << "\nwrote " << json_path << "\n";

  std::cout << "quarantine policy overhead on a fault-free batch: "
            << AsciiTable::format(quarantine_ms / serial_ms, 2)
            << "x the fail-fast wall time (expect ~1.0x; the fallback path "
               "only runs on a failure)\n";

  bool passed = true;
  const double speedup = object_ms / serial_ms;
  std::cout << "1-thread batch speedup over object-at-a-time: "
            << AsciiTable::format(speedup, 1) << "x (target >= "
            << AsciiTable::format(min_speedup, 1) << "x)\n";
  passed = passed && speedup >= min_speedup;

  if (!baseline_path.empty() && min_baseline_speedup > 0.0) {
    const double current_pps = count / serial_ms * 1000.0;
    double base_cores = 0.0, base_lanes = 0.0;
    double base_losses = 0.0, base_scales = 0.0, base_servers = 0.0;
    double base_pps = 0.0;
    const std::size_t row = baseline.find("\"batch_1thread\"");
    const bool have_row =
        row != std::string::npos &&
        find_json_number(baseline, "plans_per_sec", base_pps, row);
    if (!have_row) {
      std::cout << "baseline check SKIPPED: no batch_1thread row in "
                << baseline_path << "\n";
    } else if (!find_json_number(baseline, "detected_cores", base_cores) ||
               static_cast<unsigned>(base_cores) != hardware ||
               (find_json_number(baseline, "lane_width", base_lanes) &&
                static_cast<std::size_t>(base_lanes) !=
                    util::simd::kRecurrenceLanes)) {
      std::cout << "baseline check SKIPPED: " << baseline_path
                << " was recorded on a different machine ("
                << static_cast<long long>(base_cores) << " cores, lane width "
                << static_cast<long long>(base_lanes) << " vs " << hardware
                << " cores, lane width " << util::simd::kRecurrenceLanes
                << " here)\n";
    } else if (find_json_number(baseline, "losses", base_losses) &&
               (static_cast<std::size_t>(base_losses) != losses_n ||
                !find_json_number(baseline, "scales", base_scales) ||
                static_cast<std::size_t>(base_scales) != scales_n ||
                !find_json_number(baseline, "servers", base_servers) ||
                static_cast<std::uint64_t>(base_servers) != dedicated)) {
      std::cout << "baseline check SKIPPED: " << baseline_path
                << " was recorded on a different grid\n";
    } else {
      const double ratio = current_pps / base_pps;
      std::cout << "batch_1thread vs recorded baseline: "
                << AsciiTable::format(current_pps, 0) << " / "
                << AsciiTable::format(base_pps, 0) << " plans/s = "
                << AsciiTable::format(ratio, 2) << "x (target >= "
                << AsciiTable::format(min_baseline_speedup, 2) << "x)\n";
      passed = passed && ratio >= min_baseline_speedup;
    }
  }

  if (min_parallel_speedup > 0.0) {
    const double parallel_speedup = serial_ms / parallel_ms;
    if (hardware < 4) {
      std::cout << "parallel speedup check SKIPPED: only " << hardware
                << " hardware thread(s) available (need >= 4 to demonstrate "
                   "scaling)\n";
    } else {
      std::cout << "parallel batch speedup over 1-thread batch: "
                << AsciiTable::format(parallel_speedup, 2) << "x (target >= "
                << AsciiTable::format(min_parallel_speedup, 2) << "x on "
                << hardware << " hardware threads)\n";
      passed = passed && parallel_speedup >= min_parallel_speedup;
    }
  }
  return passed ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace
}  // namespace vmcons::bench

int main(int argc, const char** argv) {
  try {
    return vmcons::bench::run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return EXIT_FAILURE;
  }
}
