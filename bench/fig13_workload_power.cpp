// Figure 13: the power consumed by the workloads themselves — total power
// minus the idle draw of the same servers.
//
// Paper observation: the same workloads cost ~30% less dynamic power on
// consolidated Xen servers than on dedicated Linux servers (with the same
// number of OS instances running!).
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 1500.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Fig. 13 -- power consumed by the workloads alone",
                "Song et al., CLUSTER 2009, Figure 13");

  const core::ModelInputs inputs = bench::case_study_inputs(4);
  dc::ScenarioOptions scenario;
  scenario.horizon = horizon;
  scenario.warmup = horizon * 0.1;

  const auto replication_count = static_cast<std::size_t>(replications);
  // Workload power = (total energy - idle energy) / span.
  const auto dedicated = sim::replicate_scalar(
      replication_count, 1301, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_dedicated(inputs.services, {4, 4}, scenario, rng);
        return (outcome.energy_joules - outcome.idle_energy_joules) /
               outcome.measured_span;
      });
  const auto consolidated = sim::replicate_scalar(
      replication_count, 1302, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_consolidated(inputs.services, 4, scenario, rng);
        return (outcome.energy_joules - outcome.idle_energy_joules) /
               outcome.measured_span;
      });

  AsciiTable table;
  table.set_header({"configuration", "workload power (W)"});
  table.add_row({"8 dedicated (Linux), web + db workloads",
                 AsciiTable::format(dedicated.summary.mean(), 2)});
  table.add_row({"4 consolidated (Xen), same workloads",
                 AsciiTable::format(consolidated.summary.mean(), 2)});
  table.print(std::cout);

  std::cout << '\n';
  print_kv(std::cout, "workload power reduction on Xen (%)",
           (1.0 - consolidated.summary.mean() / dedicated.summary.mean()) *
               100.0,
           1);
  std::cout << "\nshape check: the same workloads cost noticeably less "
               "dynamic power consolidated on Xen (paper: ~30% less). In "
               "this reproduction the effect combines the platform's 30% "
               "dynamic-power discount with the higher per-server "
               "utilization of the packed pool.\n";
  return 0;
}
