// Figure 7: the impact of vCPU allocation on the DB VM.
//
// The paper pins six vCPUs of the DB VM onto physical cores and shows that
// (a) throughput grows with the number of vCPUs, and (b) pinning beats
// leaving scheduling to the Xen credit scheduler. We sweep vCPUs 1..8 in
// both modes with the TPC-W closed-loop driver.
#include <iostream>

#include "bench_common.hpp"
#include "workload/tpcw.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 150.0);
  const long long ebs = flags.get_int("ebs", 2000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  bench::finish_flags(flags);

  bench::banner("Fig. 7 -- impact of vCPU allocation on the DB VM",
                "Song et al., CLUSTER 2009, Figure 7");

  AsciiTable table;
  table.set_header({"vcpus", "WIPS pinned", "WIPS xen-sched", "pinned gain"});
  for (unsigned vcpus = 1; vcpus <= 8; ++vcpus) {
    workload::TpcwConfig pinned;
    pinned.vm_count = 1;
    pinned.vcpus = vcpus;
    pinned.vcpu_mode = virt::VcpuMode::kPinned;
    pinned.duration = duration;

    workload::TpcwConfig scheduled = pinned;
    scheduled.vcpu_mode = virt::VcpuMode::kXenScheduled;

    Rng rng_pinned(seed, vcpus);
    Rng rng_scheduled(seed, 100 + vcpus);
    const auto pinned_point = workload::tpcw_run(
        pinned, static_cast<unsigned>(ebs), rng_pinned);
    const auto scheduled_point = workload::tpcw_run(
        scheduled, static_cast<unsigned>(ebs), rng_scheduled);

    table.add_row({std::to_string(vcpus),
                   AsciiTable::format(pinned_point.wips, 1),
                   AsciiTable::format(scheduled_point.wips, 1),
                   AsciiTable::format(
                       pinned_point.wips / scheduled_point.wips, 2)});
  }
  table.print(std::cout, "DB throughput vs vCPU allocation (1 DB VM, 8 cores,"
                         " 2 reserved for Domain-0)");

  std::cout << "\nshape check: WIPS grows with vCPUs up to the 6 usable "
               "cores, and pinning beats the credit scheduler by ~1/"
            << virt::kXenSchedulerPenalty << "x throughout -- the paper's "
               "reason for pinning 6 vCPUs per DB VM.\n";
  return 0;
}
