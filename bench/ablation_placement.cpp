// Ablation: is the Erlang staffing footprint-feasible? And what does an
// Entropy-style minimal-migration replan cost when the plan changes?
//
// The model's N counts servers by *rates*; each consolidated host must also
// physically fit its VMs (vCPUs, memory, Domain-0 reservation). This bench
// packs the paper's VM footprints onto the model's N for growing service
// counts, showing where memory (not Erlang) becomes the binding constraint,
// then replans after a workload change and reports migrations.
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/placement.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  bench::finish_flags(flags);

  bench::banner("Ablation -- rate staffing vs VM footprint packing",
                "feasibility check behind the paper's Fig. 3 deployment");

  // Host: the paper's 8-core/8 GB box, Domain-0 takes 1 core + 1 GB here so
  // a 6-vCPU DB VM and a 1-vCPU Web VM can share it (as the testbed does).
  dc::HostShape host;
  host.reserved_cores = 1;

  AsciiTable table;
  table.set_header({"services (web+db pairs)", "Erlang N", "packing hosts",
                    "binding constraint"});
  for (const unsigned pairs : {1u, 2u, 3u, 4u, 6u, 8u}) {
    // Erlang N for `pairs` copies of the case-study pair at group-1 rates.
    core::ModelInputs inputs = bench::case_study_inputs(3);
    core::ModelInputs grown;
    grown.target_loss = inputs.target_loss;
    for (unsigned p = 0; p < pairs; ++p) {
      for (const auto& service : inputs.services) {
        dc::ServiceSpec copy = service;
        copy.name += "-" + std::to_string(p);
        grown.services.push_back(std::move(copy));
      }
    }
    grown.vms_per_server = static_cast<unsigned>(grown.services.size());
    const auto n =
        core::UtilityAnalyticModel(grown).solve().consolidated_servers;

    // Footprints: every host in the paper's layout carries one VM of every
    // service, so `pairs` web VMs + `pairs` DB VMs must fit per host — or
    // the packer spreads them over more hosts.
    std::vector<dc::VmRequirement> vms;
    for (unsigned p = 0; p < pairs; ++p) {
      for (std::uint32_t copy = 0; copy < n; ++copy) {
        auto web = dc::paper_web_vm_requirement(copy);
        web.service = p * 2;
        vms.push_back(web);
        auto db = dc::paper_db_vm_requirement(copy);
        db.service = p * 2 + 1;
        vms.push_back(db);
      }
    }
    const std::size_t hosts = dc::min_hosts(vms, host);
    table.add_row({std::to_string(pairs), std::to_string(n),
                   std::to_string(hosts),
                   hosts > n ? "VM footprint (vCPUs/memory)" : "Erlang rates"});
  }
  table.print(std::cout);

  // Migration-aware replan: the group-1 fleet grows by one pair of VMs.
  std::vector<dc::VmRequirement> fleet;
  for (std::uint32_t i = 0; i < 3; ++i) {
    fleet.push_back(dc::paper_web_vm_requirement(i));
    fleet.push_back(dc::paper_db_vm_requirement(i));
  }
  const auto initial = dc::pack_vms(fleet, host, 4);
  std::vector<std::size_t> current(fleet.size());
  for (std::size_t h = 0; h < initial.assignments.size(); ++h) {
    for (const std::size_t vm : initial.assignments[h]) {
      current[vm] = h;
    }
  }
  fleet.push_back(dc::paper_web_vm_requirement(3));
  current.push_back(static_cast<std::size_t>(-1));
  fleet.push_back(dc::paper_db_vm_requirement(3));
  current.push_back(static_cast<std::size_t>(-1));
  const auto replan = dc::replan_minimal_migrations(fleet, current, host, 4);

  std::cout << '\n';
  print_kv(std::cout, "replan feasible",
           std::string(replan.placement.feasible ? "yes" : "no"));
  print_kv(std::cout, "hosts after growth",
           static_cast<double>(replan.placement.hosts_used()), 0);
  print_kv(std::cout, "live migrations needed",
           static_cast<double>(replan.migrations), 0);

  std::cout << "\nconclusion: at the paper's scale (one web + one db VM per "
               "host) the Erlang staffing is the binding constraint, but "
               "the moment a second 6-vCPU DB VM must co-reside, host cores "
               "bind instead and the footprint-feasible fleet is several "
               "times the Erlang N -- rate staffing alone would badly "
               "under-build such fleets. Growth absorbs into free capacity "
               "with zero migrations (Entropy-style keep-in-place "
               "replanning).\n";
  return 0;
}
