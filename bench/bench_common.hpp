// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Header-only: every bench/*.cpp is compiled into its own
// executable by the bench CMake glob.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "datacenter/service_spec.hpp"
#include "util/ascii_table.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

namespace vmcons::bench {

/// The paper's case-study model inputs: Web + DB services with the Section
/// IV-C2 constants, arrival rates chosen as the "intensive workloads" that
/// `dedicated_per_service` dedicated servers per service can just afford.
inline core::ModelInputs case_study_inputs(std::uint64_t dedicated_per_service,
                                           double target_loss = 0.01,
                                           double fraction = 0.5) {
  core::ModelInputs inputs;
  inputs.target_loss = target_loss;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, dedicated_per_service,
                                              target_loss, fraction);
  db.arrival_rate = core::intensive_workload(db, dedicated_per_service,
                                             target_loss, fraction);
  inputs.services = {web, db};
  return inputs;
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "== " << title << " ==\n";
  std::cout << "reproduces: " << paper_ref << "\n\n";
}

/// Rejects typo'd flags after a bench has read everything it supports.
inline void finish_flags(const Flags& flags) {
  const auto unknown = flags.unknown_flags();
  if (!unknown.empty()) {
    std::string message = "unknown flags:";
    for (const auto& name : unknown) {
      message += " --" + name;
    }
    throw InvalidArgument(message);
  }
}

}  // namespace vmcons::bench
