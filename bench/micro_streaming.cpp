// Microbenchmark for the out-of-core streaming sweep: writes a large
// scenario store (the grid is never materialized in memory), streams it
// shard-by-shard through StreamingSweep, and proves the two properties the
// subsystem exists for —
//   * bounded resident memory: the resident high-water delta while
//     streaming stays a small multiple of one shard's working set, not of
//     the store size (reported in MB next to the store size; optionally
//     gated via --max-rss-mb);
//   * lossless kill-and-resume: a run cancelled halfway resumes from the
//     checkpoint manifest and its per-shard result checksums match a clean
//     uninterrupted run exactly.
// Defaults are sized for an idle desktop; pass --scenarios 1000000 for the
// million-scenario configuration of the acceptance criteria. Emits
// BENCH_streaming.json. Not a paper figure; performance hygiene for the
// out-of-core sweep path.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "core/scenario_store.hpp"
#include "core/streaming_sweep.hpp"
#include "core/sweep.hpp"
#include "util/run_control.hpp"

namespace vmcons::bench {
namespace {

using Clock = std::chrono::steady_clock;

double since_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Peak resident set (VmHWM) in KiB from /proc/self/status; 0 where the
/// proc interface is unavailable (the bounded-memory report is then
/// skipped, not failed).
std::size_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

int run(int argc, const char** argv) {
  Flags flags(argc, argv);
  const auto scenarios =
      static_cast<std::size_t>(flags.get_int("scenarios", 100000));
  const auto shard_size =
      static_cast<std::size_t>(flags.get_int("shard", 4096));
  const auto dedicated =
      static_cast<std::uint64_t>(flags.get_int("servers", 2000));
  // Resident high-water gate in MB for the streaming phase; 0 reports only.
  const double max_rss_mb = flags.get_double("max-rss-mb", 0.0);
  const std::string json_path =
      flags.get_string("json", "BENCH_streaming.json");
  const std::string git_rev = flags.get_string("git-rev", "unknown");
  const std::string store_path =
      flags.get_string("store", "micro_streaming.store");
  finish_flags(flags);

  banner("micro_streaming: out-of-core sweep with checkpoint/resume",
         "library performance hygiene (no paper figure)");

  // Grid: one distinct log-spaced loss per 4 cells, crossed with 2 VM
  // densities and 2 workload scales — the loss axis dominates, so shards
  // mix repeated offered loads (kernel-friendly) with fresh targets.
  const std::size_t losses_n = std::max<std::size_t>(1, scenarios / 4);
  std::vector<double> losses(losses_n);
  for (std::size_t i = 0; i < losses_n; ++i) {
    const double t = losses_n == 1 ? 0.0
                                   : static_cast<double>(i) /
                                         static_cast<double>(losses_n - 1);
    losses[i] = 0.05 * std::pow(1e-4 / 0.05, t);
  }
  core::SweepGrid grid;
  grid.target_losses(std::move(losses))
      .vms_per_server({2, 3})
      .workload_scales({0.9, 1.1});

  const core::ModelInputs base = case_study_inputs(dedicated);
  core::ConsolidationPlanner planner;
  planner.set_target_loss(base.target_loss);
  for (const auto& service : base.services) {
    planner.add_service(service);
  }

  const std::string manifest_path = store_path + ".manifest.csv";
  std::remove(store_path.c_str());
  std::remove(manifest_path.c_str());

  // Phase 1: enumerate the grid straight to disk, one shard in RAM.
  const auto write_start = Clock::now();
  const auto summary =
      core::write_sweep_store(planner, grid, store_path, shard_size);
  const double write_ms = since_ms(write_start);
  const auto store_bytes = std::filesystem::file_size(store_path);
  const double store_mb = static_cast<double>(store_bytes) / (1024.0 * 1024.0);
  std::cout << "store: " << summary.scenarios << " scenarios in "
            << summary.shards << " shards of " << shard_size << " ("
            << AsciiTable::format(store_mb, 1) << " MB, written in "
            << AsciiTable::format(write_ms, 0) << " ms)\n";

  const core::ScenarioStore store(store_path);
  const double rss_before_mb =
      static_cast<double>(peak_rss_kb()) / 1024.0;

  // Phase 2: clean streaming run. The sink drops each shard's results after
  // recording its checksum, so the working set is one shard end-to-end.
  core::StreamingSweepOptions clean_options;
  const auto stream_start = Clock::now();
  const core::StreamingSweepReport clean =
      core::StreamingSweep(clean_options)
          .run(store, [](core::ShardOutcome&&) {});
  const double stream_ms = since_ms(stream_start);
  const double rss_after_mb = static_cast<double>(peak_rss_kb()) / 1024.0;
  const double rss_delta_mb = rss_after_mb - rss_before_mb;
  if (!clean.complete()) {
    std::cerr << "FAIL: clean streaming run did not complete\n";
    return EXIT_FAILURE;
  }
  const double plans_per_sec =
      static_cast<double>(clean.scenarios_evaluated) / stream_ms * 1000.0;
  std::cout << "stream: " << clean.scenarios_evaluated << " plans in "
            << AsciiTable::format(stream_ms, 0) << " ms ("
            << AsciiTable::format(plans_per_sec, 0) << " plans/s)\n";
  if (rss_after_mb > 0.0) {
    std::cout << "resident high-water while streaming: +"
              << AsciiTable::format(rss_delta_mb, 1) << " MB over a "
              << AsciiTable::format(store_mb, 1)
              << " MB store (bounded working set)\n";
  }

  // Phase 3: kill-and-resume. Cancel halfway through, resume from the
  // manifest, and require checksum-for-checksum identity with the clean run.
  const std::size_t kill_after = std::max<std::size_t>(1, clean.shards_total / 2);
  core::StreamingSweepOptions kill_options;
  kill_options.checkpoint_path = manifest_path;
  CancelToken token = kill_options.batch.control.token;
  std::size_t delivered = 0;
  const auto kill_start = Clock::now();
  const core::StreamingSweepReport killed =
      core::StreamingSweep(kill_options)
          .run(store, [&](core::ShardOutcome&&) {
            if (++delivered == kill_after) {
              token.cancel();
            }
          });
  const double kill_ms = since_ms(kill_start);
  if (!killed.cancelled || killed.shards_completed != kill_after) {
    std::cerr << "FAIL: cancelled run committed " << killed.shards_completed
              << " shards, expected " << kill_after << "\n";
    return EXIT_FAILURE;
  }

  core::StreamingSweepOptions resume_options;
  resume_options.checkpoint_path = manifest_path;
  const auto resume_start = Clock::now();
  const core::StreamingSweepReport resumed =
      core::StreamingSweep(resume_options)
          .run(store, [](core::ShardOutcome&&) {});
  const double resume_ms = since_ms(resume_start);
  if (!resumed.complete() || resumed.shards_resumed != kill_after) {
    std::cerr << "FAIL: resume skipped " << resumed.shards_resumed
              << " shards, expected " << kill_after << "\n";
    return EXIT_FAILURE;
  }
  if (resumed.shard_checksums != clean.shard_checksums) {
    std::cerr << "FAIL: resumed run's shard checksums diverged from the "
                 "clean run\n";
    return EXIT_FAILURE;
  }
  std::cout << "kill/resume: cancelled after " << kill_after << "/"
            << clean.shards_total << " shards ("
            << AsciiTable::format(kill_ms, 0) << " ms), resumed the rest in "
            << AsciiTable::format(resume_ms, 0)
            << " ms; all shard checksums identical to the clean run\n";

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::ostringstream json;
  json.precision(6);
  json << std::fixed << "{\n";
  json << "  \"header\": {\"git_rev\": \"" << git_rev
       << "\", \"scenarios\": " << summary.scenarios
       << ", \"shard_size\": " << shard_size
       << ", \"shards\": " << summary.shards
       << ", \"store_mb\": " << store_mb
       << ", \"detected_cores\": " << hardware << "},\n";
  json << "  \"write\": {\"ms_total\": " << write_ms << "},\n";
  json << "  \"stream\": {\"ms_total\": " << stream_ms
       << ", \"plans_per_sec\": " << plans_per_sec
       << ", \"rss_high_water_delta_mb\": " << rss_delta_mb << "},\n";
  json << "  \"resume\": {\"killed_after_shards\": " << kill_after
       << ", \"resume_ms\": " << resume_ms
       << ", \"checksums_identical\": true}\n";
  json << "}\n";
  std::ofstream out(json_path);
  out << json.str();
  out.close();
  std::cout << "\nwrote " << json_path << "\n";

  std::remove(store_path.c_str());
  std::remove(manifest_path.c_str());

  if (max_rss_mb > 0.0 && rss_after_mb > 0.0 && rss_delta_mb > max_rss_mb) {
    std::cerr << "FAIL: streaming resident high-water delta "
              << AsciiTable::format(rss_delta_mb, 1) << " MB exceeds --max-rss-mb "
              << AsciiTable::format(max_rss_mb, 1) << " MB\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

}  // namespace
}  // namespace vmcons::bench

int main(int argc, const char** argv) {
  try {
    return vmcons::bench::run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return EXIT_FAILURE;
  }
}
