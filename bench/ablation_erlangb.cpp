// Ablation: the Erlang-B recurrence versus the naive factorial formula.
//
// Design-choice justification for queueing/erlang.cpp: the textbook
// factorial form overflows double around rho ~ 170 (170! > DBL_MAX), while
// the recurrence is exact at any load. This bench shows where the naive
// form dies and that the recurrence matches it wherever both are finite,
// plus a timing comparison of the two and of the inverse solver.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "queueing/erlang.hpp"

namespace {

/// The naive factorial-form Erlang-B; returns NaN on overflow.
double erlang_b_naive(std::uint64_t servers, double rho) {
  double numerator = 1.0;     // rho^n / n!
  double denominator = 1.0;   // sum_k rho^k / k!
  for (std::uint64_t k = 1; k <= servers; ++k) {
    numerator *= rho / static_cast<double>(k);
    denominator += numerator;
  }
  if (!std::isfinite(numerator) || !std::isfinite(denominator)) {
    return std::nan("");
  }
  return numerator / denominator;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  bench::finish_flags(flags);

  bench::banner("Ablation -- Erlang-B recurrence vs naive factorial form",
                "design choice behind Eq. (2) / Fig. 4 of the paper");

  AsciiTable table;
  table.set_header({"rho", "n", "recurrence", "naive", "abs diff"});
  for (const double rho : {1.0, 10.0, 100.0, 500.0, 1000.0, 5000.0, 1e5}) {
    const auto n = static_cast<std::uint64_t>(rho + 3.0 * std::sqrt(rho) + 4);
    const double stable = queueing::erlang_b(n, rho);
    const double naive = erlang_b_naive(n, rho);
    table.add_row({AsciiTable::format(rho, 0), std::to_string(n),
                   AsciiTable::format(stable, 8),
                   std::isnan(naive) ? "overflow/NaN"
                                     : AsciiTable::format(naive, 8),
                   std::isnan(naive)
                       ? "-"
                       : AsciiTable::format(std::abs(stable - naive), 10)});
  }
  table.print(std::cout, "accuracy and overflow behaviour");

  // Timing: recurrence evaluation and inverse staffing solve.
  auto time_us = [](auto&& fn, int iterations) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      fn(i);
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() /
           iterations;
  };

  volatile double sink = 0.0;
  const double eval_us = time_us(
      [&](int i) { sink = queueing::erlang_b(1000 + i % 7, 950.0); }, 2000);
  const double solve_us = time_us(
      [&](int i) {
        sink = static_cast<double>(
            queueing::erlang_b_servers(950.0 + i % 7, 0.01));
      },
      2000);
  (void)sink;

  std::cout << '\n';
  print_kv(std::cout, "erlang_b(1000, 950) mean time (us)", eval_us, 2);
  print_kv(std::cout, "erlang_b_servers(950, 1%) mean time (us)", solve_us, 2);
  std::cout << "\nconclusion: the recurrence is exact where the naive form "
               "overflows (rho >= ~170 at square-root staffing) and solves "
               "planet-scale staffing problems in microseconds.\n";
  return 0;
}
