// Figure 5: Web service under a disk-I/O-bound httperf sweep.
//
// (a) throughput (reply rate) vs offered load for native Linux and 1..9
//     co-resident VMs, requests walking a SPECweb2005-sized file set that
//     far exceeds RAM;
// (b) the impact factor per VM count (stable mean throughput / native
//     stable mean) and its linear least-squares fit — the paper reports
//     a(v) = 1.082 - 0.102 v.
#include <iostream>

#include "bench_common.hpp"
#include "stats/regression.hpp"
#include "virt/calibration.hpp"
#include "workload/httperf.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 200.0);
  const long long max_vms = flags.get_int("max-vms", 9);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 5));
  bench::finish_flags(flags);

  bench::banner("Fig. 5 -- Web throughput vs offered load, disk-I/O bound",
                "Song et al., CLUSTER 2009, Figure 5(a)(b)");

  // Offered rates span below and beyond the native knee (420 req/s),
  // mirroring the paper's 100..1200 req/s axis.
  std::vector<double> rates;
  for (double rate = 100.0; rate <= 1200.0; rate += 100.0) {
    rates.push_back(rate);
  }
  const double saturation_from = 700.0;  // the paper's stable region

  // --- (a) throughput curves ---------------------------------------------
  AsciiTable curves;
  std::vector<std::string> header{"offered"};
  std::vector<virt::ThroughputCurve> vm_curves;
  virt::ThroughputCurve native_curve;

  std::vector<std::vector<double>> columns;
  header.push_back("native");
  {
    workload::HttperfConfig config = workload::specweb_diskio_config(0);
    config.duration = duration;
    const auto points = workload::httperf_sweep(config, rates, seed);
    native_curve.vm_count = 0;
    std::vector<double> column;
    for (const auto& point : points) {
      native_curve.offered.push_back(point.offered_rate);
      native_curve.throughput.push_back(point.reply_rate);
      column.push_back(point.reply_rate);
    }
    columns.push_back(std::move(column));
  }
  for (unsigned vms = 1; vms <= static_cast<unsigned>(max_vms); ++vms) {
    header.push_back(std::to_string(vms) + "vm");
    workload::HttperfConfig config = workload::specweb_diskio_config(vms);
    config.duration = duration;
    const auto points = workload::httperf_sweep(config, rates, seed + vms);
    virt::ThroughputCurve curve;
    curve.vm_count = vms;
    std::vector<double> column;
    for (const auto& point : points) {
      curve.offered.push_back(point.offered_rate);
      curve.throughput.push_back(point.reply_rate);
      column.push_back(point.reply_rate);
    }
    vm_curves.push_back(std::move(curve));
    columns.push_back(std::move(column));
  }

  curves.set_header(header);
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<double> row;
    for (const auto& column : columns) {
      row.push_back(column[r]);
    }
    curves.add_numeric_row(AsciiTable::format(rates[r], 0), row, 1);
  }
  curves.print(std::cout, "(a) reply rate [req/s] per offered rate [req/s]");

  // --- (b) impact factors + linear fit ------------------------------------
  const auto samples =
      virt::impact_factors(native_curve, vm_curves, saturation_from);
  AsciiTable impact_table;
  impact_table.set_header({"vms", "impact a(v)", "encoded curve"});
  for (const auto& sample : samples) {
    impact_table.add_row(
        {std::to_string(sample.vm_count), AsciiTable::format(sample.factor, 3),
         AsciiTable::format(
             virt::Impact::paper_web_disk_io().raw_factor(sample.vm_count),
             3)});
  }
  impact_table.print(std::cout, "\n(b) impact factor of disk I/O per VM count");

  const LinearFit fit = virt::calibrate_linear(samples);
  std::cout << "\nlinear fit: a(v) = " << AsciiTable::format(fit.intercept, 3)
            << " + (" << AsciiTable::format(fit.slope, 3) << ") v,  R^2 = "
            << AsciiTable::format(fit.r_squared, 4) << '\n';
  std::cout << "paper:      a(v) = 1.082 - 0.102 v\n";
  return 0;
}
