// Microbenchmark for the slot-map event calendar: schedule/fire and
// schedule/cancel throughput vs a replica of the pre-slot-map engine
// (std::function closures + binary heap + two unordered_sets with lazy
// cancellation), a steady-state allocation audit, full pool simulations
// (serial and via sim::replicate), and the parallel_for grain ablation.
//
// Emits a human-readable table and machine-readable JSON
// (BENCH_engine.json: benchmark name -> {events_per_sec, ns_per_event,
// allocs_per_event}) so subsequent PRs have a perf trajectory to regress
// against. Not a paper figure; performance hygiene for the simulation
// substrate. scripts/bench.sh refreshes the JSON at the repo root;
// scripts/tier1.sh runs a 1-second smoke invocation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "datacenter/pool_sim.hpp"
#include "legacy_engine.hpp"
#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "util/ascii_table.hpp"
#include "util/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary is counted,
// so allocs_per_event reports *real* heap traffic (closures, heap growth,
// std::function fallbacks), not a proxy.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vmcons::bench {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Workloads (templated over the engine so both calendars run byte-identical
// event streams)
// ---------------------------------------------------------------------------

/// Per-chain state for the self-rescheduling fire workload.
template <typename EngineT>
struct FireChains {
  EngineT* engine = nullptr;
  std::uint64_t remaining = 0;
};

/// The representative closure: this-pointer + an index + a counter + a
/// double, the shape pool_sim/loss_network/tandem schedule on every
/// departure. 32 bytes of capture — over std::function's 16-byte inline
/// buffer, comfortably inside InlineEvent's 48. Each chain reschedules
/// itself a fixed delay ahead; the per-chain phase offsets set at seeding
/// keep the chains interleaved, so every fire pops the heap top and pushes
/// a new bottom entry.
template <typename EngineT>
struct FireEvent {
  FireChains<EngineT>* chains;
  std::size_t server;
  std::uint64_t hops;
  double arrival_time;

  void operator()() {
    if (chains->remaining > 0) {
      --chains->remaining;
      chains->engine->schedule_in(
          1.0, FireEvent{chains, server ^ 1, hops + 1, arrival_time + 1.0});
    }
  }
};

/// Runs `events` events through `concurrency` interleaved self-rescheduling
/// chains. Returns wall nanoseconds.
template <typename EngineT>
double fire_workload(EngineT& engine, std::uint64_t events,
                     unsigned concurrency) {
  FireChains<EngineT> chains{&engine, events};
  const auto start = Clock::now();
  for (unsigned c = 0; c < concurrency; ++c) {
    engine.schedule_in(
        1.0 + 0.001 * c,
        FireEvent<EngineT>{&chains, c, 0, 0.0});
  }
  engine.run();
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// Schedules a far-future timeout and cancels it, `pairs` times — the
/// timeout-wheel pattern (TPC-W think-time timeouts, abandoned retries).
template <typename EngineT>
double cancel_workload(EngineT& engine, std::uint64_t pairs) {
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto id = engine.schedule_at(
        1e12 + static_cast<double>(i),
        FireEvent<EngineT>{nullptr, 0, 0, 0.0});
    if (!engine.cancel(id)) {
      std::abort();  // the bench is wrong, not slow
    }
  }
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

struct Measurement {
  double events_per_sec = 0.0;
  double ns_per_event = 0.0;
  double allocs_per_event = 0.0;
  std::uint64_t events = 0;
  std::uint64_t allocations = 0;
};

Measurement finish(std::uint64_t events, double nanos, std::uint64_t allocs) {
  Measurement m;
  m.events = events;
  m.allocations = allocs;
  m.ns_per_event = nanos / static_cast<double>(events);
  m.events_per_sec = 1e9 * static_cast<double>(events) / nanos;
  m.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(events);
  return m;
}

Measurement measure(std::uint64_t events, const std::function<double()>& fn) {
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const double nanos = fn();
  return finish(events, nanos,
                g_allocations.load(std::memory_order_relaxed) - allocs_before);
}

/// Best-of-N fire runs (fresh engine each), reporting the fastest. The
/// minimum is the standard de-noising estimator for a time-shared box:
/// interference only ever adds time.
template <typename EngineT>
Measurement best_fire(std::uint64_t events, unsigned chains, unsigned reps) {
  Measurement best;
  for (unsigned rep = 0; rep < reps; ++rep) {
    EngineT engine;
    const Measurement m = measure(
        events, [&] { return fire_workload(engine, events, chains); });
    if (rep == 0 || m.ns_per_event < best.ns_per_event) {
      best = m;
    }
  }
  return best;
}

std::string format_rate(double events_per_sec) {
  return AsciiTable::format(events_per_sec / 1e6, 2) + "M/s";
}

int run(int argc, const char** argv) {
  Flags flags(argc, argv);
  const auto events = static_cast<std::uint64_t>(
      flags.get_int("events", 2'000'000));
  const auto cancel_pairs = static_cast<std::uint64_t>(
      flags.get_int("cancels", 1'000'000));
  const auto replications =
      static_cast<std::size_t>(flags.get_int("reps", 16));
  const auto chains = static_cast<unsigned>(flags.get_int("chains", 16));
  const auto fire_reps =
      static_cast<unsigned>(flags.get_int("fire-reps", 5));
  const double pool_horizon = flags.get_double("horizon", 200.0);
  const double min_speedup = flags.get_double("min-speedup", 3.0);
  const std::string json_path =
      flags.get_string("json", "BENCH_engine.json");
  finish_flags(flags);

  banner("micro_engine: slot-map calendar vs legacy hash-set calendar",
         "library performance hygiene (no paper figure)");

  std::vector<std::pair<std::string, Measurement>> results;

  // -- schedule/fire throughput ------------------------------------------
  // `chains` concurrent self-rescheduling timers = the pending-event
  // population the calendar carries; the default 16 matches the paper's
  // pool simulations (one departure timer per busy server in a pool of
  // 10-70 servers — a few dozen outstanding events).
  Measurement legacy_fire;
  Measurement engine_fire;
  {
    legacy_fire = best_fire<LegacyEngine>(events, chains, fire_reps);
    results.emplace_back("legacy.schedule_fire", legacy_fire);
  }
  {
    engine_fire = best_fire<sim::Engine>(events, chains, fire_reps);
    results.emplace_back("engine.schedule_fire", engine_fire);
  }

  // -- steady-state allocation audit -------------------------------------
  // Warm one engine past its high-water mark, then require a measured
  // window to perform *zero* allocations.
  Measurement steady;
  {
    sim::Engine engine;
    fire_workload(engine, events / 4 + 1024, chains);  // warm-up
    steady = measure(events / 2,
                     [&] { return fire_workload(engine, events / 2, chains); });
    results.emplace_back("engine.steady_state_fire", steady);
  }

  // -- schedule/cancel throughput ----------------------------------------
  Measurement legacy_cancel;
  Measurement engine_cancel;
  {
    LegacyEngine legacy;
    legacy_cancel = measure(cancel_pairs,
                            [&] { return cancel_workload(legacy, cancel_pairs); });
    results.emplace_back("legacy.schedule_cancel", legacy_cancel);
  }
  {
    sim::Engine engine;
    engine_cancel = measure(cancel_pairs,
                            [&] { return cancel_workload(engine, cancel_pairs); });
    results.emplace_back("engine.schedule_cancel", engine_cancel);
  }

  // -- full pool simulation, serial and replicated ------------------------
  dc::PoolConfig config;
  config.arrival_rates = {130.0, 30.0};
  config.service_rates = {336.0, 90.0};
  config.servers = 3;
  config.slots_per_server = 4;
  config.queue_capacity = 8;
  config.horizon = pool_horizon;
  config.warmup = pool_horizon / 10.0;

  auto& events_counter = metrics::registry().counter("engine.events");
  {
    Rng rng(7);
    const std::uint64_t counted_before = events_counter.value();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    const double loss = dc::simulate_pool(config, rng).overall_loss();
    const double nanos =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    const std::uint64_t sim_events = events_counter.value() - counted_before;
    results.emplace_back("pool_sim.serial", finish(sim_events, nanos, allocs));
    std::cout << "pool_sim.serial: " << sim_events << " events, loss "
              << AsciiTable::format(loss, 4) << "\n";
  }
  {
    const std::uint64_t counted_before = events_counter.value();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const auto start = Clock::now();
    const auto outcomes =
        sim::replicate(replications, 7, [&](std::size_t, Rng& rng) {
          return dc::simulate_pool(config, rng).overall_loss();
        });
    const double nanos =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    const std::uint64_t sim_events = events_counter.value() - counted_before;
    results.emplace_back("pool_sim.replicate",
                         finish(sim_events, nanos, allocs));
    std::cout << "pool_sim.replicate: " << outcomes.size()
              << " replications, " << sim_events << " events\n\n";
  }

  // -- parallel_for grain ablation ----------------------------------------
  // A tiny per-item body (per-replication postprocessing shape): grain=1
  // pays one pool dispatch per index, auto chunking amortizes it.
  {
    const std::size_t items = 200'000;
    std::vector<double> sink(items, 0.0);
    const auto body = [&](std::size_t i) {
      sink[i] = std::sqrt(static_cast<double>(i) + 1.0);
    };
    const auto timed = [&](std::size_t grain) {
      const auto start = Clock::now();
      parallel_for(items, body, ThreadPool::shared(), grain);
      return std::chrono::duration<double, std::nano>(Clock::now() - start)
          .count();
    };
    timed(0);  // warm the pool
    results.emplace_back("parallel_for.grain_1",
                         measure(items, [&] { return timed(1); }));
    results.emplace_back("parallel_for.grain_auto",
                         measure(items, [&] { return timed(0); }));
  }

  // -- report --------------------------------------------------------------
  AsciiTable table;
  table.set_header(
      {"benchmark", "events/s", "ns/event", "allocs/event", "events"});
  for (const auto& [name, m] : results) {
    table.add_row({name, format_rate(m.events_per_sec),
                   AsciiTable::format(m.ns_per_event, 1),
                   AsciiTable::format(m.allocs_per_event, 3),
                   std::to_string(m.events)});
  }
  table.print(std::cout, "event-calendar throughput");

  const double fire_speedup =
      engine_fire.events_per_sec / legacy_fire.events_per_sec;
  const double cancel_speedup =
      engine_cancel.events_per_sec / legacy_cancel.events_per_sec;
  std::cout << "\nschedule/fire speedup vs legacy calendar:   "
            << AsciiTable::format(fire_speedup, 2) << "x\n"
            << "schedule/cancel speedup vs legacy calendar: "
            << AsciiTable::format(cancel_speedup, 2) << "x\n"
            << "steady-state allocations per event:         "
            << steady.allocations << " over " << steady.events
            << " events\n";

  std::ofstream json(json_path);
  json << "{\n";
  bool first = true;
  for (const auto& [name, m] : results) {
    if (!first) {
      json << ",\n";
    }
    first = false;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "  \"%s\": {\"events_per_sec\": %.1f, "
                  "\"ns_per_event\": %.3f, \"allocs_per_event\": %.6f}",
                  name.c_str(), m.events_per_sec, m.ns_per_event,
                  m.allocs_per_event);
    json << row;
  }
  json << "\n}\n";
  json.close();
  std::cout << "\nwrote " << json_path << "\n";

  bool ok = true;
  if (steady.allocations != 0) {
    std::cout << "FAIL: steady-state fire loop allocated\n";
    ok = false;
  }
  if (fire_speedup < min_speedup) {
    std::cout << "FAIL: schedule/fire speedup "
              << AsciiTable::format(fire_speedup, 2) << "x below target "
              << AsciiTable::format(min_speedup, 2) << "x\n";
    ok = false;
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace
}  // namespace vmcons::bench

int main(int argc, const char** argv) {
  try {
    return vmcons::bench::run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return EXIT_FAILURE;
  }
}
