// Figure 10: experiment group 1 — six dedicated servers consolidate to
// N in {2, 3, 4} shared servers.
//
// The paper's bar chart shows DB and Web service performance on 3 dedicated
// + 3 dedicated servers versus 2/3/4 consolidated servers; the 2-server
// configuration fails ("too many workloads for servers to afford") and the
// 3-server configuration matches the dedicated performance — validating the
// model's N = 3.
#include <iostream>

#include "bench_common.hpp"
#include "core/validation.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 1500.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Fig. 10 -- group 1: 6 dedicated vs N consolidated servers",
                "Song et al., CLUSTER 2009, Figure 10");

  const core::ModelInputs inputs = bench::case_study_inputs(3);
  core::UtilityAnalyticModel model(inputs);
  const core::ModelResult plan = model.solve();
  std::cout << "model: M = " << plan.dedicated_servers
            << " (3 web + 3 db), N = " << plan.consolidated_servers << "\n\n";

  core::ValidationOptions options;
  options.replications = static_cast<std::size_t>(replications);
  options.scenario.horizon = horizon;
  options.scenario.warmup = horizon * 0.1;

  const auto dedicated =
      core::measure_dedicated(inputs.services, {3, 3}, options);

  AsciiTable table;
  table.set_header({"deployment", "web tput (req/s)", "web loss",
                    "db tput (req/s)", "db loss", "meets QoS"});
  auto add_row = [&](const std::string& name,
                     const core::DeploymentMeasurement& m) {
    const double web_loss = m.per_service_loss[0].summary.mean();
    const double db_loss = m.per_service_loss[1].summary.mean();
    const bool ok = web_loss <= 0.03 && db_loss <= 0.03;
    table.add_row({name,
                   AsciiTable::format(m.per_service_throughput[0].summary.mean(), 1),
                   AsciiTable::format(web_loss, 4),
                   AsciiTable::format(m.per_service_throughput[1].summary.mean(), 1),
                   AsciiTable::format(db_loss, 4), ok ? "yes" : "NO"});
  };

  add_row("6 dedicated (3+3)", dedicated);
  for (const unsigned n : {2u, 3u, 4u}) {
    const auto consolidated =
        core::measure_consolidated(inputs.services, n, options);
    add_row(std::to_string(n) + " consolidated", consolidated);
  }
  table.print(std::cout);

  std::cout << "\nshape check: 2 consolidated servers fail (loss far above "
               "the 1% target), 3 match the dedicated deployment (the "
               "model's N), 4 add headroom -- the paper's conclusion that "
               "six dedicated servers consolidate to three.\n";
  return 0;
}
