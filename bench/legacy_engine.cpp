// Out-of-line definitions for the legacy-calendar bench baseline; see
// legacy_engine.hpp for why this is a separate translation unit.
#include "legacy_engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace vmcons::bench {

LegacyEngine::EventId LegacyEngine::schedule_at(double when, EventFn fn) {
  VMCONS_REQUIRE(when >= now_, "cannot schedule an event in the past");
  const EventId id = next_sequence_++;
  queue_.push_back(Event{when, id, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  live_.insert(id);
  return id;
}

LegacyEngine::EventId LegacyEngine::schedule_in(double delay, EventFn fn) {
  VMCONS_REQUIRE(delay >= 0.0, "event delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

bool LegacyEngine::cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;
  }
  cancelled_.insert(id);
  if (cancelled_.size() >= 16 && cancelled_.size() > live_.size()) {
    compact();
  }
  return true;
}

void LegacyEngine::compact() {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const Event& event) {
                                return cancelled_.count(event.sequence) > 0;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  cancelled_.clear();
}

bool LegacyEngine::step(double limit) {
  while (!queue_.empty() && queue_.front().time <= limit) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event event = std::move(queue_.back());
    queue_.pop_back();
    if (const auto it = cancelled_.find(event.sequence);
        it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(event.sequence);
    now_ = event.time;
    event.fn();
    return true;
  }
  return false;
}

void LegacyEngine::run() {
  while (step(std::numeric_limits<double>::infinity())) {
  }
}

}  // namespace vmcons::bench
