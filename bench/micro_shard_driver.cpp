// Microbenchmark: multi-process sharded sweep driver vs 1-process streaming.
//
// Builds a scenario store, runs a 1-process StreamingSweep as the reference
// (serial inside, like a production worker), then for each worker count
// forks that many worker processes over a fresh claim ledger, waits, and
// merges — verifying on every configuration that the merged per-shard
// result digests are bit-identical to the reference before any number is
// recorded. Writes BENCH_shard.json.
//
// Process parallelism is the whole point, so rows where the worker count
// exceeds the machine's cores are recorded but marked "unreliable": true
// (oversubscribed processes time-slice one core and measure the scheduler,
// not the driver). The --min-2worker-speedup gate is likewise skipped, with
// a notice, on machines with fewer than 2 cores.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/scenario_store.hpp"
#include "core/sharded_sweep.hpp"
#include "core/streaming_sweep.hpp"
#include "core/sweep.hpp"
#include "util/ascii_table.hpp"

namespace {

using namespace vmcons;
using Clock = std::chrono::steady_clock;

double run_millis(const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double best_of(int reps, const std::function<void()>& fn) {
  double best = run_millis(fn);
  for (int r = 1; r < reps; ++r) {
    best = std::min(best, run_millis(fn));
  }
  return best;
}

/// best_of, but keeps iterating (beyond `reps`, up to a cap) until the
/// accumulated measurement time reaches `min_total_ms`. The default grid's
/// streaming run is well under a millisecond, where a best-of-3 jitters by
/// double-digit percent; the rows gated at single-digit percent
/// (--max-fs-overhead-pct) need the minimum of a few hundred samples to be
/// a stable statistic.
double best_of_at_least(int reps, double min_total_ms,
                        const std::function<void()>& fn) {
  constexpr int kMaxIterations = 2000;
  double best = run_millis(fn);
  double total = best;
  int iterations = 1;
  while ((iterations < reps || total < min_total_ms) &&
         iterations < kMaxIterations) {
    const double ms = run_millis(fn);
    best = std::min(best, ms);
    total += ms;
    ++iterations;
  }
  return best;
}

/// First number following `"key": ` in a JSON blob (the flat files this
/// tool writes itself).
bool find_json_number(const std::string& text, const std::string& key,
                      double& out, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = text.find(needle, from);
  if (pos == std::string::npos) {
    return false;
  }
  out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

core::ConsolidationPlanner bench_planner() {
  core::ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = 120.0;
  db.arrival_rate = 60.0;
  planner.add_service(web);
  planner.add_service(db);
  return planner;
}

/// Forks `workers` children, each claiming shards of `store_path` through
/// `ledger`, and waits for every one. The parent is single-threaded (every
/// evaluation in this bench runs with parallel=false), so forking is safe.
/// Returns false if any child exited non-zero.
bool fork_fleet(std::size_t workers, const std::string& store_path,
                const std::string& ledger,
                std::chrono::milliseconds lease = std::chrono::seconds(60),
                bool lease_only = false) {
  std::vector<::pid_t> children;
  for (std::size_t w = 0; w < workers; ++w) {
    const ::pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return false;
    }
    if (pid == 0) {
      try {
        core::ShardedSweepOptions options;
        options.batch.parallel = false;
        options.batch.policy = core::FailurePolicy::kQuarantine;
        options.ledger_dir = ledger;
        options.worker_id = "w" + std::to_string(w);
        options.lease = lease;
        options.lease_only = lease_only;
        options.poll = std::chrono::milliseconds(2);
        const core::ScenarioStore store(store_path);
        const core::ShardedSweepDriver driver(std::move(options));
        driver.run_worker(store);
        driver.write_worker_metrics();
      } catch (const std::exception& error) {
        std::fprintf(stderr, "worker: %s\n", error.what());
        ::_exit(1);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  bool ok = true;
  for (const ::pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  return ok;
}

int run(int argc, const char** argv) {
  Flags flags(argc, argv);
  const auto losses_n = static_cast<std::size_t>(flags.get_int("losses", 10));
  const auto scales_n = static_cast<std::size_t>(flags.get_int("scales", 10));
  const auto shard_size =
      static_cast<std::size_t>(flags.get_int("shard", 8));
  const int reps = static_cast<int>(std::max(1ll, flags.get_int("reps", 3)));
  // Require the 2-worker fleet to reach this multiple of the 1-process
  // streaming throughput; 0 disables. Only enforced on >= 2 cores — a
  // 1-core box cannot demonstrate process scaling.
  const double min_2worker = flags.get_double("min-2worker-speedup", 0.0);
  // Regression gate against a previously recorded BENCH_shard.json:
  // streaming_1proc plans/sec must hold >= this multiple of the recording.
  // Skipped with a notice for a different machine or grid.
  const std::string baseline_path =
      flags.get_string("baseline-json", "");
  const double min_baseline = flags.get_double("min-baseline-speedup", 0.0);
  // fs-layer overhead gate: the streaming_1proc row (whose store reads and
  // — in the streaming_ckpt row — checkpoint commits all go through the
  // checked util::fs layer) must stay within this percentage of the
  // recorded baseline's plans/sec; 0 disables. Skipped with a notice on a
  // different machine or grid, like the baseline gate.
  const double max_fs_overhead =
      flags.get_double("max-fs-overhead-pct", 0.0);
  // Lease sweep: re-run the 2-worker fleet in lease-only mode (no dead-pid
  // probe, the shared-filesystem staleness rule) at each of these lease
  // values, recording how the lease knob affects a healthy fleet (it
  // should not: leases only matter when a worker dies).
  const std::string lease_sweep =
      flags.get_string("lease-sweep-ms", "250,2000,30000");
  const std::string json_path = flags.get_string("json", "BENCH_shard.json");
  const std::string store_path =
      flags.get_string("store", "build/bench/micro_shard.store");
  const std::string git_rev = flags.get_string("git-rev", "unknown");
  bench::finish_flags(flags);

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const auto unreliable = [&](std::size_t workers) {
    return workers > hardware;
  };

  bench::banner("micro_shard_driver: multi-process sharded sweep",
                "scale-out driver over the Section V what-if grids");

  core::SweepGrid grid;
  std::vector<double> losses(losses_n), scales(scales_n);
  for (std::size_t i = 0; i < losses_n; ++i) {
    losses[i] = 0.002 + 0.001 * static_cast<double>(i);
  }
  for (std::size_t i = 0; i < scales_n; ++i) {
    scales[i] = 0.8 + 0.05 * static_cast<double>(i);
  }
  grid.target_losses(losses).vms_per_server({2, 3}).workload_scales(scales);

  const core::ConsolidationPlanner planner = bench_planner();
  const auto summary =
      core::write_sweep_store(planner, grid, store_path, shard_size);
  const core::ScenarioStore store(store_path);
  const double scenarios = static_cast<double>(store.scenario_count());
  std::cout << summary.scenarios << " scenarios in " << summary.shards
            << " shards of " << shard_size << ", store "
            << store_path << "\n";
  std::cout << "detected cores: " << hardware << "\n\n";

  // Reference: 1-process streaming sweep, serial evaluation (a production
  // worker's shape), no checkpoint. Also the bit-identity oracle below.
  core::StreamingSweepOptions streaming_options;
  streaming_options.batch.parallel = false;
  streaming_options.batch.policy = core::FailurePolicy::kQuarantine;
  const core::StreamingSweep streaming(streaming_options);
  core::StreamingSweepReport reference;
  const double streaming_ms =
      best_of_at_least(reps, 150.0, [&] { reference = streaming.run(store); });
  if (!reference.complete()) {
    std::cerr << "FAIL: reference streaming sweep did not complete\n";
    return 1;
  }

  // The same sweep with a checkpoint manifest: every shard row is a durable
  // commit point (write + fsync through util::fs). The delta against the
  // uncheckpointed run is the fs layer's end-to-end durability overhead.
  const std::string manifest_path = store_path + ".bench.manifest";
  core::StreamingSweepOptions ckpt_options = streaming_options;
  ckpt_options.checkpoint_path = manifest_path;
  const core::StreamingSweep streaming_ckpt(ckpt_options);
  core::StreamingSweepReport ckpt_report;
  const double ckpt_ms = best_of_at_least(reps, 150.0, [&] {
    std::remove(manifest_path.c_str());  // fresh run, no resume
    ckpt_report = streaming_ckpt.run(store);
  });
  std::remove(manifest_path.c_str());
  if (ckpt_report.shard_checksums != reference.shard_checksums) {
    std::cerr << "FAIL: checkpointed streaming sweep is not bit-identical\n";
    return 1;
  }
  const double ckpt_overhead_pct =
      (ckpt_ms - streaming_ms) / streaming_ms * 100.0;

  struct Row {
    std::size_t workers = 0;
    double worker_ms = 0.0;
    double merge_ms = 0.0;
  };
  std::vector<Row> rows;
  const std::string ledger_base = store_path + ".ledger";
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    Row row;
    row.workers = workers;
    double merge_ms_best = 0.0;
    row.worker_ms = best_of(reps, [&] {
      std::error_code ec;
      std::filesystem::remove_all(ledger_base, ec);
      if (!fork_fleet(workers, store_path, ledger_base)) {
        throw IoError("a worker process failed");
      }
    });
    // The fleet of the *last* rep left its ledger behind; merge and verify
    // bit-identity against the streaming reference before recording.
    core::ShardedSweepOptions merge_options;
    merge_options.batch.parallel = false;
    merge_options.ledger_dir = ledger_base;
    merge_options.worker_id = "merger";
    const core::ShardedSweepDriver merger(merge_options);
    core::MergedSweep merged;
    merge_ms_best = run_millis([&] { merged = merger.merge(store); });
    if (merged.report.shard_checksums != reference.shard_checksums ||
        merged.report.scenarios_evaluated != reference.scenarios_evaluated) {
      std::cerr << "FAIL: " << workers << "-worker merge is not "
                << "bit-identical to the 1-process streaming sweep\n";
      return 1;
    }
    row.merge_ms = merge_ms_best;
    rows.push_back(row);
    std::error_code ec;
    std::filesystem::remove_all(ledger_base, ec);
  }

  // Lease sweep: a healthy 2-worker lease-only fleet at each lease value.
  // Staleness here is judged purely by lease expiry (the shared-filesystem
  // mode), so these rows catch a regression where short leases make live
  // workers steal each other's unexpired claims (duplicate evaluation) or
  // long leases serialize a healthy fleet.
  struct LeaseRow {
    long lease_ms = 0;
    double ms = 0.0;
  };
  std::vector<LeaseRow> lease_rows;
  {
    std::stringstream values(lease_sweep);
    std::string token;
    while (std::getline(values, token, ',')) {
      const long lease_ms = std::atol(token.c_str());
      if (lease_ms <= 0) {
        continue;
      }
      LeaseRow row;
      row.lease_ms = lease_ms;
      row.ms = best_of(reps, [&] {
        std::error_code ec;
        std::filesystem::remove_all(ledger_base, ec);
        if (!fork_fleet(2, store_path, ledger_base,
                        std::chrono::milliseconds(lease_ms), true)) {
          throw IoError("a lease-sweep worker process failed");
        }
      });
      core::ShardedSweepOptions merge_options;
      merge_options.batch.parallel = false;
      merge_options.ledger_dir = ledger_base;
      merge_options.worker_id = "merger";
      merge_options.lease_only = true;
      const core::ShardedSweepDriver merger(merge_options);
      const core::MergedSweep merged = merger.merge(store);
      if (merged.report.shard_checksums != reference.shard_checksums) {
        std::cerr << "FAIL: lease-only fleet (lease " << lease_ms
                  << " ms) merge is not bit-identical\n";
        return 1;
      }
      lease_rows.push_back(row);
      std::error_code ec;
      std::filesystem::remove_all(ledger_base, ec);
    }
  }

  AsciiTable table;
  table.set_header({"configuration", "ms", "plans/sec", "speedup", "note"});
  table.add_row({"streaming_1proc", AsciiTable::format(streaming_ms, 1),
                 AsciiTable::format(scenarios / streaming_ms * 1000.0, 0),
                 "1.00", ""});
  table.add_row({"streaming_ckpt", AsciiTable::format(ckpt_ms, 1),
                 AsciiTable::format(scenarios / ckpt_ms * 1000.0, 0),
                 AsciiTable::format(streaming_ms / ckpt_ms, 2),
                 "fsync/shard, +" +
                     AsciiTable::format(ckpt_overhead_pct, 1) + "%"});
  for (const Row& row : rows) {
    table.add_row(
        {"workers_" + std::to_string(row.workers),
         AsciiTable::format(row.worker_ms, 1),
         AsciiTable::format(scenarios / row.worker_ms * 1000.0, 0),
         AsciiTable::format(streaming_ms / row.worker_ms, 2),
         unreliable(row.workers) ? "unreliable (workers > cores)" : ""});
  }
  for (const LeaseRow& row : lease_rows) {
    table.add_row({"lease_only_2w_" + std::to_string(row.lease_ms) + "ms",
                   AsciiTable::format(row.ms, 1),
                   AsciiTable::format(scenarios / row.ms * 1000.0, 0),
                   AsciiTable::format(streaming_ms / row.ms, 2),
                   unreliable(2) ? "unreliable (workers > cores)" : ""});
  }
  table.print(std::cout, "sharded sweep driver (merge excluded)");
  std::cout << "\nmerge of " << reference.shards_total << " shards: "
            << AsciiTable::format(rows.back().merge_ms, 1) << " ms\n\n";
  core::print_metrics(std::cout);

  // Snapshot the recorded baseline BEFORE overwriting json_path — bench.sh
  // points both flags at the same file (gate against the previous
  // recording, then replace it).
  std::string baseline;
  if (!baseline_path.empty()) {
    std::ifstream baseline_in(baseline_path);
    std::stringstream buffer;
    buffer << baseline_in.rdbuf();
    baseline = buffer.str();
  }

  std::ostringstream json;
  json.precision(6);
  json << std::fixed << "{\n";
  json << "  \"header\": {\"git_rev\": \"" << git_rev
       << "\", \"detected_cores\": " << hardware << ", \"reps\": " << reps
       << ", \"losses\": " << losses_n << ", \"scales\": " << scales_n
       << ", \"shard\": " << shard_size
       << ", \"scenarios\": " << store.scenario_count()
       << ", \"shards\": " << store.shard_count() << "},\n";
  json << "  \"streaming_1proc\": {\"plans_per_sec\": "
       << scenarios / streaming_ms * 1000.0
       << ", \"ms_total\": " << streaming_ms
       << ", \"workers\": 1, \"unreliable\": false},\n";
  json << "  \"streaming_ckpt\": {\"plans_per_sec\": "
       << scenarios / ckpt_ms * 1000.0 << ", \"ms_total\": " << ckpt_ms
       << ", \"fs_overhead_pct\": " << ckpt_overhead_pct
       << ", \"workers\": 1, \"unreliable\": false},\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "  \"workers_" << row.workers << "\": {\"plans_per_sec\": "
         << scenarios / row.worker_ms * 1000.0
         << ", \"ms_total\": " << row.worker_ms
         << ", \"merge_ms\": " << row.merge_ms
         << ", \"speedup_vs_1proc\": " << streaming_ms / row.worker_ms
         << ", \"workers\": " << row.workers << ", \"unreliable\": "
         << (unreliable(row.workers) ? "true" : "false") << "}"
         << (rows.size() == i + 1 && lease_rows.empty() ? "\n" : ",\n");
  }
  for (std::size_t i = 0; i < lease_rows.size(); ++i) {
    const LeaseRow& row = lease_rows[i];
    json << "  \"lease_only_2w_" << row.lease_ms
         << "ms\": {\"plans_per_sec\": " << scenarios / row.ms * 1000.0
         << ", \"ms_total\": " << row.ms
         << ", \"lease_ms\": " << row.lease_ms
         << ", \"workers\": 2, \"unreliable\": "
         << (unreliable(2) ? "true" : "false") << "}"
         << (i + 1 == lease_rows.size() ? "\n" : ",\n");
  }
  json << "}\n";
  std::ofstream out(json_path);
  out << json.str();
  out.close();
  std::cout << "\nwrote " << json_path << "\n";

  bool passed = true;
  if (min_2worker > 0.0) {
    if (hardware < 2) {
      std::cout << "2-worker speedup check SKIPPED: this machine has "
                << hardware << " core(s); process scaling cannot show\n";
    } else {
      const double speedup = streaming_ms / rows[1].worker_ms;
      std::cout << "2-worker speedup over 1-process streaming: "
                << AsciiTable::format(speedup, 2) << "x (target >= "
                << AsciiTable::format(min_2worker, 2) << "x)\n";
      passed = passed && speedup >= min_2worker;
    }
  }

  // Shared validity probe for the two baseline-relative gates below:
  // returns the recorded streaming_1proc plans/sec, or prints a SKIPPED
  // notice naming `what` and returns 0 when the recording is absent or from
  // a different machine/grid (its numbers would gate against noise).
  const auto usable_baseline_pps = [&](const std::string& what) -> double {
    double base_pps = 0.0, base_cores = 0.0;
    double base_losses = 0.0, base_scales = 0.0, base_shard = 0.0;
    const std::size_t row = baseline.find("\"streaming_1proc\"");
    const bool have_row =
        row != std::string::npos &&
        find_json_number(baseline, "plans_per_sec", base_pps, row);
    if (!have_row) {
      std::cout << what << " SKIPPED: no streaming_1proc row in "
                << baseline_path << "\n";
      return 0.0;
    }
    if (!find_json_number(baseline, "detected_cores", base_cores) ||
        static_cast<unsigned>(base_cores) != hardware) {
      std::cout << what << " SKIPPED: " << baseline_path
                << " was recorded on a different machine ("
                << static_cast<long long>(base_cores) << " cores vs "
                << hardware << " here)\n";
      return 0.0;
    }
    if (!find_json_number(baseline, "losses", base_losses) ||
        static_cast<std::size_t>(base_losses) != losses_n ||
        !find_json_number(baseline, "scales", base_scales) ||
        static_cast<std::size_t>(base_scales) != scales_n ||
        !find_json_number(baseline, "shard", base_shard) ||
        static_cast<std::size_t>(base_shard) != shard_size) {
      std::cout << what << " SKIPPED: " << baseline_path
                << " was recorded on a different grid\n";
      return 0.0;
    }
    return base_pps;
  };

  if (!baseline_path.empty() && min_baseline > 0.0) {
    const double base_pps = usable_baseline_pps("baseline check");
    if (base_pps > 0.0) {
      const double current_pps = scenarios / streaming_ms * 1000.0;
      const double ratio = current_pps / base_pps;
      std::cout << "streaming_1proc vs recorded baseline: "
                << AsciiTable::format(current_pps, 0) << " / "
                << AsciiTable::format(base_pps, 0) << " plans/s = "
                << AsciiTable::format(ratio, 2) << "x (target >= "
                << AsciiTable::format(min_baseline, 2) << "x)\n";
      passed = passed && ratio >= min_baseline;
    }
  }

  if (!baseline_path.empty() && max_fs_overhead > 0.0) {
    // The crash-consistent fs layer sits under every store read in the
    // streaming_1proc row; this gate catches it growing a hot-path cost.
    const double base_pps = usable_baseline_pps("fs-overhead check");
    if (base_pps > 0.0) {
      const double current_pps = scenarios / streaming_ms * 1000.0;
      const double overhead_pct = (base_pps - current_pps) / base_pps * 100.0;
      std::cout << "fs overhead vs recorded baseline: "
                << AsciiTable::format(overhead_pct, 1) << "% (limit <= "
                << AsciiTable::format(max_fs_overhead, 1) << "%)\n";
      passed = passed && overhead_pct <= max_fs_overhead;
    }
  }

  std::remove(store_path.c_str());
  std::cout << (passed ? "\nPASS\n" : "\nFAIL\n");
  return passed ? 0 : 1;
}

}  // namespace

int main(int argc, const char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "micro_shard_driver: " << error.what() << "\n";
    return 1;
  }
}
