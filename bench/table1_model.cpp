// Table I: inputs and output of the utility analytic model.
//
// The paper's Table I lists, per experiment group, the dedicated server
// count M, the selected intensive workloads lambda_w and lambda_d, the loss
// target B, and the model's consolidated server count N. The headline rows
// are group 1 (M = 6 -> N = 3) and group 2 (M = 8 -> N = 4); we add a few
// more (M, B) points to show how the plan scales.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double fraction = flags.get_double("fraction", 0.5);
  const std::string csv_path = flags.get_string("csv", "");
  bench::finish_flags(flags);

  bench::banner("Table I -- utility analytic model inputs and output",
                "Song et al., CLUSTER 2009, Table I");

  AsciiTable table;
  table.set_header({"group", "M", "lambda_w", "lambda_d", "B", "N",
                    "blocking@N", "U_M", "U_N", "P_M (W)", "P_N (W)"});

  struct Row {
    const char* group;
    std::uint64_t dedicated_per_service;
    double b;
  };
  const Row rows[] = {
      {"1 (paper)", 3, 0.01}, {"2 (paper)", 4, 0.01}, {"extra", 2, 0.01},
      {"extra", 6, 0.01},     {"extra", 3, 0.001},    {"extra", 4, 0.05},
  };

  for (const Row& row : rows) {
    const core::ModelInputs inputs =
        bench::case_study_inputs(row.dedicated_per_service, row.b, fraction);
    core::UtilityAnalyticModel model(inputs);
    const core::ModelResult result = model.solve();
    table.add_row({row.group, std::to_string(result.dedicated_servers),
                   AsciiTable::format(inputs.services[0].arrival_rate, 1),
                   AsciiTable::format(inputs.services[1].arrival_rate, 1),
                   AsciiTable::format(row.b, 3),
                   std::to_string(result.consolidated_servers),
                   AsciiTable::format(result.consolidated_blocking, 4),
                   AsciiTable::format(result.dedicated_utilization, 3),
                   AsciiTable::format(result.consolidated_utilization, 3),
                   AsciiTable::format(result.dedicated_power_watts, 0),
                   AsciiTable::format(result.consolidated_power_watts, 0)});
  }
  table.print(std::cout);

  if (!csv_path.empty()) {
    // Machine-readable dump of the group-1 solution for plotting pipelines.
    std::ofstream csv(csv_path);
    const core::ModelInputs inputs =
        bench::case_study_inputs(3, 0.01, fraction);
    core::write_model_result_csv(csv,
                                 core::UtilityAnalyticModel(inputs).solve());
    std::cout << "\nwrote group-1 solution CSV to " << csv_path << '\n';
  }

  std::cout << "\npaper shape check: group 1 consolidates 6 -> 3, group 2 "
               "consolidates 8 -> 4, both at 50% infrastructure saving.\n";
  return 0;
}
