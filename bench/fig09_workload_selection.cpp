// Figure 9: selecting the "intensive workloads" on 4 physical servers.
//
// (a) DB service: WIPS vs EBs on a 4-server pool, with the closed-loop
//     "wips upper limit" line (EBs / think time); the selected workload sits
//     at the knee where the measured curve departs from the limit line.
// (b) Web service: mean response time vs session count on a 4-server pool;
//     the selected workload sits just before the response-time blow-up.
// The bench also prints the Erlang-based intensive workloads the model
// derives for the same staffing — the two selection rules should agree.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "workload/specweb.hpp"
#include "workload/tpcw.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 150.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 9));
  bench::finish_flags(flags);

  bench::banner("Fig. 9 -- workload selection on 4 physical servers",
                "Song et al., CLUSTER 2009, Figure 9(a)(b)");

  // --- (a) DB: WIPS vs EBs on 4 servers -----------------------------------
  // A 4-server native DB pool serves 4 * 100 interactions/s.
  workload::TpcwConfig db;
  db.vm_count = 0;
  db.native_capacity = 400.0;  // 4 servers x mu_dc
  db.duration = duration;
  const std::vector<unsigned> eb_points{200, 600, 1000, 1400, 1800, 2200,
                                        2600, 3000};
  const auto db_points = workload::tpcw_sweep(db, eb_points, seed);

  AsciiTable db_table;
  db_table.set_header({"EBs", "WIPS", "wips upper limit", "mean resp (s)"});
  unsigned selected_ebs = eb_points.front();
  for (const auto& point : db_points) {
    db_table.add_row({std::to_string(point.ebs),
                      AsciiTable::format(point.wips, 1),
                      AsciiTable::format(point.wips_upper_limit, 1),
                      AsciiTable::format(point.mean_response, 3)});
    // The knee: the last population whose WIPS still tracks the limit line
    // within 5% — the paper's red-circled "intensive workload".
    if (point.wips >= 0.95 * point.wips_upper_limit) {
      selected_ebs = point.ebs;
    }
  }
  db_table.print(std::cout, "(a) DB service on 4 servers (TPC-W)");
  std::cout << "selected intensive DB workload: " << selected_ebs
            << " EBs  (~" << AsciiTable::format(
                   static_cast<double>(selected_ebs) / db.think_time, 1)
            << " interactions/s offered)\n\n";

  // --- (b) Web: response time vs sessions on 4 servers --------------------
  workload::SpecwebSessionsConfig web;
  web.servers = 4;
  web.per_server_capacity = 420.0;  // mu_wi
  web.duration = duration;
  const std::vector<unsigned> session_points{500, 1200, 2000, 2800, 3400,
                                             4000, 4800, 5600};
  const auto web_points = workload::specweb_sessions_sweep(web, session_points,
                                                           seed + 1);

  AsciiTable web_table;
  web_table.set_header({"sessions", "mean resp (s)", "throughput", "refused"});
  unsigned selected_sessions = session_points.front();
  const double base_response = web_points.front().mean_response;
  for (const auto& point : web_points) {
    web_table.add_row({std::to_string(point.sessions),
                       AsciiTable::format(point.mean_response, 4),
                       AsciiTable::format(point.throughput, 1),
                       AsciiTable::format(point.refusal_ratio, 4)});
    // Select the largest session count whose response stays within 3x the
    // light-load response — "more or fewer workloads result in remarkable
    // difference" past this point.
    if (point.mean_response <= 3.0 * base_response) {
      selected_sessions = point.sessions;
    }
  }
  web_table.print(std::cout, "(b) Web service on 4 servers (SPECweb2005)");
  std::cout << "selected intensive Web workload: " << selected_sessions
            << " sessions\n\n";

  // --- The model's Erlang-based selection for the same staffing -----------
  const core::ModelInputs inputs = bench::case_study_inputs(4);
  std::cout << "model's intensive workloads for 4 dedicated servers at B=1%:"
            << "\n  lambda_w = "
            << AsciiTable::format(inputs.services[0].arrival_rate, 1)
            << " req/s,  lambda_d = "
            << AsciiTable::format(inputs.services[1].arrival_rate, 1)
            << " req/s (= "
            << AsciiTable::format(inputs.services[1].arrival_rate * 7.0, 0)
            << " EBs at 7 s think time)\n";
  return 0;
}
