// Figure 2: why consolidation works — the peak of consolidated workloads is
// far below the sum of the dedicated peaks.
//
// The paper's motivating sketch consolidates three applications "with
// various features" onto shared servers and draws the server level needed
// "to guarantee performance of the consolidated workloads in some
// probability level". We regenerate it with three diurnal workloads whose
// peak hours differ (an office app, an evening consumer app, and a
// batch-at-night app) and print the hourly demand series, the per-service
// peaks, the consolidated peak, and the probability-level lines.
#include <iostream>

#include "bench_common.hpp"
#include "workload/diurnal.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2));
  bench::finish_flags(flags);

  bench::banner("Fig. 2 -- dedicated peaks vs the consolidated peak",
                "Song et al., CLUSTER 2009, Figure 2");

  // Three applications with shifted peak hours (seconds of phase).
  std::vector<workload::DiurnalProfile> profiles(3);
  profiles[0] = {.base_rate = 120.0, .amplitude = 0.7, .period = 86400.0,
                 .phase = 0.0, .weekend_dip = 0.0, .noise_cv = 0.08};
  profiles[1] = {.base_rate = 90.0, .amplitude = 0.8, .period = 86400.0,
                 .phase = 28800.0, .weekend_dip = 0.0, .noise_cv = 0.08};
  profiles[2] = {.base_rate = 60.0, .amplitude = 0.9, .period = 86400.0,
                 .phase = 57600.0, .weekend_dip = 0.0, .noise_cv = 0.08};

  Rng rng(seed);
  const auto demands =
      workload::sample_demands(profiles, /*horizon=*/86400.0 * 2,
                               /*steps=*/96, rng);

  AsciiTable table;
  table.set_header({"hour", "app A", "app B", "app C", "consolidated"});
  for (std::size_t k = 0; k < demands.times.size(); k += 4) {
    table.add_numeric_row(
        AsciiTable::format(demands.times[k] / 3600.0, 0),
        {demands.per_service[0][k], demands.per_service[1][k],
         demands.per_service[2][k], demands.total[k]},
        0);
  }
  table.print(std::cout, "demand (req/s) over two days, every 2 hours");

  double sum_of_peaks = 0.0;
  std::cout << '\n';
  for (std::size_t i = 0; i < demands.per_service.size(); ++i) {
    const double peak = workload::series_peak(demands.per_service[i]);
    sum_of_peaks += peak;
    print_kv(std::cout,
             "peak of app " + std::string(1, static_cast<char>('A' + i)),
             peak, 1);
  }
  const double consolidated_peak = workload::series_peak(demands.total);
  print_kv(std::cout, "sum of dedicated peaks", sum_of_peaks, 1);
  print_kv(std::cout, "consolidated peak", consolidated_peak, 1);
  print_kv(std::cout, "multiplexing gain (x)",
           workload::multiplexing_gain(demands), 2);
  print_kv(std::cout, "consolidated level at 95% probability",
           workload::series_quantile(demands.total, 0.95), 1);
  print_kv(std::cout, "consolidated level at 99% probability",
           workload::series_quantile(demands.total, 0.99), 1);

  std::cout << "\nshape check: the consolidated peak sits well below the "
               "sum of the dedicated peaks (the paper's 'peak of "
               "consolidated workloads will not [be] higher than the sum of "
               "the dedicated workloads peaks'), and the probability-level "
               "line is lower still -- the capacity a planner must actually "
               "provision.\n";
  return 0;
}
