// Figure 12: power consumption of 8 dedicated servers vs 4 consolidated
// servers, both when serving the workloads and when idle.
//
// Paper observations reproduced here:
//   * consolidation saves up to 53% total power;
//   * servers hosting services draw only up to ~17% more than idle;
//   * the idle Xen platform draws ~9% less than idle native Linux.
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 1500.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Fig. 12 -- power: 8 dedicated vs 4 consolidated servers",
                "Song et al., CLUSTER 2009, Figure 12");

  const core::ModelInputs inputs = bench::case_study_inputs(4);
  dc::ScenarioOptions scenario;
  scenario.horizon = horizon;
  scenario.warmup = horizon * 0.1;

  const auto replication_count = static_cast<std::size_t>(replications);
  struct PowerRow {
    double busy = 0.0;
    double idle = 0.0;
  };

  // Dedicated: 4 web + 4 db native servers.
  const auto dedicated_rows = sim::replicate(
      replication_count, 1201, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_dedicated(inputs.services, {4, 4}, scenario, rng);
        return PowerRow{outcome.mean_power_watts,
                        outcome.idle_energy_joules / outcome.measured_span};
      });
  // Consolidated: 4 Xen servers.
  const auto consolidated_rows = sim::replicate(
      replication_count, 1202, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_consolidated(inputs.services, 4, scenario, rng);
        return PowerRow{outcome.mean_power_watts,
                        outcome.idle_energy_joules / outcome.measured_span};
      });

  auto mean = [](const std::vector<PowerRow>& rows, bool busy) {
    double total = 0.0;
    for (const auto& row : rows) {
      total += busy ? row.busy : row.idle;
    }
    return total / static_cast<double>(rows.size());
  };

  const double dedicated_busy = mean(dedicated_rows, true);
  const double dedicated_idle = mean(dedicated_rows, false);
  const double consolidated_busy = mean(consolidated_rows, true);
  const double consolidated_idle = mean(consolidated_rows, false);

  AsciiTable table;
  table.set_header({"configuration", "serving (W)", "idle (W)",
                    "serving/idle"});
  table.add_row({"8 dedicated (Linux)", AsciiTable::format(dedicated_busy, 1),
                 AsciiTable::format(dedicated_idle, 1),
                 AsciiTable::format(dedicated_busy / dedicated_idle, 3)});
  table.add_row({"4 consolidated (Xen)",
                 AsciiTable::format(consolidated_busy, 1),
                 AsciiTable::format(consolidated_idle, 1),
                 AsciiTable::format(consolidated_busy / consolidated_idle, 3)});
  table.print(std::cout);

  const double saving = 1.0 - consolidated_busy / dedicated_busy;
  const dc::PowerModel native =
      dc::PowerModel::paper_default(dc::Platform::kNativeLinux);
  const dc::PowerModel xen = dc::PowerModel::paper_default(dc::Platform::kXen);

  std::cout << '\n';
  print_kv(std::cout, "total power saving (%)", saving * 100.0, 1);
  print_kv(std::cout, "serving delta over idle, dedicated (%)",
           (dedicated_busy / dedicated_idle - 1.0) * 100.0, 1);
  print_kv(std::cout, "idle Xen vs idle Linux per server (%)",
           (1.0 - xen.idle_watts() / native.idle_watts()) * 100.0, 1);
  std::cout << "\nshape check: ~50%+ power saving (paper: up to 53%), "
               "serving servers draw well under +17% over idle, idle Xen "
               "draws 9% less than idle Linux.\n";
  return 0;
}
