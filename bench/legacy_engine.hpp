// Faithful replica of the pre-slot-map event calendar, kept as the bench
// baseline: std::function closures, a binary std::push_heap/pop_heap
// calendar, and two unordered_sets implementing lazy cancellation with
// compaction. Compiled in its own translation unit (legacy_engine.cpp) so it
// sits behind the same call boundary the original engine had in
// src/sim/engine.cpp — inlining it into the workload loop would flatter a
// baseline that never ran that way.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace vmcons::bench {

class LegacyEngine {
 public:
  using EventFn = std::function<void()>;
  using EventId = std::uint64_t;

  double now() const noexcept { return now_; }

  EventId schedule_at(double when, EventFn fn);
  EventId schedule_in(double delay, EventFn fn);
  bool cancel(EventId id);
  void run();

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  bool step(double limit);
  void compact();

  std::vector<Event> queue_;
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace vmcons::bench
