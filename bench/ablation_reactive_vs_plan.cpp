// Ablation: reactive on/off energy management vs the model's proactive plan.
//
// Section II-B positions the paper against reactive cluster-shrinking
// systems and argues the two COMPOSE: the model plans the fleet ceiling
// before deployment, the reactive controller breathes within it. This bench
// measures, on a diurnal version of the case-study workloads:
//   * the model's static plan (N servers always on),
//   * a reactive autoscaler capped at the dedicated fleet size M,
//   * the composition: a reactive autoscaler capped at the model's N.
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/autoscaler.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 6000.0);
  const long long replications = flags.get_int("replications", 5);
  bench::finish_flags(flags);

  bench::banner("Ablation -- reactive on/off control vs proactive planning",
                "Song et al., CLUSTER 2009, Sections I and II-B");

  const core::ModelInputs inputs = bench::case_study_inputs(4);
  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  const auto m = static_cast<unsigned>(plan.dedicated_servers);
  const auto n = static_cast<unsigned>(plan.consolidated_servers);

  auto make_config = [&](unsigned min_servers, unsigned max_servers) {
    dc::AutoscalerConfig config;
    config.services = inputs.services;
    config.vm_count = 2;
    config.min_servers = min_servers;
    config.max_servers = max_servers;
    config.initial_servers = max_servers;
    config.control_interval = 30.0;
    config.boot_delay = 120.0;
    config.power = dc::PowerModel::paper_default(dc::Platform::kXen);
    config.horizon = horizon;
    config.warmup = horizon * 0.1;
    config.diurnal_amplitude = 0.6;  // day/night swing
    config.diurnal_period = 2000.0;
    return config;
  };

  struct Scenario {
    const char* name;
    dc::AutoscalerConfig config;
  };
  // The model re-planned for the diurnal PEAK rather than the mean.
  core::ModelInputs peak_inputs = inputs;
  for (auto& service : peak_inputs.services) {
    service.arrival_rate *= 1.6;  // amplitude 0.6 peak
  }
  const auto n_peak = static_cast<unsigned>(
      core::UtilityAnalyticModel(peak_inputs).solve().consolidated_servers);

  std::vector<Scenario> scenarios;
  // Static plans: min = max (controller pinned).
  scenarios.push_back({"static plan: N(mean) always on", make_config(n, n)});
  scenarios.push_back(
      {"static plan: N(peak) always on", make_config(n_peak, n_peak)});
  // Reactive with a naive ceiling (the dedicated fleet size).
  scenarios.push_back({"reactive, ceiling M", make_config(1, m)});
  // Composition: reactive floored/capped by the model's plans.
  scenarios.push_back(
      {"reactive within plan [N(mean), N(peak)]", make_config(n, n_peak)});

  AsciiTable table;
  table.set_header({"scenario", "loss", "mean active", "mean power (W)",
                    "boots/hour"});
  for (const Scenario& scenario : scenarios) {
    struct Row {
      double loss, active, power, boots;
    };
    const auto rows = sim::replicate(
        static_cast<std::size_t>(replications), 1701,
        [&](std::size_t, Rng& rng) {
          const auto outcome = simulate_autoscaler(scenario.config, rng);
          return Row{outcome.overall_loss(), outcome.mean_active_servers,
                     outcome.mean_power_watts,
                     static_cast<double>(outcome.boots) /
                         (outcome.measured_span / 3600.0)};
        });
    Row mean{};
    for (const auto& row : rows) {
      mean.loss += row.loss;
      mean.active += row.active;
      mean.power += row.power;
      mean.boots += row.boots;
    }
    const double count = static_cast<double>(rows.size());
    table.add_row({scenario.name, AsciiTable::format(mean.loss / count, 4),
                   AsciiTable::format(mean.active / count, 2),
                   AsciiTable::format(mean.power / count, 1),
                   AsciiTable::format(mean.boots / count, 1)});
  }
  table.print(std::cout,
              "diurnal case-study workloads (amplitude 0.6), model N = " +
                  std::to_string(n) + ", M = " + std::to_string(m));

  std::cout << "\nconclusion: planning for the mean under-provisions the "
               "peak; the uncapped reactive controller buys the best QoS "
               "but at ~50% more power (boot churn plus over-shoot); "
               "bounding the controller between the model's mean and peak "
               "plans matches the peak plan's QoS and power with a smaller "
               "average fleet and a quarter of the churn -- the "
               "'combination of the former reactive works and this work' "
               "the paper advocates.\n";
  return 0;
}
