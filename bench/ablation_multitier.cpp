// Ablation: per-tier vs integral virtualization evaluation for multi-tier
// services (Section II-A's critique of reference [2] made quantitative).
//
// The same e-commerce application is planned two ways:
//   * per-tier: each tier keeps its own resource demands and impact curve
//     (what this paper's model does);
//   * integral: the application is a single black box with one
//     application-level impact factor (what the criticized approach does),
//     swept over plausible values of that factor.
// The per-tier plan is then checked against the tandem simulator; integral
// plans either overspend or miss the loss target depending on which path
// the single factor was measured on.
#include <iostream>

#include "bench_common.hpp"
#include "core/multitier.hpp"
#include "datacenter/tandem.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 2000.0);
  bench::finish_flags(flags);

  bench::banner("Ablation -- per-tier vs integral impact evaluation",
                "Song et al., CLUSTER 2009, Section II-A");

  const std::vector<core::MultiTierService> applications = {
      core::paper_ecommerce_application(/*arrival_rate=*/120.0,
                                        /*db_calls=*/0.3)};
  const double b = 0.01;

  const core::ModelResult per_tier = core::plan_multitier(applications, b);

  AsciiTable table;
  table.set_header({"planning mode", "N", "model blocking"});
  table.add_row({"per-tier impacts (this paper)",
                 std::to_string(per_tier.consolidated_servers),
                 AsciiTable::format(per_tier.consolidated_blocking, 4)});
  for (const double factor : {0.95, 0.80, 0.65, 0.50}) {
    const core::ModelResult integral =
        core::plan_integral(applications, b, factor);
    table.add_row({"integral, a = " + AsciiTable::format(factor, 2),
                   std::to_string(integral.consolidated_servers),
                   AsciiTable::format(integral.consolidated_blocking, 4)});
  }
  table.print(std::cout, "consolidated staffing for the e-commerce app");

  // Check the per-tier plan end to end on the tandem simulator.
  dc::TandemConfig tandem;
  tandem.arrival_rate = applications[0].arrival_rate;
  const auto tier_specs = applications[0].expand();
  const unsigned vms = static_cast<unsigned>(tier_specs.size());
  for (std::size_t t = 0; t < tier_specs.size(); ++t) {
    dc::TierConfig tier;
    tier.name = tier_specs[t].name;
    // Tier service rate per request at the consolidated effective rate;
    // fan-out folds into the rate (calls_per_request scaled arrivals).
    tier.service_rate = tier_specs[t].effective_rate(vms) *
                        applications[0].arrival_rate /
                        tier_specs[t].arrival_rate;
    tier.servers = static_cast<unsigned>(per_tier.consolidated_servers);
    tandem.tiers.push_back(tier);
  }
  tandem.horizon = horizon;
  tandem.warmup = horizon * 0.1;

  const auto loss = sim::replicate_scalar(
      6, 1801, [&](std::size_t, Rng& rng) {
        return dc::simulate_tandem(tandem, rng).loss_probability();
      });
  std::cout << '\n';
  print_kv(std::cout, "tandem-simulated loss at per-tier N",
           loss.summary.mean(), 4);
  std::cout << "\nconclusion: one application-level factor cannot be right "
               "-- measured on the CPU-light path (a~0.95) it under-"
               "provisions the disk-heavy tier; measured on the worst path "
               "(a~0.5) it overspends servers. Planning each tier with its "
               "own impact curve sizes the pool that the tandem simulation "
               "confirms.\n";
  return 0;
}
