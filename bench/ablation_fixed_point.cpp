// Ablation: three accuracy tiers for the consolidated loss probability.
//
//   tier 1 — the paper's model: independent per-resource Erlang-B on the
//            Eq. (4) arithmetically-averaged service rate;
//   tier 2 — reduced-load (Erlang fixed point): couples the resources and
//            keeps each service's own rate;
//   tier 3 — the multi-resource loss-network simulation (ground truth).
//
// The gap between tier 1 and tier 3 is the Eq. (4) optimism this
// reproduction uncovered; tier 2 closes most of it while staying analytic.
#include <iostream>

#include "bench_common.hpp"
#include "core/accuracy.hpp"
#include "datacenter/loss_network.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 4000.0);
  const long long replications = flags.get_int("replications", 8);
  bench::finish_flags(flags);

  bench::banner("Ablation -- paper model vs Erlang fixed point vs simulation",
                "accuracy decomposition of the Section III model");

  AsciiTable table;
  table.set_header({"workload", "N", "paper model", "fixed point",
                    "simulated", "paper err", "fp err"});

  for (const std::uint64_t dedicated : {3ull, 4ull, 6ull}) {
    for (const double scale : {1.0, 1.5}) {
      core::ModelInputs inputs = bench::case_study_inputs(dedicated);
      for (auto& service : inputs.services) {
        service.arrival_rate *= scale;
      }
      core::UtilityAnalyticModel model(inputs);
      const auto plan = model.solve();
      const auto n = plan.consolidated_servers;
      const auto fixed_point =
          core::reduced_load_consolidated_loss(inputs, n);

      dc::LossNetworkConfig config;
      config.services = inputs.services;
      config.servers = static_cast<unsigned>(n);
      config.vm_count = 2;
      config.horizon = horizon;
      config.warmup = horizon * 0.1;
      const auto simulated = sim::replicate_scalar(
          static_cast<std::size_t>(replications),
          1901 + dedicated * 10 + static_cast<std::uint64_t>(scale * 2),
          [&](std::size_t, Rng& rng) {
            return simulate_loss_network(config, rng).pool.overall_loss();
          });

      const double sim_loss = simulated.summary.mean();
      table.add_row(
          {"ded/" + std::to_string(dedicated) + " x" +
               AsciiTable::format(scale, 1),
           std::to_string(n),
           AsciiTable::format(plan.consolidated_blocking, 5),
           AsciiTable::format(fixed_point.overall_blocking, 5),
           AsciiTable::format(sim_loss, 5),
           AsciiTable::format(
               std::abs(plan.consolidated_blocking - sim_loss), 5),
           AsciiTable::format(
               std::abs(fixed_point.overall_blocking - sim_loss), 5)});
    }
  }
  table.print(std::cout, "consolidated loss at the paper model's N");

  // Staffing consequences: does the better estimate change N?
  const core::ModelInputs inputs = bench::case_study_inputs(3);
  const auto paper_n =
      core::UtilityAnalyticModel(inputs).solve().consolidated_servers;
  const auto fp_n = core::reduced_load_consolidated_servers(inputs);
  std::cout << '\n';
  print_kv(std::cout, "N by paper model", static_cast<double>(paper_n), 0);
  print_kv(std::cout, "N by reduced-load fixed point",
           static_cast<double>(fp_n), 0);

  std::cout << "\nconclusion: the paper's independent-resource treatment "
               "with Eq. (4) rate averaging underestimates the loss by a "
               "factor of 2-3 at the case-study operating points; the "
               "reduced-load fixed point (same inputs, still closed-form "
               "fast) tracks the simulation closely and occasionally "
               "staffs one server higher -- a drop-in accuracy upgrade for "
               "the model.\n";
  return 0;
}
