// Figure 6: Web service under a CPU-bound httperf sweep (one cached 8 KB
// file, so the disk never spins) and the CPU impact-factor fit.
// Paper: a(v) = 0.658 - 0.039 v, and native far outperforms any VM count.
#include <iostream>

#include "bench_common.hpp"
#include "stats/regression.hpp"
#include "virt/calibration.hpp"
#include "workload/httperf.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double duration = flags.get_double("duration", 120.0);
  const long long max_vms = flags.get_int("max-vms", 9);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 6));
  bench::finish_flags(flags);

  bench::banner("Fig. 6 -- Web throughput vs offered load, CPU bound",
                "Song et al., CLUSTER 2009, Figure 6(a)(b)");

  std::vector<double> rates;
  for (double rate = 500.0; rate <= 6000.0; rate += 500.0) {
    rates.push_back(rate);
  }
  const double saturation_from = 3500.0;

  AsciiTable curves;
  std::vector<std::string> header{"offered", "native"};
  std::vector<std::vector<double>> columns;
  virt::ThroughputCurve native_curve;
  std::vector<virt::ThroughputCurve> vm_curves;

  {
    workload::HttperfConfig config = workload::cached_8kb_cpu_config(0);
    config.duration = duration;
    const auto points = workload::httperf_sweep(config, rates, seed);
    native_curve.vm_count = 0;
    std::vector<double> column;
    for (const auto& point : points) {
      native_curve.offered.push_back(point.offered_rate);
      native_curve.throughput.push_back(point.reply_rate);
      column.push_back(point.reply_rate);
    }
    columns.push_back(std::move(column));
  }
  for (unsigned vms = 1; vms <= static_cast<unsigned>(max_vms); ++vms) {
    header.push_back(std::to_string(vms) + "vm");
    workload::HttperfConfig config = workload::cached_8kb_cpu_config(vms);
    config.duration = duration;
    const auto points = workload::httperf_sweep(config, rates, seed + vms);
    virt::ThroughputCurve curve;
    curve.vm_count = vms;
    std::vector<double> column;
    for (const auto& point : points) {
      curve.offered.push_back(point.offered_rate);
      curve.throughput.push_back(point.reply_rate);
      column.push_back(point.reply_rate);
    }
    vm_curves.push_back(std::move(curve));
    columns.push_back(std::move(column));
  }

  curves.set_header(header);
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<double> row;
    for (const auto& column : columns) {
      row.push_back(column[r]);
    }
    curves.add_numeric_row(AsciiTable::format(rates[r], 0), row, 0);
  }
  curves.print(std::cout, "(a) reply rate [req/s] per offered rate [req/s]");

  const auto samples =
      virt::impact_factors(native_curve, vm_curves, saturation_from);
  AsciiTable impact_table;
  impact_table.set_header({"vms", "impact a(v)", "encoded curve"});
  for (const auto& sample : samples) {
    impact_table.add_row(
        {std::to_string(sample.vm_count), AsciiTable::format(sample.factor, 3),
         AsciiTable::format(
             virt::Impact::paper_web_cpu().raw_factor(sample.vm_count), 3)});
  }
  impact_table.print(std::cout, "\n(b) impact factor of CPU per VM count");

  const LinearFit fit = virt::calibrate_linear(samples);
  std::cout << "\nlinear fit: a(v) = " << AsciiTable::format(fit.intercept, 3)
            << " + (" << AsciiTable::format(fit.slope, 3) << ") v,  R^2 = "
            << AsciiTable::format(fit.r_squared, 4) << '\n';
  std::cout << "paper:      a(v) = 0.658 - 0.039 v\n";
  std::cout << "\nshape check: the native curve dominates every VM curve "
               "(virtualizing the CPU path costs ~35% up front).\n";
  return 0;
}
