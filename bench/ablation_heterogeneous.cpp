// Ablation: heterogeneous-server normalization (the paper's future work,
// Section V, motivated by the AMD-vs-Intel discussion of Section IV-D).
//
// The planner normalizes heterogeneous inventory against a reference server
// before solving, then maps the normalized requirement back onto real
// machines. We compare the normalized plan with a naive plan that ignores
// capacity differences, across inventories.
#include <iostream>

#include "bench_common.hpp"
#include "core/planner.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  bench::finish_flags(flags);

  bench::banner("Ablation -- heterogeneous-server normalization",
                "Song et al., CLUSTER 2009, Sections III-B1 and V");

  const core::ModelInputs inputs = bench::case_study_inputs(4);

  struct Inventory {
    const char* name;
    std::vector<core::ServerClass> classes;
  };
  const Inventory inventories[] = {
      {"homogeneous dual-quad",
       {{"dual-quad", 1.0, 16, dc::PowerModel{}}}},
      {"mixed dual/single quad",
       {{"dual-quad", 1.0, 2, dc::PowerModel{}},
        {"single-quad", 0.5, 16, dc::PowerModel{}}}},
      {"AMD-heavy (paper's 20% faster DB host)",
       {{"amd-2.0GHz", 1.2, 3, dc::PowerModel{}},
        {"intel-2.33GHz", 1.0, 8, dc::PowerModel{}}}},
      {"underpowered fleet",
       {{"single-quad", 0.5, 4, dc::PowerModel{}}}},
  };

  AsciiTable table;
  table.set_header({"inventory", "normalized N", "machines picked",
                    "capacity", "feasible", "naive machine count"});
  for (const Inventory& inventory : inventories) {
    core::ConsolidationPlanner planner;
    planner.set_target_loss(inputs.target_loss);
    for (const auto& service : inputs.services) {
      planner.add_service(service);
    }
    for (const auto& server_class : inventory.classes) {
      planner.add_server_class(server_class);
    }
    const core::PlanReport report = planner.plan();

    std::string picks;
    unsigned machine_count = 0;
    for (const auto& [name, count] : report.consolidated_assignment.picked) {
      if (!picks.empty()) {
        picks += " + ";
      }
      picks += std::to_string(count) + "x " + name;
      machine_count += count;
    }
    (void)machine_count;
    // The naive plan treats every machine as a full reference server.
    const auto naive = report.model.consolidated_servers;
    table.add_row(
        {inventory.name, std::to_string(report.model.consolidated_servers),
         picks.empty() ? "-" : picks,
         AsciiTable::format(report.consolidated_assignment.normalized_capacity, 2),
         report.consolidated_assignment.feasible ? "yes" : "NO",
         std::to_string(naive)});
  }
  table.print(std::cout);

  std::cout << "\nconclusion: with capacity normalization, a mixed fleet "
               "covers the normalized requirement with more (smaller) "
               "machines, and an underpowered fleet is correctly flagged "
               "infeasible -- the naive count would deploy it anyway and "
               "miss the QoS target.\n";
  return 0;
}
