// Ablation: "the model is simple but accurate enough" — quantified.
//
// Sweeps the loss target B and the workload scale, comparing the model's
// predicted consolidated blocking with the simulated loss network at the
// model's own staffing N. Reports the absolute error and whether the
// simulated loss still meets the target. This also exposes the one
// systematic bias we found: Eq. (4) averages service RATES where the true
// offered work averages service TIMES, so the model is slightly optimistic
// when the consolidated services' rates differ a lot.
#include <iostream>

#include "bench_common.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;
  Flags flags(argc, argv);
  const double horizon = flags.get_double("horizon", 3000.0);
  const long long replications = flags.get_int("replications", 6);
  bench::finish_flags(flags);

  bench::banner("Ablation -- model accuracy across B and workload scale",
                "Song et al., CLUSTER 2009, 'simple but accurate enough'");

  AsciiTable table;
  table.set_header({"B target", "scale", "N", "model blocking",
                    "simulated loss", "abs error", "meets B"});

  for (const double b : {0.001, 0.01, 0.05}) {
    for (const double scale : {0.5, 1.0, 2.0, 4.0}) {
      core::ModelInputs inputs = bench::case_study_inputs(3, b);
      for (auto& service : inputs.services) {
        service.arrival_rate *= scale;
      }
      core::UtilityAnalyticModel model(inputs);
      const auto plan = model.solve();
      const auto n = static_cast<unsigned>(plan.consolidated_servers);

      dc::ScenarioOptions scenario;
      scenario.horizon = horizon;
      scenario.warmup = horizon * 0.1;
      const auto loss = sim::replicate_scalar(
          static_cast<std::size_t>(replications),
          1601 + static_cast<std::uint64_t>(b * 10000 + scale * 10),
          [&](std::size_t, Rng& rng) {
            return dc::simulate_consolidated(inputs.services, n, scenario, rng)
                .overall_loss();
          });
      const double simulated = loss.summary.mean();
      const double error = std::abs(simulated - plan.consolidated_blocking);
      table.add_row({AsciiTable::format(b, 3), AsciiTable::format(scale, 1),
                     std::to_string(n),
                     AsciiTable::format(plan.consolidated_blocking, 4),
                     AsciiTable::format(simulated, 4),
                     AsciiTable::format(error, 4),
                     simulated <= b * 2.5 ? "~yes" : "NO"});
    }
  }
  table.print(std::cout);

  std::cout << "\nconclusion: errors stay within a few tenths of a percent "
               "of loss probability across two orders of magnitude of B and "
               "nearly an order of magnitude of load -- 'simple but accurate "
               "enough', with a small optimistic bias from Eq. (4)'s "
               "arithmetic rate averaging (see EXPERIMENTS.md).\n";
  return 0;
}
