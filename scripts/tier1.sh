#!/usr/bin/env bash
# Tier-1 verification: the standard Release build + full test suite, then an
# asan+ubsan build running the concurrency-sensitive suites (thread pool,
# parallel_for, engine cancellation/compaction, metrics, Erlang kernel,
# sweeps) under the sanitizers.
set -euo pipefail
cd "$(dirname "$0")/.."

# Global per-test watchdog: a hung cancellation/deadline test (the exact
# failure mode the run-control suites guard against) must fail, not wedge CI.
CTEST_TIMEOUT=300

echo "== tier-1: release build + full ctest =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j --timeout "${CTEST_TIMEOUT}"

echo
echo "== tier-1: fault-injection suite under a pinned seed =="
# The run-control/fault/streaming suites read VMCONS_FAULT_SEED; pinning it
# here means a red fault run in CI replays bit-identically at a desk. The
# StreamingSweep suite includes the kill-and-resume smoke: a sweep killed by
# an injected shard fault resumes from its checkpoint manifest bit-identical
# to a clean run. FsFault*/CrashRecovery* is the filesystem half: torn
# manifest lines, ENOSPC mid-shard, and injected crashes at every op of the
# store-write/checkpoint/claim/commit/merge paths, each required to recover
# bit-identical to a clean 1-process streaming sweep.
VMCONS_FAULT_SEED=20090806 ./build/tests/vmcons_tests \
  --gtest_filter='RunControl*:FaultInject*:StreamingSweep*:ShardedSweep*:ClaimLedger*:ManifestLock*:FsFault*:CrashRecovery*'

echo
echo "== tier-1: bench smoke (correctness only, ~1s each) =="
# Tiny workloads: checks the benchmarks still run and their invariants hold
# (zero steady-state allocations, sweep reports identical across configs).
# Speedup thresholds are disabled — real numbers come from scripts/bench.sh.
./build/bench/micro_engine --events 50000 --cancels 20000 --reps 2 \
  --fire-reps 2 --horizon 20 --min-speedup 0 --json /dev/null
./build/bench/micro_sweep --losses 2 --scales 2 --servers 2000 \
  --min-speedup 0
./build/bench/micro_batch --losses 2 --scales 2 --servers 2000 \
  --min-speedup 0 --json /dev/null
# Parallel-scaling gate: batch_parallel must beat batch_1thread by 1.5x on
# machines with >= 4 hardware threads (the bench skips the check, with a
# notice, on smaller machines where scaling cannot show). The grid is
# bigger than the smoke above so the parallel path has real work to split.
./build/bench/micro_batch --losses 8 --scales 8 --servers 2000 \
  --min-speedup 0 --min-parallel-speedup 1.5 --json /dev/null
# Multi-lane regression gate: a full-size run must hold >= 0.6x of the
# recorded BENCH_batch.json batch_1thread plans/sec, so a change that
# quietly serializes the lane-batched Erlang walk (~0.2x) fails tier-1
# loudly. The threshold is looser than bench.sh's 0.9x because tier-1 runs
# this mid-sequence on a hot box: an *unchanged* binary measures
# 0.69x-0.96x of a cold-box baseline here (burstable-vCPU sustained-load
# dip), so 0.9x flakes on box state rather than code. The bench skips the
# check with a notice when the recorded baseline is from a different
# machine (core count / lane width) or grid shape.
./build/bench/micro_batch --min-speedup 0 --json /dev/null \
  --baseline-json BENCH_batch.json --min-baseline-speedup 0.6
# Out-of-core streaming smoke: store write/read round trip, a cancelled run
# resuming checksum-identical, and a loose resident-memory ceiling.
./build/bench/micro_streaming --scenarios 4000 --shard 512 \
  --max-rss-mb 64 --json /dev/null --store build/bench/tier1_streaming.store
# Multi-process sharded driver smoke: every worker-count row must merge
# bit-identical to the 1-process streaming reference (checked inside the
# bench, including the checkpointed run and the lease-only lease-sweep
# rows), gated against the recorded BENCH_shard.json streaming_1proc
# throughput (skipped with a notice on a different machine or grid — this
# smoke always runs a different grid than bench.sh records, so the
# fs-overhead gate is enforced by scripts/bench.sh, not here).
./build/bench/micro_shard_driver --losses 4 --scales 4 --shard 4 --reps 1 \
  --lease-sweep-ms 500 \
  --json /dev/null --store build/bench/tier1_shard.store \
  --baseline-json BENCH_shard.json --min-baseline-speedup 0

echo
echo "== tier-1: multi-process kill-and-reclaim drill =="
# Two worker processes over a small store; one is killed mid-shard (_exit
# after its claim lands, the kill -9 window), a relaunched worker reclaims
# the dead pid's lease, and the merged result must be bit-identical to a
# 1-process StreamingSweep. Exercises the whole claim-ledger protocol with
# real processes, not threads.
./build/tools/vmcons_sweep_worker --mode selftest --workers 2 --kill-one
# Same drill under lease-only staleness: the dead-pid probe is disabled, so
# the relaunched worker may reclaim the killed worker's shard only by
# waiting out its lease — the host-portable mode for ledgers on shared
# filesystems, where a remote pid number means nothing. Short lease keeps
# the wait bounded.
./build/tools/vmcons_sweep_worker --mode selftest --workers 2 --kill-one \
  --lease-only --lease-ms 500

echo
echo "== tier-1: commit-point discipline (static check) =="
# Every rename in persistence code must be fs::commit_file's (write temp,
# fsync, rename, fsync dir), and persistence files must not write through
# unchecked ofstreams. Greps, so it fails in seconds, not in a postmortem.
./scripts/check_commit_points.sh

echo
echo "== tier-1: auto-vectorization check on the column kernels =="
./scripts/check_vectorize.sh

echo
echo "== tier-1: asan+ubsan build + concurrency tests =="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset asan-concurrency -j --timeout "${CTEST_TIMEOUT}"

echo
echo "tier-1 PASSED"
