#!/usr/bin/env bash
# Tier-1 verification: the standard Release build + full test suite, then an
# asan+ubsan build running the concurrency-sensitive suites (thread pool,
# parallel_for, engine cancellation/compaction, metrics, Erlang kernel,
# sweeps) under the sanitizers.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + full ctest =="
cmake --preset default
cmake --build --preset default -j
ctest --preset default -j

echo
echo "== tier-1: asan+ubsan build + concurrency tests =="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset asan-concurrency -j

echo
echo "tier-1 PASSED"
