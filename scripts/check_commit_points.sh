#!/usr/bin/env bash
# Static commit-point discipline check (tier-1).
#
# The crash-consistency story in DESIGN.md rests on one rule: a persistence
# path makes data durable through util::fs, and the ONLY rename it may
# perform is the one inside fs::commit_file (write temp, fsync temp, rename,
# fsync parent dir). A raw rename(2) somewhere else is atomic but not
# durable — it reorders freely against the data writes it is supposed to
# publish — and a raw ofstream in a persistence file is a write whose
# failure nobody sees. Both regressions grep cleanly, so tier-1 refuses
# them here instead of waiting for a power-loss postmortem.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Rule 1: no raw rename(2)/std::rename outside the fs layer itself.
# The pattern requires the call prefix (::rename( / std::rename(), so prose
# mentions of "rename(2)" in comments do not trip it.
raw_renames=$(grep -rEn '(std::|::)rename[[:space:]]*\(' src/ \
  --include='*.cpp' --include='*.hpp' | grep -v '^src/util/fs.cpp:' || true)
if [[ -n "${raw_renames}" ]]; then
  echo "check_commit_points: raw rename outside src/util/fs.cpp —"
  echo "use util::fs::commit_file (the durable commit point) instead:"
  echo "${raw_renames}"
  fail=1
fi

# Rule 2: fs::rename_file is the commit helper's internal step; call sites
# elsewhere mean someone is renaming without the fsync sandwich.
rename_file_callers=$(grep -rn 'rename_file' src/ \
  --include='*.cpp' --include='*.hpp' \
  | grep -v '^src/util/fs.cpp:' | grep -v '^src/util/fs.hpp:' || true)
if [[ -n "${rename_file_callers}" ]]; then
  echo "check_commit_points: fs::rename_file called outside the fs layer —"
  echo "persistence code must go through util::fs::commit_file:"
  echo "${rename_file_callers}"
  fail=1
fi

# Rule 3: persistence translation units must not write through ofstream
# (unchecked buffered writes, no fsync, no errno). The list names every
# file that owns a durable artifact: store, checkpoint manifest, claim
# ledger, pid locks, and the durable CSV backend.
persistence_files=(
  src/core/scenario_store.cpp
  src/core/scenario_store.hpp
  src/core/streaming_sweep.cpp
  src/core/streaming_sweep.hpp
  src/core/sharded_sweep.cpp
  src/core/sharded_sweep.hpp
  src/util/file_lock.cpp
  src/util/file_lock.hpp
  src/util/csv.cpp
)
raw_streams=$(grep -n 'ofstream\|<fstream>' "${persistence_files[@]}" || true)
if [[ -n "${raw_streams}" ]]; then
  echo "check_commit_points: ofstream/<fstream> in a persistence path —"
  echo "write through util::fs (checked Status, named fault site) instead:"
  echo "${raw_streams}"
  fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "check_commit_points: OK (no raw renames, no unchecked streams in" \
  "persistence paths)"
