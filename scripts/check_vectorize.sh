#!/usr/bin/env bash
# Asserts the five analytic column kernels in src/core/batch_eval.cpp
# (staff_dedicated, staff_consolidated, staff_fleet, derive_utility,
# derive_power)
# actually auto-vectorize under the Release flags. Compiles the one file
# with -fopt-info-vec and requires at least one "loop vectorized" report
# inside each kernel's line range — so a refactor that quietly reintroduces
# control flow or aliasing into a hot loop fails here, not in a bench
# regression three PRs later. Informational (not asserted): the SLP reports
# from the multi-lane Erlang walk in src/queueing/erlang_kernel.cpp.
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
SRC=src/core/batch_eval.cpp
FLAGS=(-std=c++20 -O3 -DNDEBUG -fno-math-errno -fno-trapping-math -I src)

if ! "${CXX}" --version 2>/dev/null | grep -qiE 'g\+\+|gcc|clang'; then
  echo "check_vectorize SKIPPED: ${CXX} is not gcc or clang"
  exit 0
fi

if "${CXX}" --version | grep -qi clang; then
  REPORT=$("${CXX}" "${FLAGS[@]}" -c "${SRC}" -o /dev/null \
    -Rpass=loop-vectorize 2>&1 | grep -E "${SRC}.*vectorized" || true)
else
  REPORT=$("${CXX}" "${FLAGS[@]}" -c "${SRC}" -o /dev/null \
    -fopt-info-vec 2>&1 | grep -E "${SRC}.*loop vectorized" || true)
fi

# Line ranges of the five kernels: each starts at its definition and ends at
# the next kernel (or EOF). grep -n keeps this robust against edits.
mapfile -t STARTS < <(grep -n \
  -e '^void staff_dedicated' -e '^void staff_consolidated' \
  -e '^void staff_fleet' \
  -e '^void derive_utility' -e '^void derive_power' \
  "${SRC}" | cut -d: -f1)
NAMES=(staff_dedicated staff_consolidated staff_fleet derive_utility \
       derive_power)
if [[ "${#STARTS[@]}" -ne 5 ]]; then
  echo "check_vectorize FAILED: expected 5 kernel definitions in ${SRC}," \
       "found ${#STARTS[@]}"
  exit 1
fi

FAILED=0
for i in 0 1 2 3 4; do
  LO="${STARTS[$i]}"
  if [[ "$i" -lt 4 ]]; then HI="${STARTS[$((i + 1))]}"; else HI=1000000; fi
  COUNT=$(echo "${REPORT}" | awk -F: -v lo="${LO}" -v hi="${HI}" \
    'NF > 1 && $2 >= lo && $2 < hi' | wc -l)
  if [[ "${COUNT}" -gt 0 ]]; then
    echo "OK   ${NAMES[$i]}: ${COUNT} vectorized loop(s)"
  else
    echo "FAIL ${NAMES[$i]}: no vectorized loop reported in" \
         "lines [${LO}, ${HI})"
    FAILED=1
  fi
done

echo
echo "-- informational: multi-lane Erlang walk (SLP packs, not asserted) --"
"${CXX}" "${FLAGS[@]}" -c src/queueing/erlang_kernel.cpp -o /dev/null \
  -fopt-info-vec 2>&1 | grep -cE 'vectorized' | \
  xargs -I{} echo "erlang_kernel.cpp: {} vectorization report(s)" || true

if [[ "${FAILED}" -ne 0 ]]; then
  echo
  echo "check_vectorize FAILED: a column kernel lost its vectorized loop"
  exit 1
fi
echo
echo "check_vectorize PASSED"
