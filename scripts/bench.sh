#!/usr/bin/env bash
# Performance hygiene: Release build, then the two microbenchmarks at full
# size. micro_engine regenerates BENCH_engine.json at the repo root (the
# checked-in numbers CI and DESIGN.md refer to); micro_sweep checks the
# parallel memoized planner. Both exit non-zero when they miss their
# speedup targets.
#
# The numbers are wall-clock sensitive: run on an idle machine. Pass extra
# flags through, e.g. `scripts/bench.sh --fire-reps 10`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench: release build =="
cmake --preset default
cmake --build --preset default -j

echo
echo "== bench: micro_engine (slot-map calendar) =="
./build/bench/micro_engine --json BENCH_engine.json "$@"

echo
echo "== bench: micro_sweep (parallel memoized planner) =="
./build/bench/micro_sweep

echo
echo "== bench: micro_batch (columnar ScenarioBatch evaluator) =="
./build/bench/micro_batch --json BENCH_batch.json \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo
echo "bench PASSED (BENCH_engine.json, BENCH_batch.json updated)"
