#!/usr/bin/env bash
# Performance hygiene: Release build, then the microbenchmarks at full
# size. micro_engine regenerates BENCH_engine.json at the repo root (the
# checked-in numbers CI and DESIGN.md refer to); micro_sweep checks the
# parallel memoized planner; micro_batch regenerates BENCH_batch.json;
# micro_streaming regenerates BENCH_streaming.json (out-of-core sweep with
# checkpoint/resume). All exit non-zero when they miss their targets.
#
# The numbers are wall-clock sensitive: run on an idle machine. Multi-worker
# rows recorded on a box with fewer cores than workers are marked
# "unreliable" in BENCH_batch.json rather than suppressed. Pass extra flags
# through, e.g. `scripts/bench.sh --fire-reps 10`.
set -euo pipefail
cd "$(dirname "$0")/.."

CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)"
echo "== bench: detected ${CORES} core(s) =="

echo "== bench: release build =="
cmake --preset default
cmake --build --preset default -j

echo
echo "== bench: micro_engine (slot-map calendar) =="
./build/bench/micro_engine --json BENCH_engine.json "$@"

echo
echo "== bench: micro_sweep (parallel memoized planner) =="
./build/bench/micro_sweep

echo
echo "== bench: micro_batch (columnar ScenarioBatch evaluator) =="
# Gate the multi-lane rows against the previously recorded file before
# overwriting it: a regeneration that silently lost >10% of batch_1thread
# plans/sec fails here. The bench skips the check (with a notice) when the
# recorded baseline came from a different machine or grid.
./build/bench/micro_batch --json BENCH_batch.json \
  --baseline-json BENCH_batch.json --min-baseline-speedup 0.9 \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo
echo "== bench: micro_shard_driver (multi-process sharded sweep) =="
# Same gate-then-overwrite pattern as micro_batch: the 1-process streaming
# throughput must hold >= 0.9x of the recorded BENCH_shard.json before the
# file is regenerated. The 2-worker fleet must reach 1.6x of 1-process on
# machines with >= 2 cores (skipped with a notice elsewhere; rows with more
# workers than cores are recorded but marked unreliable). The fs-overhead
# gate bounds the crash-consistent util::fs layer's hot-path cost: the
# streaming_1proc row must stay within 2% of the recording (also skipped
# with a notice on a foreign machine/grid). The lease-sweep rows run a
# healthy 2-worker lease-only fleet at several --lease-ms values.
./build/bench/micro_shard_driver --json BENCH_shard.json \
  --baseline-json BENCH_shard.json --min-baseline-speedup 0.9 \
  --min-2worker-speedup 1.6 --max-fs-overhead-pct 2 \
  --store build/bench/micro_shard.store \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo
echo "== bench: micro_streaming (out-of-core sweep, 10^6 scenarios) =="
./build/bench/micro_streaming --scenarios 1000000 --shard 8192 \
  --json BENCH_streaming.json \
  --store build/bench/micro_streaming.store \
  --git-rev "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

echo
echo "bench PASSED (BENCH_engine.json, BENCH_batch.json, BENCH_shard.json, BENCH_streaming.json updated)"
