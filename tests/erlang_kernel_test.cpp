// Tests for the incremental/memoized Erlang kernel: results must be
// bit-identical to the stateless erlang.hpp free functions on every code
// path (fresh state, prefix hit, prefix extension, uncached tail), the
// log-domain evaluator must agree where the linear recurrence is
// representable and stay finite where it is not, and the cache must be
// safe under concurrent use.
#include "queueing/erlang_kernel.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::queueing {
namespace {

TEST(ErlangKernel, MatchesFreeFunctionOnRandomizedGrid) {
  ErlangKernel kernel;
  Rng rng = make_stream(2024, 0);
  for (int trial = 0; trial < 400; ++trial) {
    const double rho = std::exp(rng.uniform(std::log(0.01), std::log(5e4)));
    const auto servers = rng.uniform_index(2000);
    // Bit-identical: same recurrence, same operation order.
    EXPECT_DOUBLE_EQ(kernel.erlang_b(servers, rho), erlang_b(servers, rho))
        << "n=" << servers << " rho=" << rho;
  }
}

TEST(ErlangKernel, RepeatQueriesHitTheCache) {
  ErlangKernel kernel;
  const double rho = 120.0;
  const double cold = kernel.erlang_b(150, rho);
  const auto after_cold = kernel.stats();
  const double warm = kernel.erlang_b(150, rho);
  const auto after_warm = kernel.stats();
  EXPECT_DOUBLE_EQ(cold, warm);
  EXPECT_EQ(after_cold.cache_hits, 0u);
  EXPECT_EQ(after_warm.cache_hits, 1u);
  // The second query added no recursion steps.
  EXPECT_EQ(after_warm.steps, after_cold.steps);
  // A smaller n on the same rho is also a pure prefix lookup.
  EXPECT_DOUBLE_EQ(kernel.erlang_b(40, rho), erlang_b(40, rho));
  EXPECT_EQ(kernel.stats().steps, after_cold.steps);
  EXPECT_GT(kernel.stats().hit_rate(), 0.5);
}

TEST(ErlangKernel, ExtensionReusesThePrefix) {
  ErlangKernel kernel;
  const double rho = 500.0;
  kernel.erlang_b(100, rho);
  const auto before = kernel.stats();
  kernel.erlang_b(600, rho);
  const auto after = kernel.stats();
  // Extending 100 -> 600 costs exactly 500 steps, not 600.
  EXPECT_EQ(after.steps - before.steps, 500u);
  EXPECT_DOUBLE_EQ(kernel.erlang_b(600, rho), erlang_b(600, rho));
}

TEST(ErlangKernelServers, MatchesFreeFunctionOnRandomizedGrid) {
  ErlangKernel kernel;
  Rng rng = make_stream(2024, 1);
  for (int trial = 0; trial < 300; ++trial) {
    const double rho = std::exp(rng.uniform(std::log(0.05), std::log(2e4)));
    const double target = std::exp(rng.uniform(std::log(1e-6), std::log(0.5)));
    EXPECT_EQ(kernel.erlang_b_servers(rho, target),
              erlang_b_servers(rho, target))
        << "rho=" << rho << " B=" << target;
  }
}

TEST(ErlangKernelServers, SweepOverTargetsSharesOneRecursion) {
  ErlangKernel kernel;
  const double rho = 2000.0;
  // Tightest target first builds the prefix; every later target is a
  // binary search over it.
  const std::vector<double> targets{1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.2};
  kernel.erlang_b_servers(rho, targets.front());
  const auto built = kernel.stats();
  for (const double target : targets) {
    EXPECT_EQ(kernel.erlang_b_servers(rho, target),
              erlang_b_servers(rho, target));
  }
  EXPECT_EQ(kernel.stats().steps, built.steps);
  EXPECT_EQ(kernel.stats().cache_hits, targets.size());
}

TEST(ErlangKernelServers, EdgeCasesMatchFreeFunction) {
  ErlangKernel kernel;
  EXPECT_EQ(kernel.erlang_b_servers(0.0, 0.01), 0u);
  EXPECT_EQ(kernel.erlang_b_servers(100.0, 1.0), 0u);
  EXPECT_THROW(kernel.erlang_b_servers(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(kernel.erlang_b(3, -0.5), InvalidArgument);
}

TEST(ErlangKernelCapacity, AgreesWithBisectionInverse) {
  ErlangKernel kernel;
  for (const std::uint64_t n : {1ull, 4ull, 16ull, 64ull, 500ull}) {
    for (const double target : {0.001, 0.01, 0.1}) {
      const double expected = erlang_b_capacity(n, target);
      const double actual = kernel.erlang_b_capacity(n, target);
      EXPECT_NEAR(actual, expected, 1e-9 * (1.0 + expected))
          << "n=" << n << " B=" << target;
      // And it really inverts the blocking.
      EXPECT_NEAR(erlang_b(n, actual), target, 1e-9 * target) << "n=" << n;
    }
  }
}

TEST(ErlangKernelCapacity, ValidatesInputs) {
  ErlangKernel kernel;
  EXPECT_THROW(kernel.erlang_b_capacity(0, 0.01), InvalidArgument);
  EXPECT_THROW(kernel.erlang_b_capacity(4, 0.0), InvalidArgument);
  EXPECT_THROW(kernel.erlang_b_capacity(4, 1.0), InvalidArgument);
}

TEST(ErlangKernelLog, MatchesLinearDomainWhereRepresentable) {
  ErlangKernel kernel;
  Rng rng = make_stream(2024, 2);
  for (int trial = 0; trial < 200; ++trial) {
    const double rho = std::exp(rng.uniform(std::log(0.1), std::log(1e4)));
    const auto servers = 1 + rng.uniform_index(3000);
    const double linear = erlang_b(servers, rho);
    if (linear < 1e-280) {
      continue;  // covered by the underflow test below
    }
    EXPECT_NEAR(kernel.log_erlang_b(servers, rho), std::log(linear),
                1e-12 * (1.0 + std::abs(std::log(linear))))
        << "n=" << servers << " rho=" << rho;
  }
}

TEST(ErlangKernelLog, LargeRhoPointsStayAccurate) {
  ErlangKernel kernel;
  // rho = 1e6: far beyond where naive factorial forms overflow; the
  // recurrence and the log recurrence must agree to ~1e-9 relative
  // (error grows like n * eps over 1e6 steps).
  const double rho = 1e6;
  for (const double over : {1.0, 1.001, 1.01}) {
    const auto servers = static_cast<std::uint64_t>(rho * over);
    const double linear = erlang_b(servers, rho);
    EXPECT_NEAR(std::exp(kernel.log_erlang_b(servers, rho)), linear,
                1e-7 * linear)
        << "n=" << servers;
  }
}

TEST(ErlangKernelLog, FiniteWhereLinearDomainUnderflows) {
  ErlangKernel kernel;
  // rho = 5, n = 500: E_n ~ 5^n/n! shrinks far below DBL_MIN.
  EXPECT_EQ(erlang_b(500, 5.0), 0.0);  // the linear recurrence underflows
  const double log_e = kernel.log_erlang_b(500, 5.0);
  EXPECT_TRUE(std::isfinite(log_e));
  EXPECT_LT(log_e, std::log(1e-300));
  // Still strictly decreasing in n.
  EXPECT_LT(log_e, kernel.log_erlang_b(400, 5.0));
  // Degenerate loads.
  EXPECT_DOUBLE_EQ(kernel.log_erlang_b(0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(kernel.log_erlang_b(3, 0.0)));
}

TEST(ErlangKernel, EvictionKeepsAnswersCorrect) {
  ErlangKernel kernel(/*max_states=*/2);
  // Three distinct rho values churn the 2-slot cache; answers must be
  // unaffected by which states survive.
  for (int round = 0; round < 3; ++round) {
    for (const double rho : {10.0, 20.0, 30.0}) {
      EXPECT_DOUBLE_EQ(kernel.erlang_b(50, rho), erlang_b(50, rho));
    }
  }
}

TEST(ErlangKernel, ClearResetsStateAndStats) {
  ErlangKernel kernel;
  kernel.erlang_b(100, 80.0);
  kernel.clear();
  EXPECT_EQ(kernel.stats().evaluations, 0u);
  EXPECT_EQ(kernel.stats().steps, 0u);
  EXPECT_DOUBLE_EQ(kernel.erlang_b(100, 80.0), erlang_b(100, 80.0));
}

TEST(ErlangKernel, ConcurrentQueriesAreConsistent) {
  ErlangKernel kernel;
  ThreadPool pool(4);
  constexpr std::size_t kQueries = 400;
  std::vector<double> results(kQueries);
  parallel_for(
      kQueries,
      [&](std::size_t i) {
        // A handful of rho values shared across threads maximizes cache
        // contention; derive everything from the index for determinism.
        const double rho = 50.0 + static_cast<double>(i % 7) * 35.0;
        const std::uint64_t servers = 1 + (i % 200);
        results[i] = kernel.erlang_b(servers, rho);
      },
      pool);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const double rho = 50.0 + static_cast<double>(i % 7) * 35.0;
    const std::uint64_t servers = 1 + (i % 200);
    EXPECT_DOUBLE_EQ(results[i], erlang_b(servers, rho)) << "i=" << i;
  }
}

TEST(ErlangKernel, PublishMovesArenaIntoSnapshot) {
  ErlangKernel kernel;
  const double rho = 300.0;
  kernel.erlang_b(200, rho);  // cold: built in this thread's arena
  EXPECT_EQ(kernel.stats().snapshot_hits, 0u);
  EXPECT_EQ(kernel.stats().arena_extensions, 1u);
  EXPECT_EQ(kernel.stats().merges, 0u);

  kernel.publish();
  EXPECT_EQ(kernel.stats().merges, 1u);

  // Any query inside the published prefix is now a lock-free snapshot hit
  // costing zero recursion steps — including the exact boundary n.
  const auto before = kernel.stats();
  EXPECT_DOUBLE_EQ(kernel.erlang_b(150, rho), erlang_b(150, rho));
  EXPECT_DOUBLE_EQ(kernel.erlang_b(200, rho), erlang_b(200, rho));
  const auto after = kernel.stats();
  EXPECT_EQ(after.snapshot_hits, before.snapshot_hits + 2);
  EXPECT_EQ(after.cache_hits, before.cache_hits + 2);
  EXPECT_EQ(after.steps, before.steps);
}

TEST(ErlangKernel, ExtensionResumesFromPublishedPrefix) {
  ErlangKernel kernel;
  const double rho = 500.0;
  kernel.erlang_b(100, rho);
  kernel.publish();
  const auto before = kernel.stats();
  // The arena was drained by publish(); extending past the snapshot still
  // resumes at 100, it does not restart from E_0.
  kernel.erlang_b(600, rho);
  const auto after = kernel.stats();
  EXPECT_EQ(after.steps - before.steps, 500u);
  EXPECT_DOUBLE_EQ(kernel.erlang_b(600, rho), erlang_b(600, rho));
}

TEST(ErlangKernel, WatermarkFoldsArenaAutomatically) {
  ErlangKernel kernel;
  // One query whose extension crosses the arena watermark (2^16 doubles)
  // must end its epoch by itself: the merge happens without any explicit
  // publish() and the next covered query is a snapshot hit.
  kernel.erlang_b(70000, 100.0);
  EXPECT_EQ(kernel.stats().merges, 1u);
  const auto before = kernel.stats();
  EXPECT_DOUBLE_EQ(kernel.erlang_b(60000, 100.0), erlang_b(60000, 100.0));
  const auto after = kernel.stats();
  EXPECT_EQ(after.snapshot_hits, before.snapshot_hits + 1);
  EXPECT_EQ(after.steps, before.steps);
}

TEST(ErlangKernel, PublishOnFreshKernelIsHarmless) {
  ErlangKernel kernel;
  kernel.publish();  // no arenas registered anywhere: empty snapshot
  EXPECT_EQ(kernel.stats().merges, 1u);
  EXPECT_DOUBLE_EQ(kernel.erlang_b(50, 40.0), erlang_b(50, 40.0));
}

TEST(ErlangKernel, ClearZeroesConcurrencyCounters) {
  ErlangKernel kernel;
  kernel.erlang_b(200, 300.0);
  kernel.publish();
  kernel.erlang_b(100, 300.0);  // snapshot hit
  ASSERT_GT(kernel.stats().snapshot_hits, 0u);
  ASSERT_GT(kernel.stats().arena_extensions, 0u);
  ASSERT_GT(kernel.stats().merges, 0u);
  kernel.clear();
  const auto stats = kernel.stats();
  EXPECT_EQ(stats.snapshot_hits, 0u);
  EXPECT_EQ(stats.arena_extensions, 0u);
  EXPECT_EQ(stats.merges, 0u);
  // The snapshot was dropped too: the same query is cold again.
  const auto before = kernel.stats();
  kernel.erlang_b(100, 300.0);
  EXPECT_EQ(kernel.stats().steps - before.steps, 100u);
}

TEST(ErlangKernel, ConcurrentPublishAndQueriesAgree) {
  ErlangKernel kernel;
  ThreadPool pool(4);
  constexpr std::size_t kQueries = 600;
  std::vector<double> results(kQueries);
  parallel_for(
      kQueries,
      [&](std::size_t i) {
        // Interleave merges with reads and private extensions: every 97th
        // index publishes mid-traffic. Results must be unaffected — merged
        // prefixes are bit-identical to the arena values they replace.
        if (i % 97 == 0) {
          kernel.publish();
        }
        const double rho = 50.0 + static_cast<double>(i % 5) * 61.0;
        const std::uint64_t servers = 1 + (i % 300);
        results[i] = kernel.erlang_b(servers, rho);
      },
      pool);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const double rho = 50.0 + static_cast<double>(i % 5) * 61.0;
    const std::uint64_t servers = 1 + (i % 300);
    EXPECT_DOUBLE_EQ(results[i], erlang_b(servers, rho)) << "i=" << i;
  }
  EXPECT_GE(kernel.stats().merges, 1u);
}

TEST(ErlangKernel, SharedInstanceIsAvailable) {
  // Smoke test only: other suites also use the shared kernel, so no
  // assumptions about its counters.
  EXPECT_DOUBLE_EQ(ErlangKernel::shared().erlang_b(10, 5.0), erlang_b(10, 5.0));
}

}  // namespace
}  // namespace vmcons::queueing
