// Property tests for the multi-lane batched Erlang walk: eval_many and
// servers_for_many advance util::simd::kRecurrenceLanes independent rho
// chains in lockstep, and the contract is bit-identity — every answer must
// equal the scalar free function's answer bit-for-bit, for any span shape
// (duplicate rhos, spans shorter than a lane pack, tails that do not fill
// the last pack) and on every engine path (normal-range packs, the
// subnormal tail finisher, the exact-zero tail, target-mode stops resolved
// at block boundaries). The quarantine property rides along: a batch of
// one per query must reproduce the whole-span walk exactly, because that
// is what BatchEvaluator's cell-at-a-time fallback relies on.
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace vmcons::queueing {
namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(ErlangKernelLanes, LaneWidthIsSane) {
  static_assert(util::simd::kRecurrenceLanes >= 8);
  static_assert(util::simd::kRecurrenceLanes %
                    util::simd::kNativeDoubleLanes ==
                0);
}

TEST(ErlangKernelLanes, EvalManyBitIdenticalOnRandomSpans) {
  Rng rng = make_stream(7101, 0);
  for (int trial = 0; trial < 60; ++trial) {
    ErlangKernel kernel;
    // Span sizes sweep through every lane-tail remainder: fewer queries
    // than one pack, exactly a pack, and ragged multiples.
    const std::size_t count = 1 + rng.uniform_index(41);
    std::vector<BlockingQuery> queries(count);
    for (BlockingQuery& q : queries) {
      // Few distinct rhos per span forces duplicate-rho lanes and shared
      // prefix extensions inside one walk.
      const double rho = 0.5 + static_cast<double>(rng.uniform_index(6)) *
                                   (20.0 + rng.uniform(0.0, 5.0));
      q.rho = rho;
      q.servers = rng.uniform_index(600);
    }
    std::vector<double> out(count);
    kernel.eval_many(queries, out);
    for (std::size_t i = 0; i < count; ++i) {
      const double scalar = erlang_b(queries[i].servers, queries[i].rho);
      EXPECT_EQ(bits(out[i]), bits(scalar))
          << "trial=" << trial << " i=" << i << " n=" << queries[i].servers
          << " rho=" << queries[i].rho;
    }
  }
}

TEST(ErlangKernelLanes, ServersForManyBitIdenticalOnRandomSpans) {
  Rng rng = make_stream(7101, 1);
  for (int trial = 0; trial < 60; ++trial) {
    ErlangKernel kernel;
    const std::size_t count = 1 + rng.uniform_index(41);
    std::vector<StaffingQuery> queries(count);
    for (StaffingQuery& q : queries) {
      q.rho = std::exp(rng.uniform(std::log(0.05), std::log(3e3)));
      q.target_blocking =
          std::exp(rng.uniform(std::log(1e-6), std::log(0.5)));
    }
    std::vector<std::uint64_t> out(count);
    kernel.servers_for_many(queries, out);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], erlang_b_servers(queries[i].rho,
                                         queries[i].target_blocking))
          << "trial=" << trial << " i=" << i << " rho=" << queries[i].rho
          << " B=" << queries[i].target_blocking;
    }
  }
}

TEST(ErlangKernelLanes, DuplicateRhosShareOnePrefixWalk) {
  ErlangKernel kernel;
  // More duplicates of one rho than there are lanes: the walk must fold
  // them into one chain, and the answers stay per-query exact.
  const double rho = 137.25;
  std::vector<BlockingQuery> queries;
  for (std::uint64_t n = 0; n < 3 * util::simd::kRecurrenceLanes; ++n) {
    queries.push_back({7 * n + 1, rho});
  }
  std::vector<double> out(queries.size());
  kernel.eval_many(queries, out);
  std::uint64_t steps_after = kernel.stats().steps;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(bits(out[i]), bits(erlang_b(queries[i].servers, rho)));
  }
  // One prefix, extended once to the deepest n — not one walk per query.
  EXPECT_EQ(steps_after, 7 * (3 * util::simd::kRecurrenceLanes - 1) + 1);
}

TEST(ErlangKernelLanes, SubnormalTailMatchesScalarBitForBit) {
  // Deep-tail queries walk E_n through the full decay: normal range, the
  // subnormal band (where the integer tail finisher emulates hardware
  // rounding exactly), and the exact-0.0 zone past n = 2 rho. Every value
  // must still be bit-identical to the scalar recurrence.
  ErlangKernel kernel;
  Rng rng = make_stream(7101, 2);
  std::vector<BlockingQuery> queries;
  for (int j = 0; j < 24; ++j) {
    const double rho = 40.0 + rng.uniform(0.0, 360.0);
    // Land n on both sides of the subnormal onset (~1.76 rho) and of the
    // exact-zero boundary (2 rho), plus far past it.
    const double over = rng.uniform(1.5, 3.2);
    queries.push_back(
        {static_cast<std::uint64_t>(rho * over), rho});
  }
  std::vector<double> out(queries.size());
  kernel.eval_many(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const double scalar = erlang_b(queries[i].servers, queries[i].rho);
    EXPECT_EQ(bits(out[i]), bits(scalar))
        << "n=" << queries[i].servers << " rho=" << queries[i].rho;
  }
}

TEST(ErlangKernelLanes, SubnormalPrefixResumesExactly) {
  // Second call resumes from a cached prefix whose last value is already
  // subnormal — the plan-time tail shortcut must produce the same bits as
  // a cold scalar walk to the deeper n.
  ErlangKernel kernel;
  const double rho = 200.0;
  std::vector<BlockingQuery> first{{static_cast<std::uint64_t>(1.9 * rho),
                                    rho}};
  std::vector<double> out1(first.size());
  kernel.eval_many(first, out1);
  EXPECT_EQ(bits(out1[0]), bits(erlang_b(first[0].servers, rho)));

  kernel.publish();  // resume from the snapshot tier, not the arena

  std::vector<BlockingQuery> second{{static_cast<std::uint64_t>(2.5 * rho),
                                     rho},
                                    {static_cast<std::uint64_t>(4.0 * rho),
                                     rho}};
  std::vector<double> out2(second.size());
  kernel.eval_many(second, out2);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(bits(out2[i]), bits(erlang_b(second[i].servers, rho)));
  }
}

TEST(ErlangKernelLanes, QuarantineRerunsReproduceTheSpanWalk) {
  // BatchEvaluator's quarantine fallback re-evaluates one cell at a time;
  // its correctness rests on batches of one being bit-identical to the
  // staged whole-span walk against the same kernel.
  Rng rng = make_stream(7101, 3);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t count = 3 + rng.uniform_index(30);
    std::vector<BlockingQuery> eval_queries(count);
    std::vector<StaffingQuery> staff_queries(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double rho = std::exp(rng.uniform(std::log(0.5), std::log(800.0)));
      eval_queries[i] = {rng.uniform_index(900), rho};
      staff_queries[i] = {rho,
                          std::exp(rng.uniform(std::log(1e-5), std::log(0.3)))};
    }

    ErlangKernel whole;
    std::vector<double> eval_span(count);
    std::vector<std::uint64_t> staff_span(count);
    whole.eval_many(eval_queries, eval_span);
    whole.servers_for_many(staff_queries, staff_span);

    ErlangKernel cells;
    for (std::size_t i = 0; i < count; ++i) {
      double one_eval = 0.0;
      std::uint64_t one_staff = 0;
      cells.eval_many(std::span<const BlockingQuery>(&eval_queries[i], 1),
                      std::span<double>(&one_eval, 1));
      cells.servers_for_many(
          std::span<const StaffingQuery>(&staff_queries[i], 1),
          std::span<std::uint64_t>(&one_staff, 1));
      EXPECT_EQ(bits(one_eval), bits(eval_span[i])) << "i=" << i;
      EXPECT_EQ(one_staff, staff_span[i]) << "i=" << i;
    }
  }
}

TEST(ErlangKernelLanes, StaffingTargetsSweepSharedPrefix) {
  // Same rho at many targets in one span: the sorted walk visits the rho
  // once (descending target), and block-boundary stop resolution must give
  // exactly the scalar minimum n for each target.
  ErlangKernel kernel;
  const double rho = 512.5;
  std::vector<StaffingQuery> queries;
  for (const double target :
       {0.3, 0.1, 0.05, 0.01, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10}) {
    queries.push_back({rho, target});
    queries.push_back({rho, target});  // duplicates inside the same span
  }
  std::vector<std::uint64_t> out(queries.size());
  kernel.servers_for_many(queries, out);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(out[i], erlang_b_servers(rho, queries[i].target_blocking))
        << "B=" << queries[i].target_blocking;
  }
}

}  // namespace
}  // namespace vmcons::queueing
