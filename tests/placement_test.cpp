// Tests for VM placement: packing heuristics, anti-affinity, and
// migration-minimizing replans.
#include "datacenter/placement.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::dc {
namespace {

std::vector<VmRequirement> paper_vms(unsigned pairs) {
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < pairs; ++i) {
    vms.push_back(paper_web_vm_requirement(i));
    vms.push_back(paper_db_vm_requirement(i));
  }
  return vms;
}

TEST(Placement, PaperDeploymentFitsOnePairPerHost) {
  // Web VM (1 vCPU) + DB VM (6 vCPUs) = 7 > 6 usable cores, so the paper's
  // hosts (8 cores, 2 for Domain-0) hold one DB VM and... check the math:
  // actually the testbed pins 6 DB vCPUs + 1 web vCPU onto 6 cores by
  // sharing; our packing model is strict, so relax the reservation to 1.
  HostShape host;
  host.reserved_cores = 1;  // 7 usable: 6 (db) + 1 (web)
  const auto placement = pack_vms(paper_vms(3), host, 3);
  EXPECT_TRUE(placement.feasible);
  EXPECT_EQ(placement.hosts_used(), 3u);
  for (const auto& assignment : placement.assignments) {
    EXPECT_EQ(assignment.size(), 2u);  // one web + one db per host
  }
}

TEST(Placement, MinHostsMatchesVolumeForPerfectFit) {
  // 12 identical 2-core VMs into 6-core hosts: exactly 4 hosts.
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < 12; ++i) {
    vms.push_back({"vm" + std::to_string(i), 2, 1.0, 0});
  }
  HostShape host;  // 6 usable cores, 7 GB usable
  EXPECT_EQ(min_hosts(vms, host), 4u);
}

TEST(Placement, FirstFitDecreasingBeatsNaiveOrderOnPathologicalInput) {
  // Classic bin-packing: sizes {4,4,4,3,3,3} into capacity 6 -> FFD needs
  // ceil(21/6)=4... verify FFD finds the 4-host packing ({4},{4},{4},{3,3}
  // wait: {3,3} fits; {4}+? nothing fits with 4 -> hosts: 3x{4}, 1x{3,3},
  // leftover {3} -> 5? Let's just assert FFD <= best-fit-in-input-order.
  std::vector<VmRequirement> vms;
  for (const unsigned size : {3u, 4u, 3u, 4u, 3u, 4u}) {
    vms.push_back({"vm", size, 0.5, 0});
  }
  HostShape host;
  host.cpu_cores = 8;
  host.reserved_cores = 2;  // capacity 6
  const auto ffd =
      pack_vms(vms, host, vms.size(), PackingHeuristic::kFirstFitDecreasing);
  const auto bf = pack_vms(vms, host, vms.size(), PackingHeuristic::kBestFit);
  EXPECT_TRUE(ffd.feasible);
  EXPECT_TRUE(bf.feasible);
  EXPECT_LE(ffd.hosts_used(), bf.hosts_used());
}

TEST(Placement, MemoryConstrainsEvenWithFreeCores) {
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < 4; ++i) {
    vms.push_back({"fat-vm", 1, 4.0, 0});  // 1 core but 4 GB each
  }
  HostShape host;  // 7 GB usable -> one fat VM per host... 7/4 = 1
  EXPECT_EQ(min_hosts(vms, host), 4u);
}

TEST(Placement, AntiAffinityKeepsServiceReplicasApart) {
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < 3; ++i) {
    vms.push_back({"replica", 1, 1.0, /*service=*/7});
  }
  HostShape host;
  const auto packed =
      pack_vms(vms, host, 3, PackingHeuristic::kFirstFitDecreasing,
               /*one_vm_per_service_per_host=*/true);
  EXPECT_TRUE(packed.feasible);
  EXPECT_EQ(packed.hosts_used(), 3u);
  // Without anti-affinity they share one host.
  const auto colocated = pack_vms(vms, host, 3);
  EXPECT_EQ(colocated.hosts_used(), 1u);
}

TEST(Placement, InfeasibleWhenHostBudgetTooSmall) {
  const auto placement = pack_vms(paper_vms(4), HostShape{.reserved_cores = 1},
                                  /*max_hosts=*/2);
  EXPECT_FALSE(placement.feasible);
  EXPECT_LE(placement.hosts_used(), 2u);
}

TEST(Placement, OversizedVmIsRejected) {
  HostShape host;  // 6 usable cores
  std::vector<VmRequirement> vms{{"huge", 7, 1.0, 0}};
  EXPECT_THROW(pack_vms(vms, host, 4), InvalidArgument);
}

TEST(ClassedPlacement, PrefersDeclarationOrderAndSpillsToNextClass) {
  // Two big-host slots, then unlimited small hosts: the packer opens the
  // preferred big hosts first and spills the remainder onto small ones.
  HostShape big;
  big.cpu_cores = 16;
  big.memory_gb = 32.0;
  HostShape small;
  small.cpu_cores = 8;
  small.memory_gb = 8.0;
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < 10; ++i) {
    vms.push_back({"vm-" + std::to_string(i), 4, 2.0, i});
  }
  const ClassedPlacement classed = pack_vms_classed(
      vms, {{"big", big, 2}, {"small", small, kUnlimitedHosts}});
  EXPECT_TRUE(classed.placement.feasible);
  ASSERT_EQ(classed.host_class.size(), classed.placement.hosts_used());
  // Big hosts (14 usable cores) take 3 VMs each; the remaining 4 VMs spill
  // onto small hosts (6 usable cores hold one 4-vCPU VM apiece).
  EXPECT_EQ(classed.host_class[0], 0u);
  EXPECT_EQ(classed.host_class[1], 0u);
  std::size_t big_hosts = 0;
  for (const std::size_t c : classed.host_class) {
    big_hosts += (c == 0) ? 1 : 0;
  }
  EXPECT_EQ(big_hosts, 2u);
}

TEST(ClassedPlacement, VmTooBigForEveryClassIsRejectedByName) {
  HostShape tiny;
  tiny.cpu_cores = 4;
  tiny.memory_gb = 4.0;
  try {
    pack_vms_classed({{"leviathan", 12, 2.0, 0}}, {{"tiny", tiny, 4}});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("leviathan"),
              std::string::npos);
  }
}

TEST(ClassedPlacement, RunsOutOfBoundedHostsGracefully) {
  HostShape host;  // 6 usable cores
  std::vector<VmRequirement> vms;
  for (unsigned i = 0; i < 8; ++i) {
    vms.push_back({"vm-" + std::to_string(i), 6, 1.0, i});
  }
  const ClassedPlacement classed =
      pack_vms_classed(vms, {{"only", host, 3}});
  EXPECT_FALSE(classed.placement.feasible);
  EXPECT_EQ(classed.placement.hosts_used(), 3u);  // partial packing kept
}

TEST(ClassedPlacement, SingleUnboundedClassMatchesPackVms) {
  HostShape host;
  host.reserved_cores = 1;
  const auto vms = paper_vms(4);
  const Placement classic = pack_vms(vms, host, vms.size());
  const ClassedPlacement classed =
      pack_vms_classed(vms, {{"uniform", host, kUnlimitedHosts}});
  EXPECT_TRUE(classed.placement.feasible);
  EXPECT_EQ(classed.placement.hosts_used(), classic.hosts_used());
  ASSERT_EQ(classed.placement.assignments.size(),
            classic.assignments.size());
  for (std::size_t h = 0; h < classic.assignments.size(); ++h) {
    EXPECT_EQ(classed.placement.assignments[h], classic.assignments[h]);
  }
}

TEST(Replan, NoChangeMeansNoMigrations) {
  HostShape host;
  host.reserved_cores = 1;
  const auto vms = paper_vms(3);
  const auto initial = pack_vms(vms, host, 3);
  ASSERT_TRUE(initial.feasible);
  std::vector<std::size_t> current(vms.size());
  for (std::size_t h = 0; h < initial.assignments.size(); ++h) {
    for (const std::size_t vm : initial.assignments[h]) {
      current[vm] = h;
    }
  }
  const auto replan = replan_minimal_migrations(vms, current, host, 3);
  EXPECT_TRUE(replan.placement.feasible);
  EXPECT_EQ(replan.migrations, 0u);
}

TEST(Replan, NewVmsPlaceWithoutMovingExisting) {
  HostShape host;  // 6 usable cores
  std::vector<VmRequirement> vms{{"a", 2, 1.0, 0}, {"b", 2, 1.0, 0}};
  std::vector<std::size_t> current{0, 1};  // spread over two hosts
  vms.push_back({"c", 2, 1.0, 0});         // new arrival, unplaced
  current.push_back(static_cast<std::size_t>(-1));
  const auto replan = replan_minimal_migrations(vms, current, host, 2);
  EXPECT_TRUE(replan.placement.feasible);
  EXPECT_EQ(replan.migrations, 0u);  // 'c' was never placed, so no move
}

TEST(Replan, ShrinkingFleetForcesMigrations) {
  HostShape host;  // 6 usable cores
  std::vector<VmRequirement> vms{{"a", 2, 1.0, 0},
                                 {"b", 2, 1.0, 0},
                                 {"c", 2, 1.0, 0}};
  // Currently spread across 3 hosts, but only 1 host remains available.
  const std::vector<std::size_t> current{0, 1, 2};
  const auto replan = replan_minimal_migrations(vms, current, host, 1);
  EXPECT_TRUE(replan.placement.feasible);
  EXPECT_EQ(replan.placement.hosts_used(), 1u);
  EXPECT_EQ(replan.migrations, 2u);  // host 0's VM stays, two move
}

TEST(Replan, Validation) {
  HostShape host;
  std::vector<VmRequirement> vms{{"a", 1, 1.0, 0}};
  EXPECT_THROW(replan_minimal_migrations(vms, {}, host, 2), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::dc
