// Tests for the reduced-load (Erlang fixed point) approximation and its
// bridge to the model inputs.
#include "queueing/fixed_point.hpp"

#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/model.hpp"
#include "datacenter/loss_network.hpp"
#include "queueing/erlang.hpp"
#include "sim/replication.hpp"
#include "util/error.hpp"

namespace vmcons {
namespace {

using queueing::LossClass;

TEST(FixedPoint, SingleClassSingleResourceIsPlainErlangB) {
  LossClass loss_class;
  loss_class.arrival_rate = 2.0;
  loss_class.service_rates = {1.0};
  const auto result = queueing::reduced_load_blocking({loss_class}, 3);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.resource_blocking[0], queueing::erlang_b(3, 2.0), 1e-10);
  EXPECT_NEAR(result.class_blocking[0], queueing::erlang_b(3, 2.0), 1e-10);
}

TEST(FixedPoint, DisjointResourcesDecouple) {
  // Two classes on two disjoint resources: each is an independent Erlang-B.
  LossClass a;
  a.arrival_rate = 2.0;
  a.service_rates = {1.0, 0.0};
  LossClass b;
  b.arrival_rate = 1.0;
  b.service_rates = {0.0, 1.0};
  const auto result = queueing::reduced_load_blocking({a, b}, 3);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.resource_blocking[0], queueing::erlang_b(3, 2.0), 1e-10);
  EXPECT_NEAR(result.resource_blocking[1], queueing::erlang_b(3, 1.0), 1e-10);
}

TEST(FixedPoint, CouplingThinsTheLoad) {
  // One class demanding two equally-loaded resources: each resource sees
  // load thinned by the other's acceptance, so per-resource blocking is
  // BELOW the independent value.
  LossClass both;
  both.arrival_rate = 3.0;
  both.service_rates = {1.0, 1.0};
  const auto result = queueing::reduced_load_blocking({both}, 3);
  ASSERT_TRUE(result.converged);
  const double independent = queueing::erlang_b(3, 3.0);
  for (const double blocking : result.resource_blocking) {
    EXPECT_LT(blocking, independent);
    EXPECT_GT(blocking, 0.0);
  }
  // End-to-end class blocking combines both resources.
  EXPECT_GT(result.class_blocking[0], result.resource_blocking[0]);
}

TEST(FixedPoint, MatchesSimulationBetterThanPaperModel) {
  // The group-1 case study: the paper model's Eq. (4) rate averaging is
  // optimistic; the reduced-load estimate should land closer to the
  // simulated loss network.
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 3, 0.01);
  db.arrival_rate = core::intensive_workload(db, 3, 0.01);
  inputs.services = {web, db};

  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  const double paper_estimate = plan.consolidated_blocking;
  const auto fixed_point =
      core::reduced_load_consolidated_loss(inputs, plan.consolidated_servers);
  ASSERT_TRUE(fixed_point.converged);

  dc::LossNetworkConfig config;
  config.services = inputs.services;
  config.servers = static_cast<unsigned>(plan.consolidated_servers);
  config.vm_count = 2;
  config.horizon = 4000.0;
  config.warmup = 400.0;
  const auto simulated = sim::replicate_scalar(
      8, 171, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(config, rng).pool.overall_loss();
      });

  const double simulated_loss = simulated.summary.mean();
  EXPECT_LT(std::abs(fixed_point.overall_blocking - simulated_loss),
            std::abs(paper_estimate - simulated_loss));
}

TEST(FixedPoint, CapacityInverseSatisfiesTarget) {
  LossClass a;
  a.arrival_rate = 2.0;
  a.service_rates = {1.0, 3.0};
  LossClass b;
  b.arrival_rate = 1.5;
  b.service_rates = {0.0, 1.0};
  const std::uint64_t capacity =
      queueing::reduced_load_capacity({a, b}, 0.01);
  EXPECT_LE(queueing::reduced_load_blocking({a, b}, capacity).overall_blocking,
            0.01);
  if (capacity > 1) {
    EXPECT_GT(
        queueing::reduced_load_blocking({a, b}, capacity - 1).overall_blocking,
        0.01);
  }
}

TEST(FixedPoint, BridgeBuildsOneClassPerService) {
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = 100.0;
  db.arrival_rate = 30.0;
  inputs.services = {web, db};
  const auto classes = core::consolidated_loss_classes(inputs);
  ASSERT_EQ(classes.size(), 2u);
  // Web: disk 420*0.8, cpu 3360*0.65 at v=2.
  EXPECT_NEAR(classes[0].service_rates[static_cast<std::size_t>(
                  dc::Resource::kDiskIo)],
              336.0, 1e-9);
  EXPECT_NEAR(
      classes[0].service_rates[static_cast<std::size_t>(dc::Resource::kCpu)],
      2184.0, 1e-9);
  EXPECT_NEAR(
      classes[1].service_rates[static_cast<std::size_t>(dc::Resource::kCpu)],
      90.0, 1e-9);
}

TEST(FixedPoint, Validation) {
  EXPECT_THROW(queueing::reduced_load_blocking({}, 1), InvalidArgument);
  LossClass no_demand;
  no_demand.arrival_rate = 1.0;
  no_demand.service_rates = {0.0};
  EXPECT_THROW(queueing::reduced_load_blocking({no_demand}, 1),
               InvalidArgument);
  LossClass ok;
  ok.arrival_rate = 1.0;
  ok.service_rates = {1.0};
  EXPECT_THROW(queueing::reduced_load_blocking({ok}, 0), InvalidArgument);
  EXPECT_THROW(queueing::reduced_load_capacity({ok}, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
