// Tests for the SweepGrid what-if API: deterministic index-derived
// enumeration, parallel/memoized output identical to a serial cold run,
// and sweep_target_loss staying a faithful wrapper.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {
namespace {

ConsolidationPlanner case_study_planner() {
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01).add_service(web).add_service(db);
  return planner;
}

void expect_same_report(const PlanReport& a, const PlanReport& b) {
  EXPECT_EQ(a.model.dedicated_servers, b.model.dedicated_servers);
  EXPECT_EQ(a.model.consolidated_servers, b.model.consolidated_servers);
  EXPECT_DOUBLE_EQ(a.model.consolidated_blocking,
                   b.model.consolidated_blocking);
  EXPECT_DOUBLE_EQ(a.model.power_saving, b.model.power_saving);
  EXPECT_DOUBLE_EQ(a.model.dedicated_utilization,
                   b.model.dedicated_utilization);
  ASSERT_EQ(a.arrival_rates.size(), b.arrival_rates.size());
  for (std::size_t i = 0; i < a.arrival_rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.arrival_rates[i], b.arrival_rates[i]);
  }
}

TEST(SweepGrid, SizeIsProductOfNonEmptyAxes) {
  SweepGrid grid;
  EXPECT_EQ(grid.size(), 1u);  // all axes inherit -> one point
  grid.target_losses({0.01, 0.001});
  EXPECT_EQ(grid.size(), 2u);
  grid.workload_scales({1.0, 2.0, 4.0});
  EXPECT_EQ(grid.size(), 6u);
  grid.vms_per_server({2, 4});
  EXPECT_EQ(grid.size(), 12u);
  grid.fleet_mixes({{4, 0}, {0, 4}});
  EXPECT_EQ(grid.size(), 24u);
}

TEST(SweepGrid, FleetMixesValidateShape) {
  SweepGrid grid;
  EXPECT_THROW(grid.fleet_mixes({{}}), InvalidArgument);  // empty mix
  EXPECT_THROW(grid.fleet_mixes({{1, 2}, {3}}), InvalidArgument);  // ragged
  grid.fleet_mixes({{1, 2}, {3, 4}});
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.point(1).fleet_mix->at(1), 4u);
}

TEST(SweepGrid, PointDecomposesIndexLossFastest) {
  SweepGrid grid;
  grid.target_losses({0.05, 0.01}).workload_scales({1.0, 2.0}).vms_per_server(
      {3});
  ASSERT_EQ(grid.size(), 4u);
  const auto points = grid.points();
  // Index layout: loss varies fastest, then vms, then scale.
  EXPECT_DOUBLE_EQ(*points[0].target_loss, 0.05);
  EXPECT_DOUBLE_EQ(*points[1].target_loss, 0.01);
  EXPECT_DOUBLE_EQ(*points[0].workload_scale, 1.0);
  EXPECT_DOUBLE_EQ(*points[2].workload_scale, 2.0);
  EXPECT_EQ(*points[3].vms_per_server, 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
}

TEST(SweepGrid, EmptyAxesInheritPlannerSettings) {
  SweepGrid grid;
  const SweepPoint point = grid.point(0);
  EXPECT_FALSE(point.target_loss.has_value());
  EXPECT_FALSE(point.workload_scale.has_value());
  EXPECT_FALSE(point.vms_per_server.has_value());
}

TEST(SweepGrid, ValidatesAxisValues) {
  SweepGrid grid;
  EXPECT_THROW(grid.target_losses({0.5, 1.5}), InvalidArgument);
  EXPECT_THROW(grid.workload_scales({0.0}), InvalidArgument);
  EXPECT_THROW(grid.vms_per_server({0}), InvalidArgument);
  EXPECT_THROW(grid.point(1), InvalidArgument);
}

TEST(SweepGrid, SizeOverflowFailsLoudlyWithAxisContext) {
  // 2^21 x 2^21 x 2^21 x 2 = 2^64 wraps std::size_t to 0; a silent wrap would
  // make a grid request iterate the wrong cell count. The axis vectors are
  // large but the values are valid, so only the product is at fault.
  SweepGrid grid;
  grid.target_losses(std::vector<double>(std::size_t{1} << 21, 0.01))
      .vms_per_server(std::vector<unsigned>(std::size_t{1} << 21, 2))
      .workload_scales(std::vector<double>(std::size_t{1} << 21, 1.0))
      .fleet_mixes(
          std::vector<std::vector<std::uint64_t>>(std::size_t{1} << 1, {1}));
  try {
    grid.size();
    FAIL() << "expected NumericError";
  } catch (const NumericError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNumericError);
    const std::string what = error.what();
    EXPECT_NE(what.find("overflows"), std::string::npos);
    EXPECT_NE(what.find("2097152 target losses"), std::string::npos);
    EXPECT_NE(what.find("2097152 VMs-per-server"), std::string::npos);
    EXPECT_NE(what.find("2097152 workload scales"), std::string::npos);
    EXPECT_NE(what.find("2 fleet mixes"), std::string::npos);
  }
  // point() and points() route through size(), so they fail the same way.
  EXPECT_THROW(grid.point(0), NumericError);
}

TEST(Sweep, ParallelMemoizedMatchesSerialCold) {
  const ConsolidationPlanner planner = case_study_planner();
  SweepGrid grid;
  grid.target_losses({0.05, 0.01, 0.001, 0.0001})
      .workload_scales({0.5, 1.0, 2.0, 4.0});

  SweepOptions serial_cold;
  serial_cold.parallel = false;
  serial_cold.memoize = false;
  const auto expected = planner.sweep(grid, serial_cold);

  queueing::ErlangKernel kernel;
  SweepOptions parallel_warm;
  parallel_warm.kernel = &kernel;
  const auto actual = planner.sweep(grid, parallel_warm);

  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_EQ(actual.size(), grid.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].point.index, i);
    expect_same_report(actual[i].report, expected[i].report);
  }
  EXPECT_GT(kernel.stats().evaluations, 0u);
}

TEST(Sweep, RerunningWithTheSameKernelIsDeterministic) {
  const ConsolidationPlanner planner = case_study_planner();
  SweepGrid grid;
  grid.target_losses({0.02, 0.005}).workload_scales({1.0, 3.0});
  queueing::ErlangKernel kernel;
  SweepOptions options;
  options.kernel = &kernel;
  const auto first = planner.sweep(grid, options);
  const auto second = planner.sweep(grid, options);  // warm cache this time
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_same_report(first[i].report, second[i].report);
  }
  EXPECT_GT(kernel.stats().cache_hits, 0u);
}

TEST(Sweep, VmsPerServerAxisIsApplied) {
  const ConsolidationPlanner planner = case_study_planner();
  SweepGrid grid;
  grid.vms_per_server({2, 8});
  const auto cells = planner.sweep(grid);
  ASSERT_EQ(cells.size(), 2u);
  // Denser packing degrades the effective service rate (impact curves), so
  // the 8-VM plan can never need fewer servers than the 2-VM plan.
  EXPECT_GE(cells[1].report.model.consolidated_servers,
            cells[0].report.model.consolidated_servers);
}

TEST(Sweep, RecordsMetrics) {
  const auto before =
      metrics::registry().counter("sweep.points").value();
  const ConsolidationPlanner planner = case_study_planner();
  SweepGrid grid;
  grid.target_losses({0.01, 0.001});
  planner.sweep(grid);
  EXPECT_EQ(metrics::registry().counter("sweep.points").value(), before + 2);
  EXPECT_GT(metrics::registry().timer("sweep.wall").count(), 0u);
}

TEST(SweepTargetLoss, MatchesPerPointPlans) {
  const ConsolidationPlanner planner = case_study_planner();
  const std::vector<double> losses{0.05, 0.01, 0.001};
  const auto reports = planner.sweep_target_loss(losses);
  ASSERT_EQ(reports.size(), losses.size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    ConsolidationPlanner point = planner;
    point.set_target_loss(losses[i]);
    expect_same_report(reports[i], point.plan());
  }
}

}  // namespace
}  // namespace vmcons::core
