// End-to-end tests: the model's predictions versus the simulator — the
// in-repo analogue of the paper's Section IV-C2 case-study validation.
#include "core/validation.hpp"

#include <gtest/gtest.h>

namespace vmcons::core {
namespace {

ModelInputs case_study(std::uint64_t dedicated_per_service) {
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, dedicated_per_service, 0.01);
  db.arrival_rate = intensive_workload(db, dedicated_per_service, 0.01);
  inputs.services = {web, db};
  return inputs;
}

ValidationOptions fast_options() {
  ValidationOptions options;
  options.replications = 6;
  options.scenario.horizon = 1200.0;
  options.scenario.warmup = 120.0;
  return options;
}

TEST(Validation, GroupOneConsolidatedMeetsDedicatedQos) {
  const ValidationReport report = validate(case_study(3), fast_options());
  EXPECT_EQ(report.model.dedicated_servers, 6u);
  EXPECT_EQ(report.consolidated.servers, 3u);
  // Both deployments hold loss near the 1% target. The simulated
  // consolidated loss runs slightly above the model's prediction because
  // Eq. (4) averages service *rates* (arithmetic mean) where the true
  // offered work averages service *times* — a real bias of the paper's
  // model that the joint loss network exposes; see EXPERIMENTS.md.
  EXPECT_LT(report.dedicated.loss.summary.mean(), 0.02);
  EXPECT_LT(report.consolidated.loss.summary.mean(), 0.03);
  EXPECT_LT(report.consolidated_loss_error(), 0.02);
}

TEST(Validation, GroupTwoHeadlineNumbers) {
  const ValidationReport report = validate(case_study(4), fast_options());
  EXPECT_EQ(report.model.dedicated_servers, 8u);
  EXPECT_EQ(report.consolidated.servers, 4u);
  // Paper headlines: ~50% infrastructure, ~53% power, >1.5x utilization.
  EXPECT_NEAR(report.model.infrastructure_saving, 0.5, 1e-9);
  EXPECT_GT(report.measured_power_saving(), 0.40);
  EXPECT_GT(report.measured_utilization_improvement(), 1.3);
}

TEST(Validation, UnderProvisionedConsolidationFails) {
  // Group 1's N = 2 case in Fig. 10: too few consolidated servers lose far
  // more than the target.
  const ModelInputs inputs = case_study(3);
  ValidationOptions options = fast_options();
  options.consolidated_servers = 2;
  const ValidationReport report = validate(inputs, options);
  EXPECT_GT(report.consolidated.loss.summary.mean(), 0.03);
}

TEST(Validation, SimulatedUtilizationTracksModel) {
  const ValidationReport report = validate(case_study(4), fast_options());
  // The simulator's busy-host fraction tracks the model's offered-work
  // estimate loosely: the model charges each request a whole server at its
  // bottleneck rate, while the network's hosts overlap resource holdings
  // (max over resources), so the simulated figure runs somewhat lower.
  EXPECT_NEAR(report.consolidated.utilization.summary.mean(),
              report.model.consolidated_utilization, 0.10);
  EXPECT_NEAR(report.dedicated.utilization.summary.mean(),
              report.model.dedicated_utilization, 0.05);
}

TEST(Validation, PerServiceMetricsArePopulated) {
  const ModelInputs inputs = case_study(3);
  const ValidationReport report = validate(inputs, fast_options());
  ASSERT_EQ(report.consolidated.per_service_loss.size(), 2u);
  ASSERT_EQ(report.dedicated.per_service_throughput.size(), 2u);
  // Each service's throughput is positive and bounded by its arrival rate.
  for (std::size_t i = 0; i < 2; ++i) {
    const double throughput =
        report.consolidated.per_service_throughput[i].summary.mean();
    EXPECT_GT(throughput, 0.0);
    EXPECT_LE(throughput, inputs.services[i].arrival_rate * 1.05);
  }
}

}  // namespace
}  // namespace vmcons::core
