// Parameterized model-vs-simulation grid: at every (B, scale) point the
// model's consolidated staffing N must produce a simulated loss in the same
// band, and N-1 must visibly violate it — the "the model's answer is the
// right answer" property, checked everywhere rather than only at the
// paper's two case-study points. Also tests the generator-sampled
// heterogeneous SPECweb service path.
#include <tuple>

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"
#include "workload/specweb.hpp"

namespace vmcons {
namespace {

using GridPoint = std::tuple<double, double>;  // (B, scale)

class ModelVsSimGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelVsSimGrid, SimulatedLossTracksTheTarget) {
  const auto [b, scale] = GetParam();
  core::ModelInputs inputs;
  inputs.target_loss = b;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 3, 0.01) * scale;
  db.arrival_rate = core::intensive_workload(db, 3, 0.01) * scale;
  inputs.services = {web, db};

  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  const auto n = static_cast<unsigned>(plan.consolidated_servers);

  dc::ScenarioOptions options;
  options.horizon = 1500.0;
  options.warmup = 150.0;

  const auto at_n = sim::replicate_scalar(
      6, 201 + static_cast<std::uint64_t>(b * 1e4 + scale * 7),
      [&](std::size_t, Rng& rng) {
        return dc::simulate_consolidated(inputs.services, n, options, rng)
            .overall_loss();
      });
  // The simulated loss stays within the model's band: the Eq. (4) optimism
  // means up to ~3x the target, never an order of magnitude (and commonly
  // right at it).
  EXPECT_LE(at_n.summary.mean(), b * 3.0 + 0.004)
      << "B=" << b << " scale=" << scale << " N=" << n;

  if (n > 1) {
    const auto at_n_minus_1 = sim::replicate_scalar(
        6, 501 + static_cast<std::uint64_t>(b * 1e4 + scale * 7),
        [&](std::size_t, Rng& rng) {
          return dc::simulate_consolidated(inputs.services, n - 1, options,
                                           rng)
              .overall_loss();
        });
    // One server fewer must lose strictly more.
    EXPECT_GT(at_n_minus_1.summary.mean(), at_n.summary.mean())
        << "B=" << b << " scale=" << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSimGrid,
    ::testing::Combine(::testing::Values(0.005, 0.01, 0.05),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(SpecwebHeterogeneous, GeneratorSampledServiceHasHeavierTail) {
  workload::SpecwebSessionsConfig exponential;
  exponential.servers = 2;
  exponential.duration = 400.0;
  exponential.warmup = 40.0;

  workload::SpecwebSessionsConfig heterogeneous = exponential;
  heterogeneous.sample_from_generator = true;

  // Calibrate: mean generator service time defines the comparable capacity.
  workload::SpecwebGenerator generator{heterogeneous.generator};
  Rng probe(211);
  double mean_service = 0.0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const auto request = generator.sample(probe);
    mean_service += request.disk_seconds + request.cpu_seconds;
  }
  mean_service /= probes;
  exponential.per_server_capacity = 1.0 / mean_service;

  Rng rng_a(212);
  Rng rng_b(212);
  const unsigned sessions = 400;
  const auto exp_point =
      workload::specweb_sessions_run(exponential, sessions, rng_a);
  const auto het_point =
      workload::specweb_sessions_run(heterogeneous, sessions, rng_b);

  // Same mean demand -> similar throughput...
  EXPECT_NEAR(het_point.throughput, exp_point.throughput,
              exp_point.throughput * 0.15);
  // ...but the heavy-tailed (gamma-size, cache-miss) service produces
  // larger mean response at load (Pollaczek-Khinchine effect).
  EXPECT_GT(het_point.mean_response, exp_point.mean_response * 0.9);
}

}  // namespace
}  // namespace vmcons
