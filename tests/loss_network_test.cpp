// Tests for the multi-resource Erlang loss network.
#include "datacenter/loss_network.hpp"

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "sim/replication.hpp"
#include "util/error.hpp"

namespace vmcons::dc {
namespace {

ServiceSpec single_resource_service(double lambda, double mu) {
  ServiceSpec spec;
  spec.name = "svc";
  spec.arrival_rate = lambda;
  spec.demand(Resource::kCpu, mu);
  return spec;
}

TEST(LossNetwork, SingleResourceReducesToErlangB) {
  LossNetworkConfig config;
  config.services = {single_resource_service(2.0, 1.0)};
  config.servers = 3;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      8, 111, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(config, rng).pool.overall_loss();
      });
  EXPECT_NEAR(estimate.summary.mean(), queueing::erlang_b(3, 2.0), 0.012);
}

TEST(LossNetwork, ResourceUtilizationMatchesCarriedLoad) {
  LossNetworkConfig config;
  config.services = {single_resource_service(2.0, 1.0)};
  config.servers = 3;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      8, 112, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(config, rng)
            .resource_utilization[Resource::kCpu];
      });
  EXPECT_NEAR(estimate.summary.mean(),
              queueing::loss_system_utilization(3, 2.0), 0.01);
}

TEST(LossNetwork, UndemandedResourcesStayIdle) {
  LossNetworkConfig config;
  config.services = {single_resource_service(2.0, 1.0)};
  config.servers = 2;
  config.horizon = 500.0;
  config.warmup = 50.0;
  Rng rng(113);
  const LossNetworkOutcome outcome = simulate_loss_network(config, rng);
  EXPECT_DOUBLE_EQ(outcome.resource_utilization[Resource::kDiskIo], 0.0);
  EXPECT_DOUBLE_EQ(outcome.resource_utilization[Resource::kMemory], 0.0);
  EXPECT_GT(outcome.resource_utilization[Resource::kCpu], 0.0);
}

TEST(LossNetwork, MultiResourceServiceBlocksOnEither) {
  // A service demanding two resources with very different rates: blocking
  // is at least the worse single-resource Erlang-B value.
  ServiceSpec spec;
  spec.name = "both";
  spec.arrival_rate = 2.0;
  spec.demand(Resource::kCpu, 1.0);      // slow resource: rho = 2.0
  spec.demand(Resource::kDiskIo, 50.0);  // fast resource: rho = 0.04

  LossNetworkConfig config;
  config.services = {spec};
  config.servers = 3;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      8, 114, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(config, rng).pool.overall_loss();
      });
  const double floor = queueing::erlang_b(3, 2.0);
  EXPECT_GE(estimate.summary.mean(), floor - 0.02);
  // And not absurdly above the independence upper bound.
  const double ceiling = 1.0 - (1.0 - queueing::erlang_b(3, 2.0)) *
                                   (1.0 - queueing::erlang_b(3, 0.04));
  EXPECT_LE(estimate.summary.mean(), ceiling + 0.02);
}

TEST(LossNetwork, VirtualizationDegradesCapacity) {
  ServiceSpec spec = single_resource_service(2.0, 1.0);
  spec.impacts[static_cast<std::size_t>(Resource::kCpu)] =
      virt::Impact::constant(0.5);

  LossNetworkConfig native;
  native.services = {spec};
  native.servers = 3;
  native.vm_count = 0;
  native.horizon = 3000.0;
  native.warmup = 300.0;

  LossNetworkConfig virtualized = native;
  virtualized.vm_count = 2;

  const auto native_loss = sim::replicate_scalar(
      6, 115, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(native, rng).pool.overall_loss();
      });
  const auto virtualized_loss = sim::replicate_scalar(
      6, 115, [&](std::size_t, Rng& rng) {
        return simulate_loss_network(virtualized, rng).pool.overall_loss();
      });
  // Halved service rate doubles the offered load: loss must jump.
  EXPECT_GT(virtualized_loss.summary.mean(),
            native_loss.summary.mean() * 2.0);
}

TEST(LossNetwork, EnergyScalesWithServerCount) {
  LossNetworkConfig small;
  small.services = {single_resource_service(0.5, 1.0)};
  small.servers = 2;
  small.horizon = 1000.0;
  small.warmup = 100.0;
  LossNetworkConfig large = small;
  large.servers = 8;

  Rng rng_a(116);
  Rng rng_b(116);
  const auto small_outcome = simulate_loss_network(small, rng_a);
  const auto large_outcome = simulate_loss_network(large, rng_b);
  // Mostly idle pools: energy ~ proportional to the server count.
  EXPECT_NEAR(large_outcome.pool.energy_joules /
                  small_outcome.pool.energy_joules,
              4.0, 0.2);
}

TEST(LossNetwork, ConservationPerService) {
  LossNetworkConfig config;
  config.services = {single_resource_service(3.0, 1.0),
                     single_resource_service(1.0, 2.0)};
  config.services[1].name = "second";
  config.servers = 2;
  config.horizon = 1000.0;
  config.warmup = 100.0;
  Rng rng(117);
  const auto outcome = simulate_loss_network(config, rng);
  for (const auto& service : outcome.pool.services) {
    EXPECT_EQ(service.arrivals, service.admitted + service.lost);
    EXPECT_LE(service.completed, service.admitted + config.servers + 2);
  }
}

TEST(LossNetwork, ValidatesConfig) {
  Rng rng(118);
  LossNetworkConfig config;
  EXPECT_THROW(simulate_loss_network(config, rng), InvalidArgument);
  config.services = {single_resource_service(1.0, 1.0)};
  config.servers = 0;
  EXPECT_THROW(simulate_loss_network(config, rng), InvalidArgument);
  config.servers = 1;
  config.warmup = config.horizon;
  EXPECT_THROW(simulate_loss_network(config, rng), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::dc
