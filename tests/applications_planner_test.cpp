// Tests for the model's application modes (Section III-B4) and the
// high-level ConsolidationPlanner.
#include <gtest/gtest.h>

#include "core/applications.hpp"
#include "core/planner.hpp"
#include "util/error.hpp"

namespace vmcons::core {
namespace {

ModelInputs case_study(double target_loss = 0.01) {
  ModelInputs inputs;
  inputs.target_loss = target_loss;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, target_loss);
  db.arrival_rate = intensive_workload(db, 3, target_loss);
  inputs.services = {web, db};
  return inputs;
}

TEST(Applications, ConsolidationAtEqualServersImprovesQos) {
  // With M = N = 6, consolidation (even with overheads) multiplexes two
  // streams over six servers instead of 3 + 3: loss drops, ratio > 1.
  const QosBound bound = allocation_qos_bound(case_study(), {3, 3});
  EXPECT_EQ(bound.servers, 6u);
  EXPECT_LT(bound.consolidated_loss, bound.dedicated_loss);
  EXPECT_GT(bound.improvement, 1.0);
}

TEST(Applications, IdealVirtualizationBoundDominates) {
  const ModelInputs inputs = case_study();
  const QosBound real = allocation_qos_bound(inputs, {3, 3});
  const QosBound ideal = virtualization_qos_bound(inputs, {3, 3});
  // Removing virtualization overhead can only lower consolidated loss.
  EXPECT_LE(ideal.consolidated_loss, real.consolidated_loss);
  EXPECT_GE(ideal.improvement, real.improvement);
}

TEST(Applications, ScoreIsRelativeToBound) {
  const QosBound bound = allocation_qos_bound(case_study(), {3, 3});
  EXPECT_NEAR(allocation_algorithm_score(bound, bound.improvement), 1.0, 1e-12);
  EXPECT_LT(allocation_algorithm_score(bound, bound.improvement * 0.9), 1.0);
  EXPECT_THROW(allocation_algorithm_score(bound, 0.0), InvalidArgument);
}

TEST(Applications, ValidatesServerCounts) {
  EXPECT_THROW(allocation_qos_bound(case_study(), {0, 0}), InvalidArgument);
  EXPECT_THROW(allocation_qos_bound(case_study(), {3}), InvalidArgument);
}

TEST(Planner, MatchesDirectModelWhenHomogeneous) {
  const ModelInputs inputs = case_study();
  ConsolidationPlanner planner;
  planner.set_target_loss(inputs.target_loss);
  for (const auto& service : inputs.services) {
    planner.add_service(service);
  }
  const PlanReport report = planner.plan();
  const ModelResult direct = UtilityAnalyticModel(inputs).solve();
  EXPECT_EQ(report.model.dedicated_servers, direct.dedicated_servers);
  EXPECT_EQ(report.model.consolidated_servers, direct.consolidated_servers);
  // No inventory registered: assignments stay empty/non-feasible.
  EXPECT_FALSE(report.dedicated_assignment.feasible);
  EXPECT_TRUE(report.dedicated_assignment.picked.empty());
}

TEST(Planner, HeterogeneousInventoryCoversRequirement) {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  planner.add_service(web).add_service(db);
  // The paper's example: dual quad-core = 1.0, single quad-core = 0.5.
  planner.add_server_class({"dual-quad", 1.0, 2, dc::PowerModel{}});
  planner.add_server_class({"single-quad", 0.5, 8, dc::PowerModel{}});

  const PlanReport report = planner.plan();
  // N = 3 normalized: 2 dual-quads + 2 single-quads = 3.0 capacity.
  ASSERT_TRUE(report.consolidated_assignment.feasible);
  EXPECT_GE(report.consolidated_assignment.normalized_capacity, 3.0);
  // Large servers are picked first.
  EXPECT_EQ(report.consolidated_assignment.picked[0].first, "dual-quad");
  EXPECT_EQ(report.consolidated_assignment.picked[0].second, 2u);
}

TEST(Planner, InfeasibleInventoryIsReported) {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web = dc::paper_web_service();
  web.arrival_rate = intensive_workload(web, 4, 0.01);
  planner.add_service(web);
  planner.add_server_class({"tiny", 0.25, 2, dc::PowerModel{}});
  const PlanReport report = planner.plan();
  EXPECT_FALSE(report.consolidated_assignment.feasible);
}

TEST(Planner, WorkloadScalingGrowsThePlan) {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web = dc::paper_web_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  planner.add_service(web);
  const PlanReport base = planner.plan();
  planner.scale_workloads(4.0);
  const PlanReport scaled = planner.plan();
  EXPECT_GT(scaled.model.dedicated_servers, base.model.dedicated_servers);
  EXPECT_NEAR(scaled.arrival_rates[0], base.arrival_rates[0] * 4.0, 1e-9);
}

TEST(Planner, SweepTargetLossIsMonotone) {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 4, 0.01);
  db.arrival_rate = intensive_workload(db, 4, 0.01);
  planner.add_service(web).add_service(db);

  const auto reports = planner.sweep_target_loss({0.001, 0.01, 0.1});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_GE(reports[0].model.consolidated_servers,
            reports[1].model.consolidated_servers);
  EXPECT_GE(reports[1].model.consolidated_servers,
            reports[2].model.consolidated_servers);
}

TEST(Planner, ValidatesArguments) {
  ConsolidationPlanner planner;
  EXPECT_THROW(planner.set_target_loss(0.0), InvalidArgument);
  EXPECT_THROW(planner.set_vms_per_server(0), InvalidArgument);
  EXPECT_THROW(planner.scale_workloads(-1.0), InvalidArgument);
  EXPECT_THROW(planner.add_server_class({"bad", 0.0, 1, dc::PowerModel{}}),
               InvalidArgument);
  EXPECT_THROW(planner.plan(), InvalidArgument);  // no services
}

}  // namespace
}  // namespace vmcons::core
