// Tests for the diurnal workload profiles and batch-means output analysis.
#include <cmath>

#include <gtest/gtest.h>

#include "stats/batch_means.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/diurnal.hpp"

namespace vmcons {
namespace {

TEST(Diurnal, RateOscillatesAroundBase) {
  workload::DiurnalProfile profile;
  profile.base_rate = 100.0;
  profile.amplitude = 0.5;
  profile.period = 86400.0;
  profile.phase = 0.0;
  // Peak a quarter period after phase (sin = 1).
  EXPECT_NEAR(profile.rate_at(86400.0 / 4.0), 150.0, 1e-9);
  EXPECT_NEAR(profile.rate_at(3.0 * 86400.0 / 4.0), 50.0, 1e-9);
  EXPECT_NEAR(profile.rate_at(0.0), 100.0, 1e-9);
}

TEST(Diurnal, PhaseShiftsThePeak) {
  workload::DiurnalProfile early;
  early.phase = 0.0;
  workload::DiurnalProfile late = early;
  late.phase = 28800.0;  // 8 hours
  EXPECT_NEAR(late.rate_at(28800.0 + 86400.0 / 4.0),
              early.rate_at(86400.0 / 4.0), 1e-9);
}

TEST(Diurnal, WeekendDipApplies) {
  workload::DiurnalProfile profile;
  profile.amplitude = 0.0;
  profile.weekend_dip = 0.4;
  // Day 2 (weekday) vs day 6 (weekend).
  EXPECT_NEAR(profile.rate_at(2.0 * 86400.0), 100.0, 1e-9);
  EXPECT_NEAR(profile.rate_at(5.5 * 86400.0), 60.0, 1e-9);
}

TEST(Diurnal, NoiseIsUnbiased) {
  workload::DiurnalProfile profile;
  profile.amplitude = 0.0;
  profile.noise_cv = 0.3;
  Rng rng(181);
  double total = 0.0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    total += profile.sample(0.0, rng);
  }
  EXPECT_NEAR(total / draws, 100.0, 1.0);
}

TEST(Diurnal, MultiplexingGainOfShiftedPeaks) {
  std::vector<workload::DiurnalProfile> profiles(3);
  for (std::size_t i = 0; i < 3; ++i) {
    profiles[i].base_rate = 100.0;
    profiles[i].amplitude = 0.8;
    profiles[i].noise_cv = 0.0;
    profiles[i].phase = static_cast<double>(i) * 86400.0 / 3.0;
  }
  Rng rng(182);
  const auto demands = workload::sample_demands(profiles, 86400.0, 288, rng);
  // Perfectly phase-spread sinusoids: total is flat at 300 while each peak
  // is 180 -> gain = 540/300 = 1.8.
  EXPECT_NEAR(workload::multiplexing_gain(demands), 1.8, 0.05);
}

TEST(Diurnal, AlignedPeaksHaveNoGain) {
  std::vector<workload::DiurnalProfile> profiles(3);
  for (auto& profile : profiles) {
    profile.amplitude = 0.8;
    profile.noise_cv = 0.0;
    profile.phase = 0.0;
  }
  Rng rng(183);
  const auto demands = workload::sample_demands(profiles, 86400.0, 288, rng);
  EXPECT_NEAR(workload::multiplexing_gain(demands), 1.0, 1e-9);
}

TEST(Diurnal, QuantileBelowPeak) {
  std::vector<workload::DiurnalProfile> profiles(1);
  profiles[0].amplitude = 0.6;
  profiles[0].noise_cv = 0.05;
  Rng rng(184);
  const auto demands = workload::sample_demands(profiles, 86400.0, 288, rng);
  EXPECT_LT(workload::series_quantile(demands.total, 0.95),
            workload::series_peak(demands.total));
  EXPECT_GT(workload::series_quantile(demands.total, 0.95),
            workload::series_quantile(demands.total, 0.5));
}

TEST(Diurnal, Validation) {
  Rng rng(185);
  EXPECT_THROW(workload::sample_demands({}, 100.0, 10, rng), InvalidArgument);
  std::vector<workload::DiurnalProfile> bad(1);
  bad[0].amplitude = 1.5;
  EXPECT_THROW(workload::sample_demands(bad, 100.0, 10, rng), InvalidArgument);
  EXPECT_THROW(workload::series_peak({}), InvalidArgument);
  EXPECT_THROW(workload::series_quantile({1.0}, 1.5), InvalidArgument);
}

TEST(BatchMeans, IidSamplesGiveHonestInterval) {
  Rng rng(186);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.normal(5.0, 2.0));
  }
  const BatchMeansResult result = batch_means(samples, 20);
  EXPECT_NEAR(result.mean, 5.0, 0.1);
  EXPECT_TRUE(result.interval.contains(5.0));
  EXPECT_TRUE(result.batches_look_independent);
  EXPECT_EQ(result.batch_size, 1000u);
}

TEST(BatchMeans, DetectsStrongCorrelationWithTinyBatches) {
  // AR(1) with phi = 0.99 and only 4 observations per batch: batch means
  // stay heavily correlated and the diagnostic must flag it.
  Rng rng(187);
  std::vector<double> samples;
  double state = 0.0;
  for (int i = 0; i < 400; ++i) {
    state = 0.99 * state + rng.normal(0.0, 1.0);
    samples.push_back(state);
  }
  const BatchMeansResult result = batch_means(samples, 100);
  EXPECT_FALSE(result.batches_look_independent);
}

TEST(BatchMeans, AutocorrelationOfWhiteAndPersistentNoise) {
  Rng rng(188);
  std::vector<double> white;
  std::vector<double> persistent;
  double state = 0.0;
  for (int i = 0; i < 5000; ++i) {
    white.push_back(rng.normal(0.0, 1.0));
    state = 0.9 * state + rng.normal(0.0, 1.0);
    persistent.push_back(state);
  }
  EXPECT_NEAR(autocorrelation(white, 1), 0.0, 0.05);
  EXPECT_NEAR(autocorrelation(persistent, 1), 0.9, 0.05);
}

TEST(BatchMeans, Validation) {
  EXPECT_THROW(batch_means({1.0, 2.0}, 2), InvalidArgument);
  EXPECT_THROW(batch_means({1.0, 2.0, 3.0, 4.0}, 1), InvalidArgument);
  EXPECT_THROW(autocorrelation({1.0}, 1), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
