// Tests for the deterministic RNG streams and distribution samplers.
#include "util/rng.hpp"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "stats/gof.hpp"
#include "stats/summary.hpp"

namespace vmcons {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 0);
  Rng b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SeedsDiffer) {
  Rng a(1, 0);
  Rng b(2, 0);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(4);
  Summary summary;
  for (int i = 0; i < 200000; ++i) {
    summary.add(rng.uniform());
  }
  EXPECT_NEAR(summary.mean(), 0.5, 0.005);
  EXPECT_NEAR(summary.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int draws = 140000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_index(7)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, draws / 7.0, draws / 7.0 * 0.05);
  }
}

TEST(Rng, ExponentialMatchesRate) {
  Rng rng(6);
  const double rate = 3.5;
  Summary summary;
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GT(x, 0.0);
    summary.add(x);
    samples.push_back(x);
  }
  EXPECT_NEAR(summary.mean(), 1.0 / rate, 0.01);
  EXPECT_TRUE(exponential_gof(samples, rate).accept(0.001));
}

TEST(Rng, PoissonSmallMeanGoodnessOfFit) {
  Rng rng(7);
  const double mean = 4.2;
  std::vector<std::uint64_t> counts;
  Summary summary;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = rng.poisson(mean);
    counts.push_back(k);
    summary.add(static_cast<double>(k));
  }
  EXPECT_NEAR(summary.mean(), mean, 0.05);
  EXPECT_NEAR(summary.variance(), mean, 0.15);
  EXPECT_TRUE(poisson_gof(counts, mean).accept(0.001));
}

TEST(Rng, PoissonLargeMeanMatchesMoments) {
  Rng rng(8);
  const double mean = 200.0;
  Summary summary;
  for (int i = 0; i < 50000; ++i) {
    summary.add(static_cast<double>(rng.poisson(mean)));
  }
  EXPECT_NEAR(summary.mean(), mean, 0.5);
  EXPECT_NEAR(summary.variance(), mean, 6.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  Summary summary;
  for (int i = 0; i < 200000; ++i) {
    summary.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(summary.mean(), 10.0, 0.02);
  EXPECT_NEAR(summary.stddev(), 2.0, 0.02);
}

TEST(Rng, GammaMoments) {
  Rng rng(10);
  const double shape = 0.6;
  const double scale = 95.0;
  Summary summary;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.gamma(shape, scale);
    ASSERT_GT(x, 0.0);
    summary.add(x);
  }
  EXPECT_NEAR(summary.mean(), shape * scale, 1.0);
  EXPECT_NEAR(summary.variance(), shape * scale * scale, 150.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) {
    heads += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, ZipfRanksAreSkewedAndInRange) {
  Rng rng(12);
  const std::uint64_t n = 1000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t rank = rng.zipf(n, 1.0);
    ASSERT_LT(rank, n);
    ++counts[rank];
  }
  // Rank 0 should be roughly twice as popular as rank 1 for s = 1.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.4);
  // The head (top 1%) must dominate far beyond uniform share.
  int head = 0;
  for (std::uint64_t r = 0; r < 10; ++r) {
    head += counts[r];
  }
  EXPECT_GT(head, 100000 / 100 * 3);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.zipf(10, 0.0)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, 10000, 500);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(14);
  const std::vector<double> weights{1.0, 2.0, 7.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.2, 0.012);
  EXPECT_NEAR(counts[2] / 100000.0, 0.7, 0.015);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(15);
  const std::vector<double> weights{-5.0, 1.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t replay = 0;
  EXPECT_EQ(splitmix64(replay), first);
  EXPECT_EQ(splitmix64(replay), second);
}

}  // namespace
}  // namespace vmcons
