// Tests for the waiting-room and square-root staffing extensions.
#include "queueing/staffing.hpp"

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

TEST(Staffing, ZeroQueueMatchesErlangB) {
  for (const double lambda : {0.5, 3.0, 20.0}) {
    EXPECT_EQ(staffing_with_queue(lambda, 1.0, 0, 0.01),
              erlang_b_servers(lambda, 0.01))
        << "lambda=" << lambda;
  }
}

TEST(Staffing, ResultSatisfiesTargetAndIsMinimal) {
  for (const double lambda : {2.0, 8.0, 30.0}) {
    for (const std::uint64_t queue : {1ull, 4ull, 16ull}) {
      const std::uint64_t c = staffing_with_queue(lambda, 1.0, queue, 0.01);
      EXPECT_LE(solve_mmck(c, c + queue, lambda, 1.0).blocking, 0.01);
      if (c > 1) {
        EXPECT_GT(solve_mmck(c - 1, c - 1 + queue, lambda, 1.0).blocking,
                  0.01);
      }
    }
  }
}

TEST(Staffing, QueueNeverIncreasesStaffing) {
  for (const double lambda : {2.0, 8.0, 30.0}) {
    std::uint64_t previous = erlang_b_servers(lambda, 0.01);
    for (const std::uint64_t queue : {1ull, 4ull, 16ull, 64ull}) {
      const std::uint64_t c = staffing_with_queue(lambda, 1.0, queue, 0.01);
      EXPECT_LE(c, previous) << "lambda=" << lambda << " q=" << queue;
      previous = c;
    }
  }
}

TEST(Staffing, ServersSavedIsConsistent) {
  const double lambda = 30.0;
  const std::uint64_t saved = servers_saved_by_queue(lambda, 1.0, 16, 0.01);
  EXPECT_EQ(saved, erlang_b_servers(lambda, 0.01) -
                       staffing_with_queue(lambda, 1.0, 16, 0.01));
  EXPECT_GT(saved, 0u);
}

TEST(Staffing, SquareRootRuleIsAConservativeEstimate) {
  // With beta = the 1% normal quantile, the square-root rule over-staffs
  // relative to exact Erlang-B (loss systems need less than delay systems),
  // but stays within ~10%: a usable quick estimate, never an unsafe one.
  for (const double rho : {10.0, 50.0, 200.0}) {
    const std::uint64_t exact = erlang_b_servers(rho, 0.01);
    const std::uint64_t rule = square_root_staffing(rho, 2.33);
    EXPECT_GE(rule, exact) << "rho=" << rho;
    EXPECT_LE(static_cast<double>(rule),
              static_cast<double>(exact) * 1.10 + 3.0)
        << "rho=" << rho;
  }
}

TEST(Staffing, Validation) {
  EXPECT_THROW(staffing_with_queue(0.0, 1.0, 1, 0.01), InvalidArgument);
  EXPECT_THROW(staffing_with_queue(1.0, 1.0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(square_root_staffing(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(square_root_staffing(1.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::queueing
