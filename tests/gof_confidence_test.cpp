// Tests for goodness-of-fit machinery and confidence intervals.
#include <vector>

#include <gtest/gtest.h>

#include "stats/confidence.hpp"
#include "stats/gof.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vmcons {
namespace {

TEST(ChiSquaredTest, AcceptsMatchingCounts) {
  const std::vector<double> expected{100, 200, 300, 400};
  const std::vector<double> observed{105, 195, 290, 410};
  const GofResult result = chi_squared_test(observed, expected);
  EXPECT_TRUE(result.accept(0.05));
}

TEST(ChiSquaredTest, RejectsGrossMismatch) {
  const std::vector<double> expected{100, 100, 100, 100};
  const std::vector<double> observed{10, 190, 250, 30};
  const GofResult result = chi_squared_test(observed, expected);
  EXPECT_FALSE(result.accept(0.01));
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquaredTest, PoolsSparseCategories) {
  // Expected counts below 5 must be pooled, not produce huge statistics.
  const std::vector<double> expected{0.5, 0.5, 0.5, 0.5, 100.0, 100.0};
  const std::vector<double> observed{0, 1, 0, 1, 102.0, 98.0};
  const GofResult result = chi_squared_test(observed, expected);
  EXPECT_TRUE(result.accept(0.05));
}

TEST(PoissonGof, AcceptsTruePoissonRejectsConstant) {
  Rng rng(31);
  std::vector<std::uint64_t> poisson_counts;
  std::vector<std::uint64_t> constant_counts;
  for (int i = 0; i < 20000; ++i) {
    poisson_counts.push_back(rng.poisson(5.0));
    constant_counts.push_back(5);
  }
  EXPECT_TRUE(poisson_gof(poisson_counts, 5.0).accept(0.001));
  EXPECT_FALSE(poisson_gof(constant_counts, 5.0).accept(0.01));
}

TEST(ExponentialGof, AcceptsTrueExponentialRejectsUniform) {
  Rng rng(32);
  std::vector<double> exponential_samples;
  std::vector<double> uniform_samples;
  for (int i = 0; i < 20000; ++i) {
    exponential_samples.push_back(rng.exponential(2.0));
    uniform_samples.push_back(rng.uniform(0.0, 1.0));
  }
  EXPECT_TRUE(exponential_gof(exponential_samples, 2.0).accept(0.001));
  EXPECT_FALSE(exponential_gof(uniform_samples, 2.0).accept(0.01));
}

TEST(MeanConfidenceInterval, CoversTheTruth) {
  // 95% CI over replicated normal samples should contain the mean ~95% of
  // the time; with 200 trials, expect at least 85% coverage.
  Rng rng(33);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Summary summary;
    for (int i = 0; i < 30; ++i) {
      summary.add(rng.normal(10.0, 3.0));
    }
    if (mean_confidence_interval(summary, 0.95).contains(10.0)) {
      ++covered;
    }
  }
  EXPECT_GE(covered, trials * 85 / 100);
}

TEST(MeanConfidenceInterval, WidthShrinksWithSamples) {
  Rng rng(34);
  Summary small;
  Summary large;
  for (int i = 0; i < 10; ++i) {
    small.add(rng.normal(0.0, 1.0));
  }
  for (int i = 0; i < 1000; ++i) {
    large.add(rng.normal(0.0, 1.0));
  }
  EXPECT_GT(mean_confidence_interval(small).half_width,
            mean_confidence_interval(large).half_width);
}

TEST(MeanConfidenceInterval, NeedsTwoSamples) {
  Summary summary;
  summary.add(1.0);
  EXPECT_THROW(mean_confidence_interval(summary), InvalidArgument);
}

TEST(ProportionInterval, WilsonBehavesAtZero) {
  // Zero successes: lower bound 0-ish, upper bound small but positive.
  const ConfidenceInterval interval = proportion_confidence_interval(0, 1000);
  EXPECT_GE(interval.lower, -1e-12);
  EXPECT_GT(interval.upper, 0.0);
  EXPECT_LT(interval.upper, 0.01);
}

TEST(ProportionInterval, CoversKnownProportion) {
  const ConfidenceInterval interval = proportion_confidence_interval(100, 1000);
  EXPECT_TRUE(interval.contains(0.1));
  EXPECT_NEAR(interval.mean, 0.1, 1e-12);
}

TEST(ProportionInterval, ValidatesInputs) {
  EXPECT_THROW(proportion_confidence_interval(1, 0), InvalidArgument);
  EXPECT_THROW(proportion_confidence_interval(5, 4), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
