// Tests for the metrics registry: counter/timer semantics, stable
// references, snapshot/dump rendering, and thread-safety of increments.
#include "util/metrics.hpp"

#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/batch_eval.hpp"
#include "core/report.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang_kernel.hpp"
#include "sim/engine.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::metrics {
namespace {

TEST(Metrics, CountersAccumulate) {
  Registry registry;
  Counter& counter = registry.counter("requests");
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name -> same counter.
  EXPECT_EQ(registry.counter("requests").value(), 42u);
}

TEST(Metrics, TimersAccumulateScopes) {
  Registry registry;
  Timer& timer = registry.timer("phase");
  {
    ScopedTimer scope(timer);
  }
  {
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer.count(), 2u);
  EXPECT_GE(timer.total_millis(), 0.0);
  timer.add_nanos(5'000'000);
  EXPECT_EQ(timer.count(), 3u);
  EXPECT_GE(timer.total_millis(), 5.0);
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  Registry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.timer("c.phase").add_nanos(1'000'000);
  const auto rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 4u);  // two counters + timer ms + timer calls
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].name, rows[i].name);
  }
  EXPECT_EQ(rows[0].name, "a.count");
  EXPECT_DOUBLE_EQ(rows[0].value, 1.0);
}

TEST(Metrics, DumpPrintsOneLinePerMetric) {
  Registry registry;
  registry.counter("erlang.evaluations").add(7);
  std::ostringstream out;
  registry.dump(out);
  EXPECT_NE(out.str().find("erlang.evaluations = 7"), std::string::npos);
}

TEST(Metrics, ResetZeroesWithoutInvalidatingReferences) {
  Registry registry;
  Counter& counter = registry.counter("x");
  Timer& timer = registry.timer("y");
  counter.add(5);
  timer.add_nanos(10);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(timer.count(), 0u);
  counter.add();  // the old reference still points at the live counter
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter& counter = registry.counter("hot");
  ThreadPool pool(4);
  parallel_for(
      1000, [&](std::size_t) { counter.add(); }, pool);
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(Metrics, ConcurrentRegistrationYieldsOneCounter) {
  Registry registry;
  ThreadPool pool(4);
  parallel_for(
      64, [&](std::size_t) { registry.counter("same.name").add(); }, pool);
  EXPECT_EQ(registry.counter("same.name").value(), 64u);
}

TEST(Metrics, EngineReportsExecutedEvents) {
  const auto before = registry().counter("engine.events").value();
  sim::Engine engine;
  for (int i = 0; i < 25; ++i) {
    engine.schedule_at(static_cast<double>(i), [] {});
  }
  engine.run();
  EXPECT_EQ(registry().counter("engine.events").value(), before + 25);
}

TEST(Metrics, BatchEvaluatorReportsCountersByCanonicalName) {
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec service;
  service.name = "web";
  service.arrival_rate = 100.0;
  service.demand(dc::Resource::kCpu, 50.0, virt::Impact::constant(0.8));
  inputs.services = {service};

  core::ScenarioBatch batch;
  batch.append(inputs);
  batch.append(inputs);
  batch.append(inputs);

  Registry& global = registry();
  const auto evaluations_before =
      global.counter(names::kBatchEvaluations).value();
  const auto scenarios_before = global.counter(names::kBatchScenarios).value();
  const auto shards_before = global.counter(names::kBatchShards).value();
  const auto wall_before = global.timer(names::kBatchWall).count();

  core::BatchOptions options;
  options.parallel = false;
  core::BatchEvaluator evaluator(options);
  ASSERT_EQ(evaluator.evaluate(batch).size(), 3u);

  EXPECT_EQ(global.counter(names::kBatchEvaluations).value(),
            evaluations_before + 1);
  EXPECT_EQ(global.counter(names::kBatchScenarios).value(),
            scenarios_before + 3);
  EXPECT_GE(global.counter(names::kBatchShards).value(), shards_before + 1);
  EXPECT_EQ(global.timer(names::kBatchWall).count(), wall_before + 1);

  // The memoizing kernel answers the three identical scenarios mostly from
  // cache, and the batch attributes those hits to itself.
  const auto hits_before = global.counter(names::kBatchKernelHits).value();
  core::BatchEvaluator memoized;  // default: shared kernel, memoize on
  ASSERT_EQ(memoized.evaluate(batch).size(), 3u);
  EXPECT_GT(global.counter(names::kBatchKernelHits).value(), hits_before);
}

TEST(Metrics, ErlangKernelReportsConcurrencyCountersByCanonicalName) {
  Registry& global = registry();
  const auto snapshot_before =
      global.counter(names::kErlangSnapshotHits).value();
  const auto arena_before =
      global.counter(names::kErlangArenaExtensions).value();
  const auto merges_before = global.counter(names::kErlangMerges).value();

  queueing::ErlangKernel kernel;
  kernel.erlang_b(120, 90.0);  // cold: one private arena extension
  kernel.publish();            // one merge epoch
  kernel.erlang_b(60, 90.0);   // warm: lock-free snapshot hit

  EXPECT_EQ(global.counter(names::kErlangSnapshotHits).value(),
            snapshot_before + 1);
  EXPECT_EQ(global.counter(names::kErlangArenaExtensions).value(),
            arena_before + 1);
  EXPECT_EQ(global.counter(names::kErlangMerges).value(), merges_before + 1);
}

TEST(Metrics, BatchEvaluationTimesItsMergeEpoch) {
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec service;
  service.name = "web";
  service.arrival_rate = 100.0;
  service.demand(dc::Resource::kCpu, 50.0, virt::Impact::constant(0.8));
  inputs.services = {service};
  core::ScenarioBatch batch;
  batch.append(inputs);

  Registry& global = registry();
  const auto lock_wait_before = global.timer(names::kBatchLockWait).count();
  queueing::ErlangKernel kernel;
  core::BatchOptions options;
  options.parallel = false;
  options.kernel = &kernel;
  ASSERT_EQ(core::BatchEvaluator(options).evaluate(batch).size(), 1u);
  // The batch ended exactly one merge epoch and timed it.
  EXPECT_EQ(global.timer(names::kBatchLockWait).count(),
            lock_wait_before + 1);
  EXPECT_EQ(kernel.stats().merges, 1u);
}

TEST(Metrics, PrintMetricsRendersBatchCounters) {
  registry().counter(names::kBatchEvaluations).add(0);  // ensure it exists
  std::ostringstream out;
  core::print_metrics(out);
  EXPECT_NE(out.str().find(names::kBatchEvaluations), std::string::npos);
}

TEST(Metrics, PrintMetricsRendersRegistryTable) {
  registry().counter("erlang.evaluations").add(0);  // ensure it exists
  std::ostringstream out;
  core::print_metrics(out);
  EXPECT_NE(out.str().find("metrics"), std::string::npos);
  EXPECT_NE(out.str().find("erlang.evaluations"), std::string::npos);
}

}  // namespace
}  // namespace vmcons::metrics
