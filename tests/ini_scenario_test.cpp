// Tests for the INI parser and the scenario loader.
#include <gtest/gtest.h>

#include "core/scenario_io.hpp"
#include "util/error.hpp"
#include "util/ini.hpp"

namespace vmcons {
namespace {

TEST(Ini, ParsesSectionsAndValues) {
  const IniDocument document = ini_parse(
      "# comment\n"
      "[alpha]\n"
      "key = value\n"
      "number = 42\n"
      "rate = 2.5\n"
      "\n"
      "[alpha]\n"
      "key = second\n"
      "; another comment\n"
      "[beta]\n"
      "flag = yes  # trailing comment\n");
  ASSERT_EQ(document.sections.size(), 3u);
  const auto alphas = document.all("alpha");
  ASSERT_EQ(alphas.size(), 2u);
  EXPECT_EQ(alphas[0]->get("key"), "value");
  EXPECT_EQ(alphas[0]->get_int("number", 0), 42);
  EXPECT_DOUBLE_EQ(alphas[0]->get_double("rate", 0.0), 2.5);
  EXPECT_EQ(alphas[1]->get("key"), "second");
  EXPECT_EQ(document.first("beta")->get("flag"), "yes");
  EXPECT_TRUE(document.first("beta")->has("flag"));
  EXPECT_FALSE(document.first("beta")->has("missing"));
  EXPECT_EQ(document.first("missing"), nullptr);
}

TEST(Ini, DefaultsAndTypeErrors) {
  const IniDocument document = ini_parse("[s]\nvalue = abc\n");
  const IniSection* section = document.first("s");
  EXPECT_EQ(section->get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(section->get_double("missing", 7.5), 7.5);
  EXPECT_THROW(section->get_double("value", 0.0), IoError);
  EXPECT_THROW(section->get_int("value", 0), IoError);
}

TEST(Ini, MalformedLinesThrow) {
  EXPECT_THROW(ini_parse("[unclosed\n"), IoError);
  EXPECT_THROW(ini_parse("stray line without equals\n"), IoError);
}

TEST(Ini, MissingFileThrows) {
  EXPECT_THROW(ini_parse_file("/nonexistent/scenario.ini"), IoError);
}

constexpr const char* kCaseStudy = R"(
[plan]
target_loss = 0.01
vms_per_server = 2

[service]
name = web
dedicated_servers = 3
disk_rate = 420
disk_impact = 0.8
cpu_rate = 3360
cpu_impact = 0.65

[service]
name = db
dedicated_servers = 3
cpu_rate = 100
cpu_impact = 0.9
)";

TEST(Scenario, CaseStudyRoundTripsTheHeadlineResult) {
  const core::ModelInputs inputs =
      core::scenario_inputs(ini_parse(kCaseStudy));
  ASSERT_EQ(inputs.services.size(), 2u);
  EXPECT_EQ(inputs.services[0].name, "web");
  EXPECT_DOUBLE_EQ(inputs.services[0].native_rates[dc::Resource::kDiskIo],
                   420.0);
  const core::ModelResult result =
      core::UtilityAnalyticModel(inputs).solve();
  EXPECT_EQ(result.dedicated_servers, 6u);
  EXPECT_EQ(result.consolidated_servers, 3u);
}

TEST(Scenario, ExplicitArrivalRateWins) {
  const core::ModelInputs inputs = core::scenario_inputs(ini_parse(
      "[service]\nname = s\narrival_rate = 55\ncpu_rate = 100\n"));
  EXPECT_DOUBLE_EQ(inputs.services[0].arrival_rate, 55.0);
  EXPECT_DOUBLE_EQ(inputs.target_loss, 0.01);  // default without [plan]
}

TEST(Scenario, PlannerPicksUpInventory) {
  const std::string text = std::string(kCaseStudy) +
                           "\n[server_class]\nname = big\ncapacity = 1.0\n"
                           "available = 4\n";
  const core::ConsolidationPlanner planner =
      core::scenario_planner(ini_parse(text));
  const core::PlanReport report = planner.plan();
  EXPECT_TRUE(report.consolidated_assignment.feasible);
  ASSERT_FALSE(report.consolidated_assignment.picked.empty());
  EXPECT_EQ(report.consolidated_assignment.picked[0].first, "big");
}

TEST(Scenario, ValidatesServiceDeclarations) {
  EXPECT_THROW(core::scenario_inputs(ini_parse("[plan]\ntarget_loss = 0.01\n")),
               InvalidArgument);  // no services
  EXPECT_THROW(
      core::scenario_inputs(ini_parse("[service]\nname = s\ncpu_rate = 10\n")),
      InvalidArgument);  // neither arrival_rate nor dedicated_servers
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   "[service]\nname = s\narrival_rate = 5\n")),
               InvalidArgument);  // no resource rates
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"
                   "cpu_impact = 1.5\n")),
               InvalidArgument);  // impact out of range
}

TEST(Scenario, ValidationErrorsNameTheServiceFieldAndValue) {
  // Impact out of range: the message must identify which service, which
  // key, and what value was rejected.
  try {
    core::scenario_inputs(ini_parse(
        "[service]\nname = web\narrival_rate = 5\ncpu_rate = 10\n"
        "cpu_impact = 1.5\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("service 'web'"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu_impact"), std::string::npos) << what;
    EXPECT_NE(what.find("1.5"), std::string::npos) << what;
    EXPECT_NE(what.find("(0, 1]"), std::string::npos) << what;
  }

  // Negative rates are rejected loudly instead of being silently treated
  // as "no demand".
  try {
    core::scenario_inputs(ini_parse(
        "[service]\nname = db\narrival_rate = 5\ndisk_rate = -3\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("service 'db'"), std::string::npos) << what;
    EXPECT_NE(what.find("disk_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("-3"), std::string::npos) << what;
  }

  // A negative arrival rate is reported with its value, not just the
  // generic "set arrival_rate or dedicated_servers".
  try {
    core::scenario_inputs(ini_parse(
        "[service]\nname = s\narrival_rate = -5\ncpu_rate = 10\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("service 's'"), std::string::npos) << what;
    EXPECT_NE(what.find("arrival_rate = -5"), std::string::npos) << what;
  }

  // A service with no demand lists the keys that would declare one.
  try {
    core::scenario_inputs(
        ini_parse("[service]\nname = ghost\narrival_rate = 5\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("service 'ghost'"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu_rate"), std::string::npos) << what;
  }
}

TEST(Scenario, RejectsNonFiniteValues) {
  // NaN/inf parse fine through strtod, so the loader must reject them
  // explicitly — they would otherwise sail through every range check whose
  // comparison is simply false for NaN.
  try {
    core::scenario_inputs(ini_parse(
        "[service]\nname = web\narrival_rate = inf\ncpu_rate = 10\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("service 'web'"), std::string::npos) << what;
    EXPECT_NE(what.find("arrival_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("must be finite"), std::string::npos) << what;
  }
  try {
    core::scenario_inputs(ini_parse(
        "[service]\nname = web\narrival_rate = 5\ncpu_rate = nan\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("cpu_rate"), std::string::npos) << what;
    EXPECT_NE(what.find("must be finite"), std::string::npos) << what;
  }
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"
                   "cpu_impact = inf\n")),
               InvalidArgument);
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   "[plan]\ntarget_loss = nan\n"
                   "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n")),
               InvalidArgument);
}

TEST(Scenario, PowerSectionAppliesAndValidates) {
  const core::ModelInputs tuned = core::scenario_inputs(ini_parse(
      "[power]\nbase_watts = 180\nmax_watts = 240\n"
      "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"));
  EXPECT_DOUBLE_EQ(tuned.dedicated_power.base_watts, 180.0);
  EXPECT_DOUBLE_EQ(tuned.dedicated_power.max_watts, 240.0);
  EXPECT_DOUBLE_EQ(tuned.consolidated_power.base_watts, 180.0);
  // Platform deltas stay with the deployment, not the [power] section.
  EXPECT_EQ(tuned.dedicated_power.platform, dc::Platform::kNativeLinux);
  EXPECT_EQ(tuned.consolidated_power.platform, dc::Platform::kXen);

  const char* kService =
      "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n";
  try {
    core::scenario_inputs(
        ini_parse(std::string("[power]\nbase_watts = inf\n") + kService));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("[power]"), std::string::npos) << what;
    EXPECT_NE(what.find("base_watts"), std::string::npos) << what;
    EXPECT_NE(what.find("must be finite"), std::string::npos) << what;
  }
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   std::string("[power]\nmax_watts = nan\n") + kService)),
               InvalidArgument);
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   std::string("[power]\nbase_watts = -5\n") + kService)),
               InvalidArgument);
  EXPECT_THROW(core::scenario_inputs(
                   ini_parse(std::string("[power]\nbase_watts = 300\n"
                                         "max_watts = 200\n") +
                             kService)),
               InvalidArgument);
}

TEST(Scenario, PowerMaxBelowBaseNamesBothFields) {
  // A busy-draw below idle draw is always a typo; the rejection must name
  // the offending key, its value, and the field it is compared against —
  // not just say "bad power model".
  try {
    core::scenario_inputs(ini_parse(
        "[power]\nbase_watts = 300\nmax_watts = 200\n"
        "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("[power]"), std::string::npos) << what;
    EXPECT_NE(what.find("max_watts = 200"), std::string::npos) << what;
    EXPECT_NE(what.find("base_watts"), std::string::npos) << what;
  }
}

TEST(Scenario, ClassSectionsParseIntoAFleet) {
  const core::ModelInputs inputs = core::scenario_inputs(ini_parse(
      "[class.old-gen]\n"
      "capacity = 1.0\n"
      "count = 40\n"
      "[class.new-gen]\n"
      "capacity = 2.0\n"
      "disk_capacity = 1.5\n"
      "base_watts = 180\n"
      "max_watts = 260\n"
      "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"));
  ASSERT_EQ(inputs.fleet.size(), 2u);
  const dc::ServerClass& old_gen = inputs.fleet.at(0);
  EXPECT_EQ(old_gen.name, "old-gen");
  EXPECT_EQ(old_gen.count, 40u);  // bounded
  EXPECT_DOUBLE_EQ(old_gen.speed(), 1.0);
  const dc::ServerClass& new_gen = inputs.fleet.at(1);
  EXPECT_EQ(new_gen.name, "new-gen");
  EXPECT_EQ(new_gen.count, dc::ServerClass::kUnbounded);  // no count key
  EXPECT_DOUBLE_EQ(new_gen.capacity[dc::Resource::kCpu], 2.0);
  EXPECT_DOUBLE_EQ(new_gen.capacity[dc::Resource::kDiskIo], 1.5);
  EXPECT_DOUBLE_EQ(new_gen.speed(), 1.5);  // min over resources
  EXPECT_DOUBLE_EQ(new_gen.power.base_watts, 180.0);
  EXPECT_DOUBLE_EQ(new_gen.power.max_watts, 260.0);

  // The fleet reaches the model: the plan carries a per-class allocation.
  const core::ModelResult result =
      core::UtilityAnalyticModel(inputs).solve();
  ASSERT_TRUE(result.fleet.planned);
  ASSERT_EQ(result.fleet.classes.size(), 2u);
}

TEST(Scenario, ClassSectionFieldErrorsNameSectionKeyAndValue) {
  const char* kService =
      "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n";
  try {
    core::scenario_inputs(ini_parse(
        std::string("[class.slow]\ncpu_capacity = -1\n") + kService));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("[class.slow]"), std::string::npos) << what;
    EXPECT_NE(what.find("cpu_capacity"), std::string::npos) << what;
    EXPECT_NE(what.find("-1"), std::string::npos) << what;
  }
  try {
    core::scenario_inputs(ini_parse(
        std::string("[class.hot]\nbase_watts = 300\nmax_watts = 250\n") +
        kService));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("[class.hot]"), std::string::npos) << what;
    EXPECT_NE(what.find("max_watts"), std::string::npos) << what;
    EXPECT_NE(what.find("base_watts"), std::string::npos) << what;
  }
  try {
    core::scenario_inputs(ini_parse(
        std::string("[class.some]\ncount = -2\n") + kService));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("count = -2"), std::string::npos) << what;
    EXPECT_NE(what.find("unbounded"), std::string::npos) << what;
  }
  // A bare "[class.]" header has no class name to report by.
  EXPECT_THROW(core::scenario_inputs(
                   ini_parse(std::string("[class.]\ncapacity = 1\n") +
                             kService)),
               InvalidArgument);
  // Duplicate class names are rejected by Fleet::add.
  EXPECT_THROW(core::scenario_inputs(ini_parse(
                   std::string("[class.twin]\ncapacity = 1\n"
                               "[class.twin]\ncapacity = 2\n") +
                   kService)),
               InvalidArgument);
}

TEST(Scenario, ClassSectionsRoundTripThroughIni) {
  const core::ModelInputs original = core::scenario_inputs(ini_parse(
      "[class.old-gen]\ncapacity = 1.0\ncount = 12\n"
      "[class.new-gen]\ncapacity = 2.25\nbase_watts = 200\n"
      "max_watts = 310\n"
      "[service]\nname = s\narrival_rate = 5\ncpu_rate = 10\n"));
  const core::ModelInputs reparsed =
      core::scenario_inputs(ini_parse(core::scenario_to_ini(original)));
  ASSERT_EQ(reparsed.fleet.size(), original.fleet.size());
  for (std::size_t i = 0; i < original.fleet.size(); ++i) {
    const dc::ServerClass& a = original.fleet.at(i);
    const dc::ServerClass& b = reparsed.fleet.at(i);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.count, b.count);
    EXPECT_NEAR(a.power.base_watts, b.power.base_watts, 1e-9);
    EXPECT_NEAR(a.power.max_watts, b.power.max_watts, 1e-9);
    for (const dc::Resource resource : dc::all_resources()) {
      EXPECT_NEAR(a.capacity[resource], b.capacity[resource], 1e-9);
    }
  }
}

TEST(Scenario, SerializationRoundTrips) {
  const core::ModelInputs original =
      core::scenario_inputs(ini_parse(kCaseStudy));
  const std::string text = core::scenario_to_ini(original);
  const core::ModelInputs reparsed = core::scenario_inputs(ini_parse(text));
  ASSERT_EQ(reparsed.services.size(), original.services.size());
  for (std::size_t i = 0; i < original.services.size(); ++i) {
    EXPECT_NEAR(reparsed.services[i].arrival_rate,
                original.services[i].arrival_rate, 1e-6);
    for (const dc::Resource resource : dc::all_resources()) {
      EXPECT_NEAR(reparsed.services[i].native_rates[resource],
                  original.services[i].native_rates[resource], 1e-9);
    }
  }
  // Same plan either way.
  EXPECT_EQ(core::UtilityAnalyticModel(reparsed).solve().consolidated_servers,
            core::UtilityAnalyticModel(original).solve().consolidated_servers);
}

}  // namespace
}  // namespace vmcons
