// Tests for power model, energy meter, physical server, VM descriptors,
// service specs, and the dispatcher policies.
#include <gtest/gtest.h>

#include "datacenter/dispatcher.hpp"
#include "datacenter/power.hpp"
#include "datacenter/server.hpp"
#include "datacenter/service_spec.hpp"
#include "datacenter/vm.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {
namespace {

TEST(PowerModel, LinearInUtilization) {
  PowerModel model;  // 250 base, 292.5 max
  EXPECT_DOUBLE_EQ(model.watts(0.0), 250.0);
  EXPECT_DOUBLE_EQ(model.watts(1.0), 292.5);
  EXPECT_DOUBLE_EQ(model.watts(0.5), 271.25);
}

TEST(PowerModel, BusyDrawsAboutSeventeenPercentMoreThanIdle) {
  // Fig. 12's observation: serving servers draw only ~17% more than idle.
  const PowerModel model = PowerModel::paper_default(Platform::kNativeLinux);
  EXPECT_NEAR(model.watts(1.0) / model.watts(0.0), 1.17, 0.01);
}

TEST(PowerModel, XenPlatformDeltas) {
  const PowerModel native = PowerModel::paper_default(Platform::kNativeLinux);
  const PowerModel xen = PowerModel::paper_default(Platform::kXen);
  // Idle Xen draws 9% less (Section IV-C2).
  EXPECT_NEAR(xen.idle_watts() / native.idle_watts(), 0.91, 1e-12);
  // Dynamic range is 30% cheaper on Xen (Fig. 13).
  const double native_dynamic = native.watts(1.0) - native.watts(0.0);
  const double xen_dynamic = xen.watts(1.0) - xen.watts(0.0);
  EXPECT_NEAR(xen_dynamic / native_dynamic, 0.70, 1e-12);
}

TEST(PowerModel, RejectsOutOfRangeUtilization) {
  PowerModel model;
  EXPECT_THROW(model.watts(-0.1), InvalidArgument);
  EXPECT_THROW(model.watts(1.5), InvalidArgument);
}

TEST(EnergyMeter, IntegratesStepSignal) {
  EnergyMeter meter(PowerModel{});
  meter.set_utilization(0.0, 0.0);
  meter.set_utilization(10.0, 1.0);   // idle for [0,10)
  meter.set_utilization(20.0, 0.0);   // full for [10,20)
  // Energy over [0,30): 250*10 + 292.5*10 + 250*10.
  EXPECT_NEAR(meter.energy_joules(30.0), 2500.0 + 2925.0 + 2500.0, 1e-9);
  EXPECT_NEAR(meter.mean_watts(30.0), 7925.0 / 30.0, 1e-9);
  EXPECT_NEAR(meter.idle_energy_joules(30.0), 7500.0, 1e-9);
}

TEST(PhysicalServer, OccupyReleaseTracksUtilization) {
  PhysicalServer server(0, 2, PowerModel{});
  EXPECT_TRUE(server.has_free_slot());
  server.occupy(0.0);
  server.occupy(0.0);
  EXPECT_FALSE(server.has_free_slot());
  EXPECT_DOUBLE_EQ(server.utilization(), 1.0);
  server.release(10.0);
  EXPECT_DOUBLE_EQ(server.utilization(), 0.5);
  server.release(20.0);
  // Busy-slot integral: 2*10 + 1*10 = 30 -> mean utilization 30/(20*2).
  EXPECT_NEAR(server.mean_utilization(20.0), 0.75, 1e-12);
  EXPECT_NEAR(server.busy_integral(20.0), 30.0, 1e-12);
}

TEST(PhysicalServer, ContractViolationsThrow) {
  PhysicalServer server(0, 1, PowerModel{});
  EXPECT_THROW(server.release(0.0), LogicError);
  server.occupy(0.0);
  EXPECT_THROW(server.occupy(1.0), LogicError);
  EXPECT_THROW(PhysicalServer(0, 0, PowerModel{}), InvalidArgument);
}

TEST(Vm, PaperPresets) {
  const Vm web = Vm::web_vm(0, 3);
  EXPECT_EQ(web.vcpus, 1u);
  EXPECT_EQ(web.host_server, 3u);
  const Vm db = Vm::db_vm(1, 2);
  EXPECT_EQ(db.vcpus, 6u);
  EXPECT_EQ(db.vcpu_mode, virt::VcpuMode::kPinned);
  EXPECT_DOUBLE_EQ(db.memory_gb, 1.0);
}

TEST(DbVcpuFactor, ScalesWithPinnedVcpusUpToUsableCores) {
  // Fig. 7: throughput grows with vCPUs, saturating at the 6 usable cores.
  double previous = 0.0;
  for (unsigned vcpus = 1; vcpus <= 6; ++vcpus) {
    const double factor =
        db_vcpu_throughput_factor(vcpus, virt::VcpuMode::kPinned);
    EXPECT_GT(factor, previous);
    previous = factor;
  }
  EXPECT_DOUBLE_EQ(db_vcpu_throughput_factor(6, virt::VcpuMode::kPinned), 1.0);
  EXPECT_DOUBLE_EQ(db_vcpu_throughput_factor(8, virt::VcpuMode::kPinned), 1.0);
}

TEST(DbVcpuFactor, PinningBeatsCreditScheduler) {
  for (unsigned vcpus = 1; vcpus <= 8; ++vcpus) {
    EXPECT_GT(db_vcpu_throughput_factor(vcpus, virt::VcpuMode::kPinned),
              db_vcpu_throughput_factor(vcpus, virt::VcpuMode::kXenScheduled));
  }
}

TEST(DbVcpuFactor, ValidatesInputs) {
  EXPECT_THROW(db_vcpu_throughput_factor(0, virt::VcpuMode::kPinned),
               InvalidArgument);
  EXPECT_THROW(db_vcpu_throughput_factor(1, virt::VcpuMode::kPinned, 2, 2),
               InvalidArgument);
}

TEST(ServiceSpec, BottleneckAndEffectiveRates) {
  ServiceSpec spec = paper_web_service();
  EXPECT_DOUBLE_EQ(spec.native_bottleneck_rate(), 420.0);
  // With the constant case-study factors: disk 420*0.8 = 336 beats
  // CPU 3360*0.65 = 2184.
  EXPECT_DOUBLE_EQ(spec.effective_rate(2), 336.0);

  ServiceSpec db = paper_db_service();
  EXPECT_DOUBLE_EQ(db.native_bottleneck_rate(), 100.0);
  EXPECT_DOUBLE_EQ(db.effective_rate(2), 90.0);
}

TEST(ServiceSpec, EmptyDemandThrows) {
  ServiceSpec spec;
  spec.name = "empty";
  EXPECT_THROW(spec.native_bottleneck_rate(), InvalidArgument);
  EXPECT_THROW(spec.effective_rate(1), InvalidArgument);
}

TEST(ResourceVector, MinPositiveSkipsZeros) {
  ResourceVector vector;
  vector[Resource::kCpu] = 0.0;
  vector[Resource::kDiskIo] = 5.0;
  vector[Resource::kNetwork] = 3.0;
  EXPECT_DOUBLE_EQ(vector.min_positive(99.0), 3.0);
  ResourceVector empty;
  EXPECT_DOUBLE_EQ(empty.min_positive(99.0), 99.0);
  EXPECT_FALSE(empty.any_positive());
  EXPECT_TRUE(vector.any_positive());
}

TEST(Dispatcher, RoundRobinCyclesThroughAdmissibleServers) {
  Rng rng(51);
  Dispatcher dispatcher(DispatchPolicy::kRoundRobin, 4);
  auto all = [](std::size_t) { return true; };
  auto load = [](std::size_t) { return 0.0; };
  EXPECT_EQ(dispatcher.select(all, load, rng), 0u);
  EXPECT_EQ(dispatcher.select(all, load, rng), 1u);
  EXPECT_EQ(dispatcher.select(all, load, rng), 2u);
  EXPECT_EQ(dispatcher.select(all, load, rng), 3u);
  EXPECT_EQ(dispatcher.select(all, load, rng), 0u);
}

TEST(Dispatcher, RoundRobinSkipsInadmissible) {
  Rng rng(52);
  Dispatcher dispatcher(DispatchPolicy::kRoundRobin, 3);
  auto odd_only = [](std::size_t s) { return s % 2 == 1; };
  auto load = [](std::size_t) { return 0.0; };
  EXPECT_EQ(dispatcher.select(odd_only, load, rng), 1u);
  EXPECT_EQ(dispatcher.select(odd_only, load, rng), 1u);
}

TEST(Dispatcher, LeastLoadedPicksMinimum) {
  Rng rng(53);
  Dispatcher dispatcher(DispatchPolicy::kLeastLoaded, 3);
  const double loads[] = {5.0, 1.0, 3.0};
  auto all = [](std::size_t) { return true; };
  auto load = [&](std::size_t s) { return loads[s]; };
  EXPECT_EQ(dispatcher.select(all, load, rng), 1u);
}

TEST(Dispatcher, ReturnsNposWhenNothingAdmissible) {
  Rng rng(54);
  for (const DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
        DispatchPolicy::kRandom}) {
    Dispatcher dispatcher(policy, 3);
    auto none = [](std::size_t) { return false; };
    auto load = [](std::size_t) { return 0.0; };
    EXPECT_EQ(dispatcher.select(none, load, rng), Dispatcher::npos);
  }
}

TEST(Dispatcher, RandomOnlyPicksAdmissible) {
  Rng rng(55);
  Dispatcher dispatcher(DispatchPolicy::kRandom, 5);
  auto even_only = [](std::size_t s) { return s % 2 == 0; };
  auto load = [](std::size_t) { return 0.0; };
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = dispatcher.select(even_only, load, rng);
    EXPECT_EQ(pick % 2, 0u);
  }
}

}  // namespace
}  // namespace vmcons::dc
