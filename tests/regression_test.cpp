// Tests for the least-squares fitters used by impact-factor calibration.
#include "stats/regression.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace vmcons {
namespace {

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 1; i <= 9; ++i) {
    x.push_back(i);
    y.push_back(1.082 - 0.102 * i);  // the paper's Fig. 5(b) line
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, -0.102, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.082, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  Rng rng(21);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = i * 0.1;
    x.push_back(xi);
    y.push_back(2.0 * xi + 5.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_NEAR(fit.intercept, 5.0, 0.5);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(LinearFit, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), InvalidArgument);
  EXPECT_THROW(fit_linear({1.0, 2.0}, {2.0}), InvalidArgument);
  EXPECT_THROW(fit_linear({3.0, 3.0}, {1.0, 2.0}), NumericError);
}

TEST(PolynomialFit, RecoversQuadratic) {
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 2.0 * i + 0.5 * i * i);
  }
  const PolynomialFit fit = fit_polynomial(x, y, 2);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], -2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PolynomialFit, DegreeZeroIsTheMean) {
  const PolynomialFit fit = fit_polynomial({1.0, 2.0, 3.0}, {4.0, 6.0, 8.0}, 0);
  ASSERT_EQ(fit.coefficients.size(), 1u);
  EXPECT_NEAR(fit.coefficients[0], 6.0, 1e-12);
}

TEST(PolynomialFit, RejectsUnsupportedDegree) {
  EXPECT_THROW(fit_polynomial({1, 2, 3, 4, 5, 6, 7, 8},
                              {1, 2, 3, 4, 5, 6, 7, 8}, 7),
               InvalidArgument);
}

TEST(RationalFit, RecoversPaperDbCurve) {
  // a(v) = 1.85 v^2 / (v^2 + 0.85), the Fig. 8(b) shape.
  std::vector<double> x, y;
  for (int v = 1; v <= 9; ++v) {
    x.push_back(v);
    y.push_back(1.85 * v * v / (v * v + 0.85));
  }
  const RationalSaturatingFit fit = fit_rational_saturating(x, y);
  EXPECT_NEAR(fit.amplitude, 1.85, 1e-3);
  EXPECT_NEAR(fit.half_point, 0.85, 2e-3);
  EXPECT_GT(fit.r_squared, 0.99999);
}

TEST(RationalFit, NoisySamplesStillIdentifyPlateau) {
  Rng rng(22);
  std::vector<double> x, y;
  for (int v = 1; v <= 12; ++v) {
    x.push_back(v);
    y.push_back(1.85 * v * v / (v * v + 0.85) + rng.normal(0.0, 0.02));
  }
  const RationalSaturatingFit fit = fit_rational_saturating(x, y);
  EXPECT_NEAR(fit.amplitude, 1.85, 0.05);
  EXPECT_GT(fit.r_squared, 0.97);
}

TEST(RSquared, PerfectAndUseless) {
  EXPECT_NEAR(r_squared({1, 2, 3}, {1, 2, 3}), 1.0, 1e-15);
  // Predicting the mean gives R^2 = 0.
  EXPECT_NEAR(r_squared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-15);
}

TEST(RSquared, ValidatesInputs) {
  EXPECT_THROW(r_squared({}, {}), InvalidArgument);
  EXPECT_THROW(r_squared({1.0}, {1.0, 2.0}), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
