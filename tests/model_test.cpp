// Tests for the utility analytic model — the paper's contribution.
//
// The anchor is Table I: the case-study services consolidate 6 dedicated
// servers into 3 and 8 into 4, at the same loss probability.
#include "core/model.hpp"

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "util/error.hpp"

namespace vmcons::core {
namespace {

ModelInputs case_study_inputs(std::uint64_t dedicated_per_service,
                              double target_loss = 0.01) {
  ModelInputs inputs;
  inputs.target_loss = target_loss;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate =
      intensive_workload(web, dedicated_per_service, target_loss);
  db.arrival_rate = intensive_workload(db, dedicated_per_service, target_loss);
  inputs.services = {web, db};
  return inputs;
}

TEST(Model, TableOneGroupOneSixToThree) {
  UtilityAnalyticModel model(case_study_inputs(3));
  const ModelResult result = model.solve();
  EXPECT_EQ(result.dedicated_servers, 6u);
  EXPECT_EQ(result.consolidated_servers, 3u);
  EXPECT_NEAR(result.infrastructure_saving, 0.5, 1e-12);
}

TEST(Model, TableOneGroupTwoEightToFour) {
  UtilityAnalyticModel model(case_study_inputs(4));
  const ModelResult result = model.solve();
  EXPECT_EQ(result.dedicated_servers, 8u);
  EXPECT_EQ(result.consolidated_servers, 4u);
  EXPECT_NEAR(result.infrastructure_saving, 0.5, 1e-12);
}

TEST(Model, CaseStudyPowerSavingMatchesPaperHeadline) {
  // The paper reports up to 53% power saving; the model should land there.
  UtilityAnalyticModel model(case_study_inputs(4));
  const ModelResult result = model.solve();
  EXPECT_GT(result.power_saving, 0.45);
  EXPECT_LT(result.power_saving, 0.60);
}

TEST(Model, CaseStudyUtilizationImproves) {
  UtilityAnalyticModel model(case_study_inputs(4));
  const ModelResult result = model.solve();
  // The paper: 1.5x predicted, 1.7x measured. Our workload point yields a
  // somewhat larger ratio; the claim under test is the *shape*: clearly > 1.
  EXPECT_GT(result.utilization_improvement, 1.3);
  EXPECT_LT(result.consolidated_utilization, 1.0);
}

TEST(Model, DedicatedStaffingMatchesPerResourceErlang) {
  const ModelInputs inputs = case_study_inputs(3);
  UtilityAnalyticModel model(inputs);
  const ModelResult result = model.solve();
  ASSERT_EQ(result.dedicated.size(), 2u);
  // Web: disk is the bottleneck.
  const auto& web_plan = result.dedicated[0];
  const double rho_wi = inputs.services[0].arrival_rate / 420.0;
  EXPECT_EQ(web_plan.servers,
            queueing::erlang_b_servers(rho_wi, inputs.target_loss));
  EXPECT_EQ(web_plan.servers, 3u);
  // The CPU requirement is far smaller.
  EXPECT_LT(web_plan.servers_per_resource[static_cast<std::size_t>(
                dc::Resource::kCpu)],
            web_plan.servers);
  // Achieved blocking must satisfy the target.
  EXPECT_LE(web_plan.blocking, inputs.target_loss);
}

TEST(Model, ConsolidatedPlanExposesEquationFour) {
  const ModelInputs inputs = case_study_inputs(3);
  UtilityAnalyticModel model(inputs);
  const ModelResult result = model.solve();
  const auto& cpu_plan =
      result.consolidated[static_cast<std::size_t>(dc::Resource::kCpu)];
  ASSERT_TRUE(cpu_plan.demanded);
  // Both services demand CPU: merged stream carries both arrival rates.
  EXPECT_NEAR(cpu_plan.merged_arrival_rate,
              inputs.services[0].arrival_rate + inputs.services[1].arrival_rate,
              1e-9);
  // Eq. (4): effective rate is the lambda-weighted mean of mu*a.
  const double lw = inputs.services[0].arrival_rate;
  const double ld = inputs.services[1].arrival_rate;
  const double expected_mu =
      (lw * 3360.0 * 0.65 + ld * 100.0 * 0.9) / (lw + ld);
  EXPECT_NEAR(cpu_plan.effective_service_rate, expected_mu, 1e-6);

  const auto& disk_plan =
      result.consolidated[static_cast<std::size_t>(dc::Resource::kDiskIo)];
  ASSERT_TRUE(disk_plan.demanded);
  // Only the web service demands disk.
  EXPECT_NEAR(disk_plan.merged_arrival_rate, lw, 1e-9);
  EXPECT_NEAR(disk_plan.effective_service_rate, 420.0 * 0.8, 1e-6);

  const auto& memory_plan =
      result.consolidated[static_cast<std::size_t>(dc::Resource::kMemory)];
  EXPECT_FALSE(memory_plan.demanded);
}

TEST(Model, ConsolidatedMeetsTheLossTarget) {
  for (const double b : {0.001, 0.01, 0.05}) {
    UtilityAnalyticModel model(case_study_inputs(3, b));
    const ModelResult result = model.solve();
    EXPECT_LE(result.consolidated_blocking, b) << "B=" << b;
    // One server fewer must violate it.
    EXPECT_GT(model.consolidated_loss(result.consolidated_servers - 1), b);
  }
}

TEST(Model, StricterTargetNeedsMoreServers) {
  ModelInputs loose_inputs = case_study_inputs(3, 0.05);
  ModelInputs strict_inputs = loose_inputs;
  strict_inputs.target_loss = 0.0001;
  const ModelResult loose = UtilityAnalyticModel(loose_inputs).solve();
  const ModelResult strict = UtilityAnalyticModel(strict_inputs).solve();
  EXPECT_GE(strict.dedicated_servers, loose.dedicated_servers);
  EXPECT_GE(strict.consolidated_servers, loose.consolidated_servers);
  EXPECT_GT(strict.dedicated_servers + strict.consolidated_servers,
            loose.dedicated_servers + loose.consolidated_servers);
}

TEST(Model, ConsolidationNeverNeedsMoreThanDedicated) {
  // With impact factors of 1, merging Poisson streams can only help
  // (statistical multiplexing): N <= M.
  for (const double scale : {0.3, 1.0, 2.5, 6.0}) {
    ModelInputs inputs = case_study_inputs(3);
    for (auto& service : inputs.services) {
      service.arrival_rate *= scale;
      for (auto& impact : service.impacts) {
        impact = virt::Impact::none();
      }
    }
    UtilityAnalyticModel model(inputs);
    const ModelResult result = model.solve();
    EXPECT_LE(result.consolidated_servers, result.dedicated_servers)
        << "scale=" << scale;
  }
}

TEST(Model, SingleServiceIdealImpactsMatchesPlainErlang) {
  // One service, a = 1: consolidation degenerates to the dedicated case.
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec service;
  service.name = "solo";
  service.demand(dc::Resource::kCpu, 100.0);
  service.arrival_rate = 250.0;
  inputs.services = {service};
  UtilityAnalyticModel model(inputs);
  const ModelResult result = model.solve();
  const std::uint64_t expected = queueing::erlang_b_servers(2.5, 0.01);
  EXPECT_EQ(result.dedicated_servers, expected);
  EXPECT_EQ(result.consolidated_servers, expected);
}

TEST(Model, DedicatedLossMatchesErlangAtGivenStaffing) {
  const ModelInputs inputs = case_study_inputs(3);
  UtilityAnalyticModel model(inputs);
  const double rho_w = inputs.services[0].arrival_rate / 420.0;
  const double rho_d = inputs.services[1].arrival_rate / 100.0;
  const double expected =
      (inputs.services[0].arrival_rate * queueing::erlang_b(3, rho_w) +
       inputs.services[1].arrival_rate * queueing::erlang_b(3, rho_d)) /
      (inputs.services[0].arrival_rate + inputs.services[1].arrival_rate);
  EXPECT_NEAR(model.dedicated_loss({3, 3}), expected, 1e-12);
}

TEST(Model, VmCountOverrideChangesImpactEvaluation) {
  // With curve-based impacts, more VMs per server -> worse factors -> more
  // consolidated servers.
  ModelInputs inputs = case_study_inputs(3);
  inputs.services[0].impacts[static_cast<std::size_t>(dc::Resource::kDiskIo)] =
      virt::Impact::paper_web_disk_io();
  inputs.vms_per_server = 2;
  const ModelResult few = UtilityAnalyticModel(inputs).solve();
  inputs.vms_per_server = 8;
  const ModelResult many = UtilityAnalyticModel(inputs).solve();
  EXPECT_GE(many.consolidated_servers, few.consolidated_servers);
}

TEST(Model, ValidatesInputs) {
  ModelInputs inputs;
  inputs.services = {};
  EXPECT_THROW(UtilityAnalyticModel{inputs}, InvalidArgument);

  inputs = case_study_inputs(3);
  inputs.target_loss = 0.0;
  EXPECT_THROW(UtilityAnalyticModel{inputs}, InvalidArgument);

  inputs = case_study_inputs(3);
  inputs.services[0].arrival_rate = 0.0;
  EXPECT_THROW(UtilityAnalyticModel{inputs}, InvalidArgument);
}

TEST(IntensiveWorkload, LandsInTheExactStaffingBand) {
  const dc::ServiceSpec web = dc::paper_web_service();
  for (const std::uint64_t n : {1ull, 2ull, 3ull, 4ull, 8ull}) {
    for (const double fraction : {0.25, 0.5, 0.9}) {
      const double lambda = intensive_workload(web, n, 0.01, fraction);
      const std::uint64_t staffed =
          queueing::erlang_b_servers(lambda / 420.0, 0.01);
      EXPECT_EQ(staffed, n) << "n=" << n << " fraction=" << fraction;
    }
  }
}

TEST(IntensiveWorkload, ValidatesArguments) {
  const dc::ServiceSpec web = dc::paper_web_service();
  EXPECT_THROW(intensive_workload(web, 0, 0.01), InvalidArgument);
  EXPECT_THROW(intensive_workload(web, 3, 0.01, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::core
