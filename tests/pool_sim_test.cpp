// Tests for the pool simulation beyond the analytic anchors: conservation
// laws, allocation policies, dispatch policies, and warmup behaviour.
#include "datacenter/pool_sim.hpp"

#include <gtest/gtest.h>

#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {
namespace {

PoolConfig base_config() {
  PoolConfig config;
  config.arrival_rates = {2.0, 1.0};
  config.service_rates = {1.0, 1.0};
  config.servers = 4;
  config.horizon = 1000.0;
  config.warmup = 100.0;
  return config;
}

TEST(PoolSim, ConservationOfRequests) {
  PoolConfig config = base_config();
  Rng rng(61);
  const PoolOutcome outcome = simulate_pool(config, rng);
  for (const auto& service : outcome.services) {
    // Every arrival is admitted or lost.
    EXPECT_EQ(service.arrivals, service.admitted + service.lost);
    // Completions can exceed admitted only by the in-flight carryover from
    // warmup, and fall short only by requests still in service at horizon.
    EXPECT_NEAR(static_cast<double>(service.completed),
                static_cast<double>(service.admitted),
                static_cast<double>(config.servers + 2));
  }
}

TEST(PoolSim, ZeroArrivalServiceIsLegalAndSilent) {
  PoolConfig config = base_config();
  config.arrival_rates = {2.0, 0.0};
  Rng rng(62);
  const PoolOutcome outcome = simulate_pool(config, rng);
  EXPECT_EQ(outcome.services[1].arrivals, 0u);
  EXPECT_GT(outcome.services[0].arrivals, 0u);
}

TEST(PoolSim, ResponseTimeEqualsServiceTimeInLossSystem) {
  // With no waiting room, accepted requests never queue, so response time
  // is the exponential service time: mean 1/mu.
  PoolConfig config = base_config();
  config.arrival_rates = {1.0};
  config.service_rates = {2.0};
  config.servers = 8;
  Rng rng(63);
  const PoolOutcome outcome = simulate_pool(config, rng);
  EXPECT_NEAR(outcome.services[0].response_time.mean(), 0.5, 0.05);
}

TEST(PoolSim, StaticPartitionLosesMoreThanFlowing) {
  // Asymmetric load with symmetric quotas: flowing absorbs the imbalance,
  // the static partition cannot — the heart of Section III-B4(1).
  PoolConfig config;
  config.arrival_rates = {6.0, 0.5};
  config.service_rates = {1.0, 1.0};
  config.servers = 2;
  config.slots_per_server = 4;
  config.horizon = 2000.0;
  config.warmup = 200.0;

  PoolConfig flowing = config;
  flowing.allocation = AllocationPolicy::kOnDemandFlowing;
  PoolConfig partitioned = config;
  partitioned.allocation = AllocationPolicy::kStaticPartition;  // 2+2 split

  const auto flowing_loss = sim::replicate_scalar(
      6, 64, [&](std::size_t, Rng& rng) {
        return simulate_pool(flowing, rng).overall_loss();
      });
  const auto partitioned_loss = sim::replicate_scalar(
      6, 64, [&](std::size_t, Rng& rng) {
        return simulate_pool(partitioned, rng).overall_loss();
      });
  EXPECT_LT(flowing_loss.summary.mean(), partitioned_loss.summary.mean());
}

TEST(PoolSim, ProportionalShareAdaptsTowardTheFlowingBound) {
  PoolConfig config;
  config.arrival_rates = {6.0, 0.5};
  config.service_rates = {1.0, 1.0};
  config.servers = 2;
  config.slots_per_server = 4;
  config.horizon = 2000.0;
  config.warmup = 200.0;
  config.realloc_interval = 10.0;

  PoolConfig proportional = config;
  proportional.allocation = AllocationPolicy::kProportionalShare;
  PoolConfig partitioned = config;
  partitioned.allocation = AllocationPolicy::kStaticPartition;

  const auto proportional_loss = sim::replicate_scalar(
      6, 65, [&](std::size_t, Rng& rng) {
        return simulate_pool(proportional, rng).overall_loss();
      });
  const auto partitioned_loss = sim::replicate_scalar(
      6, 65, [&](std::size_t, Rng& rng) {
        return simulate_pool(partitioned, rng).overall_loss();
      });
  // Adapting quotas to the (static) mix beats the even split.
  EXPECT_LT(proportional_loss.summary.mean(),
            partitioned_loss.summary.mean());
}

TEST(PoolSim, ReallocationOverheadCostsThroughput) {
  PoolConfig config;
  config.arrival_rates = {3.0, 3.0};
  config.service_rates = {1.0, 1.0};
  config.servers = 2;
  config.slots_per_server = 4;
  config.allocation = AllocationPolicy::kProportionalShare;
  config.realloc_interval = 5.0;
  config.horizon = 2000.0;
  config.warmup = 200.0;

  PoolConfig free_realloc = config;
  free_realloc.realloc_overhead = 0.0;
  PoolConfig costly_realloc = config;
  costly_realloc.realloc_overhead = 1.0;  // 20% of every interval frozen

  const auto free_loss = sim::replicate_scalar(
      6, 66, [&](std::size_t, Rng& rng) {
        return simulate_pool(free_realloc, rng).overall_loss();
      });
  const auto costly_loss = sim::replicate_scalar(
      6, 66, [&](std::size_t, Rng& rng) {
        return simulate_pool(costly_realloc, rng).overall_loss();
      });
  EXPECT_GT(costly_loss.summary.mean(), free_loss.summary.mean());
}

TEST(PoolSim, ExplicitQuotasRespected) {
  PoolConfig config;
  config.arrival_rates = {5.0, 5.0};
  config.service_rates = {1.0, 1.0};
  config.servers = 1;
  config.slots_per_server = 4;
  config.allocation = AllocationPolicy::kStaticPartition;
  config.static_quotas = {3, 1};
  config.horizon = 500.0;
  config.warmup = 50.0;
  Rng rng(67);
  const PoolOutcome outcome = simulate_pool(config, rng);
  // Service 1 (quota 1 of 4) must lose much more than service 0 (quota 3).
  EXPECT_GT(outcome.services[1].loss_probability(),
            outcome.services[0].loss_probability());
}

TEST(PoolSim, DispatchPoliciesAllWorkConserving) {
  // In a loss system, total loss depends only on total free slots, so all
  // dispatch policies should deliver statistically similar loss.
  PoolConfig config = base_config();
  config.arrival_rates = {3.5};
  config.service_rates = {1.0};
  config.horizon = 3000.0;
  config.warmup = 300.0;

  std::vector<double> means;
  for (const DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
        DispatchPolicy::kRandom}) {
    PoolConfig variant = config;
    variant.dispatch = policy;
    const auto loss = sim::replicate_scalar(
        6, 68, [&](std::size_t, Rng& rng) {
          return simulate_pool(variant, rng).overall_loss();
        });
    means.push_back(loss.summary.mean());
  }
  EXPECT_NEAR(means[0], means[1], 0.01);
  EXPECT_NEAR(means[0], means[2], 0.01);
}

TEST(PoolSim, UtilizationWithinBounds) {
  PoolConfig config = base_config();
  Rng rng(69);
  const PoolOutcome outcome = simulate_pool(config, rng);
  EXPECT_GE(outcome.mean_utilization, 0.0);
  EXPECT_LE(outcome.mean_utilization, 1.0);
  EXPECT_GT(outcome.energy_joules, 0.0);
  EXPECT_GE(outcome.energy_joules, outcome.idle_energy_joules);
}

TEST(PoolSim, ValidatesConfig) {
  Rng rng(70);
  PoolConfig config;  // empty services
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  config.service_rates = {1.0};  // length mismatch
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  config.servers = 0;
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  config.warmup = config.horizon;
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  config.allocation = AllocationPolicy::kStaticPartition;
  config.static_quotas = {5, 5};  // exceeds slots_per_server = 1
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);
}

TEST(PoolSim, ServerGroupsMatchEquivalentHomogeneousPool) {
  // One group with multiplier 1.0 is exactly the homogeneous pool: same
  // server count, same slot shape, same RNG draws, bit-identical outcome.
  PoolConfig flat = base_config();
  PoolConfig grouped = base_config();
  ServerGroup group;
  group.name = "only";
  group.servers = flat.servers;
  group.slots_per_server = flat.slots_per_server;
  group.power = flat.power;
  grouped.groups = {group};

  Rng a(81);
  Rng b(81);
  const PoolOutcome one = simulate_pool(flat, a);
  const PoolOutcome two = simulate_pool(grouped, b);
  EXPECT_EQ(one.services[0].arrivals, two.services[0].arrivals);
  EXPECT_EQ(one.services[0].lost, two.services[0].lost);
  EXPECT_EQ(one.services[0].completed, two.services[0].completed);
  EXPECT_DOUBLE_EQ(one.mean_utilization, two.mean_utilization);
  EXPECT_DOUBLE_EQ(one.energy_joules, two.energy_joules);
}

TEST(PoolSim, FasterGroupLosesLessThanSlowerGroupAlone) {
  // Doubling the service rate on half the fleet must not hurt: the mixed
  // fleet loses no more than the all-slow fleet at the same offered load.
  PoolConfig slow = base_config();
  slow.arrival_rates = {6.0};
  slow.service_rates = {1.0};
  ServerGroup old_gen;
  old_gen.name = "old-gen";
  old_gen.servers = 4;
  slow.groups = {old_gen};

  PoolConfig mixed = slow;
  ServerGroup new_gen;
  new_gen.name = "new-gen";
  new_gen.servers = 2;
  new_gen.rate_multiplier = 2.0;
  mixed.groups = {old_gen, new_gen};
  mixed.groups[0].servers = 2;

  Rng a(82);
  Rng b(82);
  const double slow_loss = simulate_pool(slow, a).overall_loss();
  const double mixed_loss = simulate_pool(mixed, b).overall_loss();
  EXPECT_LT(mixed_loss, slow_loss + 0.02);
}

TEST(PoolSim, ValidatesServerGroups) {
  Rng rng(83);
  PoolConfig config = base_config();
  ServerGroup group;
  group.name = "g";
  group.servers = 2;

  // Groups require the work-conserving policy: per-service quotas have no
  // meaning across heterogeneous slot shapes.
  config.groups = {group};
  config.allocation = AllocationPolicy::kStaticPartition;
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  group.name = "";
  config.groups = {group};
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  group.name = "g";
  group.rate_multiplier = 0.0;
  config.groups = {group};
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);

  config = base_config();
  group.rate_multiplier = 1.0;
  group.servers = 0;
  config.groups = {group};
  EXPECT_THROW(simulate_pool(config, rng), InvalidArgument);
}

TEST(PoolSim, DeterministicForSameStream) {
  PoolConfig config = base_config();
  Rng a(71);
  Rng b(71);
  const PoolOutcome first = simulate_pool(config, a);
  const PoolOutcome second = simulate_pool(config, b);
  EXPECT_EQ(first.services[0].arrivals, second.services[0].arrivals);
  EXPECT_EQ(first.services[0].lost, second.services[0].lost);
  EXPECT_DOUBLE_EQ(first.mean_utilization, second.mean_utilization);
}

TEST(ClusterBuilders, SlotRates) {
  const ServiceSpec web = paper_web_service();
  EXPECT_DOUBLE_EQ(dedicated_slot_rate(web, 1), 420.0);
  EXPECT_DOUBLE_EQ(dedicated_slot_rate(web, 4), 105.0);
  EXPECT_DOUBLE_EQ(consolidated_slot_rate(web, 2, 1), 336.0);
}

TEST(ClusterBuilders, DedicatedPoolsDoNotInteract) {
  // Overloading the DB service must not change web loss in the dedicated
  // deployment (the defining property of dedicated servers).
  ServiceSpec web = paper_web_service();
  ServiceSpec db = paper_db_service();
  web.arrival_rate = 130.0;
  ScenarioOptions options;
  options.horizon = 1500.0;
  options.warmup = 150.0;

  db.arrival_rate = 10.0;
  Rng rng_light(72);
  const PoolOutcome light =
      simulate_dedicated({web, db}, {3, 3}, options, rng_light);

  db.arrival_rate = 500.0;  // drown the DB pool
  Rng rng_heavy(72);
  const PoolOutcome heavy =
      simulate_dedicated({web, db}, {3, 3}, options, rng_heavy);

  EXPECT_NEAR(light.services[0].loss_probability(),
              heavy.services[0].loss_probability(), 1e-9);
  EXPECT_GT(heavy.services[1].loss_probability(), 0.5);
}

TEST(ClusterBuilders, ConsolidatedSharesCapacity) {
  // In the consolidated pool the same DB overload *does* hurt the web
  // service: capacity flows, so the two streams compete.
  ServiceSpec web = paper_web_service();
  ServiceSpec db = paper_db_service();
  web.arrival_rate = 130.0;
  ScenarioOptions options;
  options.horizon = 1500.0;
  options.warmup = 150.0;

  db.arrival_rate = 10.0;
  Rng rng_light(73);
  const PoolOutcome light =
      simulate_consolidated({web, db}, 3, options, rng_light);

  db.arrival_rate = 500.0;
  Rng rng_heavy(73);
  const PoolOutcome heavy =
      simulate_consolidated({web, db}, 3, options, rng_heavy);

  EXPECT_GT(heavy.services[0].loss_probability(),
            light.services[0].loss_probability() + 0.05);
}

}  // namespace
}  // namespace vmcons::dc
