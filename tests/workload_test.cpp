// Tests for the workload generators: arrival processes, the httperf-style
// open-loop driver, the TPC-W-style closed loop, and the SPECweb generator.
#include <cmath>

#include <gtest/gtest.h>

#include "stats/summary.hpp"
#include "util/error.hpp"
#include "workload/arrival.hpp"
#include "workload/httperf.hpp"
#include "workload/specweb.hpp"
#include "workload/tpcw.hpp"

namespace vmcons::workload {
namespace {

TEST(Arrivals, PoissonGapsAverageToRate) {
  Rng rng(91);
  PoissonProcess process(4.0);
  Summary gaps;
  for (int i = 0; i < 50000; ++i) {
    gaps.add(process.next_gap(rng));
  }
  EXPECT_NEAR(gaps.mean(), 0.25, 0.005);
}

TEST(Arrivals, DeterministicGapsAreConstant) {
  Rng rng(92);
  DeterministicProcess process(5.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(process.next_gap(rng), 0.2);
  }
}

TEST(Arrivals, MmppMeanRateMatchesConstruction) {
  Rng rng(93);
  Mmpp2Process process = Mmpp2Process::with_mean_rate(10.0, 5.0);
  EXPECT_NEAR(process.mean_rate(), 10.0, 1e-12);
  // Long-run empirical rate approaches the configured mean.
  double total_time = 0.0;
  const int arrivals = 200000;
  for (int i = 0; i < arrivals; ++i) {
    total_time += process.next_gap(rng);
  }
  EXPECT_NEAR(arrivals / total_time, 10.0, 0.5);
}

TEST(Arrivals, MmppIsBurstierThanPoisson) {
  // Index of dispersion of counts over windows: Poisson ~ 1, MMPP >> 1.
  Rng rng(94);
  auto dispersion = [&](auto& process) {
    Summary counts;
    const double window = 1.0;
    double clock = 0.0;
    int count = 0;
    for (int i = 0; i < 400000; ++i) {
      clock += process.next_gap(rng);
      if (clock >= window) {
        counts.add(count);
        count = 0;
        clock = std::fmod(clock, window);
      }
      ++count;
    }
    return counts.variance() / counts.mean();
  };
  PoissonProcess poisson(10.0);
  Mmpp2Process mmpp = Mmpp2Process::with_mean_rate(10.0, 8.0);
  EXPECT_NEAR(dispersion(poisson), 1.0, 0.15);
  EXPECT_GT(dispersion(mmpp), 2.0);
}

TEST(Arrivals, VariantHelpersDispatch) {
  Rng rng(95);
  ArrivalProcess process = PoissonProcess(3.0);
  EXPECT_DOUBLE_EQ(mean_rate(process), 3.0);
  EXPECT_GT(next_gap(process, rng), 0.0);
  process = Mmpp2Process::with_mean_rate(6.0, 4.0);
  EXPECT_NEAR(mean_rate(process), 6.0, 1e-12);
}

TEST(Httperf, CapacityFollowsImpactCurve) {
  EXPECT_DOUBLE_EQ(httperf_capacity(specweb_diskio_config(0)), 420.0);
  EXPECT_NEAR(httperf_capacity(specweb_diskio_config(1)), 420.0 * 0.98, 1e-9);
  EXPECT_NEAR(httperf_capacity(specweb_diskio_config(6)), 420.0 * 0.47, 1e-9);
}

TEST(Httperf, ThroughputTracksOfferedBelowCapacity) {
  HttperfConfig config = specweb_diskio_config(0);
  config.duration = 300.0;
  Rng rng(96);
  const HttperfPoint point = httperf_run(config, 200.0, rng);
  EXPECT_NEAR(point.reply_rate, 200.0, 10.0);
  EXPECT_LT(point.loss, 0.01);
}

TEST(Httperf, PaperFigureFiveShape) {
  // Rise, knee near capacity, slight dip past it, then stability.
  HttperfConfig config = specweb_diskio_config(2);
  config.duration = 300.0;
  const double capacity = httperf_capacity(config);
  const std::vector<double> rates{0.4 * capacity, 0.8 * capacity,
                                  1.1 * capacity, 1.6 * capacity,
                                  2.5 * capacity};
  const auto points = httperf_sweep(config, rates, 97);
  // Monotone rise up to the knee.
  EXPECT_LT(points[0].reply_rate, points[1].reply_rate);
  // Past the knee, throughput stays within a band below capacity: never
  // collapses, never exceeds capacity by more than noise.
  for (std::size_t i = 2; i < points.size(); ++i) {
    EXPECT_GT(points[i].reply_rate, 0.6 * capacity);
    EXPECT_LT(points[i].reply_rate, 1.05 * capacity);
  }
  // Loss grows with overload.
  EXPECT_GT(points[4].loss, points[2].loss);
}

TEST(Httperf, MoreVmsMeanLessThroughput) {
  std::vector<double> plateaus;
  for (const unsigned vms : {1u, 4u, 8u}) {
    HttperfConfig config = specweb_diskio_config(vms);
    config.duration = 200.0;
    Rng rng(98 + vms);
    plateaus.push_back(httperf_run(config, 800.0, rng).reply_rate);
  }
  EXPECT_GT(plateaus[0], plateaus[1]);
  EXPECT_GT(plateaus[1], plateaus[2]);
}

TEST(Tpcw, CapacityEncodesSoftwareCeiling) {
  TpcwConfig native;
  native.vm_count = 0;
  TpcwConfig one_vm = native;
  one_vm.vm_count = 1;
  TpcwConfig two_vms = native;
  two_vms.vm_count = 2;
  // Native and one VM are close; two VMs are much faster (Fig. 8a).
  EXPECT_NEAR(tpcw_capacity(one_vm) / tpcw_capacity(native), 1.0, 0.05);
  EXPECT_GT(tpcw_capacity(two_vms) / tpcw_capacity(native), 1.4);
}

TEST(Tpcw, WipsRespectsClosedLoopBoundAndCapacity) {
  TpcwConfig config;
  config.vm_count = 2;
  config.duration = 400.0;
  Rng rng(99);
  const TpcwPoint light = tpcw_run(config, 100, rng);
  // Light load: WIPS ~ EBs/think (every browser cycles freely).
  EXPECT_NEAR(light.wips, 100.0 / config.think_time, 2.0);
  EXPECT_LE(light.wips, light.wips_upper_limit * 1.05);

  Rng rng2(100);
  const TpcwPoint heavy = tpcw_run(config, 3000, rng2);
  // Heavy load: WIPS saturates at the capacity.
  EXPECT_NEAR(heavy.wips, tpcw_capacity(config), tpcw_capacity(config) * 0.06);
}

TEST(Tpcw, PinnedVcpusBeatCreditScheduler) {
  TpcwConfig pinned;
  pinned.vm_count = 1;
  TpcwConfig scheduled = pinned;
  scheduled.vcpu_mode = virt::VcpuMode::kXenScheduled;
  EXPECT_GT(tpcw_capacity(pinned), tpcw_capacity(scheduled));
}

TEST(Tpcw, FewerVcpusLowerThroughput) {
  TpcwConfig six;
  six.vm_count = 1;
  six.vcpus = 6;
  TpcwConfig two = six;
  two.vcpus = 2;
  EXPECT_GT(tpcw_capacity(six), tpcw_capacity(two));
}

TEST(Specweb, RequestDemandsAreConsistent) {
  SpecwebGenerator generator{SpecwebConfig{}};
  Rng rng(101);
  Summary sizes;
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    const SpecwebRequest request = generator.sample(rng);
    ASSERT_LT(request.file_rank, generator.config().file_count);
    ASSERT_GE(request.size_kb, 0.0);
    ASSERT_GE(request.cpu_seconds, 0.0);
    if (request.cache_hit) {
      ++hits;
      EXPECT_DOUBLE_EQ(request.disk_seconds, 0.0);
    } else {
      EXPECT_GT(request.disk_seconds, 0.0);
    }
    sizes.add(request.size_kb);
  }
  EXPECT_NEAR(sizes.mean(), generator.config().mean_file_kb, 3.0);
  // Zipf head + 12% cache fraction: hit ratio well above the raw fraction.
  EXPECT_GT(static_cast<double>(hits) / 20000.0, 0.2);
}

TEST(Specweb, RateEstimateAndServiceSpec) {
  SpecwebGenerator generator{SpecwebConfig{}};
  Rng rng(102);
  const auto rates = generator.estimate_rates(rng, 50000);
  EXPECT_GT(rates.disk_rate, 0.0);
  EXPECT_GT(rates.cpu_rate, rates.disk_rate);  // disk is the bottleneck
  const dc::ServiceSpec spec = generator.derive_service_spec(rates, 100.0);
  EXPECT_DOUBLE_EQ(spec.arrival_rate, 100.0);
  EXPECT_DOUBLE_EQ(spec.native_bottleneck_rate(), rates.disk_rate);
}

TEST(Specweb, SessionsResponseGrowsWithLoad) {
  SpecwebSessionsConfig config;
  config.duration = 300.0;
  config.warmup = 30.0;
  const auto points = specweb_sessions_sweep(config, {200, 1500, 4000}, 103);
  // Light load: response ~ service time; heavy load: queueing dominates.
  EXPECT_LT(points[0].mean_response, points[2].mean_response);
  EXPECT_GT(points[2].mean_response, 3.0 * points[0].mean_response);
  // Throughput saturates at pool capacity.
  const double pool_capacity =
      config.per_server_capacity * static_cast<double>(config.servers);
  EXPECT_LT(points[2].throughput, pool_capacity * 1.02);
}

TEST(Specweb, GeneratorValidatesConfig) {
  SpecwebConfig config;
  config.file_count = 1;
  EXPECT_THROW(SpecwebGenerator{config}, InvalidArgument);
  config = SpecwebConfig{};
  config.cache_fraction = 1.5;
  EXPECT_THROW(SpecwebGenerator{config}, InvalidArgument);
}

}  // namespace
}  // namespace vmcons::workload
