// Concurrency-determinism property test for the contention-free Erlang
// kernel: the same randomized ScenarioBatch evaluated over 1-, 2-, and
// 8-thread pools — with direct ErlangKernel queries interleaved from a
// separate thread — must produce bit-identical plans under every
// configuration. The two-tier snapshot/arena design makes this hold by
// construction (the E_n(rho) recurrence is deterministic with a fixed
// operation order, so every thread's private extension of a rho agrees
// bit-for-bit with every other), and this suite is the enforcement.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/model.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::core {
namespace {

/// Same generator shape as batch_model_test: random but valid scenarios,
/// fully derived from (seed, index).
ModelInputs random_inputs(std::uint64_t seed, std::size_t index) {
  Rng rng = make_stream(seed, index);
  ModelInputs inputs;
  inputs.target_loss = 1e-4 + rng.uniform() * 0.2;
  const std::size_t service_count = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < service_count; ++i) {
    dc::ServiceSpec service;
    service.name = "svc" + std::to_string(i);
    service.arrival_rate = rng.uniform(0.5, 500.0);
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      if (rng.bernoulli(0.5)) {
        continue;
      }
      any = true;
      service.demand(resource, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    if (!any) {
      service.demand(dc::Resource::kCpu, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    inputs.services.push_back(std::move(service));
  }
  return inputs;
}

void expect_identical(const ModelResult& a, const ModelResult& b,
                      std::size_t index) {
  SCOPED_TRACE("scenario " + std::to_string(index));
  ASSERT_EQ(a.dedicated.size(), b.dedicated.size());
  for (std::size_t i = 0; i < a.dedicated.size(); ++i) {
    EXPECT_EQ(a.dedicated[i].servers, b.dedicated[i].servers);
    EXPECT_EQ(a.dedicated[i].blocking, b.dedicated[i].blocking);
  }
  EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
  EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
  EXPECT_EQ(a.consolidated_blocking, b.consolidated_blocking);
  EXPECT_EQ(a.dedicated_utilization, b.dedicated_utilization);
  EXPECT_EQ(a.consolidated_utilization, b.consolidated_utilization);
  EXPECT_EQ(a.utilization_improvement, b.utilization_improvement);
  EXPECT_EQ(a.dedicated_power_watts, b.dedicated_power_watts);
  EXPECT_EQ(a.consolidated_power_watts, b.consolidated_power_watts);
  EXPECT_EQ(a.power_saving, b.power_saving);
  EXPECT_EQ(a.infrastructure_saving, b.infrastructure_saving);
}

/// The index-derived direct kernel traffic interleaved with each batch.
double direct_rho(std::size_t i) {
  return 20.0 + static_cast<double>(i % 13) * 17.0;
}
std::uint64_t direct_servers(std::size_t i) { return 1 + (i % 120); }

TEST(BatchDeterminism, PlansIdenticalAcross1And2And8Threads) {
  constexpr std::size_t kScenarios = 200;
  constexpr std::size_t kDirectQueries = 300;
  constexpr std::uint64_t kSeed = 0xd37e2;

  std::vector<ModelInputs> inputs;
  inputs.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    inputs.push_back(random_inputs(kSeed, i));
  }
  const ScenarioBatch batch = ScenarioBatch::from_inputs(inputs);

  struct Run {
    std::vector<ModelResult> results;
    std::vector<double> direct;
    queueing::ErlangKernel::Stats stats;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    queueing::ErlangKernel kernel;
    BatchOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    options.shard_size = 9;  // many shards, misaligned with the batch size

    Run run;
    run.direct.resize(kDirectQueries);
    // Direct scalar queries race the batch from a foreign thread: they mix
    // snapshot hits, arena extensions, and (once an arena crosses the
    // watermark) merges into the evaluation the batch is running.
    std::thread interleaved([&] {
      for (std::size_t i = 0; i < kDirectQueries; ++i) {
        run.direct[i] = kernel.erlang_b(direct_servers(i), direct_rho(i));
      }
    });
    run.results = BatchEvaluator(options).evaluate(batch);
    interleaved.join();
    run.stats = kernel.stats();
    runs.push_back(std::move(run));
  }

  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].results.size(), runs[0].results.size());
    for (std::size_t i = 0; i < runs[0].results.size(); ++i) {
      expect_identical(runs[r].results[i], runs[0].results[i], i);
    }
    // Steps and hit counts legitimately vary with timing (two threads may
    // privately extend the same rho before a merge dedups them), but the
    // number of public queries answered is fixed by the workload.
    EXPECT_EQ(runs[r].stats.evaluations, runs[0].stats.evaluations);
  }

  // The interleaved direct traffic is bit-identical to the free functions
  // regardless of what the batch was doing to the kernel at the time.
  for (const Run& run : runs) {
    for (std::size_t i = 0; i < kDirectQueries; ++i) {
      EXPECT_EQ(run.direct[i],
                queueing::erlang_b(direct_servers(i), direct_rho(i)))
          << "direct query " << i;
    }
  }
}

TEST(BatchDeterminism, PostMergeProbesMatchEveryConfiguration) {
  constexpr std::size_t kScenarios = 60;
  constexpr std::uint64_t kSeed = 0x5eed5;

  std::vector<ModelInputs> inputs;
  inputs.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    inputs.push_back(random_inputs(kSeed, i));
  }
  const ScenarioBatch batch = ScenarioBatch::from_inputs(inputs);

  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    queueing::ErlangKernel kernel;
    BatchOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    options.shard_size = 5;
    BatchEvaluator(options).evaluate(batch);
    // evaluate() ended with a merge epoch, so the snapshot now holds every
    // prefix the batch touched; probes through it must equal the free
    // functions bit-for-bit no matter which worker built each prefix.
    EXPECT_GE(kernel.stats().merges, 1u);
    for (std::size_t i = 0; i < 50; ++i) {
      const double rho = direct_rho(i * 3);
      const std::uint64_t servers = direct_servers(i * 7);
      EXPECT_EQ(kernel.erlang_b(servers, rho),
                queueing::erlang_b(servers, rho))
          << "probe " << i << " at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace vmcons::core
