// Randomized property tests: seeded random configurations hammer the
// simulators and the packer, checking the invariants that must hold for ANY
// input — conservation laws, capacity constraints, determinism, and
// analytic consistency. Each case derives everything from its index, so
// failures reproduce exactly.
#include <cmath>

#include <gtest/gtest.h>

#include "datacenter/loss_network.hpp"
#include "datacenter/placement.hpp"
#include "datacenter/pool_sim.hpp"
#include "queueing/erlang.hpp"
#include "queueing/fixed_point.hpp"
#include "util/rng.hpp"

namespace vmcons {
namespace {

class RandomPoolCase : public ::testing::TestWithParam<int> {};

TEST_P(RandomPoolCase, InvariantsHoldForArbitraryConfigs) {
  Rng setup(0xF00D, static_cast<std::uint64_t>(GetParam()));
  dc::PoolConfig config;
  const std::size_t services = 1 + setup.uniform_index(4);
  for (std::size_t i = 0; i < services; ++i) {
    config.arrival_rates.push_back(setup.uniform(0.1, 8.0));
    config.service_rates.push_back(setup.uniform(0.2, 4.0));
  }
  config.servers = 1 + static_cast<unsigned>(setup.uniform_index(6));
  config.slots_per_server = 1 + static_cast<unsigned>(setup.uniform_index(4));
  config.queue_capacity = static_cast<unsigned>(setup.uniform_index(8));
  config.dispatch = static_cast<dc::DispatchPolicy>(setup.uniform_index(3));
  config.allocation = static_cast<dc::AllocationPolicy>(setup.uniform_index(3));
  config.realloc_interval = setup.uniform(2.0, 20.0);
  config.realloc_overhead = setup.uniform(0.0, 0.5);
  config.horizon = 400.0;
  config.warmup = 40.0;

  Rng run(0xBEEF, static_cast<std::uint64_t>(GetParam()));
  const dc::PoolOutcome outcome = dc::simulate_pool(config, run);

  double total_loss_weighted = 0.0;
  double total_lambda = 0.0;
  for (std::size_t i = 0; i < services; ++i) {
    const auto& stats = outcome.services[i];
    // Conservation: every arrival is admitted or lost.
    EXPECT_EQ(stats.arrivals, stats.admitted + stats.lost) << "case " << GetParam();
    // Completions bounded by admissions plus the in-flight carryover.
    EXPECT_LE(stats.completed,
              stats.admitted + config.servers * config.slots_per_server +
                  config.queue_capacity + 1);
    // Response times are nonnegative and, in a loss system, at least ~0.
    if (stats.completed > 0) {
      EXPECT_GE(stats.response_time.min(), 0.0);
    }
    total_loss_weighted += stats.loss_probability() * config.arrival_rates[i];
    total_lambda += config.arrival_rates[i];
  }
  EXPECT_GE(outcome.mean_utilization, 0.0);
  EXPECT_LE(outcome.mean_utilization, 1.0 + 1e-9);
  EXPECT_GE(outcome.energy_joules, outcome.idle_energy_joules - 1e-6);

  // Loss never exceeds what zero capacity would produce, and utilization
  // is consistent with carried work (a weak but universal bound).
  EXPECT_LE(outcome.overall_loss(), 1.0);
  EXPECT_GE(outcome.overall_loss(), 0.0);
  (void)total_loss_weighted;
  (void)total_lambda;

  // Determinism: same stream, same result.
  Rng replay(0xBEEF, static_cast<std::uint64_t>(GetParam()));
  const dc::PoolOutcome again = dc::simulate_pool(config, replay);
  EXPECT_EQ(outcome.services[0].arrivals, again.services[0].arrivals);
  EXPECT_EQ(outcome.total_lost(), again.total_lost());
  EXPECT_DOUBLE_EQ(outcome.energy_joules, again.energy_joules);
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomPoolCase, ::testing::Range(0, 24));

class RandomNetworkCase : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetworkCase, LossNetworkInvariants) {
  Rng setup(0xCAFE, static_cast<std::uint64_t>(GetParam()));
  dc::LossNetworkConfig config;
  const std::size_t services = 1 + setup.uniform_index(3);
  for (std::size_t i = 0; i < services; ++i) {
    dc::ServiceSpec spec;
    spec.name = "svc" + std::to_string(i);
    spec.arrival_rate = setup.uniform(0.2, 6.0);
    // Demand a random nonempty subset of resources.
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      if (setup.bernoulli(0.5)) {
        spec.demand(resource, setup.uniform(0.5, 5.0));
        any = true;
      }
    }
    if (!any) {
      spec.demand(dc::Resource::kCpu, setup.uniform(0.5, 5.0));
    }
    config.services.push_back(std::move(spec));
  }
  config.servers = 1 + static_cast<unsigned>(setup.uniform_index(5));
  config.vm_count = static_cast<unsigned>(setup.uniform_index(4));
  config.horizon = 400.0;
  config.warmup = 40.0;

  Rng run(0xD00D, static_cast<std::uint64_t>(GetParam()));
  const dc::LossNetworkOutcome outcome = dc::simulate_loss_network(config, run);

  for (const auto& service : outcome.pool.services) {
    EXPECT_EQ(service.arrivals, service.admitted + service.lost);
  }
  for (const dc::Resource resource : dc::all_resources()) {
    const double utilization = outcome.resource_utilization[resource];
    EXPECT_GE(utilization, 0.0);
    EXPECT_LE(utilization, 1.0 + 1e-9);
  }
  // The busy-host proxy dominates every single resource's utilization.
  for (const dc::Resource resource : dc::all_resources()) {
    EXPECT_GE(outcome.pool.mean_utilization + 1e-9,
              outcome.resource_utilization[resource]);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomNetworkCase, ::testing::Range(0, 16));

class RandomPackingCase : public ::testing::TestWithParam<int> {};

TEST_P(RandomPackingCase, PackingRespectsCapacities) {
  Rng setup(0xACDC, static_cast<std::uint64_t>(GetParam()));
  dc::HostShape host;
  host.cpu_cores = 8 + static_cast<unsigned>(setup.uniform_index(9));
  host.reserved_cores = 1 + static_cast<unsigned>(setup.uniform_index(2));
  host.memory_gb = setup.uniform(8.0, 32.0);
  host.reserved_memory_gb = 1.0;

  std::vector<dc::VmRequirement> vms;
  const std::size_t count = 3 + setup.uniform_index(20);
  for (std::size_t i = 0; i < count; ++i) {
    dc::VmRequirement vm;
    vm.name = "vm" + std::to_string(i);
    vm.vcpus = 1 + static_cast<unsigned>(
                       setup.uniform_index(host.usable_cores()));
    vm.memory_gb = setup.uniform(0.5, host.usable_memory_gb());
    vm.service = static_cast<std::uint32_t>(setup.uniform_index(4));
    vms.push_back(std::move(vm));
  }

  for (const auto heuristic : {dc::PackingHeuristic::kFirstFitDecreasing,
                               dc::PackingHeuristic::kBestFit}) {
    const dc::Placement placement =
        dc::pack_vms(vms, host, vms.size(), heuristic);
    ASSERT_TRUE(placement.feasible);
    // Every VM appears exactly once.
    std::vector<int> seen(vms.size(), 0);
    for (const auto& assignment : placement.assignments) {
      unsigned cores = 0;
      double memory = 0.0;
      for (const std::size_t index : assignment) {
        ++seen[index];
        cores += vms[index].vcpus;
        memory += vms[index].memory_gb;
      }
      EXPECT_LE(cores, host.usable_cores());
      EXPECT_LE(memory, host.usable_memory_gb() + 1e-9);
    }
    for (const int visits : seen) {
      EXPECT_EQ(visits, 1);
    }
    // Lower bound: can never beat the volume bound.
    double core_volume = 0.0;
    for (const auto& vm : vms) {
      core_volume += vm.vcpus;
    }
    EXPECT_GE(placement.hosts_used(),
              static_cast<std::size_t>(
                  std::ceil(core_volume / host.usable_cores())));
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomPackingCase, ::testing::Range(0, 16));

class RandomFixedPointCase : public ::testing::TestWithParam<int> {};

TEST_P(RandomFixedPointCase, FixedPointConvergesAndBounds) {
  Rng setup(0xFACE, static_cast<std::uint64_t>(GetParam()));
  std::vector<queueing::LossClass> classes;
  const std::size_t count = 1 + setup.uniform_index(4);
  const std::size_t resources = 1 + setup.uniform_index(3);
  for (std::size_t i = 0; i < count; ++i) {
    queueing::LossClass loss_class;
    loss_class.arrival_rate = setup.uniform(0.1, 10.0);
    for (std::size_t j = 0; j < resources; ++j) {
      loss_class.service_rates.push_back(
          setup.bernoulli(0.7) ? setup.uniform(0.3, 5.0) : 0.0);
    }
    classes.push_back(std::move(loss_class));
  }
  // Ensure at least one demand exists.
  classes[0].service_rates[0] = 1.0;

  const std::uint64_t capacity = 1 + setup.uniform_index(8);
  const auto result = queueing::reduced_load_blocking(classes, capacity);
  EXPECT_TRUE(result.converged);
  for (const double blocking : result.resource_blocking) {
    EXPECT_GE(blocking, 0.0);
    EXPECT_LE(blocking, 1.0);
  }
  for (std::size_t i = 0; i < classes.size(); ++i) {
    EXPECT_GE(result.class_blocking[i], 0.0);
    EXPECT_LE(result.class_blocking[i], 1.0);
    // Class blocking dominates each of its resources' blocking.
    for (std::size_t j = 0; j < resources; ++j) {
      if (classes[i].service_rates[j] > 0.0) {
        EXPECT_GE(result.class_blocking[i] + 1e-12,
                  result.resource_blocking[j] *
                      (1.0 - 1e-9));  // >= B_j up to roundoff
      }
    }
  }
  // Reduced load never exceeds the un-thinned independent bound.
  for (std::size_t j = 0; j < resources; ++j) {
    double full_rho = 0.0;
    for (const auto& loss_class : classes) {
      if (loss_class.service_rates[j] > 0.0) {
        full_rho += loss_class.arrival_rate / loss_class.service_rates[j];
      }
    }
    if (full_rho > 0.0) {
      EXPECT_LE(result.resource_blocking[j],
                queueing::erlang_b(capacity, full_rho) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, RandomFixedPointCase, ::testing::Range(0, 16));

}  // namespace
}  // namespace vmcons
