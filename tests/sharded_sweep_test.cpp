// ShardedSweepDriver: the claim ledger arbitrates multi-worker sweeps, a
// worker killed while holding a lease is reclaimed by a peer, and the
// merged result is bit-identical to a 1-process StreamingSweep no matter
// the worker count or crash pattern. Plus the satellites that make that
// safe: the manifest PidLockFile (two sweeps on one checkpoint fail fast),
// concurrent positional store reads, and the metrics JSON wire format the
// merger sums worker counters from.
//
// The kill tests pin their fault seed via VMCONS_FAULT_SEED (scripts/
// tier1.sh sets it) so a red run replays bit-identically.
#include "core/sharded_sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/planner.hpp"
#include "core/scenario_store.hpp"
#include "core/streaming_sweep.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "util/file_lock.hpp"
#include "util/metrics.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

using util::FaultInjector;
using util::ScopedFaults;
namespace sites = util::fault_sites;

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("VMCONS_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2009;
}

/// The streaming suite's small scenario space: 12 points, shard size 2 ->
/// 6 shards, cheap enough to evaluate several times per test.
ConsolidationPlanner small_planner() {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web;
  web.name = "web";
  web.arrival_rate = 120.0;
  web.demand(dc::Resource::kCpu, 180.0, virt::Impact::constant(0.8));
  web.demand(dc::Resource::kNetwork, 400.0, virt::Impact::constant(0.9));
  planner.add_service(web);
  dc::ServiceSpec db;
  db.name = "db";
  db.arrival_rate = 60.0;
  db.demand(dc::Resource::kCpu, 90.0, virt::Impact::constant(0.75));
  db.demand(dc::Resource::kDiskIo, 150.0, virt::Impact::constant(0.7));
  planner.add_service(db);
  return planner;
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.target_losses({0.005, 0.01, 0.05})
      .vms_per_server({2, 3})
      .workload_scales({1.0, 1.4});
  return grid;
}
constexpr std::size_t kShards = 6;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "vmcons_sharded_" + name;
  std::remove(path.c_str());
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  return path;
}

/// Writes the small store and opens it.
std::string make_store(const std::string& name) {
  const std::string path = temp_path(name + ".store");
  write_sweep_store(small_planner(), small_grid(), path, 2);
  return path;
}

ShardedSweepOptions driver_options(const std::string& ledger,
                                   const std::string& worker_id) {
  ShardedSweepOptions options;
  options.batch.parallel = false;
  options.batch.policy = FailurePolicy::kQuarantine;
  options.ledger_dir = ledger;
  options.worker_id = worker_id;
  options.lease = std::chrono::milliseconds(60000);
  options.poll = std::chrono::milliseconds(2);
  return options;
}

/// Reference report: what a clean 1-process StreamingSweep produces, with
/// results collected per global scenario.
struct Reference {
  StreamingSweepReport report;
  std::vector<ModelResult> results;
};

Reference run_reference(const ScenarioStore& store) {
  StreamingSweepOptions options;
  options.batch.parallel = false;
  options.batch.policy = FailurePolicy::kQuarantine;
  Reference ref;
  ref.results.resize(store.scenario_count());
  const StreamingSweep sweep(options);
  ref.report = sweep.run(store, [&ref](ShardOutcome&& shard) {
    for (std::size_t i = 0; i < shard.outcome.results.size(); ++i) {
      ref.results[shard.scenario_begin + i] =
          std::move(shard.outcome.results[i]);
    }
  });
  EXPECT_TRUE(ref.report.complete());
  return ref;
}

void expect_bit_identical(const MergedSweep& merged, const Reference& ref) {
  EXPECT_EQ(merged.report.shards_completed, ref.report.shards_total);
  EXPECT_EQ(merged.report.scenarios_evaluated,
            ref.report.scenarios_evaluated);
  // The per-shard result digests cover every numeric field of every
  // ModelResult, so equality here is bit-identity of the whole sweep.
  EXPECT_EQ(merged.report.shard_checksums, ref.report.shard_checksums);
  ASSERT_EQ(merged.report.failures.size(), ref.report.failures.size());
  for (std::size_t i = 0; i < merged.report.failures.size(); ++i) {
    EXPECT_EQ(merged.report.failures[i].scenario_index,
              ref.report.failures[i].scenario_index);
  }
}

TEST(ShardedSweep, WorkersAtEveryCountMergeBitIdenticalToStreaming) {
  const std::string store_path = make_store("counts");
  const ScenarioStore store(store_path);
  const Reference ref = run_reference(store);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    SCOPED_TRACE("workers = " + std::to_string(workers));
    const std::string ledger =
        temp_path("counts.ledger" + std::to_string(workers));
    std::vector<std::thread> fleet;
    std::vector<WorkerReport> reports(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      fleet.emplace_back([&, w] {
        const ShardedSweepDriver driver(
            driver_options(ledger, "w" + std::to_string(w)));
        reports[w] = driver.run_worker(ScenarioStore(store_path));
      });
    }
    for (std::thread& t : fleet) {
      t.join();
    }
    std::size_t evaluated = 0;
    for (const WorkerReport& report : reports) {
      evaluated += report.shards_evaluated;
      EXPECT_FALSE(report.cancelled);
      EXPECT_FALSE(report.deadline_exceeded);
    }
    // Leases are long and every worker lives: each shard is evaluated
    // exactly once across the fleet.
    EXPECT_EQ(evaluated, kShards);

    const ShardedSweepDriver merger(driver_options(ledger, "merger"));
    std::vector<ModelResult> merged_results(store.scenario_count());
    std::vector<std::size_t> delivered;
    const MergedSweep merged =
        merger.merge(store, [&](ShardOutcome&& shard) {
          delivered.push_back(shard.shard_index);
          for (std::size_t i = 0; i < shard.outcome.results.size(); ++i) {
            merged_results[shard.scenario_begin + i] =
                std::move(shard.outcome.results[i]);
          }
        });
    expect_bit_identical(merged, ref);
    // Sink delivery is shard order by contract, never completion order.
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      EXPECT_EQ(delivered[i], i);
    }
    for (std::size_t s = 0; s < store.scenario_count(); ++s) {
      EXPECT_EQ(merged_results[s].dedicated_servers,
                ref.results[s].dedicated_servers);
      EXPECT_EQ(merged_results[s].consolidated_blocking,
                ref.results[s].consolidated_blocking);
      EXPECT_EQ(merged_results[s].power_saving, ref.results[s].power_saving);
    }
  }
}

// A worker that dies *holding a lease* (fault site driver.shard fires after
// the claim is durable, before evaluation) leaves a claim file behind; a
// peer with a short lease reclaims it and the merged sweep is still
// bit-identical to the clean 1-process run.
TEST(ShardedSweep, KilledWorkerLeaseIsReclaimedBitIdentical) {
  const std::string store_path = make_store("kill");
  const ScenarioStore store(store_path);
  const Reference ref = run_reference(store);
  const std::string ledger = temp_path("kill.ledger");

  ScopedFaults guard;
  FaultInjector::global().set_seed(fault_seed());
  FaultInjector::SiteConfig config;
  config.error_rate = 0.4;
  FaultInjector::global().arm(sites::kDriverShard, config);

  ShardedSweepOptions victim_options = driver_options(ledger, "victim");
  const ShardedSweepDriver victim(victim_options);
  try {
    victim.run_worker(store);
    FAIL() << "every shard dodged a 0.4 fault rate; seed needs attention";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
  }
  // The victim died holding its claim: the ledger still records it.
  std::size_t claims = 0;
  ClaimLedger inspect(ledger, store.checksum(), std::chrono::seconds(60));
  for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
    claims += inspect.read_claim(shard).has_value() ? 1 : 0;
  }
  EXPECT_GE(claims, 1u);

  FaultInjector::global().disarm_all();

  // The rescuer's pid is alive (same process), so reclamation must come
  // from lease expiry — give it a short one.
  ShardedSweepOptions rescue_options = driver_options(ledger, "rescuer");
  rescue_options.lease = std::chrono::milliseconds(100);
  const ShardedSweepDriver rescuer(rescue_options);
  const WorkerReport report = rescuer.run_worker(store);
  EXPECT_GE(report.leases_reclaimed, 1u);

  const ShardedSweepDriver merger(driver_options(ledger, "merger"));
  expect_bit_identical(merger.merge(store), ref);
}

// driver.claim fires before the ledger is touched: the crash leaves no
// claim behind, exactly like a worker dying between shards.
TEST(ShardedSweep, ClaimSiteFaultLeavesNoClaim) {
  const std::string store_path = make_store("claimfault");
  const ScenarioStore store(store_path);
  const std::string ledger = temp_path("claimfault.ledger");

  ScopedFaults guard;
  FaultInjector::global().set_seed(fault_seed());
  FaultInjector::SiteConfig config;
  config.error_rate = 1.0;
  FaultInjector::global().arm(sites::kDriverClaim, config);

  const ShardedSweepDriver driver(driver_options(ledger, "victim"));
  try {
    driver.run_worker(store);
    FAIL() << "a 1.0 fault rate must fire on the first claim attempt";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
  }
  const ClaimLedger inspect(ledger, store.checksum(),
                            std::chrono::seconds(60));
  for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
    EXPECT_FALSE(inspect.read_claim(shard).has_value());
    EXPECT_FALSE(inspect.result_committed(shard));
  }
}

// A genuinely dead claimer (a forked child that _exit()s after claiming) is
// reclaimed immediately via the pid check — no lease wait.
TEST(ShardedSweep, DeadPidClaimReclaimedWithoutLeaseWait) {
  const std::string store_path = make_store("deadpid");
  const ScenarioStore store(store_path);
  const Reference ref = run_reference(store);
  const std::string ledger = temp_path("deadpid.ledger");

  const ::pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // In the child: claim shard 0 through the public driver path, then die
    // without releasing — the kill -9 window.
    ShardedSweepOptions options = driver_options(ledger, "doomed");
    options.on_claimed = [](std::size_t) { ::_exit(137); };
    try {
      const ScenarioStore child_store(store_path);
      const ShardedSweepDriver doomed(std::move(options));
      doomed.run_worker(child_store);
    } catch (...) {
    }
    ::_exit(1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 137)
      << "child did not die in the claim window";

  // Long lease on purpose: only the dead-pid path can reclaim this fast.
  const ShardedSweepDriver rescuer(driver_options(ledger, "rescuer"));
  const WorkerReport report = rescuer.run_worker(store);
  EXPECT_EQ(report.shards_evaluated, kShards);
  EXPECT_GE(report.leases_reclaimed, 1u);

  const ShardedSweepDriver merger(driver_options(ledger, "merger"));
  expect_bit_identical(merger.merge(store), ref);
}

TEST(ShardedSweep, MergeRefusesResultsFromDifferentStore) {
  const std::string store_path = make_store("mix_a");
  const ScenarioStore store(store_path);
  const std::string ledger = temp_path("mix.ledger");
  const ShardedSweepDriver worker(driver_options(ledger, "w0"));
  worker.run_worker(store);

  // Same grid shape, different workload scales: same shard count, different
  // store checksum — the mixed-ledger mistake the merger must catch.
  const std::string other_path = temp_path("mix_b.store");
  SweepGrid other_grid;
  other_grid.target_losses({0.005, 0.01, 0.05})
      .vms_per_server({2, 3})
      .workload_scales({1.1, 1.5});
  write_sweep_store(small_planner(), other_grid, other_path, 2);
  const ScenarioStore other(other_path);
  ASSERT_EQ(other.shard_count(), store.shard_count());
  ASSERT_NE(other.checksum(), store.checksum());

  const ShardedSweepDriver merger(driver_options(ledger, "merger"));
  try {
    merger.merge(other);
    FAIL() << "merging another store's results must throw";
  } catch (const IoError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(error.what()).find("refusing to merge"),
              std::string::npos)
        << error.what();
  }
}

TEST(ShardedSweep, MergeRefusesCorruptedAndMissingResults) {
  const std::string store_path = make_store("corrupt");
  const ScenarioStore store(store_path);
  const std::string ledger = temp_path("corrupt.ledger");
  const ShardedSweepDriver merger(driver_options(ledger, "merger"));

  // Empty ledger: shard 0's result is missing, loudly.
  ClaimLedger paths(ledger, store.checksum(), std::chrono::seconds(60));
  try {
    merger.merge(store);
    FAIL() << "merging an empty ledger must throw";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("missing"), std::string::npos)
        << error.what();
  }

  const ShardedSweepDriver worker(driver_options(ledger, "w0"));
  worker.run_worker(store);
  EXPECT_NO_THROW(merger.merge(store));

  // Flip one payload byte of shard 2's result: the payload checksum check
  // must name the file and refuse.
  const std::string victim = paths.result_path(2);
  {
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(80, std::ios::beg);  // inside the payload, past the header
    char byte = 0;
    file.seekg(80, std::ios::beg);
    file.read(&byte, 1);
    byte ^= 0x1;
    file.seekp(80, std::ios::beg);
    file.write(&byte, 1);
  }
  try {
    merger.merge(store);
    FAIL() << "a corrupted result payload must fail the merge";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("checksum mismatch"),
              std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find(victim), std::string::npos)
        << error.what();
  }

  // Truncation is equally loud.
  std::filesystem::resize_file(victim, 40);
  EXPECT_THROW(merger.merge(store), IoError);
}

TEST(ShardedSweep, MergeSumsWorkerMetricsFiles) {
  const std::string store_path = make_store("metrics");
  const ScenarioStore store(store_path);
  const std::string ledger = temp_path("metrics.ledger");
  const ShardedSweepDriver worker(driver_options(ledger, "w0"));
  worker.run_worker(store);
  worker.write_worker_metrics();
  const ShardedSweepDriver second(driver_options(ledger, "w1"));
  second.run_worker(store);  // nothing left, but writes a metrics snapshot
  second.write_worker_metrics();

  const ShardedSweepDriver merger(driver_options(ledger, "merger"));
  const MergedSweep merged = merger.merge(store);
  EXPECT_EQ(merged.metrics_files, 2u);
  bool saw_driver_counter = false;
  for (const auto& [name, value] : merged.worker_metrics) {
    if (name == metrics::names::kDriverShardsEvaluated) {
      saw_driver_counter = true;
      EXPECT_GE(value, static_cast<double>(kShards));
    }
  }
  EXPECT_TRUE(saw_driver_counter);
}

TEST(ClaimLedger, DuplicateClaimRaceHasOneWinner) {
  const std::string dir = temp_path("race.ledger");
  const ClaimLedger ledger(dir, 42, std::chrono::seconds(60));
  const std::uint64_t first = ClaimLedger::make_token();
  const std::uint64_t second = ClaimLedger::make_token();
  ASSERT_NE(first, second);

  EXPECT_TRUE(ledger.try_claim(3, "a", first));
  // Live pid + unexpired lease: the duplicate claim must lose.
  EXPECT_FALSE(ledger.try_claim(3, "b", second));

  // Releasing with the loser's token must not free the winner's claim.
  ledger.release_if_ours(3, second);
  ASSERT_TRUE(ledger.read_claim(3).has_value());
  EXPECT_EQ(ledger.read_claim(3)->token, first);

  ledger.release_if_ours(3, first);
  EXPECT_FALSE(ledger.read_claim(3).has_value());
  EXPECT_TRUE(ledger.try_claim(3, "b", second));
}

TEST(ClaimLedger, ManyThreadsOneWinnerPerShard) {
  const std::string dir = temp_path("threads.ledger");
  const ClaimLedger ledger(dir, 42, std::chrono::seconds(60));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> wins(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t shard = 0; shard < 16; ++shard) {
        if (ledger.try_claim(shard, "t" + std::to_string(t),
                             ClaimLedger::make_token())) {
          ++wins[t];
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  int total = 0;
  for (const int w : wins) {
    total += w;
  }
  EXPECT_EQ(total, 16);  // every shard claimed exactly once across the race
}

TEST(ClaimLedger, ExpiredLeaseIsReclaimed) {
  const std::string dir = temp_path("lease.ledger");
  const ClaimLedger short_lease(dir, 42, std::chrono::milliseconds(40));
  const std::uint64_t first = ClaimLedger::make_token();
  ASSERT_TRUE(short_lease.try_claim(0, "a", first));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  bool reclaimed = false;
  const std::uint64_t second = ClaimLedger::make_token();
  EXPECT_TRUE(short_lease.try_claim(0, "b", second, &reclaimed));
  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(short_lease.read_claim(0)->worker, "b");
}

TEST(ClaimLedger, WrongStoreBrandIsLoud) {
  const std::string dir = temp_path("brand.ledger");
  const ClaimLedger mine(dir, 42, std::chrono::seconds(60));
  ASSERT_TRUE(mine.try_claim(0, "a", ClaimLedger::make_token()));
  const ClaimLedger theirs(dir, 43, std::chrono::seconds(60));
  try {
    theirs.try_claim(0, "b", ClaimLedger::make_token());
    FAIL() << "claiming against a differently-branded ledger must throw";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("branded"), std::string::npos)
        << error.what();
  }
}

TEST(ManifestLock, SecondSweepOnOneCheckpointFailsFast) {
  const std::string lock_path = temp_path("manifest.lock");
  const util::PidLockFile held(lock_path, "checkpoint manifest");
  try {
    const util::PidLockFile second(lock_path, "checkpoint manifest");
    FAIL() << "second acquisition against a live holder must throw";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("locked by live pid"),
              std::string::npos)
        << error.what();
  }
}

TEST(ManifestLock, StaleDeadPidLockIsTakenOver) {
  const std::string lock_path = temp_path("stale.lock");
  // Manufacture a genuinely dead pid: a child that exits immediately.
  const ::pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::_exit(0);
  }
  ASSERT_EQ(::waitpid(child, nullptr, 0), child);
  {
    std::ofstream out(lock_path);
    out << static_cast<long long>(child) << "\n";
  }
  const util::PidLockFile lock(lock_path, "checkpoint manifest");
  std::ifstream in(lock_path);
  long long holder = 0;
  in >> holder;
  EXPECT_EQ(holder, static_cast<long long>(::getpid()));
}

TEST(ManifestLock, StreamingSweepHoldsTheLockWhileRunning) {
  const std::string store_path = make_store("mlock");
  const ScenarioStore store(store_path);
  const std::string manifest = temp_path("mlock.manifest");

  const util::PidLockFile held(manifest + ".lock", "checkpoint manifest");
  StreamingSweepOptions options;
  options.batch.parallel = false;
  options.checkpoint_path = manifest;
  const StreamingSweep sweep(options);
  EXPECT_THROW(sweep.run(store), IoError);
}

// Positional reads share one fd: hammer the same store from many threads
// and require every read to deserialize and checksum clean (the asan run
// of this suite would catch an offset race).
TEST(ShardedSweep, ConcurrentStoreReadersAreSafe) {
  const std::string store_path = make_store("pread");
  const ScenarioStore store(store_path);
  std::vector<std::thread> readers;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 25; ++round) {
        for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
          const ScenarioBatch batch = store.read_shard(shard);
          if (batch.size() != store.shard(shard).scenarios) {
            ++failures[t];
          }
        }
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  for (const int f : failures) {
    EXPECT_EQ(f, 0);
  }
}

TEST(ShardedSweep, StoreChecksumMismatchNamesPathAndShard) {
  const std::string store_path = make_store("naming");
  {
    // Corrupt one byte of shard 1's payload on disk.
    const ScenarioStore store(store_path);
    const ShardInfo& info = store.shard(1);
    std::fstream file(store_path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(info.offset));
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x1;
    file.seekp(static_cast<std::streamoff>(info.offset));
    file.write(&byte, 1);
  }
  const ScenarioStore corrupted(store_path);
  EXPECT_NO_THROW(corrupted.read_shard(0));
  try {
    corrupted.read_shard(1);
    FAIL() << "corrupted shard payload must fail its checksum";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(store_path), std::string::npos) << what;
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  }
}

TEST(MetricsJsonTest, RoundTripsRowsExactly) {
  std::vector<metrics::Registry::Row> rows;
  rows.push_back({"batch.evaluations", 12.0});
  rows.push_back({"batch.wall.ms", 1.5});
  rows.push_back({"driver.shards_evaluated", 6.0});
  std::ostringstream out;
  metrics::to_json(out, rows);
  const std::vector<metrics::Registry::Row> parsed =
      metrics::parse_json(out.str());
  ASSERT_EQ(parsed.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(parsed[i].name, rows[i].name);
    EXPECT_EQ(parsed[i].value, rows[i].value);
  }
}

TEST(MetricsJsonTest, RegistrySnapshotRoundTrips) {
  metrics::registry().counter("test.sharded_json").add(7);
  const std::string json = metrics::to_json_string();
  const std::vector<metrics::Registry::Row> parsed =
      metrics::parse_json(json);
  bool found = false;
  for (const auto& row : parsed) {
    if (row.name == "test.sharded_json") {
      found = true;
      EXPECT_GE(row.value, 7.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsJsonTest, RejectsMalformedInput) {
  EXPECT_THROW(metrics::parse_json(""), IoError);
  EXPECT_THROW(metrics::parse_json("{}"), IoError);
  EXPECT_THROW(metrics::parse_json("{\"wrong\": {}}"), IoError);
  EXPECT_THROW(metrics::parse_json("{\"metrics\": {\"a\": }}"), IoError);
  EXPECT_THROW(metrics::parse_json("{\"metrics\": {\"a\": 1}} tail"),
               IoError);
  EXPECT_THROW(metrics::parse_json("{\"metrics\": {\"a\": 1"), IoError);
  // The empty snapshot is valid.
  EXPECT_TRUE(metrics::parse_json("{\"metrics\": {}}").empty());
}

}  // namespace
}  // namespace vmcons::core
