// Tests for arrival-trace recording, statistics, and CSV round-trips.
#include "workload/trace.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::workload {
namespace {

TEST(Trace, RejectsUnsortedTimes) {
  EXPECT_THROW(ArrivalTrace({1.0, 0.5}), InvalidArgument);
  EXPECT_THROW(ArrivalTrace({-1.0}), InvalidArgument);
}

TEST(Trace, PoissonRecordingMatchesRate) {
  Rng rng(131);
  const ArrivalTrace trace = ArrivalTrace::record_poisson(20.0, 500.0, rng);
  EXPECT_NEAR(trace.mean_rate(), 20.0, 0.5);
  EXPECT_NEAR(trace.duration(), 500.0, 1.0);
  // Poisson: index of dispersion ~ 1.
  EXPECT_NEAR(trace.index_of_dispersion(2.0), 1.0, 0.15);
}

TEST(Trace, MmppRecordingIsBursty) {
  Rng rng(132);
  // A long recording: with 10 s dwells the realized mean rate converges
  // slowly (each burst/calm cycle is a big random block).
  const ArrivalTrace trace =
      ArrivalTrace::record_mmpp(20.0, 6.0, 5000.0, rng);
  EXPECT_NEAR(trace.mean_rate(), 20.0, 2.0);
  EXPECT_GT(trace.index_of_dispersion(2.0), 2.0);
  EXPECT_GT(trace.peak_to_mean(2.0), 1.5);
}

TEST(Trace, CsvRoundTrip) {
  Rng rng(133);
  const ArrivalTrace original = ArrivalTrace::record_poisson(5.0, 50.0, rng);
  std::ostringstream out;
  original.to_csv(out);
  const ArrivalTrace parsed = ArrivalTrace::from_csv(out.str());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_NEAR(parsed.arrival_times()[i], original.arrival_times()[i], 1e-9);
  }
}

TEST(Trace, ScalingChangesRateNotCount) {
  Rng rng(134);
  const ArrivalTrace base = ArrivalTrace::record_poisson(10.0, 200.0, rng);
  const ArrivalTrace doubled = base.scaled(2.0);
  EXPECT_EQ(doubled.size(), base.size());
  EXPECT_NEAR(doubled.mean_rate(), base.mean_rate() * 2.0, 0.5);
}

TEST(Trace, StatisticsRequireEnoughData) {
  const ArrivalTrace tiny(std::vector<double>{1.0});
  EXPECT_THROW(tiny.mean_rate(), InvalidArgument);
  const ArrivalTrace empty;
  EXPECT_THROW(empty.index_of_dispersion(1.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(empty.duration(), 0.0);
}

}  // namespace
}  // namespace vmcons::workload
