// Property test: the columnar BatchEvaluator is bit-identical to the
// per-scenario UtilityAnalyticModel::solve() path. Both run the same
// batch_kernels span kernels (solve() is a batch of one), so every field of
// every ModelResult must match with ==, not a tolerance — across random
// service counts, zero-demand resources, impact curves, vms_per_server
// overrides, single-threaded and sharded-parallel evaluation.
#include <gtest/gtest.h>

#include <vector>

#include "core/batch_eval.hpp"
#include "core/model.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/rng.hpp"

namespace vmcons::core {
namespace {

/// Draws one random but valid scenario from the per-index stream.
ModelInputs random_inputs(std::uint64_t seed, std::size_t index) {
  Rng rng = make_stream(seed, index);
  ModelInputs inputs;
  // Spread target losses over (1e-4, 0.2).
  inputs.target_loss = 1e-4 + rng.uniform() * 0.2;
  const std::size_t service_count = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < service_count; ++i) {
    dc::ServiceSpec service;
    service.name = "svc" + std::to_string(i);
    service.arrival_rate = rng.uniform(0.5, 500.0);
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      // ~50% chance a service places no demand on a given resource.
      if (rng.bernoulli(0.5)) {
        continue;
      }
      any = true;
      const double mu = rng.uniform(1.0, 2000.0);
      const double impact = rng.uniform(0.05, 1.0);
      service.demand(resource, mu, virt::Impact::constant(impact));
    }
    if (!any) {  // keep the scenario valid: at least one demand
      service.demand(dc::Resource::kCpu, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    inputs.services.push_back(std::move(service));
  }
  if (rng.bernoulli(0.5)) {
    inputs.vms_per_server = 1 + static_cast<unsigned>(rng.uniform_index(8));
  }
  return inputs;
}

void expect_identical(const ModelResult& a, const ModelResult& b,
                      std::size_t index) {
  SCOPED_TRACE("scenario " + std::to_string(index));
  ASSERT_EQ(a.dedicated.size(), b.dedicated.size());
  for (std::size_t i = 0; i < a.dedicated.size(); ++i) {
    EXPECT_EQ(a.dedicated[i].name, b.dedicated[i].name);
    EXPECT_EQ(a.dedicated[i].servers, b.dedicated[i].servers);
    EXPECT_EQ(a.dedicated[i].blocking, b.dedicated[i].blocking);
    for (const dc::Resource resource : dc::all_resources()) {
      const auto r = static_cast<std::size_t>(resource);
      EXPECT_EQ(a.dedicated[i].offered_load[resource],
                b.dedicated[i].offered_load[resource]);
      EXPECT_EQ(a.dedicated[i].servers_per_resource[r],
                b.dedicated[i].servers_per_resource[r]);
    }
  }
  EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    EXPECT_EQ(a.consolidated[r].resource, b.consolidated[r].resource);
    EXPECT_EQ(a.consolidated[r].merged_arrival_rate,
              b.consolidated[r].merged_arrival_rate);
    EXPECT_EQ(a.consolidated[r].effective_service_rate,
              b.consolidated[r].effective_service_rate);
    EXPECT_EQ(a.consolidated[r].offered_load, b.consolidated[r].offered_load);
    EXPECT_EQ(a.consolidated[r].servers, b.consolidated[r].servers);
    EXPECT_EQ(a.consolidated[r].demanded, b.consolidated[r].demanded);
  }
  EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
  EXPECT_EQ(a.consolidated_blocking, b.consolidated_blocking);
  EXPECT_EQ(a.dedicated_utilization, b.dedicated_utilization);
  EXPECT_EQ(a.consolidated_utilization, b.consolidated_utilization);
  EXPECT_EQ(a.utilization_improvement, b.utilization_improvement);
  EXPECT_EQ(a.dedicated_power_watts, b.dedicated_power_watts);
  EXPECT_EQ(a.consolidated_power_watts, b.consolidated_power_watts);
  EXPECT_EQ(a.power_ratio, b.power_ratio);
  EXPECT_EQ(a.power_saving, b.power_saving);
  EXPECT_EQ(a.infrastructure_saving, b.infrastructure_saving);
}

TEST(BatchModel, BitIdenticalToScalarSolveAcrossRandomScenarios) {
  constexpr std::size_t kScenarios = 1000;
  constexpr std::uint64_t kSeed = 0xba7c4;

  std::vector<ModelInputs> inputs;
  inputs.reserve(kScenarios);
  std::vector<ModelResult> scalar;
  scalar.reserve(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    inputs.push_back(random_inputs(kSeed, i));
    scalar.push_back(UtilityAnalyticModel(inputs.back()).solve());
  }

  const ScenarioBatch batch = ScenarioBatch::from_inputs(inputs);
  ASSERT_EQ(batch.size(), kScenarios);

  // (a) Single-threaded, no memoization: pure free-function Erlang path.
  BatchOptions serial;
  serial.parallel = false;
  serial.memoize = false;
  const std::vector<ModelResult> serial_results =
      BatchEvaluator(serial).evaluate(batch);
  ASSERT_EQ(serial_results.size(), kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    expect_identical(serial_results[i], scalar[i], i);
  }

  // (b) Sharded parallel evaluation through a caller-owned kernel: results
  // must not depend on sharding or on cache state built up across shards.
  queueing::ErlangKernel kernel;
  BatchOptions sharded;
  sharded.parallel = true;
  sharded.kernel = &kernel;
  sharded.shard_size = 7;  // deliberately misaligned with the batch size
  const std::vector<ModelResult> sharded_results =
      BatchEvaluator(sharded).evaluate(batch);
  ASSERT_EQ(sharded_results.size(), kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    expect_identical(sharded_results[i], scalar[i], i);
  }
}

TEST(BatchModel, ZeroDemandResourcesStayUnstaffed) {
  // A batch where every scenario demands only CPU: the other resource
  // columns must come back undemanded with zero servers.
  ModelInputs inputs;
  inputs.target_loss = 0.02;
  dc::ServiceSpec service;
  service.name = "cpu_only";
  service.arrival_rate = 120.0;
  service.demand(dc::Resource::kCpu, 60.0, virt::Impact::constant(0.7));
  inputs.services = {service};

  ScenarioBatch batch;
  batch.append(inputs);
  BatchOptions options;
  options.parallel = false;
  const auto results = BatchEvaluator(options).evaluate(batch);
  ASSERT_EQ(results.size(), 1u);
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    const auto& plan = results[0].consolidated[r];
    if (plan.resource == dc::Resource::kCpu) {
      EXPECT_TRUE(plan.demanded);
      EXPECT_GT(plan.servers, 0u);
    } else {
      EXPECT_FALSE(plan.demanded);
      EXPECT_EQ(plan.servers, 0u);
    }
  }
}

}  // namespace
}  // namespace vmcons::core
