// Tests for the special functions against reference values.
#include "stats/distributions.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons {
namespace {

TEST(LogGamma, IntegerFactorials) {
  // Gamma(n) = (n-1)!.
  EXPECT_NEAR(std::exp(log_gamma(1.0)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(log_gamma(5.0)), 24.0, 1e-9);
  EXPECT_NEAR(std::exp(log_gamma(10.0)), 362880.0, 1e-4);
}

TEST(LogGamma, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(std::exp(log_gamma(0.5)), std::sqrt(M_PI), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(std::exp(log_gamma(1.5)), std::sqrt(M_PI) / 2.0, 1e-12);
}

TEST(RegularizedGamma, ComplementarityAndBounds) {
  for (const double a : {0.5, 1.0, 3.0, 10.0, 50.0}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      const double p = regularized_gamma_p(a, x);
      const double q = regularized_gamma_q(a, x);
      EXPECT_NEAR(p + q, 1.0, 1e-12) << "a=" << a << " x=" << x;
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 1.0, 2.5}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(NormalCdf, ReferenceValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895, 1e-8);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalQuantile, InvertsTheCdf) {
  for (const double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalQuantile, StandardCriticalValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
}

TEST(NormalPdf, PeakValue) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-14);
}

TEST(PoissonPmf, SumsToOne) {
  const double mean = 6.3;
  double total = 0.0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    total += poisson_pmf(k, mean);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(PoissonCdf, MatchesPartialSums) {
  const double mean = 4.0;
  double partial = 0.0;
  for (std::uint64_t k = 0; k <= 12; ++k) {
    partial += poisson_pmf(k, mean);
    EXPECT_NEAR(poisson_cdf(k, mean), partial, 1e-10) << "k=" << k;
  }
}

TEST(ExponentialCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(exponential_cdf(-1.0, 2.0), 0.0);
  EXPECT_NEAR(exponential_cdf(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(exponential_cdf(0.5, 2.0), 1.0 - std::exp(-1.0), 1e-15);
}

TEST(ChiSquaredCdf, ReferenceValues) {
  // chi2 with 1 dof at x=3.841 is ~0.95.
  EXPECT_NEAR(chi_squared_cdf(3.841, 1.0), 0.95, 2e-4);
  // chi2 with 10 dof at its mean (10) is ~0.5595.
  EXPECT_NEAR(chi_squared_cdf(10.0, 10.0), 0.5595, 2e-3);
  EXPECT_DOUBLE_EQ(chi_squared_cdf(0.0, 5.0), 0.0);
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(0.95, 1000.0), 1.959964, 1e-2);
}

TEST(StudentT, ClassicTableValues) {
  // dof=10, 95% two-sided: 2.228.
  EXPECT_NEAR(student_t_critical(0.95, 10.0), 2.228, 0.02);
  // dof=30: 2.042.
  EXPECT_NEAR(student_t_critical(0.95, 30.0), 2.042, 0.01);
  // dof=5, 99%: 4.032.
  EXPECT_NEAR(student_t_critical(0.99, 5.0), 4.032, 0.15);
}

TEST(Domains, InvalidInputsThrow) {
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
  EXPECT_THROW(poisson_pmf(1, 0.0), InvalidArgument);
  EXPECT_THROW(chi_squared_cdf(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(student_t_critical(0.95, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
