// Tests for the Erlang-B/C solvers: reference values, identities, and the
// properties the paper's Fig. 4 algorithm relies on.
#include "queueing/erlang.hpp"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

TEST(ErlangB, ZeroServersBlocksEverything) {
  EXPECT_DOUBLE_EQ(erlang_b(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_b(0, 0.0), 1.0);
}

TEST(ErlangB, ZeroLoadNeverBlocksWithServers) {
  EXPECT_DOUBLE_EQ(erlang_b(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b(10, 0.0), 0.0);
}

TEST(ErlangB, SingleServerClosedForm) {
  // E_1(rho) = rho / (1 + rho).
  for (const double rho : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(erlang_b(1, rho), rho / (1.0 + rho), 1e-15) << "rho=" << rho;
  }
}

TEST(ErlangB, TwoServerClosedForm) {
  // E_2(rho) = rho^2 / (2 + 2 rho + rho^2).
  for (const double rho : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    const double expected = rho * rho / (2.0 + 2.0 * rho + rho * rho);
    EXPECT_NEAR(erlang_b(2, rho), expected, 1e-15) << "rho=" << rho;
  }
}

TEST(ErlangB, ClassicReferenceValues) {
  // Standard telephony tables.
  EXPECT_NEAR(erlang_b(10, 5.0), 0.018385, 1e-5);
  EXPECT_NEAR(erlang_b(20, 12.0), 0.0098, 2e-4);
  EXPECT_NEAR(erlang_b(100, 90.0), 0.0269574, 1e-5);
  EXPECT_NEAR(erlang_b(5, 10.0), 0.56394, 1e-4);
}

TEST(ErlangB, MatchesFactorialFormForSmallSystems) {
  // E_n(rho) = (rho^n/n!) / sum_k rho^k/k!; valid only for small n.
  for (std::uint64_t n = 1; n <= 20; ++n) {
    const double rho = 3.7;
    double term = 1.0;
    double denominator = 1.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      term *= rho / static_cast<double>(k);
      denominator += term;
    }
    EXPECT_NEAR(erlang_b(n, rho), term / denominator, 1e-12) << "n=" << n;
  }
}

class ErlangBMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ErlangBMonotonicity, DecreasesInServers) {
  const double rho = GetParam();
  double previous = 1.0;
  for (std::uint64_t n = 1; n <= 64; ++n) {
    const double current = erlang_b(n, rho);
    EXPECT_LT(current, previous) << "rho=" << rho << " n=" << n;
    previous = current;
  }
}

TEST_P(ErlangBMonotonicity, IncreasesInLoad) {
  const double rho = GetParam();
  for (std::uint64_t n = 1; n <= 32; n += 3) {
    EXPECT_LT(erlang_b(n, rho), erlang_b(n, rho * 1.25))
        << "rho=" << rho << " n=" << n;
  }
}

TEST_P(ErlangBMonotonicity, BoundedByOne) {
  const double rho = GetParam();
  for (std::uint64_t n = 0; n <= 32; ++n) {
    const double b = erlang_b(n, rho);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, ErlangBMonotonicity,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 12.0, 50.0,
                                           200.0, 1000.0));

TEST(ErlangBServers, MatchesDirectScan) {
  for (const double rho : {0.3, 1.0, 4.2, 17.0, 88.0}) {
    for (const double target : {0.001, 0.01, 0.05, 0.2}) {
      const std::uint64_t n = erlang_b_servers(rho, target);
      EXPECT_LE(erlang_b(n, rho), target) << "rho=" << rho;
      if (n > 0) {
        EXPECT_GT(erlang_b(n - 1, rho), target) << "rho=" << rho;
      }
    }
  }
}

TEST(ErlangBServers, ZeroLoadNeedsNoServers) {
  EXPECT_EQ(erlang_b_servers(0.0, 0.01), 0u);
}

TEST(ErlangBServers, TargetOneAlwaysSatisfied) {
  EXPECT_EQ(erlang_b_servers(100.0, 1.0), 0u);
}

TEST(ErlangBServers, LargeLoadStaysNearSquareRootStaffing) {
  // For rho = 1000 and B = 1%, n should be rho + O(sqrt(rho)).
  const std::uint64_t n = erlang_b_servers(1000.0, 0.01);
  EXPECT_GT(n, 1000u);
  EXPECT_LT(n, 1100u);
}

TEST(ErlangBCapacity, InvertsBlocking) {
  for (const std::uint64_t n : {1ull, 4ull, 16ull, 64ull}) {
    for (const double target : {0.001, 0.01, 0.1}) {
      const double rho = erlang_b_capacity(n, target);
      EXPECT_NEAR(erlang_b(n, rho), target, 1e-9) << "n=" << n;
    }
  }
}

TEST(ErlangC, KnownValues) {
  // Erlang-C with c=2, rho=1: C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // c=1 reduces to rho (M/M/1 P(wait) = rho).
  EXPECT_NEAR(erlang_c(1, 0.6), 0.6, 1e-12);
}

TEST(ErlangC, AtLeastErlangB) {
  // Waiting probability always >= loss probability for same (n, rho).
  for (const double rho : {0.5, 1.5, 3.0}) {
    for (std::uint64_t n = static_cast<std::uint64_t>(rho) + 1; n < 12; ++n) {
      EXPECT_GE(erlang_c(n, rho), erlang_b(n, rho));
    }
  }
}

TEST(ErlangC, MeanWaitMatchesMm1ClosedForm) {
  // M/M/1: Wq = rho / (mu - lambda).
  const double lambda = 0.7;
  const double mu = 1.0;
  EXPECT_NEAR(erlang_c_mean_wait(1, lambda, mu),
              (lambda / mu) / (mu - lambda), 1e-12);
}

TEST(CarriedLoad, NeverExceedsOfferedOrServers) {
  for (const double rho : {0.5, 2.0, 10.0, 100.0}) {
    for (const std::uint64_t n : {1ull, 5ull, 50ull}) {
      const double carried = carried_load(n, rho);
      EXPECT_LE(carried, rho + 1e-12);
      EXPECT_LE(carried, static_cast<double>(n) + 1e-12);
      EXPECT_GE(carried, 0.0);
    }
  }
}

TEST(LossUtilization, ApproachesOneUnderOverload) {
  EXPECT_GT(loss_system_utilization(4, 100.0), 0.95);
  EXPECT_LT(loss_system_utilization(4, 0.01), 0.01);
}

TEST(OfferedLoad, ValidatesInputs) {
  EXPECT_THROW(offered_load(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(offered_load(1.0, 0.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(offered_load(6.0, 2.0), 3.0);
}

TEST(ErlangInputs, Validation) {
  EXPECT_THROW(erlang_b(3, -0.5), InvalidArgument);
  EXPECT_THROW(erlang_b_servers(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(erlang_b_servers(1.0, 1.5), InvalidArgument);
  EXPECT_THROW(erlang_c(0, 0.5), InvalidArgument);
  EXPECT_THROW(erlang_c(2, 2.0), InvalidArgument);  // rho == n unstable
  EXPECT_THROW(erlang_b_capacity(0, 0.01), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::queueing
