// Tests for the tandem loss network and multi-tier planning.
#include <gtest/gtest.h>

#include "core/multitier.hpp"
#include "datacenter/tandem.hpp"
#include "queueing/erlang.hpp"
#include "sim/replication.hpp"
#include "util/error.hpp"

namespace vmcons {
namespace {

TEST(Tandem, SingleTierReducesToErlangB) {
  dc::TandemConfig config;
  config.arrival_rate = 2.0;
  config.tiers = {{"only", 1.0, 3}};
  config.horizon = 4000.0;
  config.warmup = 400.0;
  const auto estimate = sim::replicate_scalar(
      8, 151, [&](std::size_t, Rng& rng) {
        return dc::simulate_tandem(config, rng).loss_probability();
      });
  EXPECT_NEAR(estimate.summary.mean(), queueing::erlang_b(3, 2.0), 0.012);
}

TEST(Tandem, LossAccumulatesAcrossTiers) {
  dc::TandemConfig one_tier;
  one_tier.arrival_rate = 2.0;
  one_tier.tiers = {{"a", 1.0, 3}};
  one_tier.horizon = 2000.0;
  one_tier.warmup = 200.0;

  dc::TandemConfig two_tiers = one_tier;
  two_tiers.tiers.push_back({"b", 1.0, 3});

  const auto single = sim::replicate_scalar(
      6, 152, [&](std::size_t, Rng& rng) {
        return dc::simulate_tandem(one_tier, rng).loss_probability();
      });
  const auto tandem = sim::replicate_scalar(
      6, 152, [&](std::size_t, Rng& rng) {
        return dc::simulate_tandem(two_tiers, rng).loss_probability();
      });
  EXPECT_GT(tandem.summary.mean(), single.summary.mean());
}

TEST(Tandem, SecondTierSeesThinnedTraffic) {
  dc::TandemConfig config;
  config.arrival_rate = 4.0;
  config.tiers = {{"front", 1.0, 2}, {"back", 1.0, 8}};
  config.horizon = 2000.0;
  config.warmup = 200.0;
  Rng rng(153);
  const auto outcome = dc::simulate_tandem(config, rng);
  // The front tier blocks heavily (rho = 4 on 2 servers), so the back tier
  // receives only the carried stream.
  EXPECT_LT(outcome.tiers[1].offered, outcome.tiers[0].offered);
  EXPECT_GT(outcome.tiers[0].blocking(), 0.2);
  EXPECT_LT(outcome.tiers[1].blocking(), 0.01);
}

TEST(Tandem, EndToEndResponseSumsTierTimes) {
  dc::TandemConfig config;
  config.arrival_rate = 0.5;
  config.tiers = {{"a", 2.0, 4}, {"b", 1.0, 4}};
  config.horizon = 3000.0;
  config.warmup = 300.0;
  Rng rng(154);
  const auto outcome = dc::simulate_tandem(config, rng);
  // Light load, loss system: response = 1/2 + 1/1.
  EXPECT_NEAR(outcome.end_to_end_response.mean(), 1.5, 0.1);
}

TEST(Tandem, Validation) {
  Rng rng(155);
  dc::TandemConfig config;
  EXPECT_THROW(dc::simulate_tandem(config, rng), InvalidArgument);
  config.arrival_rate = 1.0;
  config.tiers = {{"zero-rate", 0.0, 1}};
  EXPECT_THROW(dc::simulate_tandem(config, rng), InvalidArgument);
}

TEST(MultiTier, ExpandScalesTierArrivals) {
  const auto application = core::paper_ecommerce_application(100.0, 0.3);
  const auto specs = application.expand();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "ecommerce/web");
  EXPECT_DOUBLE_EQ(specs[0].arrival_rate, 100.0);
  EXPECT_EQ(specs[1].name, "ecommerce/db");
  EXPECT_DOUBLE_EQ(specs[1].arrival_rate, 30.0);
}

TEST(MultiTier, IntegralEquivalentUsesHarmonicAggregation) {
  const auto application = core::paper_ecommerce_application(100.0, 1.0);
  const auto integral = application.integral_equivalent(0.8);
  // CPU seconds per request: 1/3360 + 1/100 -> rate ~ 97.1.
  EXPECT_NEAR(integral.native_rates[dc::Resource::kCpu],
              1.0 / (1.0 / 3360.0 + 1.0 / 100.0), 1e-6);
  // Disk is demanded only by the web tier: rate 420.
  EXPECT_NEAR(integral.native_rates[dc::Resource::kDiskIo], 420.0, 1e-9);
}

TEST(MultiTier, PerTierPlanningMeetsTargetWhereIntegralMissizes) {
  const std::vector<core::MultiTierService> applications = {
      core::paper_ecommerce_application(120.0, 0.3)};
  const auto per_tier = core::plan_multitier(applications, 0.01);
  EXPECT_GT(per_tier.consolidated_servers, 0u);
  EXPECT_LE(per_tier.consolidated_blocking, 0.01);
  // The integral plan with an optimistic application-level impact factor
  // (e.g. measured on the CPU-light path) allocates fewer servers.
  const auto integral = core::plan_integral(applications, 0.01, 0.95);
  EXPECT_LE(integral.consolidated_servers, per_tier.consolidated_servers);
}

TEST(MultiTier, Validation) {
  core::MultiTierService empty;
  empty.name = "empty";
  empty.arrival_rate = 1.0;
  EXPECT_THROW(empty.expand(), InvalidArgument);
  EXPECT_THROW(core::paper_ecommerce_application(100.0, 0.0), InvalidArgument);
  const auto application = core::paper_ecommerce_application(100.0);
  EXPECT_THROW(application.integral_equivalent(0.0), InvalidArgument);
  EXPECT_THROW(core::plan_multitier({}, 0.01), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
