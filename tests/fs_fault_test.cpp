// util::fs crash-consistency suite: deterministic seeded fault injection
// at every persistence site, and the recovery property the layer exists
// for — after an injected crash at ANY op of a store write, checkpoint
// commit, claim, result commit, or merge read, a restarted run recovers
// bit-identical to a clean 1-process StreamingSweep.
//
// The op counts that pick crash points come from *probe runs*: arming a
// site with an all-default SiteConfig makes the injector count ops without
// injecting anything, so the tests discover how many ops an operation has
// instead of hard-coding syscall sequences. Seeds pin via VMCONS_FAULT_SEED
// (scripts/tier1.sh sets it) so a red run replays bit-identically.
#include "util/fs.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/planner.hpp"
#include "core/scenario_store.hpp"
#include "core/sharded_sweep.hpp"
#include "core/streaming_sweep.hpp"
#include "util/backoff.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/file_lock.hpp"
#include "util/metrics.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

namespace fs = util::fs;
using fs::FsFaultInjector;
using fs::ScopedFsFaults;

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("VMCONS_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2009;
}

/// The streaming suite's small scenario space: 12 points, shard size 2 ->
/// 6 shards, cheap enough to evaluate dozens of times per test.
ConsolidationPlanner small_planner() {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web;
  web.name = "web";
  web.arrival_rate = 120.0;
  web.demand(dc::Resource::kCpu, 180.0, virt::Impact::constant(0.8));
  web.demand(dc::Resource::kNetwork, 400.0, virt::Impact::constant(0.9));
  planner.add_service(web);
  dc::ServiceSpec db;
  db.name = "db";
  db.arrival_rate = 60.0;
  db.demand(dc::Resource::kCpu, 90.0, virt::Impact::constant(0.75));
  db.demand(dc::Resource::kDiskIo, 150.0, virt::Impact::constant(0.7));
  planner.add_service(db);
  return planner;
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.target_losses({0.005, 0.01, 0.05})
      .vms_per_server({2, 3})
      .workload_scales({1.0, 1.4});
  return grid;
}
constexpr std::size_t kShards = 6;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "vmcons_fsfault_" + name;
  std::remove(path.c_str());
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  return path;
}

std::uint64_t write_small_store(const std::string& path) {
  return write_sweep_store(small_planner(), small_grid(), path, 2).checksum;
}

StreamingSweepOptions streaming_options(const std::string& checkpoint) {
  StreamingSweepOptions options;
  options.batch.parallel = false;
  options.batch.policy = FailurePolicy::kQuarantine;
  options.checkpoint_path = checkpoint;
  return options;
}

ShardedSweepOptions worker_options(const std::string& ledger,
                                   const std::string& worker_id,
                                   std::chrono::milliseconds lease) {
  ShardedSweepOptions options;
  options.batch.parallel = false;
  options.batch.policy = FailurePolicy::kQuarantine;
  options.ledger_dir = ledger;
  options.worker_id = worker_id;
  options.lease = lease;
  options.poll = std::chrono::milliseconds(2);
  return options;
}

/// Clean-run reference digests: the bit-identity yardstick for every
/// recovery below.
std::vector<std::uint64_t> reference_checksums(const ScenarioStore& store) {
  const StreamingSweep sweep(streaming_options(""));
  const StreamingSweepReport report = sweep.run(store);
  EXPECT_TRUE(report.complete());
  return report.shard_checksums;
}

/// Arms `site` with an all-default config, runs `operation`, and returns
/// how many ops the site counted — the probe run that lets tests choose
/// crash points without hard-coding syscall sequences.
template <typename Operation>
std::uint64_t probe_ops(std::string_view site, Operation&& operation) {
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.reset_ops();
  injector.arm(site, {});
  operation();
  const std::uint64_t ops = injector.ops_at(site);
  injector.disarm_all();
  injector.reset_ops();
  return ops;
}

// --- Backoff --------------------------------------------------------------

TEST(FsFaultBackoff, DeterministicJitteredSchedule) {
  util::Backoff::Options options;
  options.initial = std::chrono::microseconds(1000);
  options.max = std::chrono::microseconds(16000);
  options.multiplier = 2.0;
  options.jitter = 0.25;

  util::Backoff a(options, 42);
  util::Backoff b(options, 42);
  util::Backoff c(options, 43);
  bool any_difference = false;
  double expected_base = 1000.0;
  for (int step = 0; step < 8; ++step) {
    const auto delay_a = a.next();
    const auto delay_b = b.next();
    const auto delay_c = c.next();
    EXPECT_EQ(delay_a, delay_b) << "same seed must replay the same schedule";
    any_difference = any_difference || delay_a != delay_c;
    // Every delay stays inside [1 - jitter, 1 + jitter] of the exponential.
    const double base = std::min(expected_base, 16000.0);
    EXPECT_GE(delay_a.count(), static_cast<std::int64_t>(base * 0.75) - 1);
    EXPECT_LE(delay_a.count(), static_cast<std::int64_t>(base * 1.25) + 1);
    expected_base *= 2.0;
  }
  EXPECT_TRUE(any_difference) << "different seeds should jitter differently";

  a.reset();
  util::Backoff fresh(options, 42);
  EXPECT_EQ(a.next(), fresh.next()) << "reset must restart the schedule";
}

TEST(FsFaultBackoff, RejectsInvalidOptions) {
  util::Backoff::Options bad;
  bad.multiplier = 0.5;
  EXPECT_THROW(util::Backoff(bad, 1), Error);
  util::Backoff::Options negative;
  negative.initial = std::chrono::microseconds(0);
  EXPECT_THROW(util::Backoff(negative, 1), Error);
  util::Backoff::Options jitter;
  jitter.jitter = 1.0;
  EXPECT_THROW(util::Backoff(jitter, 1), Error);
}

// --- injector basics ------------------------------------------------------

TEST(FsFaultInjection, ArmingUnknownSiteThrows) {
  ScopedFsFaults guard;
  EXPECT_THROW(FsFaultInjector::global().arm("fs.nonexistent", {}), Error);
}

TEST(FsFaultInjection, DisarmedFastPathCountsNothing) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  EXPECT_FALSE(FsFaultInjector::enabled());
  const std::string path = temp_path("disarmed.txt");
  fs::File file;
  ASSERT_TRUE(fs::create_truncate(path, fs::sites::kRead, file).ok());
  ASSERT_TRUE(fs::write_all(file, "x", 1, fs::sites::kRead).ok());
  EXPECT_EQ(injector.ops_at(fs::sites::kRead), 0u);
}

TEST(FsFaultInjection, DeterministicErrorAtOpDeliversChosenErrno) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  FsFaultInjector::SiteConfig config;
  config.error_at_op = 2;
  config.error_errno = ENOSPC;
  injector.arm(fs::sites::kClaim, config);

  const std::string path = temp_path("eno.txt");
  fs::File file;
  ASSERT_TRUE(fs::create_truncate(path, fs::sites::kClaim, file).ok());  // op 1
  const fs::Status failed =
      fs::write_all(file, "doomed", 6, fs::sites::kClaim);  // op 2
  EXPECT_EQ(failed.err, ENOSPC);
  EXPECT_EQ(failed.bytes, 0u);
  EXPECT_EQ(failed.code(), ErrorCode::kIoError);
}

TEST(FsFaultInjection, ShortWriteLandsTornPrefix) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  FsFaultInjector::SiteConfig config;
  config.error_at_op = 2;
  config.error_errno = ENOSPC;
  config.short_write = true;
  injector.arm(fs::sites::kClaim, config);

  const std::string path = temp_path("torn.txt");
  fs::File file;
  ASSERT_TRUE(fs::create_truncate(path, fs::sites::kClaim, file).ok());
  const std::string payload = "0123456789";
  const fs::Status failed =
      fs::write_all(file, payload.data(), payload.size(), fs::sites::kClaim);
  EXPECT_EQ(failed.err, ENOSPC);
  EXPECT_EQ(failed.bytes, payload.size() / 2)
      << "a torn write lands half of the remaining bytes before failing";
  file.close();

  injector.disarm_all();
  std::string on_disk;
  ASSERT_TRUE(fs::read_file(path, on_disk, fs::sites::kRead).ok());
  EXPECT_EQ(on_disk, payload.substr(0, payload.size() / 2))
      << "the file must hold exactly the torn prefix";
}

TEST(FsFaultInjection, TransientEioIsRetriedInvisibly) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  FsFaultInjector::SiteConfig config;
  config.error_at_op = 2;
  config.error_errno = EIO;
  injector.arm(fs::sites::kClaim, config);

  const std::uint64_t retries_before =
      metrics::registry().counter(metrics::names::kFsEioRetries).value();
  const std::string path = temp_path("eio.txt");
  fs::File file;
  ASSERT_TRUE(fs::create_truncate(path, fs::sites::kClaim, file).ok());
  const std::string payload = "survives one transient EIO";
  const fs::Status written =
      fs::write_all(file, payload.data(), payload.size(), fs::sites::kClaim);
  EXPECT_TRUE(written.ok()) << written.message();
  EXPECT_EQ(written.bytes, payload.size());
  file.close();
  EXPECT_GT(metrics::registry().counter(metrics::names::kFsEioRetries).value(),
            retries_before)
      << "the retry must be visible in fs.eio_retries";

  injector.disarm_all();
  std::string on_disk;
  ASSERT_TRUE(fs::read_file(path, on_disk, fs::sites::kRead).ok());
  EXPECT_EQ(on_disk, payload) << "a retried write must land complete bytes";
}

TEST(FsFaultInjection, EnospcIsNeverRetried) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  FsFaultInjector::SiteConfig config;
  config.error_at_op = 2;
  config.error_errno = ENOSPC;
  injector.arm(fs::sites::kClaim, config);

  const std::uint64_t retries_before =
      metrics::registry().counter(metrics::names::kFsEioRetries).value();
  const std::string path = temp_path("enospc.txt");
  fs::File file;
  ASSERT_TRUE(fs::create_truncate(path, fs::sites::kClaim, file).ok());
  EXPECT_EQ(fs::write_all(file, "x", 1, fs::sites::kClaim).err, ENOSPC);
  EXPECT_EQ(metrics::registry().counter(metrics::names::kFsEioRetries).value(),
            retries_before)
      << "a full disk does not get better by retrying";
}

TEST(FsFaultInjection, CommitFileUnlinksTemporaryOnFailure) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string path = temp_path("commit.txt");
  ASSERT_TRUE(fs::commit_file(path, "old contents", "t0",
                              fs::sites::kResultCommit)
                  .ok());

  FsFaultInjector::SiteConfig config;
  config.error_at_op = 2;  // the payload write inside the commit
  config.error_errno = ENOSPC;
  injector.arm(fs::sites::kResultCommit, config);
  const fs::Status failed =
      fs::commit_file(path, "new contents", "t1", fs::sites::kResultCommit);
  EXPECT_EQ(failed.err, ENOSPC);
  injector.disarm_all();

  EXPECT_FALSE(std::filesystem::exists(path + ".tmp.t1"))
      << "a failed commit must not leave its temporary behind";
  std::string on_disk;
  ASSERT_TRUE(fs::read_file(path, on_disk, fs::sites::kRead).ok());
  EXPECT_EQ(on_disk, "old contents")
      << "a failed commit must leave the previous contents untouched";
}

// --- durable CsvWriter ----------------------------------------------------

TEST(FsFaultInjection, DurableCsvWriterWritesAndCommits) {
  ScopedFsFaults guard;
  const std::string path = temp_path("durable.csv");
  {
    fs::File file;
    ASSERT_TRUE(
        fs::create_truncate(path, fs::sites::kManifestAppend, file).ok());
    CsvWriter writer(file, fs::sites::kManifestAppend);
    writer.header({"a", "b"});
    writer.row({1LL, std::string("x,y")});
    writer.commit();
    EXPECT_EQ(writer.rows_written(), 1u);
  }
  std::string text;
  ASSERT_TRUE(fs::read_file(path, text, fs::sites::kRead).ok());
  EXPECT_EQ(text, "a,b\n1,\"x,y\"\n");
}

TEST(FsFaultInjection, DurableCsvWriterNamesPathOnFailure) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  const std::string path = temp_path("durable_fail.csv");
  fs::File file;
  ASSERT_TRUE(
      fs::create_truncate(path, fs::sites::kManifestAppend, file).ok());
  CsvWriter writer(file, fs::sites::kManifestAppend);

  FsFaultInjector::SiteConfig config;
  config.error_at_op = 1;
  config.error_errno = ENOSPC;
  injector.arm(fs::sites::kManifestAppend, config);
  try {
    writer.header({"a"});
    FAIL() << "a failing row write must throw";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("No space left"), std::string::npos) << what;
  }
}

// --- store writer failure surfacing (the PR's headline bugfix) ------------

TEST(FsFaultInjection, StoreWriterNamesPathShardAndErrnoOnEnospc) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());
  FsFaultInjector::SiteConfig config;
  config.error_at_op = 1;  // the first shard payload write
  config.error_errno = ENOSPC;
  config.short_write = true;
  injector.arm(fs::sites::kStoreShard, config);

  const std::string path = temp_path("enospc.store");
  try {
    write_small_store(path);
    FAIL() << "an ENOSPC mid-shard must surface, not be swallowed";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("No space left"), std::string::npos) << what;
  }
  injector.disarm_all();
  // The torn file is rejected by the reader — crash-safe by construction.
  EXPECT_THROW(ScenarioStore{path}, IoError);
}

// --- PidLockFile host portability -----------------------------------------

TEST(FsFaultLock, RemoteHostLockRespectsLeaseNotPid) {
  const std::string path = temp_path("remote.lock");
  {
    // A lock written "elsewhere": hostname that is not ours, pid 1 (alive
    // on every Linux box — the pid probe would wrongly call this live
    // forever if it were consulted for remote records).
    std::ofstream out(path);
    out << "1 not-this-host-" << ::getpid() << "\n";
  }
  // Fresh remote lock, unexpired lease: acquisition must refuse, and the
  // message must name the remote holder.
  try {
    util::PidLockFile lock(path, "test resource", std::chrono::minutes(2));
    FAIL() << "an unexpired remote lease must block acquisition";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("on host"), std::string::npos) << what;
    EXPECT_NE(what.find("not-this-host"), std::string::npos) << what;
  }
  // Same lock with an expired lease: taken over via the age rule.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  util::PidLockFile lock(path, "test resource",
                         std::chrono::milliseconds(50));
  std::string record;
  ASSERT_TRUE(fs::read_file(path, record, fs::sites::kRead).ok());
  EXPECT_NE(record.find(std::to_string(::getpid())), std::string::npos);
  EXPECT_NE(record.find(util::local_hostname()), std::string::npos)
      << "takeover must brand the lock with our pid and hostname";
}

TEST(FsFaultLock, LegacyPidOnlyRecordIsJudgedByLocalPidProbe) {
  const std::string path = temp_path("legacy.lock");
  const ::pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  {
    std::ofstream out(path);
    out << static_cast<long long>(child) << "\n";  // pid-only, no hostname
  }
  // Dead local pid: reclaimed immediately, no lease wait, even though the
  // record predates the hostname column.
  util::PidLockFile lock(path, "legacy resource", std::chrono::minutes(2));
  std::string record;
  ASSERT_TRUE(fs::read_file(path, record, fs::sites::kRead).ok());
  EXPECT_NE(record.find(std::to_string(::getpid())), std::string::npos);
}

TEST(FsFaultLock, RefreshKeepsRemoteStalenessAtBay) {
  const std::string path = temp_path("refresh.lock");
  util::PidLockFile lock(path, "refreshed resource",
                         std::chrono::milliseconds(80));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lock.refresh();
  struct ::stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const std::int64_t age_s =
      std::chrono::duration_cast<std::chrono::seconds>(now).count() -
      static_cast<std::int64_t>(st.st_mtime);
  EXPECT_LE(age_s, 2) << "refresh must bump the lock's mtime to now";
}

// --- lease-only claim staleness -------------------------------------------

TEST(FsFaultClaims, ClaimRecordsCarryPidAndHostname) {
  const std::string ledger_dir = temp_path("hostname.ledger");
  const ClaimLedger ledger(ledger_dir, 0x1234, std::chrono::minutes(1));
  ASSERT_TRUE(ledger.try_claim(0, "w0", ClaimLedger::make_token()));
  const auto claim = ledger.read_claim(0);
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->worker, "w0");
  EXPECT_EQ(claim->pid, static_cast<long long>(::getpid()));
  EXPECT_EQ(claim->hostname, util::local_hostname())
      << "claims must record their host for the portable staleness rule";
  EXPECT_EQ(claim->store_checksum, 0x1234u);
}

TEST(FsFaultClaims, LeaseOnlyModeIgnoresDeadPidUntilLeaseExpires) {
  const std::string ledger_dir = temp_path("leaseonly.ledger");

  // A genuinely dead claimer: fork a child that claims shard 0 and exits.
  const ::pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    const ClaimLedger mine(ledger_dir, 0x77, std::chrono::milliseconds(150));
    mine.try_claim(0, "doomed", ClaimLedger::make_token());
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // Lease-only ledger (dead_pid_fast_path = false): the dead pid does NOT
  // shortcut the unexpired lease.
  const ClaimLedger lease_only(ledger_dir, 0x77,
                               std::chrono::milliseconds(150), false);
  bool reclaimed = false;
  EXPECT_FALSE(lease_only.try_claim(0, "w1", ClaimLedger::make_token(),
                                    &reclaimed))
      << "lease-only mode must wait out the lease even for a dead local pid";

  // Default mode on the same record reclaims immediately via the pid probe.
  const ClaimLedger fast(ledger_dir, 0x77, std::chrono::minutes(1));
  EXPECT_TRUE(fast.try_claim(0, "w2", ClaimLedger::make_token(), &reclaimed));
  EXPECT_TRUE(reclaimed);

  // And lease-only mode reclaims once the deadline passes: shard 1, claimed
  // by the (now dead) child's sibling record — emulate with a short lease.
  const ClaimLedger short_lease(ledger_dir, 0x77,
                                std::chrono::milliseconds(40), false);
  ASSERT_TRUE(short_lease.try_claim(1, "w3", ClaimLedger::make_token()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  reclaimed = false;
  EXPECT_TRUE(short_lease.try_claim(1, "w4", ClaimLedger::make_token(),
                                    &reclaimed))
      << "an expired lease must be reclaimable without any pid check";
  EXPECT_TRUE(reclaimed);
}

TEST(FsFaultClaims, LeaseOnlyTwoWorkerKillOneRecovers) {
  const std::string store_path = temp_path("leaseonly.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::vector<std::uint64_t> reference = reference_checksums(store);
  const std::string ledger = temp_path("leaseonly_drill.ledger");

  // Worker 1 claims a shard and dies instantly — the kill-one half.
  const ::pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ShardedSweepOptions options =
        worker_options(ledger, "victim", std::chrono::milliseconds(400));
    options.lease_only = true;
    options.on_claimed = [](std::size_t) { ::_exit(137); };
    try {
      const ScenarioStore child_store(store_path);
      const ShardedSweepDriver doomed(std::move(options));
      doomed.run_worker(child_store);
    } catch (...) {
    }
    ::_exit(1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 137);

  // Worker 2, lease-only: must wait out the victim's lease (no dead-pid
  // shortcut) and still finish the whole sweep.
  ShardedSweepOptions options =
      worker_options(ledger, "rescuer", std::chrono::milliseconds(400));
  options.lease_only = true;
  const ShardedSweepDriver rescuer(options);
  const WorkerReport report = rescuer.run_worker(store);
  EXPECT_EQ(report.shards_evaluated, kShards);
  EXPECT_GE(report.leases_reclaimed, 1u);

  const ShardedSweepDriver merger(options);
  const MergedSweep merged = merger.merge(store);
  EXPECT_EQ(merged.report.shard_checksums, reference)
      << "lease-only recovery must merge bit-identical to streaming";
}

// --- crash-recovery property suite ----------------------------------------

/// Crashes store writing at every op of every store-write site, and checks
/// the two-sided property: the torn file is always rejected, and a clean
/// rewrite always reproduces the reference checksum.
TEST(CrashRecovery, StoreWriteCrashAtEveryOpRecoversBitIdentical) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string clean_path = temp_path("crash_store_ref.store");
  const std::uint64_t reference = write_small_store(clean_path);

  for (const std::string_view site :
       {fs::sites::kStoreOpen, fs::sites::kStoreShard,
        fs::sites::kStoreFinish}) {
    const std::uint64_t ops = probe_ops(site, [&] {
      write_small_store(temp_path("crash_store_probe.store"));
    });
    ASSERT_GT(ops, 0u) << site;
    for (std::uint64_t op = 1; op <= ops; ++op) {
      SCOPED_TRACE(std::string(site) + " crash at op " +
                   std::to_string(op));
      const std::string path = temp_path("crash_store.store");
      FsFaultInjector::SiteConfig config;
      config.crash_at_op = op;
      config.crash_after = (op % 2) == 0;  // cover both syscall boundaries
      injector.reset_ops();
      injector.arm(site, config);
      EXPECT_THROW(write_small_store(path), CrashInjectedError);
      injector.disarm_all();

      // The crash-consistency property is old-or-new: the file on disk
      // either rejects as torn, or (crash landed past the commit point)
      // reads back as the complete reference store. Nothing in between.
      bool valid_after_crash = false;
      try {
        const ScenarioStore torn(path);
        valid_after_crash = true;
        EXPECT_EQ(torn.checksum(), reference)
            << "a store that opens after a crash must be the complete one";
      } catch (const IoError&) {
      }
      if (!valid_after_crash) {
        // Recovery (a clean rewrite) must be bit-identical.
        EXPECT_EQ(write_small_store(path), reference);
        const ScenarioStore recovered(path);
        EXPECT_EQ(recovered.checksum(), reference);
      }
    }
  }
}

/// Crashes the checkpointed streaming sweep at every manifest op; a resumed
/// run must complete with the reference digests — the torn manifest line
/// (when the crash tore one) is dropped, committed shards are kept.
TEST(CrashRecovery, CheckpointCrashAtEveryOpResumesBitIdentical) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string store_path = temp_path("crash_ckpt.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::vector<std::uint64_t> reference = reference_checksums(store);

  for (const std::string_view site :
       {fs::sites::kManifestOpen, fs::sites::kManifestAppend}) {
    const std::uint64_t ops = probe_ops(site, [&] {
      const StreamingSweep sweep(
          streaming_options(temp_path("crash_ckpt_probe.manifest")));
      sweep.run(store);
    });
    ASSERT_GT(ops, 0u) << site;
    for (std::uint64_t op = 1; op <= ops; ++op) {
      SCOPED_TRACE(std::string(site) + " crash at op " +
                   std::to_string(op));
      const std::string manifest = temp_path("crash_ckpt.manifest");
      FsFaultInjector::SiteConfig config;
      config.crash_at_op = op;
      config.crash_after = (op % 2) == 0;
      injector.reset_ops();
      injector.arm(site, config);
      const StreamingSweep sweep(streaming_options(manifest));
      EXPECT_THROW(sweep.run(store), CrashInjectedError);
      injector.disarm_all();

      const StreamingSweep resumed(streaming_options(manifest));
      const StreamingSweepReport report = resumed.run(store);
      EXPECT_TRUE(report.complete());
      EXPECT_EQ(report.shard_checksums, reference)
          << "resume after a manifest crash must be bit-identical";
    }
  }
}

/// A crash that tears a manifest row mid-line (short write, then death):
/// the resume must drop exactly the torn trailing line and re-evaluate
/// that one shard.
TEST(CrashRecovery, TornManifestLineIsDroppedOnResume) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string store_path = temp_path("torn_manifest.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::vector<std::uint64_t> reference = reference_checksums(store);

  const std::uint64_t ops = probe_ops(fs::sites::kManifestAppend, [&] {
    const StreamingSweep sweep(
        streaming_options(temp_path("torn_manifest_probe.manifest")));
    sweep.run(store);
  });
  ASSERT_GT(ops, 2u);

  // Fail a mid-sweep manifest *row write* with a short write: half the row
  // lands, no newline — the classic torn line. Appends alternate
  // write (odd op) / fsync (even op), header first, so a mid-run odd op is
  // a shard row's write.
  std::uint64_t torn_op = ops / 2;
  if ((torn_op % 2) == 0) {
    ++torn_op;
  }
  const std::string manifest = temp_path("torn_manifest.manifest");
  FsFaultInjector::SiteConfig config;
  config.error_at_op = torn_op;
  config.error_errno = ENOSPC;  // not EIO: must not be absorbed by retry
  config.short_write = true;
  injector.reset_ops();
  injector.arm(fs::sites::kManifestAppend, config);
  const StreamingSweep sweep(streaming_options(manifest));
  EXPECT_THROW(sweep.run(store), IoError);
  injector.disarm_all();

  const StreamingSweep resumed(streaming_options(manifest));
  const StreamingSweepReport report = resumed.run(store);
  EXPECT_TRUE(report.complete());
  EXPECT_GT(report.shards_resumed, 0u)
      << "shards committed before the tear must not be re-evaluated";
  EXPECT_EQ(report.shard_checksums, reference);
}

/// Crashes the sharded worker at every claim/commit op of the early shards;
/// a rescuer (waiting out the lease where needed) must always finish the
/// sweep and merge bit-identical. Covers the two satellite scenarios by
/// construction: crash between result write and rename, and crash after
/// rename before the directory fsync, are specific ops in this sweep.
TEST(CrashRecovery, ClaimAndResultCommitCrashesRecoverBitIdentical) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string store_path = temp_path("crash_claim.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::vector<std::uint64_t> reference = reference_checksums(store);

  // Ops per shard, from a clean probe of a 1-worker run.
  std::uint64_t claim_ops = 0;
  std::uint64_t commit_ops = 0;
  {
    const std::string ledger = temp_path("crash_claim_probe.ledger");
    injector.reset_ops();
    injector.arm(fs::sites::kClaim, {});
    injector.arm(fs::sites::kResultCommit, {});
    const ShardedSweepDriver probe(
        worker_options(ledger, "probe", std::chrono::minutes(1)));
    probe.run_worker(store);
    claim_ops = injector.ops_at(fs::sites::kClaim);
    commit_ops = injector.ops_at(fs::sites::kResultCommit);
    injector.disarm_all();
    injector.reset_ops();
  }
  ASSERT_GT(claim_ops, 0u);
  ASSERT_GT(commit_ops, 0u);
  // Per-shard op strides; crash through the first shard's full lifecycle
  // plus one op into the second shard (the boundary case).
  const std::uint64_t claim_stride = claim_ops / kShards;
  const std::uint64_t commit_stride = commit_ops / kShards;

  const auto crash_and_rescue = [&](std::string_view site, std::uint64_t op,
                                    bool crash_after) {
    SCOPED_TRACE(std::string(site) + " crash at op " + std::to_string(op) +
                 (crash_after ? " (after syscall)" : " (before syscall)"));
    const std::string ledger = temp_path("crash_claim.ledger");
    FsFaultInjector::SiteConfig config;
    config.crash_at_op = op;
    config.crash_after = crash_after;
    injector.reset_ops();
    injector.arm(site, config);
    const ShardedSweepDriver victim(
        worker_options(ledger, "victim", std::chrono::milliseconds(250)));
    EXPECT_THROW(victim.run_worker(store), CrashInjectedError);
    injector.disarm_all();
    injector.reset_ops();

    // The rescuer waits out the victim's lease where the crash left a
    // claim naming this (live) process — exactly what a kill -9 of a
    // remote worker looks like under lease-only staleness.
    ShardedSweepOptions options =
        worker_options(ledger, "rescuer", std::chrono::milliseconds(250));
    options.lease_only = true;
    const ShardedSweepDriver rescuer(options);
    const WorkerReport report = rescuer.run_worker(store);
    // The victim died inside its first shard's lifecycle, so at most one
    // shard (a crash after the commit rename) survives it.
    EXPECT_GE(report.shards_evaluated, kShards - 1);

    const ShardedSweepDriver merger(options);
    const MergedSweep merged = merger.merge(store);
    EXPECT_EQ(merged.report.shard_checksums, reference)
        << "recovery after a " << site << " crash must merge bit-identical";
  };

  for (std::uint64_t op = 1; op <= claim_stride + 1; ++op) {
    crash_and_rescue(fs::sites::kClaim, op, false);
    crash_and_rescue(fs::sites::kClaim, op, true);
  }
  for (std::uint64_t stride_op = 1; stride_op <= commit_stride;
       ++stride_op) {
    // Commit ops start after the first claim; crash inside the first
    // shard's result commit at every boundary.
    crash_and_rescue(fs::sites::kResultCommit, stride_op, false);
    crash_and_rescue(fs::sites::kResultCommit, stride_op, true);
  }
}

/// Crashes the merger's result reads; a re-run merge after the crash must
/// produce the reference digests (merging is read-only and idempotent).
TEST(CrashRecovery, MergeCrashIsIdempotentlyRetryable) {
  ScopedFsFaults guard;
  FsFaultInjector& injector = FsFaultInjector::global();
  injector.set_seed(fault_seed());

  const std::string store_path = temp_path("crash_merge.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::vector<std::uint64_t> reference = reference_checksums(store);
  const std::string ledger = temp_path("crash_merge.ledger");
  const ShardedSweepDriver worker(
      worker_options(ledger, "w0", std::chrono::minutes(1)));
  worker.run_worker(store);

  const std::uint64_t ops = probe_ops(fs::sites::kRead, [&] {
    const ShardedSweepDriver merger(
        worker_options(ledger, "m", std::chrono::minutes(1)));
    merger.merge(store);
  });
  ASSERT_GT(ops, 0u);
  for (std::uint64_t op = 1; op <= ops; op += 2) {
    SCOPED_TRACE("merge crash at fs.read op " + std::to_string(op));
    FsFaultInjector::SiteConfig config;
    config.crash_at_op = op;
    config.crash_after = (op % 4) == 1;
    injector.reset_ops();
    injector.arm(fs::sites::kRead, config);
    const ShardedSweepDriver merger(
        worker_options(ledger, "m", std::chrono::minutes(1)));
    EXPECT_THROW(merger.merge(store), CrashInjectedError);
    injector.disarm_all();
    injector.reset_ops();

    const MergedSweep merged = merger.merge(store);
    EXPECT_EQ(merged.report.shard_checksums, reference);
  }
}

/// The post-crash ledger may hold leftover commit temporaries; the merger's
/// worker-metrics sum must ignore them (exact-suffix filename match).
TEST(CrashRecovery, MergerIgnoresTornMetricsTemporaries) {
  const std::string store_path = temp_path("torn_metrics.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const std::string ledger = temp_path("torn_metrics.ledger");
  const ShardedSweepDriver worker(
      worker_options(ledger, "w0", std::chrono::minutes(1)));
  worker.run_worker(store);
  worker.write_worker_metrics();
  {
    // A crashed commit's leftover temporary: prefix and infix match the
    // metrics pattern, but the suffix is the .tmp tag.
    std::ofstream torn(ledger + "/worker-w9.metrics.json.tmp.w9");
    torn << "{ torn";
  }
  const MergedSweep merged = worker.merge(store);
  EXPECT_EQ(merged.metrics_files, 1u)
      << "the torn temporary must not be parsed as a metrics file";
}

}  // namespace
}  // namespace vmcons::core
