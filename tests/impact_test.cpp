// Tests for impact-factor models, overhead injection, and calibration.
#include <cmath>

#include <gtest/gtest.h>

#include "stats/regression.hpp"
#include "util/error.hpp"
#include "virt/calibration.hpp"
#include "virt/impact.hpp"
#include "virt/overhead.hpp"

namespace vmcons::virt {
namespace {

TEST(Impact, DefaultIsIdentity) {
  Impact impact;
  for (unsigned v = 1; v <= 9; ++v) {
    EXPECT_DOUBLE_EQ(impact.factor(v), 1.0);
    EXPECT_DOUBLE_EQ(impact.raw_factor(v), 1.0);
  }
}

TEST(Impact, PaperWebDiskIoCurve) {
  const Impact impact = Impact::paper_web_disk_io();
  // a(v) = 1.082 - 0.102 v.
  EXPECT_NEAR(impact.raw_factor(1), 0.98, 1e-12);
  EXPECT_NEAR(impact.raw_factor(6), 0.47, 1e-12);
  EXPECT_NEAR(impact.raw_factor(9), 0.164, 1e-12);
  // Section IV-D: throughput degradation exceeds 50% past 6 VMs.
  EXPECT_LT(impact.raw_factor(7), 0.5);
}

TEST(Impact, PaperWebCpuCurve) {
  const Impact impact = Impact::paper_web_cpu();
  EXPECT_NEAR(impact.raw_factor(1), 0.619, 1e-12);
  EXPECT_NEAR(impact.raw_factor(9), 0.307, 1e-12);
}

TEST(Impact, PaperDbCurveShowsSoftwareCeilingEscape) {
  const Impact impact = Impact::paper_db_cpu();
  // One VM performs like native; several VMs exceed it (raw > 1).
  EXPECT_NEAR(impact.raw_factor(1), 1.0, 1e-9);
  EXPECT_GT(impact.raw_factor(2), 1.5);
  EXPECT_LT(impact.raw_factor(2), 1.85);
  // Plateau approaches 1.85.
  EXPECT_NEAR(impact.raw_factor(30), 1.85, 0.01);
  // Planning factor clamps to 1.
  EXPECT_DOUBLE_EQ(impact.factor(4), 1.0);
}

TEST(Impact, ClampingFloorsAtMinFactor) {
  const Impact impact = Impact::linear(0.2, -0.1);
  EXPECT_DOUBLE_EQ(impact.factor(9), Impact::kMinFactor);
  EXPECT_LT(impact.raw_factor(9), 0.0);  // raw is unclamped
}

TEST(Impact, TableInterpolatesAndClamps) {
  const Impact impact = Impact::table({{1, 1.0}, {3, 0.8}, {5, 0.4}});
  EXPECT_DOUBLE_EQ(impact.raw_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(impact.raw_factor(2), 0.9);
  EXPECT_DOUBLE_EQ(impact.raw_factor(4), 0.6);
  EXPECT_DOUBLE_EQ(impact.raw_factor(7), 0.4);   // clamp beyond last
  EXPECT_DOUBLE_EQ(impact.raw_factor(0), 1.0);   // clamp before first
}

TEST(Impact, TableRequiresSortedPoints) {
  EXPECT_THROW(Impact::table({{3, 0.5}, {1, 1.0}}), InvalidArgument);
  EXPECT_THROW(Impact::table({}), InvalidArgument);
}

TEST(Impact, ConstantValidatesPositive) {
  EXPECT_THROW(Impact::constant(0.0), InvalidArgument);
  EXPECT_THROW(Impact::constant(-1.0), InvalidArgument);
}

TEST(Impact, DescribeMentionsTheFormula) {
  EXPECT_NE(Impact::paper_web_disk_io().describe().find("1.082"),
            std::string::npos);
  EXPECT_NE(Impact::paper_db_cpu().describe().find("1.85"), std::string::npos);
}

TEST(Overhead, PinnedBeatsXenScheduled) {
  OverheadConfig pinned;
  pinned.impact = Impact::paper_web_cpu();
  OverheadConfig scheduled = pinned;
  scheduled.vcpu_mode = VcpuMode::kXenScheduled;
  for (unsigned v = 1; v <= 6; ++v) {
    EXPECT_GT(rate_multiplier(pinned, v), rate_multiplier(scheduled, v));
    EXPECT_NEAR(rate_multiplier(scheduled, v) / rate_multiplier(pinned, v),
                kXenSchedulerPenalty, 1e-12);
  }
}

TEST(Overhead, Domain0TaxGrowsWithVmCount) {
  OverheadConfig config;
  config.impact = Impact::none();
  EXPECT_GT(rate_multiplier(config, 1), rate_multiplier(config, 9));
}

TEST(Overhead, EffectiveRateScalesNativeRate) {
  OverheadConfig config;
  config.impact = Impact::constant(0.8);
  config.domain0_tax_per_vm = 0.0;
  EXPECT_NEAR(effective_rate(config, 420.0, 2), 336.0, 1e-9);
}

TEST(Overhead, SoftwareCeiling) {
  EXPECT_NEAR(software_ceiling(1), kSingleOsCeiling, 1e-15);
  EXPECT_DOUBLE_EQ(software_ceiling(2), 1.0);
  EXPECT_DOUBLE_EQ(software_ceiling(9), 1.0);
  EXPECT_THROW(software_ceiling(0), InvalidArgument);
}

TEST(Calibration, StableMeanUsesSaturatedRegionOnly) {
  ThroughputCurve curve;
  curve.vm_count = 1;
  curve.offered = {100, 200, 300, 700, 800, 900};
  curve.throughput = {100, 200, 300, 400, 420, 410};
  EXPECT_NEAR(stable_mean_throughput(curve, 700.0), 410.0, 1e-12);
  EXPECT_THROW(stable_mean_throughput(curve, 1000.0), InvalidArgument);
}

TEST(Calibration, ImpactFactorsDivideByNative) {
  ThroughputCurve native;
  native.vm_count = 0;
  native.offered = {900, 1000};
  native.throughput = {400, 400};
  ThroughputCurve two_vms;
  two_vms.vm_count = 2;
  two_vms.offered = {900, 1000};
  two_vms.throughput = {300, 300};
  const auto samples = impact_factors(native, {two_vms}, 900.0);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].vm_count, 2u);
  EXPECT_NEAR(samples[0].factor, 0.75, 1e-12);
}

TEST(Calibration, LinearFitRoundTripsThePaperCurve) {
  std::vector<ImpactSample> samples;
  for (unsigned v = 1; v <= 9; ++v) {
    samples.push_back({v, Impact::paper_web_disk_io().raw_factor(v)});
  }
  const LinearFit fit = calibrate_linear(samples);
  EXPECT_NEAR(fit.slope, -0.102, 1e-10);
  EXPECT_NEAR(fit.intercept, 1.082, 1e-10);
}

TEST(Calibration, RationalFitRoundTripsThePaperCurve) {
  std::vector<ImpactSample> samples;
  for (unsigned v = 1; v <= 9; ++v) {
    samples.push_back({v, Impact::paper_db_cpu().raw_factor(v)});
  }
  const RationalSaturatingFit fit = calibrate_rational(samples);
  EXPECT_NEAR(fit.amplitude, 1.85, 1e-3);
  EXPECT_NEAR(fit.half_point, 0.85, 2e-3);
}

}  // namespace
}  // namespace vmcons::virt
