// Tests for robust (Monte Carlo) planning under parameter uncertainty.
#include "core/robust.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::core {
namespace {

ModelInputs case_study() {
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  inputs.services = {web, db};
  return inputs;
}

TEST(Robust, ZeroUncertaintyCollapsesToPointEstimate) {
  ParameterUncertainty none;
  none.arrival_cv = 0.0;
  none.service_cv = 0.0;
  none.impact_sd = 0.0;
  const RobustPlan plan = robust_consolidated_plan(case_study(), none, 200);
  EXPECT_EQ(plan.n_histogram.size(), 1u);
  EXPECT_EQ(plan.n_at_quantile, plan.point_estimate_n);
  EXPECT_DOUBLE_EQ(plan.mean_n, static_cast<double>(plan.point_estimate_n));
  EXPECT_DOUBLE_EQ(plan.underprovision_risk, 0.0);
}

TEST(Robust, UncertaintySpreadsTheDistribution) {
  ParameterUncertainty wide;
  wide.arrival_cv = 0.4;
  wide.service_cv = 0.1;
  wide.impact_sd = 0.1;
  const RobustPlan plan = robust_consolidated_plan(case_study(), wide, 1000);
  EXPECT_GT(plan.n_histogram.size(), 1u);
  EXPECT_GE(plan.n_at_quantile, plan.point_estimate_n);
  EXPECT_GT(plan.underprovision_risk, 0.0);
}

TEST(Robust, QuantileIsMonotoneInConfidence) {
  ParameterUncertainty uncertainty;
  uncertainty.arrival_cv = 0.3;
  const RobustPlan median =
      robust_consolidated_plan(case_study(), uncertainty, 1000, 2009, 0.5);
  const RobustPlan tail =
      robust_consolidated_plan(case_study(), uncertainty, 1000, 2009, 0.99);
  EXPECT_LE(median.n_at_quantile, tail.n_at_quantile);
}

TEST(Robust, DeterministicPerSeed) {
  ParameterUncertainty uncertainty;
  const RobustPlan a =
      robust_consolidated_plan(case_study(), uncertainty, 300, 7);
  const RobustPlan b =
      robust_consolidated_plan(case_study(), uncertainty, 300, 7);
  EXPECT_EQ(a.n_histogram, b.n_histogram);
  EXPECT_DOUBLE_EQ(a.mean_n, b.mean_n);
}

TEST(Robust, PerturbationPreservesStructure) {
  Rng rng(161);
  ParameterUncertainty uncertainty;
  const ModelInputs inputs = case_study();
  const ModelInputs sample = perturb_inputs(inputs, uncertainty, rng);
  ASSERT_EQ(sample.services.size(), inputs.services.size());
  for (std::size_t i = 0; i < sample.services.size(); ++i) {
    EXPECT_GT(sample.services[i].arrival_rate, 0.0);
    // Resources demanded stay demanded, undemanded stay undemanded.
    for (const dc::Resource resource : dc::all_resources()) {
      EXPECT_EQ(sample.services[i].native_rates[resource] > 0.0,
                inputs.services[i].native_rates[resource] > 0.0);
    }
  }
}

TEST(Robust, HistogramCountsSumToSamples) {
  ParameterUncertainty uncertainty;
  const RobustPlan plan =
      robust_consolidated_plan(case_study(), uncertainty, 500);
  std::size_t total = 0;
  for (const auto& [n, count] : plan.n_histogram) {
    (void)n;
    total += count;
  }
  EXPECT_EQ(total, 500u);
}

TEST(Robust, Validation) {
  EXPECT_THROW(
      robust_consolidated_plan(case_study(), ParameterUncertainty{}, 0),
      InvalidArgument);
  EXPECT_THROW(robust_consolidated_plan(case_study(), ParameterUncertainty{},
                                        10, 1, 0.0),
               InvalidArgument);
  Rng rng(162);
  ParameterUncertainty negative;
  negative.arrival_cv = -0.1;
  EXPECT_THROW(perturb_inputs(case_study(), negative, rng), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::core
