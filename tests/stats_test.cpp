// Tests for Summary, TimeWeighted, Histogram, and PercentileSketch.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/timeweighted.hpp"
#include "util/error.hpp"

namespace vmcons {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_DOUBLE_EQ(summary.mean(), 0.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
  EXPECT_DOUBLE_EQ(summary.stderror(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary summary;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    summary.add(x);
  }
  EXPECT_EQ(summary.count(), 8u);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(summary.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(summary.max(), 9.0);
}

TEST(Summary, MergeMatchesSequential) {
  Summary whole;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::sin(i * 0.37) * 10.0 + i * 0.01;
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary a;
  a.add(1.0);
  a.add(3.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(TimeWeighted, StepSignalAverage) {
  TimeWeighted signal(0.0, 0.0);
  signal.set(10.0, 4.0);  // 0 for [0,10)
  signal.set(30.0, 1.0);  // 4 for [10,30)
  // 1 for [30,40): integral = 0*10 + 4*20 + 1*10 = 90.
  EXPECT_DOUBLE_EQ(signal.integral(40.0), 90.0);
  EXPECT_DOUBLE_EQ(signal.average(40.0), 2.25);
  EXPECT_DOUBLE_EQ(signal.peak(), 4.0);
}

TEST(TimeWeighted, AddAccumulatesDeltas) {
  TimeWeighted signal(0.0, 0.0);
  signal.add(5.0, 2.0);
  signal.add(5.0, 1.0);  // same instant: contributes zero width
  EXPECT_DOUBLE_EQ(signal.value(), 3.0);
  signal.add(10.0, -3.0);
  EXPECT_DOUBLE_EQ(signal.value(), 0.0);
  EXPECT_DOUBLE_EQ(signal.integral(10.0), 15.0);
}

TEST(TimeWeighted, NonzeroStartTime) {
  TimeWeighted signal(100.0, 2.0);
  signal.set(110.0, 0.0);
  EXPECT_DOUBLE_EQ(signal.average(120.0), 1.0);
}

TEST(Histogram, BinningAndBounds) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(-1.0);
  histogram.add(0.0);
  histogram.add(5.5);
  histogram.add(9.999);
  histogram.add(10.0);
  histogram.add(42.0);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 2u);
  EXPECT_EQ(histogram.bin(0), 1u);
  EXPECT_EQ(histogram.bin(5), 1u);
  EXPECT_EQ(histogram.bin(9), 1u);
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_DOUBLE_EQ(histogram.bin_center(5), 5.5);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram histogram(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    histogram.add(i + 0.5);
  }
  EXPECT_NEAR(histogram.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(histogram.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(PercentileSketch, ExactWhenUnderCapacity) {
  PercentileSketch sketch(1000);
  for (int i = 1; i <= 100; ++i) {
    sketch.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 100.0);
  EXPECT_NEAR(sketch.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(sketch.quantile(0.95), 95.05, 0.2);
}

TEST(PercentileSketch, ReservoirStaysUnbiased) {
  PercentileSketch sketch(512, 99);
  for (int i = 0; i < 100000; ++i) {
    sketch.add(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(sketch.count(), 100000u);
  // Median of the underlying stream is ~499.5; reservoir noise is a few %.
  EXPECT_NEAR(sketch.quantile(0.5), 499.5, 60.0);
}

TEST(PercentileSketch, QuantileValidatesRange) {
  PercentileSketch sketch;
  sketch.add(1.0);
  EXPECT_THROW(sketch.quantile(-0.1), InvalidArgument);
  EXPECT_THROW(sketch.quantile(1.1), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
