// Tests for engine event cancellation and the TPC-W traffic mixes.
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/tpcw.hpp"

namespace vmcons {
namespace {

TEST(EngineCancel, CancelledEventNeverRuns) {
  sim::Engine engine;
  int fired = 0;
  const sim::EventId id = engine.schedule_at(5.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(EngineCancel, CancelReturnsFalseForDeadIds) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));          // already ran
  EXPECT_FALSE(engine.cancel(id));          // idempotent
  EXPECT_FALSE(engine.cancel(987654321u));  // never existed
}

TEST(EngineCancel, DoubleCancelReturnsFalse) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(EngineCancel, TimeoutPatternWorks) {
  // The canonical use: schedule a timeout, cancel it when work completes.
  sim::Engine engine;
  bool timed_out = false;
  sim::EventId timeout = 0;
  engine.schedule_at(1.0, [&] {
    timeout = engine.schedule_in(10.0, [&] { timed_out = true; });
  });
  engine.schedule_at(5.0, [&] {
    engine.cancel(timeout);  // work finished before the deadline
  });
  engine.run();
  EXPECT_FALSE(timed_out);
}

TEST(EngineCancel, CancelledCountTracksPendingCancellations) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_EQ(engine.cancelled(), 0u);
  engine.cancel(id);
  EXPECT_EQ(engine.cancelled(), 1u);
  engine.run();
  EXPECT_EQ(engine.cancelled(), 0u);  // consumed at pop time
}

TEST(EngineCancel, PendingCountsLiveEventsOnly) {
  sim::Engine engine;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(engine.schedule_at(1.0 + i, [] {}));
  }
  EXPECT_EQ(engine.pending(), 10u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.cancel(ids[i]));
  }
  EXPECT_EQ(engine.pending(), 7u);  // live events only, not calendar slots
  EXPECT_EQ(engine.cancelled(), 3u);
  engine.run();
  EXPECT_EQ(engine.executed(), 7u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(EngineCancel, CompactionReclaimsCancelledBeyondHorizon) {
  // Regression: cancelled events used to linger in the calendar until the
  // clock reached their deadline, so a timeout wheel cancelling far-future
  // events grew the heap for the whole run. The calendar now compacts
  // whenever cancellations outnumber live events.
  sim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  std::vector<sim::EventId> timeouts;
  timeouts.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    timeouts.push_back(
        engine.schedule_at(1e9 + static_cast<double>(i), [&] { ++fired; }));
  }
  engine.run_until(10.0);
  EXPECT_EQ(fired, 1);
  for (const sim::EventId id : timeouts) {
    EXPECT_TRUE(engine.cancel(id));
  }
  EXPECT_EQ(engine.pending(), 0u);
  // Only a final sub-threshold batch may remain un-compacted.
  EXPECT_LE(engine.cancelled(), 16u);
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.executed(), 1u);
  EXPECT_EQ(engine.cancelled(), 0u);
}

TEST(EngineCancel, CompactionPreservesEventOrdering) {
  sim::Engine engine;
  std::vector<int> order;
  std::vector<sim::EventId> doomed;
  for (int i = 90; i >= 1; --i) {  // reverse insertion order
    if (i % 3 == 0) {
      engine.schedule_at(static_cast<double>(i),
                         [&order, i] { order.push_back(i); });
    } else {
      doomed.push_back(
          engine.schedule_at(static_cast<double>(i), [&order] {
            order.push_back(-1);
          }));
    }
  }
  for (const sim::EventId id : doomed) {
    EXPECT_TRUE(engine.cancel(id));  // 60 cancelled vs 30 live -> compacts
  }
  EXPECT_EQ(engine.pending(), 30u);
  engine.run();
  ASSERT_EQ(order.size(), 30u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(3 * (i + 1)));  // still time-sorted
  }
}

TEST(TpcwMix, CostOrdering) {
  using workload::TpcwMix;
  EXPECT_LT(workload::tpcw_mix_cost_factor(TpcwMix::kBrowsing),
            workload::tpcw_mix_cost_factor(TpcwMix::kShopping));
  EXPECT_LT(workload::tpcw_mix_cost_factor(TpcwMix::kShopping),
            workload::tpcw_mix_cost_factor(TpcwMix::kOrdering));
  EXPECT_DOUBLE_EQ(workload::tpcw_mix_cost_factor(TpcwMix::kShopping), 1.0);
}

TEST(TpcwMix, CapacityInvertsTheCost) {
  workload::TpcwConfig browsing;
  browsing.vm_count = 2;
  browsing.mix = workload::TpcwMix::kBrowsing;
  workload::TpcwConfig shopping = browsing;
  shopping.mix = workload::TpcwMix::kShopping;
  workload::TpcwConfig ordering = browsing;
  ordering.mix = workload::TpcwMix::kOrdering;
  EXPECT_GT(workload::tpcw_capacity(browsing),
            workload::tpcw_capacity(shopping));
  EXPECT_GT(workload::tpcw_capacity(shopping),
            workload::tpcw_capacity(ordering));
}

TEST(TpcwMix, SaturatedWipsFollowsTheMix) {
  workload::TpcwConfig shopping;
  shopping.vm_count = 2;
  shopping.duration = 300.0;
  workload::TpcwConfig ordering = shopping;
  ordering.mix = workload::TpcwMix::kOrdering;

  Rng rng_a(191);
  Rng rng_b(191);
  const auto shopping_point = workload::tpcw_run(shopping, 3000, rng_a);
  const auto ordering_point = workload::tpcw_run(ordering, 3000, rng_b);
  EXPECT_GT(shopping_point.wips, ordering_point.wips * 1.1);
}

}  // namespace
}  // namespace vmcons
