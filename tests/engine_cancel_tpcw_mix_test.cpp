// Tests for engine event cancellation and the TPC-W traffic mixes.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/tpcw.hpp"

namespace vmcons {
namespace {

TEST(EngineCancel, CancelledEventNeverRuns) {
  sim::Engine engine;
  int fired = 0;
  const sim::EventId id = engine.schedule_at(5.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(EngineCancel, CancelReturnsFalseForDeadIds) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));          // already ran
  EXPECT_FALSE(engine.cancel(id));          // idempotent
  EXPECT_FALSE(engine.cancel(987654321u));  // never existed
}

TEST(EngineCancel, DoubleCancelReturnsFalse) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
  engine.run();
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(EngineCancel, TimeoutPatternWorks) {
  // The canonical use: schedule a timeout, cancel it when work completes.
  sim::Engine engine;
  bool timed_out = false;
  sim::EventId timeout = 0;
  engine.schedule_at(1.0, [&] {
    timeout = engine.schedule_in(10.0, [&] { timed_out = true; });
  });
  engine.schedule_at(5.0, [&] {
    engine.cancel(timeout);  // work finished before the deadline
  });
  engine.run();
  EXPECT_FALSE(timed_out);
}

TEST(EngineCancel, CancelledCountTracksPendingCancellations) {
  sim::Engine engine;
  const sim::EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_EQ(engine.cancelled(), 0u);
  engine.cancel(id);
  EXPECT_EQ(engine.cancelled(), 1u);
  engine.run();
  EXPECT_EQ(engine.cancelled(), 0u);  // consumed at pop time
}

TEST(TpcwMix, CostOrdering) {
  using workload::TpcwMix;
  EXPECT_LT(workload::tpcw_mix_cost_factor(TpcwMix::kBrowsing),
            workload::tpcw_mix_cost_factor(TpcwMix::kShopping));
  EXPECT_LT(workload::tpcw_mix_cost_factor(TpcwMix::kShopping),
            workload::tpcw_mix_cost_factor(TpcwMix::kOrdering));
  EXPECT_DOUBLE_EQ(workload::tpcw_mix_cost_factor(TpcwMix::kShopping), 1.0);
}

TEST(TpcwMix, CapacityInvertsTheCost) {
  workload::TpcwConfig browsing;
  browsing.vm_count = 2;
  browsing.mix = workload::TpcwMix::kBrowsing;
  workload::TpcwConfig shopping = browsing;
  shopping.mix = workload::TpcwMix::kShopping;
  workload::TpcwConfig ordering = browsing;
  ordering.mix = workload::TpcwMix::kOrdering;
  EXPECT_GT(workload::tpcw_capacity(browsing),
            workload::tpcw_capacity(shopping));
  EXPECT_GT(workload::tpcw_capacity(shopping),
            workload::tpcw_capacity(ordering));
}

TEST(TpcwMix, SaturatedWipsFollowsTheMix) {
  workload::TpcwConfig shopping;
  shopping.vm_count = 2;
  shopping.duration = 300.0;
  workload::TpcwConfig ordering = shopping;
  ordering.mix = workload::TpcwMix::kOrdering;

  Rng rng_a(191);
  Rng rng_b(191);
  const auto shopping_point = workload::tpcw_run(shopping, 3000, rng_a);
  const auto ordering_point = workload::tpcw_run(ordering, 3000, rng_b);
  EXPECT_GT(shopping_point.wips, ordering_point.wips * 1.1);
}

}  // namespace
}  // namespace vmcons
