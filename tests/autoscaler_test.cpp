// Tests for the reactive autoscaler baseline.
#include "datacenter/autoscaler.hpp"

#include <gtest/gtest.h>

#include "sim/replication.hpp"
#include "util/error.hpp"

namespace vmcons::dc {
namespace {

ServiceSpec simple_service(double lambda, double mu) {
  ServiceSpec spec;
  spec.name = "svc";
  spec.arrival_rate = lambda;
  spec.demand(Resource::kCpu, mu);
  return spec;
}

AutoscalerConfig base_config() {
  AutoscalerConfig config;
  config.services = {simple_service(2.0, 1.0)};
  config.max_servers = 8;
  config.min_servers = 1;
  config.initial_servers = 4;
  config.control_interval = 10.0;
  config.boot_delay = 30.0;
  config.horizon = 3000.0;
  config.warmup = 300.0;
  return config;
}

TEST(Autoscaler, ConservationAndBounds) {
  Rng rng(141);
  const AutoscalerOutcome outcome = simulate_autoscaler(base_config(), rng);
  const auto& service = outcome.services[0];
  EXPECT_EQ(service.arrivals, service.admitted + service.lost);
  EXPECT_GE(outcome.mean_active_servers, 1.0);
  EXPECT_LE(outcome.mean_active_servers, 8.0);
  EXPECT_GT(outcome.energy_joules, 0.0);
}

TEST(Autoscaler, ShrinksUnderLightLoad) {
  AutoscalerConfig config = base_config();
  config.services = {simple_service(0.2, 1.0)};  // ~0.2 erlangs
  config.initial_servers = 8;
  Rng rng(142);
  const AutoscalerOutcome outcome = simulate_autoscaler(config, rng);
  // The controller should shed most of the 8 initial servers.
  EXPECT_LT(outcome.mean_active_servers, 3.0);
  EXPECT_GT(outcome.shutdowns, 0u);
}

TEST(Autoscaler, GrowsUnderHeavyLoad) {
  AutoscalerConfig config = base_config();
  config.services = {simple_service(5.0, 1.0)};
  config.initial_servers = 1;
  // Keep the warmup short so the scale-up transitions land inside the
  // measured window (boots are reset at warmup like every other stat).
  config.warmup = 20.0;
  Rng rng(143);
  const AutoscalerOutcome outcome = simulate_autoscaler(config, rng);
  EXPECT_GT(outcome.mean_active_servers, 3.0);
  EXPECT_GT(outcome.boots, 0u);
}

TEST(Autoscaler, SavesEnergyUnderDiurnalLoadVsStaticFleet) {
  // Static fleet: min = max = 8 (controller can never act).
  AutoscalerConfig static_fleet = base_config();
  static_fleet.services = {simple_service(4.0, 1.0)};
  static_fleet.min_servers = static_fleet.max_servers = 8;
  static_fleet.initial_servers = 8;
  static_fleet.diurnal_amplitude = 0.8;

  AutoscalerConfig reactive = static_fleet;
  reactive.min_servers = 1;
  reactive.initial_servers = 8;

  const auto static_energy = sim::replicate_scalar(
      4, 144, [&](std::size_t, Rng& rng) {
        return simulate_autoscaler(static_fleet, rng).mean_power_watts;
      });
  const auto reactive_energy = sim::replicate_scalar(
      4, 144, [&](std::size_t, Rng& rng) {
        return simulate_autoscaler(reactive, rng).mean_power_watts;
      });
  EXPECT_LT(reactive_energy.summary.mean(), static_energy.summary.mean());
}

TEST(Autoscaler, BootDelayCostsLossDuringRamps) {
  AutoscalerConfig slow_boot = base_config();
  slow_boot.services = {simple_service(4.0, 1.0)};
  slow_boot.initial_servers = 1;
  slow_boot.diurnal_amplitude = 0.8;
  slow_boot.diurnal_period = 1000.0;
  slow_boot.boot_delay = 200.0;

  AutoscalerConfig fast_boot = slow_boot;
  fast_boot.boot_delay = 5.0;

  const auto slow_loss = sim::replicate_scalar(
      4, 145, [&](std::size_t, Rng& rng) {
        return simulate_autoscaler(slow_boot, rng).overall_loss();
      });
  const auto fast_loss = sim::replicate_scalar(
      4, 145, [&](std::size_t, Rng& rng) {
        return simulate_autoscaler(fast_boot, rng).overall_loss();
      });
  EXPECT_GT(slow_loss.summary.mean(), fast_loss.summary.mean());
}

TEST(Autoscaler, RespectsMinimumFleet) {
  AutoscalerConfig config = base_config();
  config.services = {simple_service(0.05, 1.0)};
  config.min_servers = 3;
  config.initial_servers = 6;
  Rng rng(146);
  const AutoscalerOutcome outcome = simulate_autoscaler(config, rng);
  EXPECT_GE(outcome.mean_active_servers, 3.0 - 1e-9);
}

TEST(Autoscaler, ValidatesConfig) {
  Rng rng(147);
  AutoscalerConfig config;  // no services
  EXPECT_THROW(simulate_autoscaler(config, rng), InvalidArgument);

  config = base_config();
  config.min_servers = 10;  // > max
  EXPECT_THROW(simulate_autoscaler(config, rng), InvalidArgument);

  config = base_config();
  config.high_watermark = 0.2;  // below low
  EXPECT_THROW(simulate_autoscaler(config, rng), InvalidArgument);

  config = base_config();
  config.diurnal_amplitude = 1.5;
  EXPECT_THROW(simulate_autoscaler(config, rng), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::dc
