// Tests for the M/M/c/K steady-state solver.
#include "queueing/mmck.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "util/error.hpp"

namespace vmcons::queueing {
namespace {

TEST(Mmck, PureLossMatchesErlangB) {
  for (const double lambda : {0.5, 2.0, 10.0}) {
    for (const std::uint64_t c : {1ull, 3ull, 8ull, 20ull}) {
      const double mu = 1.3;
      const MmckMetrics metrics = solve_mmcc(c, lambda, mu);
      EXPECT_NEAR(metrics.blocking, erlang_b(c, lambda / mu), 1e-12)
          << "c=" << c << " lambda=" << lambda;
    }
  }
}

TEST(Mmck, Mm1KClosedForm) {
  // M/M/1/K: p_n = (1-a) a^n / (1 - a^{K+1}) for a != 1.
  const double lambda = 0.8;
  const double mu = 1.0;
  const std::uint64_t k = 5;
  const MmckMetrics metrics = solve_mmck(1, k, lambda, mu);
  const double a = lambda / mu;
  const double denominator = 1.0 - std::pow(a, k + 1);
  for (std::size_t n = 0; n <= k; ++n) {
    const double expected = (1.0 - a) * std::pow(a, n) / denominator;
    EXPECT_NEAR(metrics.state_probabilities[n], expected, 1e-12) << "n=" << n;
  }
}

TEST(Mmck, ProbabilitiesSumToOne) {
  for (const std::uint64_t c : {1ull, 4ull, 16ull}) {
    for (const std::uint64_t extra : {0ull, 5ull, 50ull}) {
      const MmckMetrics metrics = solve_mmck(c, c + extra, 3.0, 1.0);
      double total = 0.0;
      for (const double p : metrics.state_probabilities) {
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(Mmck, LittleLawConsistency) {
  const MmckMetrics metrics = solve_mmck(3, 10, 2.5, 1.0);
  // L = throughput * W and Lq = throughput * Wq by construction; check the
  // decomposition L = Lq + busy servers instead.
  const double busy = metrics.throughput / 1.0;  // carried load, mu = 1
  EXPECT_NEAR(metrics.mean_in_system, metrics.mean_in_queue + busy, 1e-9);
  EXPECT_NEAR(metrics.mean_response_time,
              metrics.mean_wait_time + 1.0 /*service time*/, 1e-9);
}

TEST(Mmck, MoreWaitingRoomLowersBlocking) {
  double previous = 1.0;
  for (const std::uint64_t k : {4ull, 6ull, 10ull, 20ull}) {
    const MmckMetrics metrics = solve_mmck(4, k, 5.0, 1.0);
    EXPECT_LT(metrics.blocking, previous);
    previous = metrics.blocking;
  }
}

TEST(Mmck, HeavyTrafficBlocksAlmostEverything) {
  const MmckMetrics metrics = solve_mmck(2, 4, 200.0, 1.0);
  EXPECT_GT(metrics.blocking, 0.97);
  EXPECT_NEAR(metrics.server_utilization, 1.0, 1e-3);
}

TEST(Mmck, LargeSystemDoesNotOverflow) {
  // 500 servers, load near capacity: the naive factorial form would explode.
  const MmckMetrics metrics = solve_mmck(500, 500, 480.0, 1.0);
  EXPECT_GT(metrics.blocking, 0.0);
  EXPECT_LT(metrics.blocking, 0.1);
  EXPECT_NEAR(metrics.blocking, erlang_b(500, 480.0), 1e-10);
}

TEST(Mmck, ValidatesInputs) {
  EXPECT_THROW(solve_mmck(0, 5, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(solve_mmck(5, 4, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(solve_mmck(1, 1, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(solve_mmck(1, 1, 1.0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::queueing
