// Property suite for the heterogeneous fleet staffing pass.
//
// The load-bearing invariant of the ServerClass design is that a fleet is a
// *post-processing* of the homogeneous model: M, N, blocking, utilization,
// and (for a reference-class fleet) power must be bit-identical with or
// without a fleet attached. On top of that the allocation itself must be
// sane: fastest-first filling is minimal and monotone (adding a class never
// costs servers), bounded fleets report shortfalls instead of lying, and the
// fleet columns survive batch evaluation, the scenario store, and the sweep
// fleet_mix axis unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/model.hpp"
#include "core/planner.hpp"
#include "core/scenario_batch.hpp"
#include "core/scenario_store.hpp"
#include "core/sweep.hpp"
#include "datacenter/server_class.hpp"
#include "datacenter/service_spec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

/// Random but valid scenarios, fully derived from (seed, index) — the same
/// generator shape the batch determinism suites use. Both platforms share
/// one randomized wattage pair so a reference-class fleet (which also
/// carries that pair) is power-equivalent by construction.
ModelInputs random_inputs(std::uint64_t seed, std::size_t index) {
  Rng rng = make_stream(seed, index);
  ModelInputs inputs;
  inputs.target_loss = 1e-4 + rng.uniform() * 0.2;
  const double base_watts = rng.uniform(100.0, 300.0);
  const double max_watts = base_watts * rng.uniform(1.05, 1.5);
  inputs.dedicated_power = {base_watts, max_watts, dc::Platform::kNativeLinux};
  inputs.consolidated_power = {base_watts, max_watts, dc::Platform::kXen};
  const std::size_t service_count = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < service_count; ++i) {
    dc::ServiceSpec service;
    service.name = "svc" + std::to_string(i);
    service.arrival_rate = rng.uniform(0.5, 500.0);
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      if (rng.bernoulli(0.5)) {
        continue;
      }
      any = true;
      service.demand(resource, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    if (!any) {
      service.demand(dc::Resource::kCpu, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    inputs.services.push_back(std::move(service));
  }
  return inputs;
}

/// The reference machine as a ServerClass, wattage pair matching `inputs`.
dc::ServerClass reference_class(const ModelInputs& inputs,
                                std::uint64_t count) {
  dc::PowerModel power;
  power.base_watts = inputs.dedicated_power.base_watts;
  power.max_watts = inputs.dedicated_power.max_watts;
  return dc::ServerClass::reference("reference", power, count);
}

dc::ServerClass fast_class(std::string name, double speed,
                           std::uint64_t count) {
  dc::ServerClass cls;
  cls.name = std::move(name);
  for (const dc::Resource resource : dc::all_resources()) {
    cls.capacity[resource] = speed;
  }
  cls.count = count;
  return cls;
}

void expect_core_identical(const ModelResult& a, const ModelResult& b) {
  EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
  EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
  EXPECT_EQ(a.consolidated_blocking, b.consolidated_blocking);
  EXPECT_EQ(a.dedicated_utilization, b.dedicated_utilization);
  EXPECT_EQ(a.consolidated_utilization, b.consolidated_utilization);
  EXPECT_EQ(a.utilization_improvement, b.utilization_improvement);
  EXPECT_EQ(a.infrastructure_saving, b.infrastructure_saving);
}

TEST(FleetModelTest, SingleReferenceClassIsBitIdenticalAcross1000Scenarios) {
  constexpr std::size_t kScenarios = 1000;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const ModelInputs plain = random_inputs(41, i);
    ModelInputs with_fleet = plain;
    with_fleet.fleet.add(
        reference_class(plain, dc::ServerClass::kUnbounded));

    const ModelResult baseline = UtilityAnalyticModel(plain).solve();
    const ModelResult fleet = UtilityAnalyticModel(with_fleet).solve();

    // Staffing, blocking, and utilization: identical by construction.
    expect_core_identical(baseline, fleet);
    // Power: the reference class carries the same wattage pair as the
    // scenario, so the per-class recomputation lands on the same bits.
    EXPECT_EQ(baseline.dedicated_power_watts, fleet.dedicated_power_watts);
    EXPECT_EQ(baseline.consolidated_power_watts,
              fleet.consolidated_power_watts);
    EXPECT_EQ(baseline.power_ratio, fleet.power_ratio);
    EXPECT_EQ(baseline.power_saving, fleet.power_saving);

    // The fleet plan itself: one class of speed 1 absorbs exactly M and N.
    EXPECT_FALSE(baseline.fleet.planned);
    ASSERT_TRUE(fleet.fleet.planned);
    ASSERT_EQ(fleet.fleet.classes.size(), 1u);
    EXPECT_TRUE(fleet.fleet.dedicated_feasible);
    EXPECT_TRUE(fleet.fleet.consolidated_feasible);
    EXPECT_EQ(fleet.fleet.dedicated_total(), baseline.dedicated_servers);
    EXPECT_EQ(fleet.fleet.consolidated_total(),
              baseline.consolidated_servers);
  }
}

TEST(FleetModelTest, AddingAClassNeverIncreasesPhysicalServerCounts) {
  constexpr std::size_t kScenarios = 200;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const ModelInputs plain = random_inputs(43, i);

    ModelInputs reference_only = plain;
    reference_only.fleet.add(
        reference_class(plain, dc::ServerClass::kUnbounded));
    ModelInputs with_fast = plain;
    with_fast.fleet.add(reference_class(plain, dc::ServerClass::kUnbounded));
    with_fast.fleet.add(
        fast_class("new-gen", 2.5, dc::ServerClass::kUnbounded));

    const ModelResult before = UtilityAnalyticModel(reference_only).solve();
    const ModelResult after = UtilityAnalyticModel(with_fast).solve();
    ASSERT_TRUE(before.fleet.planned);
    ASSERT_TRUE(after.fleet.planned);
    EXPECT_LE(after.fleet.dedicated_total(), before.fleet.dedicated_total());
    EXPECT_LE(after.fleet.consolidated_total(),
              before.fleet.consolidated_total());
    // Unbounded fleets are always feasible.
    EXPECT_TRUE(after.fleet.dedicated_feasible);
    EXPECT_TRUE(after.fleet.consolidated_feasible);
    // And the staffing answer in reference units never moved at all.
    expect_core_identical(before, after);
  }
}

TEST(FleetModelTest, FastestClassFillsFirstThenSpillsToSlower) {
  ModelInputs inputs = random_inputs(47, 0);
  inputs.fleet.add(fast_class("old-gen", 1.0, dc::ServerClass::kUnbounded));
  inputs.fleet.add(fast_class("new-gen", 2.0, 1));

  const ModelResult result = UtilityAnalyticModel(inputs).solve();
  ASSERT_TRUE(result.fleet.planned);
  ASSERT_EQ(result.fleet.classes.size(), 2u);
  const ClassAllocation& old_gen = result.fleet.classes[0];
  const ClassAllocation& new_gen = result.fleet.classes[1];
  const std::uint64_t m = result.dedicated_servers;
  ASSERT_GE(m, 1u);
  // The single speed-2 machine goes first; old-gen covers the remainder.
  EXPECT_EQ(new_gen.dedicated_servers, 1u);
  EXPECT_EQ(old_gen.dedicated_servers, m >= 2 ? m - 2 : 0);
  EXPECT_TRUE(result.fleet.dedicated_feasible);
}

TEST(FleetModelTest, BoundedFleetReportsShortfallInsteadOfLying) {
  ModelInputs inputs = random_inputs(53, 1);
  // First find how many reference servers the scenario actually needs.
  const ModelResult sized = UtilityAnalyticModel(inputs).solve();
  ASSERT_GE(sized.dedicated_servers, 1u);

  inputs.fleet.add(reference_class(inputs, 0));
  const ModelResult result = UtilityAnalyticModel(inputs).solve();
  ASSERT_TRUE(result.fleet.planned);
  EXPECT_FALSE(result.fleet.dedicated_feasible);
  EXPECT_FALSE(result.fleet.consolidated_feasible);
  EXPECT_EQ(result.fleet.dedicated_shortfall,
            static_cast<double>(sized.dedicated_servers));
  EXPECT_EQ(result.fleet.consolidated_shortfall,
            static_cast<double>(sized.consolidated_servers));
  EXPECT_EQ(result.fleet.dedicated_total(), 0u);
  // The reference-unit staffing answers are untouched by infeasibility.
  EXPECT_EQ(result.dedicated_servers, sized.dedicated_servers);
}

TEST(FleetModelTest, BatchEvaluationMatchesScalarSolveWithFleets) {
  constexpr std::size_t kScenarios = 64;
  ScenarioBatch batch;
  std::vector<ModelInputs> all;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    ModelInputs inputs = random_inputs(59, i);
    if (i % 3 != 0) {  // mix fleetless scenarios into the same batch
      inputs.fleet.add(reference_class(inputs, dc::ServerClass::kUnbounded));
      inputs.fleet.add(fast_class("gen" + std::to_string(i % 5),
                                  1.0 + 0.5 * static_cast<double>(i % 4),
                                  (i % 2 == 0) ? 3 : dc::ServerClass::kUnbounded));
    }
    batch.append(inputs);
    all.push_back(std::move(inputs));
  }

  const BatchOutcome outcome = BatchEvaluator().evaluate_all(batch);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const ModelResult scalar = UtilityAnalyticModel(all[i]).solve();
    const ModelResult& batched = outcome.results[i];
    expect_core_identical(scalar, batched);
    EXPECT_EQ(scalar.dedicated_power_watts, batched.dedicated_power_watts);
    EXPECT_EQ(scalar.consolidated_power_watts,
              batched.consolidated_power_watts);
    ASSERT_EQ(scalar.fleet.planned, batched.fleet.planned);
    ASSERT_EQ(scalar.fleet.classes.size(), batched.fleet.classes.size());
    for (std::size_t c = 0; c < scalar.fleet.classes.size(); ++c) {
      const ClassAllocation& a = scalar.fleet.classes[c];
      const ClassAllocation& b = batched.fleet.classes[c];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.speed, b.speed);
      EXPECT_EQ(a.available, b.available);
      EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
      EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
      EXPECT_EQ(a.dedicated_power_watts, b.dedicated_power_watts);
      EXPECT_EQ(a.consolidated_power_watts, b.consolidated_power_watts);
    }
  }
}

TEST(FleetModelTest, ScenarioStoreRoundTripsFleetColumns) {
  const std::string path =
      ::testing::TempDir() + "vmcons_fleet_store_roundtrip.bin";
  std::remove(path.c_str());

  constexpr std::size_t kScenarios = 20;
  ScenarioBatch reference;
  {
    ScenarioStoreWriter writer(path, /*shard_size=*/7);
    for (std::size_t i = 0; i < kScenarios; ++i) {
      ModelInputs inputs = random_inputs(61, i);
      if (i % 4 != 0) {
        inputs.fleet.add(
            reference_class(inputs, dc::ServerClass::kUnbounded));
        inputs.fleet.add(fast_class("boxy", 1.5, i));
      }
      reference.append(inputs);
      writer.append(inputs);
    }
    writer.finish();
  }

  ScenarioStore store(path);
  EXPECT_EQ(store.format_version(), 2u);
  std::size_t begin = 0;
  for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
    const ScenarioBatch loaded = store.read_shard(shard);
    for (std::size_t s = 0; s < loaded.size(); ++s) {
      SCOPED_TRACE("scenario " + std::to_string(begin + s));
      const std::size_t global = begin + s;
      const std::size_t local_classes =
          loaded.classes_end(s) - loaded.classes_begin(s);
      const std::size_t global_classes =
          reference.classes_end(global) - reference.classes_begin(global);
      ASSERT_EQ(local_classes, global_classes);
      for (std::size_t c = 0; c < local_classes; ++c) {
        const std::size_t lr = loaded.classes_begin(s) + c;
        const std::size_t gr = reference.classes_begin(global) + c;
        EXPECT_EQ(loaded.class_name(lr), reference.class_name(gr));
        EXPECT_EQ(loaded.class_base_watts()[lr],
                  reference.class_base_watts()[gr]);
        EXPECT_EQ(loaded.class_max_watts()[lr],
                  reference.class_max_watts()[gr]);
        EXPECT_EQ(loaded.class_available()[lr],
                  reference.class_available()[gr]);
        EXPECT_EQ(loaded.class_speed()[lr], reference.class_speed()[gr]);
        for (const dc::Resource resource : dc::all_resources()) {
          EXPECT_EQ(loaded.class_capacity(resource)[lr],
                    reference.class_capacity(resource)[gr]);
        }
      }
    }
    begin += loaded.size();
  }
  EXPECT_EQ(begin, kScenarios);
  std::remove(path.c_str());
}

TEST(FleetModelTest, SweepFleetMixAxisVariesSlowest) {
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01).add_service(web).add_service(db);

  dc::Fleet fleet;
  fleet.add(dc::ServerClass::reference("old-gen"));
  fleet.add(fast_class("new-gen", 2.0, dc::ServerClass::kUnbounded));
  planner.set_fleet(fleet);

  SweepGrid grid;
  grid.target_losses({0.01, 0.001})
      .fleet_mixes({{dc::ServerClass::kUnbounded, 0},
                    {0, dc::ServerClass::kUnbounded}});
  ASSERT_EQ(grid.size(), 4u);
  // Mix is the slowest axis: points 0-1 use mix 0, points 2-3 use mix 1.
  EXPECT_EQ(grid.point(1).fleet_mix->front(), dc::ServerClass::kUnbounded);
  EXPECT_EQ(grid.point(2).fleet_mix->front(), 0u);

  const std::vector<SweepCell> cells = planner.sweep(grid);
  ASSERT_EQ(cells.size(), 4u);
  for (const SweepCell& cell : cells) {
    ASSERT_TRUE(cell.report.model.fleet.planned);
    ASSERT_EQ(cell.report.model.fleet.classes.size(), 2u);
  }
  // Mix 0 staffs only old-gen machines; mix 1 only new-gen (at half count,
  // rounded up, since each covers two reference-equivalents).
  const FleetPlan& only_old = cells[0].report.model.fleet;
  const FleetPlan& only_new = cells[2].report.model.fleet;
  EXPECT_GT(only_old.classes[0].dedicated_servers, 0u);
  EXPECT_EQ(only_old.classes[1].dedicated_servers, 0u);
  EXPECT_EQ(only_new.classes[0].dedicated_servers, 0u);
  EXPECT_GT(only_new.classes[1].dedicated_servers, 0u);
  EXPECT_LE(only_new.dedicated_total(), only_old.dedicated_total());
}

TEST(FleetModelTest, MismatchedFleetMixLengthFailsNamingBothSizes) {
  dc::Fleet fleet;
  fleet.add(dc::ServerClass::reference("solo"));
  try {
    fleet.with_counts({1, 2});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find('1'), std::string::npos) << what;
    EXPECT_NE(what.find('2'), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace vmcons::core
