// Asymptotic identities connecting the queueing solvers to one another —
// the cross-checks that catch sign/off-by-one errors no single-solver test
// can see.
#include <cmath>

#include <gtest/gtest.h>

#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "queueing/staffing.hpp"

namespace vmcons::queueing {
namespace {

TEST(Asymptotics, MmckApproachesErlangCAsBufferGrows) {
  // Stable M/M/c/K -> M/M/c as K -> inf: blocking -> 0 and the mean wait
  // approaches the Erlang-C wait.
  const std::uint64_t c = 4;
  const double lambda = 3.0;
  const double mu = 1.0;
  const double erlang_c_wait = erlang_c_mean_wait(c, lambda, mu);
  double previous_gap = 1e9;
  for (const std::uint64_t buffer : {4ull, 16ull, 64ull, 256ull}) {
    const MmckMetrics metrics = solve_mmck(c, c + buffer, lambda, mu);
    const double gap = std::abs(metrics.mean_wait_time - erlang_c_wait);
    EXPECT_LT(gap, previous_gap);
    previous_gap = gap;
  }
  const MmckMetrics limit = solve_mmck(c, c + 512, lambda, mu);
  EXPECT_NEAR(limit.mean_wait_time, erlang_c_wait, 1e-6);
  EXPECT_LT(limit.blocking, 1e-8);
}

TEST(Asymptotics, ErlangBApproachesUtilizationBoundUnderOverload) {
  // rho >> n: blocking -> 1 - n/rho (all servers busy, carried = n).
  for (const std::uint64_t n : {2ull, 8ull, 32ull}) {
    const double rho = static_cast<double>(n) * 50.0;
    EXPECT_NEAR(erlang_b(n, rho), 1.0 - static_cast<double>(n) / rho, 1e-3);
  }
}

TEST(Asymptotics, ErlangBVanishesUnderLightLoad) {
  // rho << n: blocking ~ rho^n / n! -> essentially zero.
  EXPECT_LT(erlang_b(10, 0.5), 1e-9);
  EXPECT_LT(erlang_b(20, 1.0), 1e-15);
}

TEST(Asymptotics, StaffingEfficiencyGrowsWithScale) {
  // Erlang economies of scale: utilization at fixed B grows with rho.
  double previous = 0.0;
  for (const double rho : {1.0, 10.0, 100.0, 1000.0}) {
    const std::uint64_t n = erlang_b_servers(rho, 0.01);
    const double utilization = rho / static_cast<double>(n);
    EXPECT_GT(utilization, previous) << "rho=" << rho;
    previous = utilization;
  }
  // At 1000 erlangs the pool runs above 90% utilization at 1% loss.
  EXPECT_GT(previous, 0.90);
}

TEST(Asymptotics, CapacityAndStaffingAreConsistentInverses) {
  for (const double b : {0.001, 0.01, 0.1}) {
    for (const std::uint64_t n : {2ull, 8ull, 32ull}) {
      const double rho = erlang_b_capacity(n, b);
      // n servers carry rho at exactly B; staffing that rho returns n.
      EXPECT_EQ(erlang_b_servers(rho * 0.999, b), n);
      EXPECT_EQ(erlang_b_servers(rho * 1.01, b), n + 1);
    }
  }
}

TEST(Asymptotics, HugeBufferStaffingApproachesUtilizationFloor) {
  // With an enormous buffer the loss constraint nearly vanishes and the
  // staffing approaches ceil(rho) + 1 (stability plus a whisker).
  const double lambda = 20.0;
  const double mu = 1.0;
  const std::uint64_t c = staffing_with_queue(lambda, mu, 2000, 0.01);
  // rho = 20: the finite buffer sheds just enough load that even the
  // critically-loaded c = 20 can meet 1%; never below that floor, and far
  // below the 32-server loss-only staffing.
  EXPECT_GE(c, 20u);
  EXPECT_LE(c, 22u);
  EXPECT_LT(c, erlang_b_servers(lambda / mu, 0.01));
}

TEST(Asymptotics, CarriedLoadIsMonotoneAndSaturates) {
  double previous = 0.0;
  for (const double rho : {1.0, 2.0, 4.0, 8.0, 64.0, 1024.0}) {
    const double carried = carried_load(4, rho);
    EXPECT_GE(carried, previous);
    previous = carried;
  }
  EXPECT_NEAR(previous, 4.0, 0.01);  // saturates at the server count
}

}  // namespace
}  // namespace vmcons::queueing
