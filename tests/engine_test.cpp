// Tests for the discrete-event engine: ordering, determinism, horizons.
#include "sim/engine.hpp"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.executed(), 3u);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Engine, EventsScheduleMoreEvents) {
  Engine engine;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) {
      engine.schedule_in(1.0, tick);
    }
  };
  engine.schedule_in(1.0, tick);
  engine.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(Engine, RunUntilStopsAtHorizonAndKeepsLaterEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(10.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_until(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);
}

TEST(Engine, RunUntilAdvancesClockOnEmptyCalendar) {
  Engine engine;
  engine.run_until(42.0);
  EXPECT_DOUBLE_EQ(engine.now(), 42.0);
}

TEST(Engine, StopEndsTheRun) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), InvalidArgument);
  EXPECT_THROW(engine.schedule_in(-1.0, [] {}), InvalidArgument);
}

TEST(Engine, ZeroDelayRunsAtCurrentTime) {
  Engine engine;
  std::vector<double> times;
  engine.schedule_at(1.0, [&] {
    engine.schedule_in(0.0, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
}

}  // namespace
}  // namespace vmcons::sim
