// Behavioural tests for the workload drivers: determinism, closed-loop
// identities (Little's law), and goodput accounting — the properties that
// make bench results trustworthy run-to-run.
#include <gtest/gtest.h>

#include "workload/httperf.hpp"
#include "workload/specweb.hpp"
#include "workload/tpcw.hpp"

namespace vmcons::workload {
namespace {

TEST(DriverDeterminism, HttperfSameStreamSameResult) {
  HttperfConfig config = specweb_diskio_config(2);
  config.duration = 60.0;
  Rng a(221);
  Rng b(221);
  const HttperfPoint first = httperf_run(config, 500.0, a);
  const HttperfPoint second = httperf_run(config, 500.0, b);
  EXPECT_DOUBLE_EQ(first.reply_rate, second.reply_rate);
  EXPECT_DOUBLE_EQ(first.mean_response, second.mean_response);
  EXPECT_DOUBLE_EQ(first.loss, second.loss);
}

TEST(DriverDeterminism, TpcwSweepIndependentOfOtherPoints) {
  // Each sweep point derives its stream from (seed, index): dropping a
  // point must not change the others.
  TpcwConfig config;
  config.vm_count = 2;
  config.duration = 60.0;
  const auto full = tpcw_sweep(config, {100, 500, 900}, 222);
  const auto partial = tpcw_sweep(config, {100, 500}, 222);
  EXPECT_DOUBLE_EQ(full[0].wips, partial[0].wips);
  EXPECT_DOUBLE_EQ(full[1].wips, partial[1].wips);
}

TEST(ClosedLoop, LittleLawHoldsForTpcw) {
  // In a closed system: EBs = WIPS * (think + response) at steady state.
  TpcwConfig config;
  config.vm_count = 2;
  config.duration = 500.0;
  Rng rng(223);
  const unsigned ebs = 800;
  const TpcwPoint point = tpcw_run(config, ebs, rng);
  const double reconstructed =
      point.wips * (config.think_time + point.mean_response);
  EXPECT_NEAR(reconstructed, static_cast<double>(ebs),
              static_cast<double>(ebs) * 0.08);
}

TEST(ClosedLoop, LittleLawHoldsForSpecwebSessions) {
  SpecwebSessionsConfig config;
  config.duration = 400.0;
  config.warmup = 40.0;
  Rng rng(224);
  const unsigned sessions = 1500;
  const auto point = specweb_sessions_run(config, sessions, rng);
  const double reconstructed =
      point.throughput * (config.think_time + point.mean_response);
  // Refused requests retry after another think; at low refusal this is
  // still a tight identity.
  EXPECT_NEAR(reconstructed, static_cast<double>(sessions),
              static_cast<double>(sessions) * 0.1);
}

TEST(Goodput, HttperfLossPlusRepliesAccountForOfferedLoad) {
  HttperfConfig config = specweb_diskio_config(1);
  config.duration = 300.0;
  Rng rng(225);
  const double offered = 900.0;  // well past capacity
  const HttperfPoint point = httperf_run(config, offered, rng);
  // reply_rate + loss*offered ~ offered.
  EXPECT_NEAR(point.reply_rate + point.loss * offered, offered,
              offered * 0.05);
  EXPECT_GT(point.loss, 0.3);  // heavy overload drops a lot
}

TEST(Goodput, ResponseTimeGrowsThroughTheKnee) {
  HttperfConfig config = cached_8kb_cpu_config(2);
  config.duration = 120.0;
  const double capacity = httperf_capacity(config);
  const auto points =
      httperf_sweep(config, {0.3 * capacity, 0.9 * capacity, 1.5 * capacity},
                    226);
  EXPECT_LT(points[0].mean_response, points[1].mean_response);
  EXPECT_LT(points[1].mean_response, points[2].mean_response);
}

TEST(Goodput, WipsUpperLimitIsExact) {
  TpcwConfig config;
  config.think_time = 7.0;
  config.duration = 30.0;
  Rng rng(227);
  const TpcwPoint point = tpcw_run(config, 700, rng);
  EXPECT_DOUBLE_EQ(point.wips_upper_limit, 100.0);
}

}  // namespace
}  // namespace vmcons::workload
