// ScenarioStore: chunked columnar files round-trip ScenarioBatches
// bit-identically, and every corruption mode — flipped payload byte,
// flipped footer byte, truncated file, writer that never finished — is
// rejected loudly instead of feeding garbage to a million-cell sweep.
#include "core/scenario_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/scenario_batch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

/// Random but valid scenarios, fully derived from (seed, index) — the same
/// generator shape the batch determinism suites use.
ModelInputs random_inputs(std::uint64_t seed, std::size_t index) {
  Rng rng = make_stream(seed, index);
  ModelInputs inputs;
  inputs.target_loss = 1e-4 + rng.uniform() * 0.2;
  const std::size_t service_count = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < service_count; ++i) {
    dc::ServiceSpec service;
    service.name = "svc" + std::to_string(i);
    service.arrival_rate = rng.uniform(0.5, 500.0);
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      if (rng.bernoulli(0.5)) {
        continue;
      }
      any = true;
      service.demand(resource, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    if (!any) {
      service.demand(dc::Resource::kCpu, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    inputs.services.push_back(std::move(service));
  }
  return inputs;
}

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "vmcons_store_" + name;
  std::remove(path.c_str());  // drop leftovers of an earlier (failed) run
  return path;
}

/// Bit-exact equality of `shard` against scenarios [begin, begin+n) of the
/// reference batch: every column, including the derived ones.
void expect_shard_matches(const ScenarioBatch& reference,
                          const ScenarioBatch& shard, std::size_t begin) {
  const std::size_t row_offset = reference.services_begin(begin);
  for (std::size_t s = 0; s < shard.size(); ++s) {
    SCOPED_TRACE("scenario " + std::to_string(begin + s));
    const std::size_t global = begin + s;
    EXPECT_EQ(shard.target_loss(s), reference.target_loss(global));
    EXPECT_EQ(shard.vm_count(s), reference.vm_count(global));
    EXPECT_EQ(shard.dedicated_power()[s].base_watts,
              reference.dedicated_power()[global].base_watts);
    EXPECT_EQ(shard.consolidated_power()[s].platform,
              reference.consolidated_power()[global].platform);
    ASSERT_EQ(shard.service_count(s), reference.service_count(global));
    for (std::size_t r = 0; r < shard.service_count(s); ++r) {
      const std::size_t local_row = shard.services_begin(s) + r;
      const std::size_t global_row = reference.services_begin(global) + r;
      EXPECT_EQ(local_row, global_row - row_offset);
      EXPECT_EQ(shard.arrival_rate()[local_row],
                reference.arrival_rate()[global_row]);
      EXPECT_EQ(shard.service_name(local_row),
                reference.service_name(global_row));
      EXPECT_EQ(shard.bottleneck_rate()[local_row],
                reference.bottleneck_rate()[global_row]);
      EXPECT_EQ(shard.effective_rate()[local_row],
                reference.effective_rate()[global_row]);
      for (const dc::Resource resource : dc::all_resources()) {
        EXPECT_EQ(shard.native_rate(resource)[local_row],
                  reference.native_rate(resource)[global_row]);
        EXPECT_EQ(shard.impact(resource)[local_row],
                  reference.impact(resource)[global_row]);
      }
    }
  }
}

/// Writes `count` generated scenarios with the given shard size, returning
/// the finish() summary.
ScenarioStoreWriter::Summary write_store(const std::string& path,
                                         std::size_t count,
                                         std::size_t shard_size,
                                         std::uint64_t seed = 7) {
  ScenarioStoreWriter writer(path, shard_size);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(writer.append(random_inputs(seed, i)), i);
  }
  return writer.finish();
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x5a;
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(ScenarioStore, WriteReadRoundTripIsBitIdentical) {
  const std::string path = temp_path("roundtrip.bin");
  constexpr std::size_t kScenarios = 23;
  constexpr std::size_t kShardSize = 5;
  const auto summary = write_store(path, kScenarios, kShardSize);
  EXPECT_EQ(summary.scenarios, kScenarios);
  EXPECT_EQ(summary.shards, 5u);  // 4 full shards + one of 3

  std::vector<ModelInputs> inputs;
  for (std::size_t i = 0; i < kScenarios; ++i) {
    inputs.push_back(random_inputs(7, i));
  }
  const ScenarioBatch reference = ScenarioBatch::from_inputs(inputs);

  const ScenarioStore store(path);
  EXPECT_EQ(store.scenario_count(), kScenarios);
  ASSERT_EQ(store.shard_count(), 5u);
  EXPECT_EQ(store.checksum(), summary.checksum);
  std::size_t seen = 0;
  for (std::size_t i = 0; i < store.shard_count(); ++i) {
    const ShardInfo& info = store.shard(i);
    EXPECT_EQ(info.scenario_begin, seen);
    const ScenarioBatch shard = store.read_shard(i);
    EXPECT_EQ(shard.size(), info.scenarios);
    EXPECT_EQ(shard.service_rows(), info.service_rows);
    expect_shard_matches(reference, shard, seen);
    seen += shard.size();
  }
  EXPECT_EQ(seen, kScenarios);
  std::remove(path.c_str());
}

TEST(ScenarioStore, ExactShardMultipleHasNoRaggedTail) {
  const std::string path = temp_path("exact.bin");
  const auto summary = write_store(path, 12, 4);
  EXPECT_EQ(summary.shards, 3u);
  const ScenarioStore store(path);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(store.shard(i).scenarios, 4u);
  }
  std::remove(path.c_str());
}

TEST(ScenarioStore, RejectsCorruptedShardPayload) {
  const std::string path = temp_path("corrupt_shard.bin");
  write_store(path, 10, 4);
  const ScenarioStore store(path);
  // Flip one byte inside shard 1's payload: open still succeeds (the footer
  // is intact) but reading that shard must fail its checksum.
  flip_byte(path, store.shard(1).offset + store.shard(1).bytes / 2);
  EXPECT_NO_THROW(store.read_shard(0));
  try {
    store.read_shard(1);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("shard 1"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ScenarioStore, RejectsCorruptedFooter) {
  const std::string path = temp_path("corrupt_footer.bin");
  write_store(path, 10, 4);
  // The footer sits between the last shard payload and the 32-byte trailer.
  const std::uint64_t file_bytes = std::filesystem::file_size(path);
  flip_byte(path, file_bytes - 32 - 8);
  EXPECT_THROW(ScenarioStore{path}, IoError);
  std::remove(path.c_str());
}

TEST(ScenarioStore, RejectsTruncatedFile) {
  const std::string path = temp_path("truncated.bin");
  write_store(path, 10, 4);
  const std::uint64_t file_bytes = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, file_bytes - 7);
  EXPECT_THROW(ScenarioStore{path}, IoError);
  std::remove(path.c_str());
}

TEST(ScenarioStore, RejectsUnfinishedWriterOutput) {
  const std::string path = temp_path("unfinished.bin");
  {
    ScenarioStoreWriter writer(path, 4);
    for (std::size_t i = 0; i < 10; ++i) {
      writer.append(random_inputs(7, i));
    }
    // No finish(): simulates a writer killed mid-build.
  }
  EXPECT_THROW(ScenarioStore{path}, IoError);
  std::remove(path.c_str());
}

TEST(ScenarioStore, RejectsMissingFileAndBadShardIndex) {
  EXPECT_THROW(ScenarioStore{temp_path("never_written.bin")}, IoError);
  const std::string path = temp_path("index.bin");
  write_store(path, 4, 2);
  const ScenarioStore store(path);
  EXPECT_THROW(store.shard(2), InvalidArgument);
  EXPECT_THROW(store.read_shard(99), InvalidArgument);
  std::remove(path.c_str());
}

TEST(ScenarioStore, WriterRejectsZeroShardSize) {
  EXPECT_THROW(ScenarioStoreWriter(temp_path("zero.bin"), 0), InvalidArgument);
}

TEST(ScenarioBatchColumns, FromColumnsRejectsInconsistentColumns) {
  const ScenarioBatch reference =
      ScenarioBatch::from_inputs(std::vector<ModelInputs>{random_inputs(7, 0)});

  // A minimal valid Columns set, derived from a real batch via accessors.
  const auto make_columns = [&reference] {
    ScenarioBatch::Columns columns;
    columns.target_loss = {reference.target_loss(0)};
    columns.vm_count = {reference.vm_count(0)};
    columns.dedicated_power = {reference.dedicated_power()[0]};
    columns.consolidated_power = {reference.consolidated_power()[0]};
    columns.row_begin = {0, reference.service_rows()};
    const auto rows = reference.service_rows();
    for (std::size_t row = 0; row < rows; ++row) {
      columns.arrival_rate.push_back(reference.arrival_rate()[row]);
      columns.bottleneck_rate.push_back(reference.bottleneck_rate()[row]);
      columns.effective_rate.push_back(reference.effective_rate()[row]);
      columns.service_name.push_back(reference.service_name(row));
      for (const dc::Resource resource : dc::all_resources()) {
        const auto r = static_cast<std::size_t>(resource);
        columns.native_rate[r].push_back(reference.native_rate(resource)[row]);
        columns.impact[r].push_back(reference.impact(resource)[row]);
      }
    }
    return columns;
  };

  EXPECT_NO_THROW(ScenarioBatch::from_columns(make_columns()));

  auto bad_offsets = make_columns();
  bad_offsets.row_begin.back() += 1;  // offsets disagree with column lengths
  EXPECT_THROW(ScenarioBatch::from_columns(std::move(bad_offsets)),
               InvalidArgument);

  auto bad_loss = make_columns();
  bad_loss.target_loss[0] = 1.5;
  EXPECT_THROW(ScenarioBatch::from_columns(std::move(bad_loss)),
               InvalidArgument);

  auto bad_rows = make_columns();
  bad_rows.arrival_rate.pop_back();
  EXPECT_THROW(ScenarioBatch::from_columns(std::move(bad_rows)),
               InvalidArgument);

  auto bad_counts = make_columns();
  bad_counts.vm_count.push_back(2);  // scenario columns disagree
  EXPECT_THROW(ScenarioBatch::from_columns(std::move(bad_counts)),
               InvalidArgument);
}

}  // namespace
}  // namespace vmcons::core
