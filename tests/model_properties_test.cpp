// Parameterized property sweeps over the utility analytic model: invariants
// that must hold across the whole (B, workload scale, impact) grid, not
// just at the case-study points.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/accuracy.hpp"
#include "core/model.hpp"
#include "queueing/erlang.hpp"
#include "util/error.hpp"

namespace vmcons::core {
namespace {

ModelInputs inputs_for(double b, double scale) {
  ModelInputs inputs;
  inputs.target_loss = b;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01) * scale;
  db.arrival_rate = intensive_workload(db, 3, 0.01) * scale;
  inputs.services = {web, db};
  return inputs;
}

using GridPoint = std::tuple<double, double>;  // (B, scale)

class ModelGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelGrid, StaffingMeetsTargetAndIsMinimal) {
  const auto [b, scale] = GetParam();
  UtilityAnalyticModel model(inputs_for(b, scale));
  const ModelResult result = model.solve();
  EXPECT_LE(result.consolidated_blocking, b);
  if (result.consolidated_servers > 0) {
    EXPECT_GT(model.consolidated_loss(result.consolidated_servers - 1), b);
  }
  for (const auto& plan : result.dedicated) {
    EXPECT_LE(plan.blocking, b) << plan.name;
  }
}

TEST_P(ModelGrid, ConsolidationSavesOrMatchesServers) {
  const auto [b, scale] = GetParam();
  const ModelResult result =
      UtilityAnalyticModel(inputs_for(b, scale)).solve();
  // Even with the case-study overheads, merging two loss streams never
  // costs MORE than 1 extra server over the dedicated total in this domain,
  // and typically saves ~half.
  EXPECT_LE(result.consolidated_servers, result.dedicated_servers + 1);
}

TEST_P(ModelGrid, UtilizationAndPowerAreConsistent) {
  const auto [b, scale] = GetParam();
  const ModelResult result =
      UtilityAnalyticModel(inputs_for(b, scale)).solve();
  EXPECT_GT(result.dedicated_utilization, 0.0);
  EXPECT_GT(result.consolidated_utilization, result.dedicated_utilization);
  // Power per server is bounded by the model's [idle, max] envelope.
  const double per_server_d =
      result.dedicated_power_watts / result.dedicated_servers;
  EXPECT_GE(per_server_d, 249.99);
  EXPECT_LE(per_server_d, 292.51);
  // Power ratio and infrastructure saving relate monotonically: fewer
  // consolidated servers cannot increase the power ratio above 1.
  EXPECT_LT(result.power_ratio, 1.0);
}

TEST_P(ModelGrid, FixedPointIsAtLeastAsPessimisticAsTheModel) {
  const auto [b, scale] = GetParam();
  const ModelInputs inputs = inputs_for(b, scale);
  UtilityAnalyticModel model(inputs);
  const ModelResult result = model.solve();
  const auto fixed_point =
      reduced_load_consolidated_loss(inputs, result.consolidated_servers);
  ASSERT_TRUE(fixed_point.converged);
  // Eq. (4)'s arithmetic rate averaging is optimistic: the coupled
  // estimate is never lower than ~the model's (small tolerance for the
  // thinning effect at very high blocking).
  EXPECT_GE(fixed_point.overall_blocking,
            result.consolidated_blocking * 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGrid,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.2),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0)));

class ScalePoint : public ::testing::TestWithParam<double> {};

TEST_P(ScalePoint, StaffingIsMonotoneInLoad) {
  const double scale = GetParam();
  const ModelResult smaller =
      UtilityAnalyticModel(inputs_for(0.01, scale)).solve();
  const ModelResult larger =
      UtilityAnalyticModel(inputs_for(0.01, scale * 1.5)).solve();
  EXPECT_GE(larger.dedicated_servers, smaller.dedicated_servers);
  EXPECT_GE(larger.consolidated_servers, smaller.consolidated_servers);
}

TEST_P(ScalePoint, EconomiesOfScaleInUtilization) {
  // Bigger pools run hotter at the same loss target (Erlang economies).
  const double scale = GetParam();
  const ModelResult smaller =
      UtilityAnalyticModel(inputs_for(0.01, scale)).solve();
  const ModelResult larger =
      UtilityAnalyticModel(inputs_for(0.01, scale * 4.0)).solve();
  EXPECT_GT(larger.consolidated_utilization,
            smaller.consolidated_utilization);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScalePoint,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

class ImpactPoint : public ::testing::TestWithParam<double> {};

TEST_P(ImpactPoint, WorseImpactNeverShrinksThePlan) {
  const double factor = GetParam();
  ModelInputs degraded = inputs_for(0.01, 1.0);
  for (auto& service : degraded.services) {
    for (const dc::Resource resource : dc::all_resources()) {
      if (service.native_rates[resource] > 0.0) {
        service.impacts[static_cast<std::size_t>(resource)] =
            virt::Impact::constant(factor);
      }
    }
  }
  ModelInputs ideal = degraded;
  for (auto& service : ideal.services) {
    for (auto& impact : service.impacts) {
      impact = virt::Impact::none();
    }
  }
  const ModelResult with_overhead = UtilityAnalyticModel(degraded).solve();
  const ModelResult without = UtilityAnalyticModel(ideal).solve();
  EXPECT_GE(with_overhead.consolidated_servers,
            without.consolidated_servers)
      << "factor=" << factor;
  // Dedicated staffing ignores virtualization entirely.
  EXPECT_EQ(with_overhead.dedicated_servers, without.dedicated_servers);
}

INSTANTIATE_TEST_SUITE_P(Factors, ImpactPoint,
                         ::testing::Values(0.3, 0.5, 0.65, 0.8, 0.95));

}  // namespace
}  // namespace vmcons::core
