// Fault-tolerant run control: cancellation, deadlines, quarantine, and
// deterministic fault injection across the batch/sweep stack.
//
// The invariants enforced here:
//   * cancellation latency is bounded by one parallel_for chunk (exact on
//     the serial inline path);
//   * an expired Deadline aborts a batch with batch.deadline_exceeded
//     incremented and no tasks left in the pool queue;
//   * under FailurePolicy::kQuarantine the healthy cells of a faulty batch
//     are bit-identical to a clean run, and the failure report names
//     exactly the injected cells;
//   * fault-injected runs replay bit-identically across 1/2/8 workers,
//     because every fault draw derives from the work unit, never the thread.
//
// The fault seed is overridable via VMCONS_FAULT_SEED (scripts/tier1.sh
// pins it) so a red fault run can be replayed exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/batch_eval.hpp"
#include "core/model.hpp"
#include "core/planner.hpp"
#include "core/scenario_batch.hpp"
#include "core/validation.hpp"
#include "queueing/erlang_kernel.hpp"
#include "queueing/staffing.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "util/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/run_control.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::core {
namespace {

using util::FaultInjector;
using util::ScopedFaults;
namespace sites = util::fault_sites;

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("VMCONS_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2009;
}

/// Same generator shape as batch_determinism_test: random but valid
/// scenarios, fully derived from (seed, index).
ModelInputs random_inputs(std::uint64_t seed, std::size_t index) {
  Rng rng = make_stream(seed, index);
  ModelInputs inputs;
  inputs.target_loss = 1e-4 + rng.uniform() * 0.2;
  const std::size_t service_count = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < service_count; ++i) {
    dc::ServiceSpec service;
    service.name = "svc" + std::to_string(i);
    service.arrival_rate = rng.uniform(0.5, 500.0);
    bool any = false;
    for (const dc::Resource resource : dc::all_resources()) {
      if (rng.bernoulli(0.5)) {
        continue;
      }
      any = true;
      service.demand(resource, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    if (!any) {
      service.demand(dc::Resource::kCpu, rng.uniform(1.0, 2000.0),
                     virt::Impact::constant(rng.uniform(0.05, 1.0)));
    }
    inputs.services.push_back(std::move(service));
  }
  return inputs;
}

ScenarioBatch random_batch(std::uint64_t seed, std::size_t count) {
  std::vector<ModelInputs> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(random_inputs(seed, i));
  }
  return ScenarioBatch::from_inputs(inputs);
}

void expect_identical(const ModelResult& a, const ModelResult& b,
                      std::size_t index) {
  SCOPED_TRACE("scenario " + std::to_string(index));
  ASSERT_EQ(a.dedicated.size(), b.dedicated.size());
  for (std::size_t i = 0; i < a.dedicated.size(); ++i) {
    EXPECT_EQ(a.dedicated[i].servers, b.dedicated[i].servers);
    EXPECT_EQ(a.dedicated[i].blocking, b.dedicated[i].blocking);
  }
  EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
  EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
  EXPECT_EQ(a.consolidated_blocking, b.consolidated_blocking);
  EXPECT_EQ(a.dedicated_utilization, b.dedicated_utilization);
  EXPECT_EQ(a.consolidated_utilization, b.consolidated_utilization);
  EXPECT_EQ(a.utilization_improvement, b.utilization_improvement);
  EXPECT_EQ(a.dedicated_power_watts, b.dedicated_power_watts);
  EXPECT_EQ(a.consolidated_power_watts, b.consolidated_power_watts);
  EXPECT_EQ(a.power_saving, b.power_saving);
  EXPECT_EQ(a.infrastructure_saving, b.infrastructure_saving);
}

/// A small planner whose sweep cells are individually cheap.
ConsolidationPlanner small_planner() {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web;
  web.name = "web";
  web.arrival_rate = 120.0;
  web.demand(dc::Resource::kCpu, 180.0, virt::Impact::constant(0.8));
  web.demand(dc::Resource::kNetwork, 400.0, virt::Impact::constant(0.9));
  planner.add_service(web);
  dc::ServiceSpec db;
  db.name = "db";
  db.arrival_rate = 60.0;
  db.demand(dc::Resource::kCpu, 90.0, virt::Impact::constant(0.75));
  db.demand(dc::Resource::kDiskIo, 150.0, virt::Impact::constant(0.7));
  planner.add_service(db);
  return planner;
}

// --- RunControl primitives ----------------------------------------------

TEST(RunControl, TokenCopiesShareOneStickyFlag) {
  CancelToken token;
  const CancelToken copy = token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(copy.cancelled());
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  copy.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
  CancelToken fresh;  // new token, new state
  EXPECT_FALSE(fresh.cancelled());
}

TEST(RunControl, UnsetDeadlineNeverExpires) {
  const Deadline unset;
  EXPECT_FALSE(unset.is_set());
  EXPECT_FALSE(unset.expired());
  EXPECT_FALSE(unset.remaining().has_value());
}

TEST(RunControl, DeadlineExpiryAndRemaining) {
  const Deadline past = Deadline::after(std::chrono::milliseconds(-10));
  EXPECT_TRUE(past.is_set());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining().value(), Deadline::Clock::duration::zero());
  const Deadline future = Deadline::after(std::chrono::hours(1));
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining().value(), Deadline::Clock::duration::zero());
}

TEST(RunControl, RaiseIfStoppedCarriesCodesAndContext) {
  RunControl control;
  EXPECT_EQ(control.stop_reason(), StopReason::kNone);
  EXPECT_NO_THROW(control.raise_if_stopped("idle"));

  RunControl expired;
  expired.deadline = Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_EQ(expired.stop_reason(), StopReason::kDeadlineExceeded);
  try {
    expired.raise_if_stopped("the sweep");
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_NE(std::string(error.what()).find("the sweep"), std::string::npos);
  }

  // Cancellation outranks deadline expiry when both hold.
  expired.token.cancel();
  EXPECT_EQ(expired.stop_reason(), StopReason::kCancelled);
  try {
    expired.raise_if_stopped("the sweep");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kCancelled);
  }
}

TEST(RunControl, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kFaultInjected), "fault_injected");
}

// --- parallel_for / parallel_map cancellation ---------------------------

TEST(RunControl, ParallelForCancelStopsWithinOneChunk) {
  constexpr std::size_t kCount = 100000;
  constexpr std::size_t kGrain = 64;
  constexpr std::size_t kThreshold = 200;
  ThreadPool pool(2);
  RunControl control;
  std::atomic<std::size_t> executed{0};
  parallel_for(
      kCount,
      [&](std::size_t) {
        if (executed.fetch_add(1, std::memory_order_relaxed) + 1 ==
            kThreshold) {
          control.token.cancel();
        }
      },
      pool, kGrain, &control);
  // After the cancel, each in-flight chunk finishes at most its own grain;
  // +1 chunk of slack for a chunk that passed its gate just before the flag
  // flipped. Without the stop this loop would run all 100000 iterations.
  EXPECT_GE(executed.load(), kThreshold);
  EXPECT_LE(executed.load(), kThreshold + (pool.size() + 1) * kGrain);
  EXPECT_EQ(pool.queued(), 0u);  // aborted chunks were joined, not leaked
}

TEST(RunControl, ParallelForInlinePathCancelsExactly) {
  ThreadPool pool(1);  // single worker: the serial inline path
  RunControl control;
  std::size_t executed = 0;
  parallel_for(
      1000,
      [&](std::size_t i) {
        ++executed;
        if (i == 41) {
          control.token.cancel();
        }
      },
      pool, 0, &control);
  // The inline path checks between every iteration: i = 0..41 ran.
  EXPECT_EQ(executed, 42u);
}

TEST(RunControl, ParallelMapThrowsOnUnfilledSlots) {
  ThreadPool pool(2);
  RunControl control;
  control.token.cancel();
  EXPECT_THROW(parallel_map(
                   64, [](std::size_t i) { return i; }, pool, 4, &control),
               CancelledError);

  RunControl expired;
  expired.deadline = Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_THROW(parallel_map(
                   64, [](std::size_t i) { return i; }, pool, 4, &expired),
               DeadlineExceededError);
}

TEST(RunControl, ParallelForWithoutControlRunsToCompletion) {
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  parallel_for(
      1000, [&](std::size_t) { executed.fetch_add(1); }, pool);
  EXPECT_EQ(executed.load(), 1000u);
}

// --- Batch cancellation / deadlines -------------------------------------

TEST(RunControl, BatchExpiredDeadlineAbortsCleanly) {
  const ScenarioBatch batch = random_batch(0xdead, 64);
  ThreadPool pool(2);
  queueing::ErlangKernel kernel;
  BatchOptions options;
  options.kernel = &kernel;
  options.pool = &pool;
  options.control.deadline = Deadline::after(std::chrono::milliseconds(-1));

  auto& counter =
      metrics::registry().counter(metrics::names::kBatchDeadlineExceeded);
  const std::uint64_t before = counter.value();
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);
  EXPECT_TRUE(outcome.deadline_exceeded);
  EXPECT_FALSE(outcome.cancelled);
  EXPECT_FALSE(outcome.complete());
  EXPECT_EQ(outcome.evaluated_count(), 0u);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_EQ(counter.value(), before + 1);
  EXPECT_EQ(pool.queued(), 0u);  // no leaked pool tasks

  // The throwing face reports the same stop as an exception.
  try {
    BatchEvaluator(options).evaluate(batch);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kDeadlineExceeded);
  }
}

TEST(RunControl, BatchPreCancelledCountsCancelMetric) {
  const ScenarioBatch batch = random_batch(0xbeef, 32);
  BatchOptions options;
  options.memoize = false;
  options.control.token.cancel();
  auto& counter = metrics::registry().counter(metrics::names::kBatchCancelled);
  const std::uint64_t before = counter.value();
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);
  EXPECT_TRUE(outcome.cancelled);
  EXPECT_FALSE(outcome.deadline_exceeded);
  EXPECT_EQ(outcome.evaluated_count(), 0u);
  EXPECT_EQ(counter.value(), before + 1);
  EXPECT_THROW(BatchEvaluator(options).evaluate(batch), CancelledError);
}

TEST(RunControl, DeadlineInterruptsDelayedShards) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  // Every shard sleeps 5 ms; 64 one-scenario shards over 2 workers need
  // ~160 ms, far beyond the 20 ms budget — the deadline must fire mid-run.
  FaultInjector::SiteConfig delays;
  delays.delay_rate = 1.0;
  delays.delay = std::chrono::milliseconds(5);
  injector.arm(sites::kBatchShard, delays);

  const ScenarioBatch batch = random_batch(0xf00d, 64);
  ThreadPool pool(2);
  queueing::ErlangKernel kernel;
  BatchOptions options;
  options.kernel = &kernel;
  options.pool = &pool;
  options.shard_size = 1;
  options.control.deadline = Deadline::after(std::chrono::milliseconds(20));
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);
  EXPECT_TRUE(outcome.deadline_exceeded);
  EXPECT_LT(outcome.evaluated_count(), batch.size());
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(RunControl, CrossThreadCancelInterruptsARunningBatch) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig delays;
  delays.delay_rate = 1.0;
  delays.delay = std::chrono::milliseconds(5);
  injector.arm(sites::kBatchShard, delays);

  const ScenarioBatch batch = random_batch(0xcafe, 64);
  ThreadPool pool(2);
  queueing::ErlangKernel kernel;
  BatchOptions options;
  options.kernel = &kernel;
  options.pool = &pool;
  options.shard_size = 1;
  // The caller keeps a copy of the token; the options struct holds another.
  const CancelToken token = options.control.token;
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.cancel();
  });
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);
  canceller.join();
  EXPECT_TRUE(outcome.cancelled);
  EXPECT_LT(outcome.evaluated_count(), batch.size());
  EXPECT_EQ(pool.queued(), 0u);
}

// --- Admission / validation run control ---------------------------------

TEST(RunControl, AdmissionSearchesHonorTheDeadline) {
  const ModelInputs inputs = random_inputs(0xad31, 0);
  RunControl expired;
  expired.deadline = Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_THROW(max_workload_scale(inputs, 16, expired),
               DeadlineExceededError);

  dc::ServiceSpec candidate;
  candidate.name = "newcomer";
  candidate.demand(dc::Resource::kCpu, 50.0, virt::Impact::constant(0.8));
  RunControl cancelled;
  cancelled.token.cancel();
  EXPECT_THROW(admission_headroom(inputs, candidate, 16, cancelled),
               CancelledError);
}

TEST(RunControl, ValidateManyRaisesOnExpiredDeadline) {
  const ModelInputs inputs = random_inputs(0x7a11, 3);
  ValidationOptions options;
  options.replications = 2;
  options.control.deadline = Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_THROW(validate(inputs, options), DeadlineExceededError);
}

// --- FaultInjector ------------------------------------------------------

TEST(FaultInject, ArmRejectsUnknownSitesAndBadRates) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  EXPECT_THROW(injector.arm("no.such.site", {}), InvalidArgument);
  FaultInjector::SiteConfig bad;
  bad.error_rate = 1.5;
  EXPECT_THROW(injector.arm(sites::kBatchCell, bad), InvalidArgument);
  bad.error_rate = -0.1;
  EXPECT_THROW(injector.arm(sites::kBatchCell, bad), InvalidArgument);
  EXPECT_EQ(FaultInjector::known_sites().size(), 7u);
}

TEST(FaultInject, DisarmedInjectorIsInertAndDisabled) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_NO_THROW(injector.check(sites::kBatchCell, 7));
  EXPECT_FALSE(injector.would_fail(sites::kBatchCell, 7));
  FaultInjector::SiteConfig faults;
  faults.error_rate = 1.0;
  injector.arm(sites::kBatchCell, faults);
  EXPECT_TRUE(FaultInjector::enabled());
  // A different site stays inert even while another is armed.
  EXPECT_NO_THROW(injector.check(sites::kErlangEval, 7));
  injector.disarm_all();
  EXPECT_FALSE(FaultInjector::enabled());
}

TEST(FaultInject, DrawsAreDeterministicAndSeedSensitive) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig faults;
  faults.error_rate = 0.1;
  injector.arm(sites::kBatchCell, faults);

  std::vector<bool> first;
  std::size_t failing = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    first.push_back(injector.would_fail(sites::kBatchCell, i));
    failing += first.back();
  }
  // would_fail is a pure function of (seed, site, index).
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(injector.would_fail(sites::kBatchCell, i), first[i]);
  }
  // ~10% of indexes fail (generous bounds: binomial, n = 10000).
  EXPECT_GT(failing, 700u);
  EXPECT_LT(failing, 1300u);
  // check() agrees with would_fail and throws the structured code.
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (first[i]) {
      try {
        injector.check(sites::kBatchCell, i);
        FAIL() << "expected injected fault at index " << i;
      } catch (const NumericError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
      }
    } else {
      EXPECT_NO_THROW(injector.check(sites::kBatchCell, i));
    }
  }
  // A different seed produces a different failure set.
  injector.set_seed(fault_seed() + 1);
  std::size_t differing = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    differing += injector.would_fail(sites::kBatchCell, i) != first[i];
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInject, FaultIndexIsValueDerived) {
  // Same query bits -> same index; different bits -> (almost surely)
  // different index. This is what makes erlang.eval/staffing.inverse faults
  // land on the same query no matter which thread stages it.
  EXPECT_EQ(util::fault_index(12.5, 0.01, 3), util::fault_index(12.5, 0.01, 3));
  EXPECT_NE(util::fault_index(12.5, 0.01, 3), util::fault_index(12.5, 0.01, 4));
  EXPECT_NE(util::fault_index(12.5, 0.01), util::fault_index(12.500001, 0.01));
}

TEST(FaultInject, StaffingSiteFiresInScalarPath) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig faults;
  faults.error_rate = 1.0;
  injector.arm(sites::kStaffingInverse, faults);
  try {
    queueing::staffing_with_queue(100.0, 10.0, 4, 0.01);
    FAIL() << "expected injected fault";
  } catch (const NumericError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
    EXPECT_NE(std::string(error.what()).find("staffing.inverse"),
              std::string::npos);
  }
}

// --- Quarantine ---------------------------------------------------------

TEST(FaultInject, QuarantinedBatchMatchesCleanRunOnHealthyCells) {
  constexpr std::size_t kScenarios = 200;
  const ScenarioBatch batch = random_batch(0x9a4a, kScenarios);

  // Clean reference run (injector disarmed).
  std::vector<ModelResult> clean;
  {
    ScopedFaults guard;
    ThreadPool pool(4);
    queueing::ErlangKernel kernel;
    BatchOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    clean = BatchEvaluator(options).evaluate(batch);
  }

  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig faults;
  faults.error_rate = 0.05;
  injector.arm(sites::kBatchCell, faults);
  std::set<std::size_t> expected;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    if (injector.would_fail(sites::kBatchCell, s)) {
      expected.insert(s);
    }
  }
  ASSERT_FALSE(expected.empty()) << "rate 0.05 over 200 cells drew no faults";

  ThreadPool pool(4);
  queueing::ErlangKernel kernel;
  BatchOptions options;
  options.kernel = &kernel;
  options.pool = &pool;
  options.policy = FailurePolicy::kQuarantine;
  auto& counter =
      metrics::registry().counter(metrics::names::kBatchQuarantined);
  const std::uint64_t before = counter.value();
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);

  EXPECT_FALSE(outcome.cancelled);
  EXPECT_FALSE(outcome.deadline_exceeded);
  EXPECT_EQ(counter.value(), before + expected.size());

  // The failure report is exactly the injected set, in scenario order.
  ASSERT_EQ(outcome.failures.size(), expected.size());
  std::size_t at = 0;
  for (const std::size_t s : expected) {
    const CellFailure& failure = outcome.failures[at++];
    EXPECT_EQ(failure.scenario_index, s);
    EXPECT_EQ(failure.code, ErrorCode::kFaultInjected);
    EXPECT_NE(failure.message.find("batch.cell"), std::string::npos);
  }

  // Healthy cells are bit-identical to the clean run; quarantined cells
  // hold default results.
  ASSERT_EQ(outcome.results.size(), kScenarios);
  for (std::size_t s = 0; s < kScenarios; ++s) {
    if (expected.count(s) != 0) {
      EXPECT_EQ(outcome.evaluated[s], 0);
      EXPECT_EQ(outcome.results[s].consolidated_servers, 0u);
    } else {
      EXPECT_EQ(outcome.evaluated[s], 1);
      expect_identical(outcome.results[s], clean[s], s);
    }
  }
}

TEST(FaultInject, ErlangSiteFaultsAreQuarantinedPerCell) {
  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig faults;
  faults.error_rate = 1.0;  // every Erlang staffing query fails...
  injector.arm(sites::kStaffingInverse, faults);

  const ScenarioBatch batch = random_batch(0xe14a, 24);
  BatchOptions options;
  options.memoize = false;
  options.policy = FailurePolicy::kQuarantine;
  const BatchOutcome outcome = BatchEvaluator(options).evaluate_all(batch);
  // ...so every cell is quarantined, and the batch still returns.
  EXPECT_EQ(outcome.failures.size(), batch.size());
  EXPECT_EQ(outcome.evaluated_count(), 0u);
  for (const CellFailure& failure : outcome.failures) {
    EXPECT_EQ(failure.code, ErrorCode::kFaultInjected);
  }

  // The same arming under kFailFast propagates instead.
  options.policy = FailurePolicy::kFailFast;
  try {
    BatchEvaluator(options).evaluate(batch);
    FAIL() << "expected injected fault to propagate under kFailFast";
  } catch (const NumericError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
  }
}

TEST(FaultInject, FaultRunsAreBitIdenticalAcross1And2And8Workers) {
  constexpr std::size_t kScenarios = 200;
  const ScenarioBatch batch = random_batch(0x1de7, kScenarios);

  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig cell_faults;
  cell_faults.error_rate = 0.03;
  injector.arm(sites::kBatchCell, cell_faults);
  // Shard-level faults exercise the cell-at-a-time retry path; with a fixed
  // shard_size the shard boundaries (hence draws) are worker-independent.
  FaultInjector::SiteConfig shard_faults;
  shard_faults.error_rate = 0.2;
  injector.arm(sites::kBatchShard, shard_faults);

  struct Run {
    BatchOutcome outcome;
  };
  std::vector<Run> runs;
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    queueing::ErlangKernel kernel;
    BatchOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    options.shard_size = 16;  // worker-independent shard boundaries
    options.policy = FailurePolicy::kQuarantine;
    runs.push_back({BatchEvaluator(options).evaluate_all(batch)});
  }

  const BatchOutcome& reference = runs.front().outcome;
  ASSERT_FALSE(reference.failures.empty());
  EXPECT_LT(reference.failures.size(), kScenarios);
  for (std::size_t r = 1; r < runs.size(); ++r) {
    const BatchOutcome& other = runs[r].outcome;
    SCOPED_TRACE("run " + std::to_string(r));
    ASSERT_EQ(other.failures.size(), reference.failures.size());
    for (std::size_t f = 0; f < reference.failures.size(); ++f) {
      EXPECT_EQ(other.failures[f].scenario_index,
                reference.failures[f].scenario_index);
      EXPECT_EQ(other.failures[f].code, reference.failures[f].code);
      EXPECT_EQ(other.failures[f].message, reference.failures[f].message);
    }
    ASSERT_EQ(other.evaluated, reference.evaluated);
    for (std::size_t s = 0; s < kScenarios; ++s) {
      if (reference.evaluated[s] != 0) {
        expect_identical(other.results[s], reference.results[s], s);
      }
    }
  }
}

// --- The sweep acceptance: 10k cells, 1% faults, 1/2/8 workers ----------

TEST(FaultInject, SweepQuarantinesExactlyTheInjectedCellsAt10kScale) {
  const ConsolidationPlanner planner = small_planner();
  std::vector<double> losses;
  for (int i = 0; i < 20; ++i) {
    losses.push_back(0.001 + 0.002 * i);
  }
  std::vector<double> scales;
  for (int i = 0; i < 100; ++i) {
    scales.push_back(0.5 + 0.015 * i);
  }
  const SweepGrid grid = SweepGrid()
                             .target_losses(losses)
                             .workload_scales(scales)
                             .vms_per_server({1, 2, 3, 4, 8});
  ASSERT_EQ(grid.size(), 10000u);

  ScopedFaults guard;
  FaultInjector& injector = FaultInjector::global();
  injector.set_seed(fault_seed());
  FaultInjector::SiteConfig faults;
  faults.error_rate = 0.01;
  injector.arm(sites::kBatchCell, faults);
  std::set<std::size_t> expected;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (injector.would_fail(sites::kBatchCell, i)) {
      expected.insert(i);
    }
  }
  ASSERT_FALSE(expected.empty());

  std::vector<SweepOutcome> outcomes;
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    queueing::ErlangKernel kernel;
    SweepOptions options;
    options.kernel = &kernel;
    options.pool = &pool;
    options.policy = FailurePolicy::kQuarantine;
    outcomes.push_back(planner.sweep_all(grid, options));
  }

  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    const SweepOutcome& outcome = outcomes[r];
    SCOPED_TRACE("run " + std::to_string(r));
    EXPECT_FALSE(outcome.cancelled);
    EXPECT_FALSE(outcome.deadline_exceeded);
    // The 1% injected fault set, exactly — nothing more, nothing less.
    ASSERT_EQ(outcome.failures.size(), expected.size());
    std::size_t at = 0;
    for (const std::size_t i : expected) {
      EXPECT_EQ(outcome.failures[at].scenario_index, i);
      EXPECT_EQ(outcome.failures[at].code, ErrorCode::kFaultInjected);
      ++at;
    }
    ASSERT_EQ(outcome.cells.size(), grid.size());
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
      EXPECT_EQ(outcome.cells[i].evaluated, expected.count(i) == 0);
    }
  }

  // Healthy cells bit-identical across 1/2/8 workers.
  const SweepOutcome& reference = outcomes.front();
  for (std::size_t r = 1; r < outcomes.size(); ++r) {
    const SweepOutcome& other = outcomes[r];
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!reference.cells[i].evaluated) {
        continue;
      }
      expect_identical(other.cells[i].report.model,
                       reference.cells[i].report.model, i);
    }
  }
}

}  // namespace
}  // namespace vmcons::core
