// Tests for the slot-map event calendar: generation-counted EventIds,
// randomized cross-checking against a naive reference calendar, InlineEvent
// move/destruction semantics, and the cross-thread-count determinism the
// slot map must preserve. Suite names start with "Engine" so the
// asan-concurrency preset runs all of them under the sanitizers.
#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datacenter/pool_sim.hpp"
#include "sim/engine.hpp"
#include "sim/inline_event.hpp"
#include "sim/replication.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace vmcons {
namespace {

// ---------------------------------------------------------------------------
// Slot/generation reuse
// ---------------------------------------------------------------------------

TEST(EngineSlotMap, StaleIdCannotCancelRecycledSlot) {
  sim::Engine engine;
  int victim_fired = 0;
  // Occupies slot 0, then frees it.
  const sim::EventId stale = engine.schedule_at(1.0, [] {});
  ASSERT_TRUE(engine.cancel(stale));
  // Recycles slot 0 under a new generation.
  const sim::EventId fresh = engine.schedule_at(2.0, [&] { ++victim_fired; });
  EXPECT_NE(stale, fresh);
  // The stale handle must not evict the slot's new tenant.
  EXPECT_FALSE(engine.cancel(stale));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(victim_fired, 1);
  // Both handles are now dead.
  EXPECT_FALSE(engine.cancel(stale));
  EXPECT_FALSE(engine.cancel(fresh));
}

TEST(EngineSlotMap, StaleIdAfterExecutionCannotCancelRecycledSlot) {
  sim::Engine engine;
  const sim::EventId ran = engine.schedule_at(1.0, [] {});
  engine.run();
  int fired = 0;
  // The executed event's slot is recycled by the next schedule.
  engine.schedule_at(2.0, [&] { ++fired; });
  EXPECT_FALSE(engine.cancel(ran));
  engine.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineSlotMap, GenerationsSurviveHeavySlotChurn) {
  sim::Engine engine;
  std::vector<sim::EventId> stale;
  stale.reserve(5000);
  // Churn one small set of slots through thousands of tenancies.
  for (int round = 0; round < 5000; ++round) {
    stale.push_back(engine.schedule_at(1e6, [] {}));
    ASSERT_TRUE(engine.cancel(stale.back()));
  }
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  for (const sim::EventId id : stale) {
    EXPECT_FALSE(engine.cancel(id));  // every old generation is dead
  }
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.executed(), 1u);
}

// ---------------------------------------------------------------------------
// Randomized interleavings vs a naive reference calendar
// ---------------------------------------------------------------------------

/// Naive reference: a sorted map of (time, sequence) keys to event labels.
/// Trivially correct — no slot reuse, no lazy cancellation, no heap.
class ReferenceCalendar {
 public:
  std::uint64_t schedule_at(double when, int label) {
    const std::uint64_t id = next_sequence_++;
    pending_.emplace(Key{when, id}, label);
    by_id_.emplace(id, Key{when, id});
    return id;
  }

  bool cancel(std::uint64_t id) {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      return false;
    }
    pending_.erase(it->second);
    by_id_.erase(it);
    return true;
  }

  /// Executes everything with time <= horizon in (time, sequence) order,
  /// applying `child` to decide follow-up events exactly like the engine's
  /// closures do.
  template <typename Child>
  void run_until(double horizon, std::vector<std::pair<int, double>>& log,
                 const Child& child) {
    while (!pending_.empty() && pending_.begin()->first.first <= horizon) {
      const auto [key, label] = *pending_.begin();
      pending_.erase(pending_.begin());
      by_id_.erase(key.second);
      log.emplace_back(label, key.first);
      child(*this, label, key.first);
    }
  }

  std::size_t pending() const { return pending_.size(); }

 private:
  using Key = std::pair<double, std::uint64_t>;  // (time, sequence)
  std::map<Key, int> pending_;
  std::map<std::uint64_t, Key> by_id_;
  std::uint64_t next_sequence_ = 0;
};

/// Deterministic follow-up rule applied identically by both calendars: every
/// 7th label spawns one child event half a tick later.
constexpr int kChildBias = 1'000'000;
bool spawns_child(int label) { return label < kChildBias && label % 7 == 0; }

TEST(EngineSlotMap, RandomizedScheduleCancelRescheduleMatchesReference) {
  sim::Engine engine;
  ReferenceCalendar reference;
  std::vector<std::pair<int, double>> engine_log;
  std::vector<std::pair<int, double>> reference_log;
  int next_child_label = kChildBias;
  int next_ref_child_label = kChildBias;

  // The engine closure and the reference child rule must stay in lockstep.
  std::function<void(int)> on_engine_event = [&](int label) {
    engine_log.emplace_back(label, engine.now());
    if (spawns_child(label)) {
      const int child = next_child_label++;
      engine.schedule_in(0.5, [&, child] { on_engine_event(child); });
    }
  };
  const auto reference_child = [&](ReferenceCalendar& cal, int label,
                                   double time) {
    if (spawns_child(label)) {
      cal.schedule_at(time + 0.5, next_ref_child_label++);
    }
  };

  Rng rng(20260806);
  // Outstanding cancellable events, engine id alongside the reference id.
  std::vector<std::pair<sim::EventId, std::uint64_t>> outstanding;
  std::vector<sim::EventId> dead_ids;  // for stale-cancel probes
  int next_label = 0;
  double now = 0.0;

  for (int phase = 0; phase < 800; ++phase) {
    const std::size_t batch = 1 + rng.uniform_index(400);
    for (std::size_t i = 0; i < batch; ++i) {
      // Quantized offsets force (time, sequence) tie-breaking.
      const double when =
          now + 0.25 * static_cast<double>(1 + rng.uniform_index(40));
      const int label = next_label++;
      const sim::EventId engine_id =
          engine.schedule_at(when, [&, label] { on_engine_event(label); });
      const std::uint64_t ref_id = reference.schedule_at(when, label);
      outstanding.emplace_back(engine_id, ref_id);
    }
    // Cancel ~a third of the outstanding handles, in random order. Picks
    // include handles whose events already executed — those must return
    // false on both sides.
    const std::size_t cancels =
        std::min<std::size_t>(outstanding.size() / 3, 300);
    for (std::size_t i = 0; i < cancels; ++i) {
      const std::size_t pick = rng.uniform_index(outstanding.size());
      const auto [engine_id, ref_id] = outstanding[pick];
      outstanding.erase(outstanding.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      const bool engine_ok = engine.cancel(engine_id);
      const bool ref_ok = reference.cancel(ref_id);
      EXPECT_EQ(engine_ok, ref_ok);
      dead_ids.push_back(engine_id);
      if (engine_ok && rng.bernoulli(0.5)) {
        // Reschedule: the cancelled event reappears later under a new label.
        const double when =
            now + 0.25 * static_cast<double>(1 + rng.uniform_index(40));
        const int label = next_label++;
        outstanding.emplace_back(
            engine.schedule_at(when, [&, label] { on_engine_event(label); }),
            reference.schedule_at(when, label));
      }
    }
    // Stale and double cancels must be no-ops on both sides.
    if (!dead_ids.empty()) {
      const sim::EventId stale = dead_ids[rng.uniform_index(dead_ids.size())];
      EXPECT_FALSE(engine.cancel(stale));
    }
    // Advance both calendars over the same window.
    now += 0.25 * static_cast<double>(1 + rng.uniform_index(20));
    engine.run_until(now);
    reference.run_until(now, reference_log, reference_child);
    ASSERT_EQ(engine_log.size(), reference_log.size());
  }

  // Drain everything left.
  engine.run();
  reference.run_until(1e18, reference_log, reference_child);
  ASSERT_GE(engine_log.size(), 100'000u) << "exercise at least 10^5 events";
  ASSERT_EQ(engine_log.size(), reference_log.size());
  for (std::size_t i = 0; i < engine_log.size(); ++i) {
    ASSERT_EQ(engine_log[i].first, reference_log[i].first) << "at " << i;
    ASSERT_DOUBLE_EQ(engine_log[i].second, reference_log[i].second);
  }
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(reference.pending(), 0u);
}

// ---------------------------------------------------------------------------
// InlineEvent storage, move, and destruction
// ---------------------------------------------------------------------------

struct LifeCounters {
  int constructed = 0;
  int destroyed = 0;
  int moves = 0;
  int invoked = 0;
};

template <std::size_t Padding>
struct TrackedCallable {
  explicit TrackedCallable(LifeCounters* c) : counters(c) {
    ++counters->constructed;
  }
  TrackedCallable(TrackedCallable&& other) noexcept
      : counters(other.counters) {
    ++counters->constructed;
    ++counters->moves;
  }
  TrackedCallable(const TrackedCallable& other) : counters(other.counters) {
    ++counters->constructed;
  }
  ~TrackedCallable() { ++counters->destroyed; }
  void operator()() { ++counters->invoked; }

  LifeCounters* counters;
  std::array<char, Padding> payload{};
};

using SmallCallable = TrackedCallable<8>;    // well under 48 bytes
using OversizedCallable = TrackedCallable<128>;  // forces the heap fallback

TEST(EngineInlineEvent, StorageContract) {
  // The closures the simulators actually schedule must stay inline.
  struct Engineish {
    void* engine;
    std::size_t server;
    std::size_t service;
    double arrival_time;
    void operator()() {}
  };
  static_assert(sim::InlineEvent::stores_inline<Engineish>());
  static_assert(sim::InlineEvent::stores_inline<SmallCallable>());
  static_assert(!sim::InlineEvent::stores_inline<OversizedCallable>());
}

TEST(EngineInlineEvent, SmallCallableMovesAndDestroysExactlyOnce) {
  LifeCounters counters;
  {
    sim::InlineEvent event{SmallCallable(&counters)};
    sim::InlineEvent moved{std::move(event)};
    EXPECT_FALSE(static_cast<bool>(event));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(moved));
    sim::InlineEvent assigned;
    assigned = std::move(moved);
    EXPECT_TRUE(static_cast<bool>(assigned));
    assigned();
    EXPECT_EQ(counters.invoked, 1);
  }
  EXPECT_EQ(counters.constructed, counters.destroyed);
  EXPECT_GE(counters.moves, 2);  // one relocation per container move
}

TEST(EngineInlineEvent, OversizedCallableHeapFallbackDestroysExactlyOnce) {
  LifeCounters counters;
  {
    sim::InlineEvent event{OversizedCallable(&counters)};
    // Heap-held callables move by pointer: no further element moves.
    const int moves_after_construction = counters.moves;
    sim::InlineEvent moved{std::move(event)};
    EXPECT_EQ(counters.moves, moves_after_construction);
    moved();
    EXPECT_EQ(counters.invoked, 1);
  }
  EXPECT_EQ(counters.constructed, counters.destroyed);
}

TEST(EngineInlineEvent, ResetReleasesHeldState) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> observer = token;
  sim::InlineEvent event{[token = std::move(token)] { (void)*token; }};
  EXPECT_FALSE(observer.expired());
  event.reset();
  EXPECT_TRUE(observer.expired());
  EXPECT_FALSE(static_cast<bool>(event));
}

TEST(EngineInlineEvent, CancelDestroysClosureEagerly) {
  sim::Engine engine;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> observer = token;
  const sim::EventId id =
      engine.schedule_at(1e9, [token = std::move(token)] { (void)*token; });
  EXPECT_FALSE(observer.expired());
  EXPECT_TRUE(engine.cancel(id));
  // The closure dies at cancel() time, not when the dead entry is popped.
  EXPECT_TRUE(observer.expired());
}

TEST(EngineInlineEvent, OversizedClosuresRunThroughTheEngine) {
  sim::Engine engine;
  LifeCounters counters;
  engine.schedule_at(1.0, OversizedCallable(&counters));
  engine.run();
  EXPECT_EQ(counters.invoked, 1);
  EXPECT_EQ(counters.constructed, counters.destroyed);
}

// ---------------------------------------------------------------------------
// Metrics satellite: per-engine accumulation, engine.cancels
// ---------------------------------------------------------------------------

TEST(EngineMetricsCounters, CancelsCounterTracksSuccessfulCancelsOnly) {
  const auto before = metrics::registry().counter("engine.cancels").value();
  {
    sim::Engine engine;
    const sim::EventId a = engine.schedule_at(1.0, [] {});
    engine.schedule_at(2.0, [] {});
    EXPECT_TRUE(engine.cancel(a));
    EXPECT_FALSE(engine.cancel(a));            // double cancel: not counted
    EXPECT_FALSE(engine.cancel(987654321u));   // bogus id: not counted
    engine.run();
  }  // engines flush at run end and at destruction
  EXPECT_EQ(metrics::registry().counter("engine.cancels").value(), before + 1);
}

TEST(EngineMetricsCounters, ReplicatedEnginesAccumulateWithoutRacing) {
  const auto before = metrics::registry().counter("engine.events").value();
  constexpr std::size_t kReplications = 32;
  constexpr int kEventsEach = 500;
  sim::replicate(kReplications, 99, [&](std::size_t, Rng&) {
    sim::Engine engine;
    for (int i = 0; i < kEventsEach; ++i) {
      engine.schedule_at(static_cast<double>(i), [] {});
    }
    engine.run();
    return 0;
  });
  EXPECT_EQ(metrics::registry().counter("engine.events").value(),
            before + kReplications * kEventsEach);
}

// ---------------------------------------------------------------------------
// Determinism across worker-thread counts
// ---------------------------------------------------------------------------

TEST(EngineReplicationDeterminism, PoolSimBitIdenticalAcross1_2_8Threads) {
  dc::PoolConfig config;
  config.arrival_rates = {130.0, 30.0};
  config.service_rates = {336.0, 90.0};
  config.servers = 3;
  config.slots_per_server = 4;
  config.queue_capacity = 8;
  config.allocation = dc::AllocationPolicy::kProportionalShare;
  config.realloc_interval = 7.0;
  config.realloc_overhead = 0.05;
  config.horizon = 300.0;
  config.warmup = 30.0;

  const auto fingerprint = [&](ThreadPool& pool) {
    std::vector<double> values;
    const auto outcomes =
        sim::replicate(12, 4242, [&](std::size_t, Rng& rng) {
          return dc::simulate_pool(config, rng);
        }, pool);
    for (const auto& outcome : outcomes) {
      values.push_back(outcome.overall_loss());
      values.push_back(outcome.mean_utilization);
      values.push_back(outcome.energy_joules);
      for (const auto& service : outcome.services) {
        values.push_back(static_cast<double>(service.arrivals));
        values.push_back(static_cast<double>(service.completed));
        values.push_back(service.response_time.mean());
        values.push_back(service.response_time.variance());
      }
    }
    return values;
  };

  ThreadPool one(1);
  ThreadPool two(2);
  ThreadPool eight(8);
  const std::vector<double> serial = fingerprint(one);
  // Exact equality on purpose: the determinism contract is bit-identity,
  // not closeness.
  EXPECT_EQ(serial, fingerprint(two));
  EXPECT_EQ(serial, fingerprint(eight));
}

}  // namespace
}  // namespace vmcons
