// Tests for the report renderer.
#include "core/report.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"

namespace vmcons::core {
namespace {

ModelResult solve_case_study() {
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  inputs.services = {web, db};
  return UtilityAnalyticModel(inputs).solve();
}

TEST(Report, HeadlineSummarizesThePlan) {
  const std::string text = headline(solve_case_study());
  EXPECT_NE(text.find("M=6"), std::string::npos);
  EXPECT_NE(text.find("N=3"), std::string::npos);
  EXPECT_NE(text.find("50.0% servers"), std::string::npos);
}

TEST(Report, PrintedResultMentionsServicesAndResources) {
  std::ostringstream out;
  print_model_result(out, solve_case_study());
  const std::string text = out.str();
  EXPECT_NE(text.find("web"), std::string::npos);
  EXPECT_NE(text.find("db"), std::string::npos);
  EXPECT_NE(text.find("disk_io"), std::string::npos);
  EXPECT_NE(text.find("cpu"), std::string::npos);
  EXPECT_NE(text.find("U_N"), std::string::npos);
}

TEST(Report, CsvIsParseableAndComplete) {
  std::ostringstream out;
  write_model_result_csv(out, solve_case_study());
  const CsvDocument document = csv_parse(out.str());
  ASSERT_EQ(document.header.size(), 4u);
  // Sections present: dedicated (2 services x 2 rows), consolidated
  // (2 demanded resources x 2 rows), summary (4 rows).
  EXPECT_EQ(document.rows.size(), 2u * 2 + 2u * 2 + 4u);
  bool found_n = false;
  for (const auto& row : document.rows) {
    if (row[0] == "summary" && row[1] == "N") {
      EXPECT_EQ(row[3], "3");
      found_n = true;
    }
  }
  EXPECT_TRUE(found_n);
}

TEST(Report, ValidationReportRendersModelVsSimulated) {
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  inputs.services = {web, db};
  ValidationOptions options;
  options.replications = 3;
  options.scenario.horizon = 400.0;
  options.scenario.warmup = 40.0;
  const ValidationReport report = validate(inputs, options);

  std::ostringstream out;
  print_validation_report(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("model vs simulation"), std::string::npos);
  EXPECT_NE(text.find("consolidated loss"), std::string::npos);
  EXPECT_NE(text.find("power saving"), std::string::npos);
}

}  // namespace
}  // namespace vmcons::core
