// Tests for the admission-headroom inverse queries.
#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vmcons::core {
namespace {

ModelInputs case_study() {
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = intensive_workload(web, 3, 0.01);
  db.arrival_rate = intensive_workload(db, 3, 0.01);
  inputs.services = {web, db};
  return inputs;
}

TEST(Admission, ScaleAtPlannedNIsAtLeastOne) {
  const ModelInputs inputs = case_study();
  const auto n =
      UtilityAnalyticModel(inputs).solve().consolidated_servers;
  const double scale = max_workload_scale(inputs, n);
  EXPECT_GE(scale, 1.0);
  // The scaled workload sits exactly at the target.
  ModelInputs scaled = inputs;
  for (auto& service : scaled.services) {
    service.arrival_rate *= scale;
  }
  EXPECT_NEAR(UtilityAnalyticModel(scaled).consolidated_loss(n),
              inputs.target_loss, 1e-6);
}

TEST(Admission, ScaleGrowsWithServers) {
  const ModelInputs inputs = case_study();
  const double at_3 = max_workload_scale(inputs, 3);
  const double at_5 = max_workload_scale(inputs, 5);
  const double at_8 = max_workload_scale(inputs, 8);
  EXPECT_LT(at_3, at_5);
  EXPECT_LT(at_5, at_8);
}

TEST(Admission, ZeroScaleWhenPoolTooSmall) {
  // One server cannot even meet the target at scale -> 0? It can (loss -> 0
  // as load -> 0), so the scale is positive but < 1.
  const ModelInputs inputs = case_study();
  const double scale = max_workload_scale(inputs, 1);
  EXPECT_GT(scale, 0.0);
  EXPECT_LT(scale, 1.0);
}

TEST(Admission, HeadroomAdmitsAThirdService) {
  const ModelInputs inputs = case_study();
  dc::ServiceSpec candidate;
  candidate.name = "mail";
  candidate.demand(dc::Resource::kCpu, 200.0, virt::Impact::constant(0.85));

  // With one spare server over the plan there must be real headroom.
  const auto n =
      UtilityAnalyticModel(inputs).solve().consolidated_servers;
  const double headroom = admission_headroom(inputs, candidate, n + 1);
  EXPECT_GT(headroom, 0.0);

  // Verify: admitting exactly that much keeps the loss within target.
  ModelInputs grown = inputs;
  candidate.arrival_rate = headroom;
  grown.services.push_back(candidate);
  grown.vms_per_server = 3;
  EXPECT_LE(UtilityAnalyticModel(grown).consolidated_loss(n + 1),
            inputs.target_loss * 1.001);
}

TEST(Admission, NoHeadroomWhenPoolAlreadyOverloaded) {
  ModelInputs inputs = case_study();
  for (auto& service : inputs.services) {
    service.arrival_rate *= 10.0;
  }
  dc::ServiceSpec candidate;
  candidate.name = "extra";
  candidate.demand(dc::Resource::kCpu, 100.0);
  EXPECT_DOUBLE_EQ(admission_headroom(inputs, candidate, 3), 0.0);
}

TEST(Admission, HeadroomGrowsWithServers) {
  const ModelInputs inputs = case_study();
  dc::ServiceSpec candidate;
  candidate.name = "batch";
  candidate.demand(dc::Resource::kCpu, 150.0);
  const double at_4 = admission_headroom(inputs, candidate, 4);
  const double at_6 = admission_headroom(inputs, candidate, 6);
  EXPECT_GT(at_6, at_4);
}

TEST(Admission, BracketFailureReportsEndpointsAndTarget) {
  // A vanishing workload keeps the loss under target at every scale the
  // bisection can reach (rho stays ~1e-3 even at scale 1e12), so the
  // doubling phase must give up — and say where it got stuck.
  ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec tiny;
  tiny.name = "tiny";
  tiny.arrival_rate = 1e-15;
  tiny.demand(dc::Resource::kCpu, 1.0);
  inputs.services = {tiny};
  try {
    max_workload_scale(inputs, 1);
    FAIL() << "expected NumericError";
  } catch (const NumericError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("max_workload_scale"), std::string::npos) << what;
    EXPECT_NE(what.find("target_loss = 0.01"), std::string::npos) << what;
    EXPECT_NE(what.find("failed to bracket"), std::string::npos) << what;
    EXPECT_NE(what.find("bracket ["), std::string::npos) << what;
  }
}

TEST(Admission, Validation) {
  const ModelInputs inputs = case_study();
  dc::ServiceSpec no_demand;
  no_demand.name = "ghost";
  EXPECT_THROW(admission_headroom(inputs, no_demand, 3), InvalidArgument);
  EXPECT_THROW(max_workload_scale(inputs, 0), InvalidArgument);
}

}  // namespace
}  // namespace vmcons::core
