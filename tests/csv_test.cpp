// CSV correctness: RFC 4180 round-trips (embedded commas, quotes-in-quotes,
// CRLF, embedded newlines) and the loud rejection of truncated quoted
// fields — a silently-accepted unterminated quote is how a half-written
// checkpoint manifest turns into wrong resume state.
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace vmcons {
namespace {

TEST(CsvParse, RoundTripsEmbeddedCommasAndQuotes) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "note"});
  writer.row({std::string("a,b"), std::string("say \"hi\"")});
  writer.row({std::string("\"quoted\",\"twice\""), std::string("plain")});
  const CsvDocument document = csv_parse(out.str());
  ASSERT_EQ(document.rows.size(), 2u);
  EXPECT_EQ(document.rows[0][0], "a,b");
  EXPECT_EQ(document.rows[0][1], "say \"hi\"");
  EXPECT_EQ(document.rows[1][0], "\"quoted\",\"twice\"");
  EXPECT_EQ(document.rows[1][1], "plain");
}

TEST(CsvParse, QuotesInsideQuotesOnOneLine) {
  const auto fields = csv_parse_line("\"a\"\"b\"\"c\",\"\"\"\"");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a\"b\"c");
  EXPECT_EQ(fields[1], "\"");
}

TEST(CsvParse, AcceptsCrlfLineEndings) {
  const CsvDocument document = csv_parse("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_EQ(document.header.size(), 2u);
  ASSERT_EQ(document.rows.size(), 2u);
  EXPECT_EQ(document.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(document.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParse, QuotedFieldsMayEmbedNewlines) {
  const CsvDocument document = csv_parse("k,v\n\"line1\nline2\",x\n");
  ASSERT_EQ(document.rows.size(), 1u);
  EXPECT_EQ(document.rows[0][0], "line1\nline2");
  EXPECT_EQ(document.rows[0][1], "x");
  // CRLF inside a quoted field is data, not a record break.
  const CsvDocument crlf = csv_parse("k,v\r\n\"a\r\nb\",y\r\n");
  ASSERT_EQ(crlf.rows.size(), 1u);
  EXPECT_EQ(crlf.rows[0][0], "a\r\nb");
}

TEST(CsvParse, MissingFinalNewlineStillYieldsLastRecord) {
  const CsvDocument document = csv_parse("a,b\n1,2");
  ASSERT_EQ(document.rows.size(), 1u);
  EXPECT_EQ(document.rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, LineParserRejectsUnterminatedQuote) {
  try {
    csv_parse_line("ok,\"truncat");
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(error.what()).find("unterminated"),
              std::string::npos);
  }
  // A lone closing quote that re-opens a field is the same defect.
  EXPECT_THROW(csv_parse_line("\"a\"\""), IoError);
}

TEST(CsvParse, DocumentParserRejectsUnterminatedQuote) {
  try {
    csv_parse("a,b\n\"begun but never fini");
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(error.what()).find("truncated"), std::string::npos);
  }
}

TEST(CsvParse, ProperlyQuotedFieldsStillAccepted) {
  // Regression guard: the rejection must not catch legitimate quoting.
  const auto fields = csv_parse_line("\"a\",\"b\"\"c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b\"c");
  EXPECT_EQ(fields[2], "d");
}

TEST(CsvWriter, ContinueRowsAppendsWithoutReEmittingHeader) {
  std::ostringstream first;
  CsvWriter writer(first);
  writer.header({"k", "v"});
  writer.row({std::string("a"), 1ll});

  // Second writer adopts the existing two-column header (the resume path of
  // a checkpoint manifest) and appends rows only.
  std::ostringstream second;
  CsvWriter appender(second);
  appender.continue_rows(2);
  appender.row({std::string("b"), 2ll});
  EXPECT_EQ(appender.rows_written(), 1u);

  const CsvDocument document = csv_parse(first.str() + second.str());
  ASSERT_EQ(document.rows.size(), 2u);
  EXPECT_EQ(document.rows[1], (std::vector<std::string>{"b", "2"}));
}

TEST(CsvWriter, ContinueRowsEnforcesProtocol) {
  std::ostringstream out;
  CsvWriter writer(out);
  EXPECT_THROW(writer.continue_rows(0), InvalidArgument);
  writer.header({"a"});
  EXPECT_THROW(writer.continue_rows(1), InvalidArgument);  // header already set
  std::ostringstream out2;
  CsvWriter writer2(out2);
  writer2.continue_rows(2);
  EXPECT_THROW(writer2.row({std::string("only-one")}), InvalidArgument);
  EXPECT_THROW(writer2.header({"a", "b"}), InvalidArgument);
}

}  // namespace
}  // namespace vmcons
