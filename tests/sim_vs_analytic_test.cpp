// The correctness anchor of the whole reproduction: the discrete-event pool
// simulator must agree with the analytic queueing formulas it is meant to
// stand in for.
//
//   * pure-loss pools (queue_capacity = 0) vs Erlang-B blocking;
//   * finite-queue pools vs the M/M/c/K solver;
//   * utilization vs carried load / c.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "datacenter/pool_sim.hpp"
#include "queueing/erlang.hpp"
#include "queueing/mmck.hpp"
#include "sim/replication.hpp"
#include "stats/confidence.hpp"

namespace vmcons::dc {
namespace {

struct LossCase {
  unsigned servers;
  double lambda;
  double mu;
};

class SimVsErlangB : public ::testing::TestWithParam<LossCase> {};

TEST_P(SimVsErlangB, LossMatchesWithinConfidence) {
  const LossCase test_case = GetParam();
  PoolConfig config;
  config.arrival_rates = {test_case.lambda};
  config.service_rates = {test_case.mu};
  config.servers = test_case.servers;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      10, 77, [&](std::size_t, Rng& rng) {
        return simulate_pool(config, rng).overall_loss();
      });
  const double expected =
      queueing::erlang_b(test_case.servers, test_case.lambda / test_case.mu);
  // Widen the t-interval slightly: 10 replications of a rare event.
  const double slack = 0.2 * expected + 0.002;
  EXPECT_NEAR(estimate.summary.mean(), expected,
              estimate.interval.half_width + slack)
      << "servers=" << test_case.servers << " lambda=" << test_case.lambda;
}

INSTANTIATE_TEST_SUITE_P(
    LossSystems, SimVsErlangB,
    ::testing::Values(LossCase{1, 0.5, 1.0}, LossCase{2, 1.5, 1.0},
                      LossCase{3, 2.0, 1.0}, LossCase{4, 5.0, 1.0},
                      LossCase{3, 130.0, 420.0},   // the paper's web numbers
                      LossCase{3, 30.0, 100.0},    // the paper's DB numbers
                      LossCase{8, 6.0, 1.0}, LossCase{16, 14.0, 1.0}));

TEST(SimVsErlangB, UtilizationMatchesCarriedLoad) {
  PoolConfig config;
  config.arrival_rates = {2.0};
  config.service_rates = {1.0};
  config.servers = 3;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      8, 78, [&](std::size_t, Rng& rng) {
        return simulate_pool(config, rng).mean_utilization;
      });
  const double expected = queueing::loss_system_utilization(3, 2.0);
  EXPECT_NEAR(estimate.summary.mean(), expected, 0.01);
}

TEST(SimVsMmck, FiniteQueueBlockingAndResponse) {
  const unsigned servers = 2;
  const unsigned queue = 4;
  const double lambda = 2.2;
  const double mu = 1.0;

  PoolConfig config;
  config.arrival_rates = {lambda};
  config.service_rates = {mu};
  config.servers = servers;
  config.queue_capacity = queue;
  config.horizon = 6000.0;
  config.warmup = 600.0;

  std::vector<double> losses;
  std::vector<double> responses;
  const auto outcomes = sim::replicate(10, 79, [&](std::size_t, Rng& rng) {
    return simulate_pool(config, rng);
  });
  for (const auto& outcome : outcomes) {
    losses.push_back(outcome.overall_loss());
    responses.push_back(outcome.services[0].response_time.mean());
  }
  double loss_mean = 0.0;
  double response_mean = 0.0;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    loss_mean += losses[i];
    response_mean += responses[i];
  }
  loss_mean /= static_cast<double>(losses.size());
  response_mean /= static_cast<double>(responses.size());

  const auto expected =
      queueing::solve_mmck(servers, servers + queue, lambda, mu);
  EXPECT_NEAR(loss_mean, expected.blocking, 0.015);
  EXPECT_NEAR(response_mean, expected.mean_response_time, 0.12);
}

TEST(SimVsMmck, SingleServerQueueMatchesMm1k) {
  PoolConfig config;
  config.arrival_rates = {0.8};
  config.service_rates = {1.0};
  config.servers = 1;
  config.queue_capacity = 9;  // K = 10 total places
  config.horizon = 8000.0;
  config.warmup = 800.0;

  const auto estimate = sim::replicate_scalar(
      8, 80, [&](std::size_t, Rng& rng) {
        return simulate_pool(config, rng).overall_loss();
      });
  const auto expected = queueing::solve_mmck(1, 10, 0.8, 1.0);
  EXPECT_NEAR(estimate.summary.mean(), expected.blocking, 0.004);
}

TEST(SimVsErlangB, TwoServicePoolMatchesMergedStream) {
  // Two services with identical per-slot rates merge into one Poisson
  // stream: overall loss must match Erlang-B of the merged load.
  PoolConfig config;
  config.arrival_rates = {1.0, 1.5};
  config.service_rates = {1.0, 1.0};
  config.servers = 4;
  config.horizon = 4000.0;
  config.warmup = 400.0;

  const auto estimate = sim::replicate_scalar(
      10, 81, [&](std::size_t, Rng& rng) {
        return simulate_pool(config, rng).overall_loss();
      });
  const double expected = queueing::erlang_b(4, 2.5);
  EXPECT_NEAR(estimate.summary.mean(), expected, 0.01);
}

}  // namespace
}  // namespace vmcons::dc
