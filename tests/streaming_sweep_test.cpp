// StreamingSweep: out-of-core sweeps stay bit-identical to in-memory batch
// evaluation, and the checkpoint manifest makes kill-and-resume lossless —
// a run killed by an injected fault (or cancelled mid-grid) resumes from
// the last committed shard and the union of delivered shards matches a
// clean run checksum-for-checksum.
//
// The fault seed is overridable via VMCONS_FAULT_SEED (scripts/tier1.sh
// pins it), so the kill-and-resume suite replays exactly.
#include "core/streaming_sweep.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/planner.hpp"
#include "core/scenario_store.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

using util::FaultInjector;
using util::ScopedFaults;
namespace sites = util::fault_sites;

std::uint64_t fault_seed() {
  if (const char* env = std::getenv("VMCONS_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 2009;
}

/// The run-control suite's small planner: two services, cheap cells.
ConsolidationPlanner small_planner() {
  ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web;
  web.name = "web";
  web.arrival_rate = 120.0;
  web.demand(dc::Resource::kCpu, 180.0, virt::Impact::constant(0.8));
  web.demand(dc::Resource::kNetwork, 400.0, virt::Impact::constant(0.9));
  planner.add_service(web);
  dc::ServiceSpec db;
  db.name = "db";
  db.arrival_rate = 60.0;
  db.demand(dc::Resource::kCpu, 90.0, virt::Impact::constant(0.75));
  db.demand(dc::Resource::kDiskIo, 150.0, virt::Impact::constant(0.7));
  planner.add_service(db);
  return planner;
}

/// 3 losses x 2 VM densities x 2 scales = 12 points; shard size 2 -> 6
/// shards, enough boundaries for kill/resume placement.
SweepGrid small_grid() {
  SweepGrid grid;
  grid.target_losses({0.005, 0.01, 0.05})
      .vms_per_server({2, 3})
      .workload_scales({1.0, 1.4});
  return grid;
}
constexpr std::size_t kGridPoints = 12;
constexpr std::size_t kShardSize = 2;
constexpr std::size_t kShards = 6;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "vmcons_streaming_" + name;
  std::remove(path.c_str());  // drop leftovers of an earlier (failed) run
  return path;
}

struct CollectedRun {
  std::vector<ModelResult> results;            // by global scenario index
  std::vector<std::uint8_t> evaluated;         // ditto
  std::vector<std::size_t> delivered_shards;   // sink call order
  StreamingSweepReport report;
};

/// Runs a streaming sweep, scattering delivered shard results into global
/// scenario positions.
CollectedRun run_streaming(const ScenarioStore& store,
                           StreamingSweepOptions options) {
  CollectedRun run;
  run.results.resize(store.scenario_count());
  run.evaluated.assign(store.scenario_count(), 0);
  const StreamingSweep sweep(std::move(options));
  run.report = sweep.run(store, [&run](ShardOutcome&& shard) {
    run.delivered_shards.push_back(shard.shard_index);
    for (std::size_t i = 0; i < shard.outcome.results.size(); ++i) {
      run.results[shard.scenario_begin + i] =
          std::move(shard.outcome.results[i]);
      run.evaluated[shard.scenario_begin + i] = shard.outcome.evaluated[i];
    }
  });
  return run;
}

void expect_identical(const ModelResult& a, const ModelResult& b,
                      std::size_t index) {
  SCOPED_TRACE("scenario " + std::to_string(index));
  ASSERT_EQ(a.dedicated.size(), b.dedicated.size());
  for (std::size_t i = 0; i < a.dedicated.size(); ++i) {
    EXPECT_EQ(a.dedicated[i].servers, b.dedicated[i].servers);
    EXPECT_EQ(a.dedicated[i].blocking, b.dedicated[i].blocking);
  }
  EXPECT_EQ(a.dedicated_servers, b.dedicated_servers);
  EXPECT_EQ(a.consolidated_servers, b.consolidated_servers);
  EXPECT_EQ(a.consolidated_blocking, b.consolidated_blocking);
  EXPECT_EQ(a.dedicated_utilization, b.dedicated_utilization);
  EXPECT_EQ(a.consolidated_utilization, b.consolidated_utilization);
  EXPECT_EQ(a.utilization_improvement, b.utilization_improvement);
  EXPECT_EQ(a.dedicated_power_watts, b.dedicated_power_watts);
  EXPECT_EQ(a.consolidated_power_watts, b.consolidated_power_watts);
  EXPECT_EQ(a.power_saving, b.power_saving);
  EXPECT_EQ(a.infrastructure_saving, b.infrastructure_saving);
}

/// Writes the standard small store; caller owns cleanup of `path`.
ScenarioStoreWriter::Summary write_small_store(const std::string& path) {
  return write_sweep_store(small_planner(), small_grid(), path, kShardSize);
}

TEST(StreamingSweep, CleanRunMatchesInMemoryBatchBitIdentically) {
  const std::string store_path = temp_path("clean.store");
  const auto summary = write_small_store(store_path);
  EXPECT_EQ(summary.scenarios, kGridPoints);
  EXPECT_EQ(summary.shards, kShards);
  const ScenarioStore store(store_path);

  // Reference: the whole grid as one in-memory batch.
  const ConsolidationPlanner planner = small_planner();
  const SweepGrid grid = small_grid();
  std::vector<ModelInputs> inputs;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    inputs.push_back(planner.point_inputs(grid.point(i)));
  }
  const BatchEvaluator evaluator;
  const std::vector<ModelResult> reference =
      evaluator.evaluate(ScenarioBatch::from_inputs(inputs));

  const CollectedRun run = run_streaming(store, StreamingSweepOptions{});
  EXPECT_TRUE(run.report.complete());
  EXPECT_EQ(run.report.shards_completed, kShards);
  EXPECT_EQ(run.report.shards_resumed, 0u);
  EXPECT_EQ(run.report.scenarios_evaluated, kGridPoints);
  EXPECT_TRUE(run.report.failures.empty());
  ASSERT_EQ(run.results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(run.evaluated[i]);
    expect_identical(run.results[i], reference[i], i);
  }
  std::remove(store_path.c_str());
}

TEST(StreamingSweep, FullResumeSkipsEveryShardWithoutReEvaluating) {
  const std::string store_path = temp_path("resume_all.store");
  const std::string manifest = temp_path("resume_all.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  const CollectedRun first = run_streaming(store, options);
  EXPECT_TRUE(first.report.complete());
  EXPECT_EQ(first.report.shards_completed, kShards);

  const CollectedRun second = run_streaming(store, options);
  EXPECT_TRUE(second.report.complete());
  EXPECT_EQ(second.report.shards_resumed, kShards);
  EXPECT_EQ(second.report.shards_completed, 0u);
  EXPECT_TRUE(second.delivered_shards.empty());  // nothing re-materialized
  EXPECT_EQ(second.report.shard_checksums, first.report.shard_checksums);
  // scenarios_evaluated counts restored work too, so totals agree.
  EXPECT_EQ(second.report.scenarios_evaluated,
            first.report.scenarios_evaluated);

  // resume=false starts clean and re-evaluates everything.
  options.resume = false;
  const CollectedRun fresh = run_streaming(store, options);
  EXPECT_EQ(fresh.report.shards_completed, kShards);
  EXPECT_EQ(fresh.report.shard_checksums, first.report.shard_checksums);

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, KilledRunResumesBitIdentically) {
  const std::string store_path = temp_path("kill.store");
  const std::string manifest = temp_path("kill.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  // Clean baseline, no checkpointing.
  const CollectedRun clean = run_streaming(store, StreamingSweepOptions{});
  ASSERT_TRUE(clean.report.complete());

  // Killed run: sweep.shard faults fire outside the evaluator's quarantine,
  // so a firing shard aborts run() exactly like a process kill — after the
  // preceding shards were committed to the manifest. The sink arms the site
  // at rate 1.0 once two shards have been delivered, so the kill lands
  // mid-run (shard 2) deterministically at every seed.
  ScopedFaults guard;
  FaultInjector::global().set_seed(fault_seed());
  constexpr std::size_t kKillAfter = 2;

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  CollectedRun killed;
  killed.results.resize(store.scenario_count());
  killed.evaluated.assign(store.scenario_count(), 0);
  const StreamingSweep sweep(options);
  try {
    sweep.run(store, [&killed](ShardOutcome&& shard) {
      killed.delivered_shards.push_back(shard.shard_index);
      for (std::size_t i = 0; i < shard.outcome.results.size(); ++i) {
        killed.results[shard.scenario_begin + i] =
            std::move(shard.outcome.results[i]);
        killed.evaluated[shard.scenario_begin + i] = 1;
      }
      if (killed.delivered_shards.size() == kKillAfter) {
        FaultInjector::global().arm(sites::kSweepShard, {.error_rate = 1.0});
      }
    });
    FAIL() << "expected the injected fault to escape run()";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFaultInjected);
  }
  EXPECT_EQ(killed.delivered_shards.size(), kKillAfter);
  FaultInjector::global().disarm_all();

  // Resumed run: committed shards are skipped, the rest are evaluated.
  const CollectedRun resumed = run_streaming(store, options);
  EXPECT_TRUE(resumed.report.complete());
  EXPECT_EQ(resumed.report.shards_resumed, kKillAfter);
  EXPECT_EQ(resumed.report.shards_completed, kShards - kKillAfter);
  EXPECT_EQ(resumed.report.shard_checksums, clean.report.shard_checksums);

  // The union of (killed run's delivered shards, resumed run's delivered
  // shards) covers every scenario exactly once, bit-identical to clean.
  for (std::size_t i = 0; i < store.scenario_count(); ++i) {
    const bool from_killed = killed.evaluated[i] != 0;
    const bool from_resumed = resumed.evaluated[i] != 0;
    ASSERT_TRUE(from_killed != from_resumed) << "scenario " << i;
    const ModelResult& delivered =
        from_killed ? killed.results[i] : resumed.results[i];
    expect_identical(delivered, clean.results[i], i);
  }

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, CancelledRunKeepsCommittedShardsAndResumes) {
  const std::string store_path = temp_path("cancel.store");
  const std::string manifest = temp_path("cancel.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  const CollectedRun clean = run_streaming(store, StreamingSweepOptions{});

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  CancelToken token = options.batch.control.token;
  CollectedRun cancelled;
  cancelled.results.resize(store.scenario_count());
  cancelled.evaluated.assign(store.scenario_count(), 0);
  const StreamingSweep sweep(options);
  cancelled.report = sweep.run(store, [&](ShardOutcome&& shard) {
    cancelled.delivered_shards.push_back(shard.shard_index);
    if (cancelled.delivered_shards.size() == 2) {
      token.cancel();  // stop after two committed shards
    }
  });
  EXPECT_TRUE(cancelled.report.cancelled);
  EXPECT_FALSE(cancelled.report.complete());
  EXPECT_EQ(cancelled.report.shards_completed, 2u);

  StreamingSweepOptions resume_options;
  resume_options.checkpoint_path = manifest;
  const CollectedRun resumed = run_streaming(store, resume_options);
  EXPECT_TRUE(resumed.report.complete());
  EXPECT_EQ(resumed.report.shards_resumed, 2u);
  EXPECT_EQ(resumed.report.shards_completed, kShards - 2);
  EXPECT_EQ(resumed.report.shard_checksums, clean.report.shard_checksums);

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, QuarantinedFailuresAreRestoredFromManifest) {
  const std::string store_path = temp_path("quarantine.store");
  const std::string manifest = temp_path("quarantine.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  // First run: quarantine policy with per-cell faults. batch.cell draws on
  // the shard-local cell index — {0, 1} at this shard size — and at the
  // pinned seed rate 0.8 fires for exactly one of the two, so every shard
  // commits a mix of healthy and quarantined cells.
  ScopedFaults guard;
  FaultInjector::global().set_seed(fault_seed());
  FaultInjector::global().arm(sites::kBatchCell, {.error_rate = 0.8});
  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  options.batch.policy = FailurePolicy::kQuarantine;
  const CollectedRun faulty = run_streaming(store, options);
  EXPECT_TRUE(faulty.report.cancelled == false &&
              faulty.report.deadline_exceeded == false);
  ASSERT_FALSE(faulty.report.failures.empty())
      << "fault seed " << fault_seed() << " quarantines no cell at rate 0.8";
  for (const CellFailure& failure : faulty.report.failures) {
    EXPECT_EQ(failure.code, ErrorCode::kFaultInjected);
    EXPECT_LT(failure.scenario_index, kGridPoints);  // global indices
  }
  FaultInjector::global().disarm_all();

  // Second run, faults disarmed: every shard resumes from the manifest and
  // the failure report is reproduced from it, not re-evaluated.
  const CollectedRun restored = run_streaming(store, options);
  EXPECT_EQ(restored.report.shards_resumed, kShards);
  ASSERT_EQ(restored.report.failures.size(), faulty.report.failures.size());
  for (std::size_t i = 0; i < restored.report.failures.size(); ++i) {
    EXPECT_EQ(restored.report.failures[i].scenario_index,
              faulty.report.failures[i].scenario_index);
    EXPECT_EQ(restored.report.failures[i].code,
              faulty.report.failures[i].code);
    EXPECT_EQ(restored.report.failures[i].message,
              faulty.report.failures[i].message);
  }
  EXPECT_EQ(restored.report.shard_checksums, faulty.report.shard_checksums);

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, PartialTrailingManifestLineIsDiscarded) {
  const std::string store_path = temp_path("partial.store");
  const std::string manifest = temp_path("partial.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  const CollectedRun first = run_streaming(store, options);
  ASSERT_TRUE(first.report.complete());

  // A crash mid-append leaves a line with no trailing newline; the loader
  // must drop it (and only it) rather than reject the manifest.
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::app);
    out << "shard,4,8,2,deadbeef";  // cut off mid-record
  }
  const CollectedRun resumed = run_streaming(store, options);
  EXPECT_TRUE(resumed.report.complete());
  EXPECT_EQ(resumed.report.shards_resumed, kShards);
  EXPECT_EQ(resumed.report.shard_checksums, first.report.shard_checksums);

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, GarbledManifestLineIsRejected) {
  const std::string store_path = temp_path("garbled.store");
  const std::string manifest = temp_path("garbled.manifest.csv");
  write_small_store(store_path);
  const ScenarioStore store(store_path);

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  run_streaming(store, options);
  {
    // A *complete* nonsense line is corruption, not a crash artifact.
    std::ofstream out(manifest, std::ios::binary | std::ios::app);
    out << "blob,x,y,z,1,2,3,4,5\n";
  }
  EXPECT_THROW(run_streaming(store, options), IoError);

  std::remove(store_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, ManifestOfDifferentStoreIsRejected) {
  const std::string store_path = temp_path("mismatch_a.store");
  const std::string other_path = temp_path("mismatch_b.store");
  const std::string manifest = temp_path("mismatch.manifest.csv");
  write_small_store(store_path);
  {
    // A different grid -> different contents -> different store checksum.
    SweepGrid other_grid;
    other_grid.target_losses({0.02, 0.03});
    write_sweep_store(small_planner(), other_grid, other_path, kShardSize);
  }
  const ScenarioStore store(store_path);
  const ScenarioStore other(other_path);
  ASSERT_NE(store.checksum(), other.checksum());

  StreamingSweepOptions options;
  options.checkpoint_path = manifest;
  run_streaming(store, options);
  try {
    run_streaming(other, options);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("different store"),
              std::string::npos);
  }

  std::remove(store_path.c_str());
  std::remove(other_path.c_str());
  std::remove(manifest.c_str());
}

TEST(StreamingSweep, WriteSweepStoreHonorsRunControl) {
  const std::string store_path = temp_path("write_cancel.store");
  RunControl control;
  control.token.cancel();
  EXPECT_THROW(write_sweep_store(small_planner(), small_grid(), store_path,
                                 kShardSize, control),
               CancelledError);
  // The aborted store never finished, so it must not open.
  EXPECT_THROW(ScenarioStore{store_path}, IoError);
  std::remove(store_path.c_str());
}

TEST(StreamingSweep, ChecksumIsOrderAndValueSensitive) {
  const std::string store_path = temp_path("checksum.store");
  write_small_store(store_path);
  const ScenarioStore store(store_path);
  const ScenarioBatch batch = store.read_shard(0);
  const BatchEvaluator evaluator;
  BatchOutcome outcome = evaluator.evaluate_all(batch);
  const std::uint64_t base =
      checksum_model_results(outcome.results, outcome.evaluated);
  EXPECT_EQ(checksum_model_results(outcome.results, outcome.evaluated), base);

  BatchOutcome tweaked = outcome;
  tweaked.results[0].power_saving += 1e-12;
  EXPECT_NE(checksum_model_results(tweaked.results, tweaked.evaluated), base);

  BatchOutcome masked = outcome;
  masked.evaluated[1] = 0;
  EXPECT_NE(checksum_model_results(masked.results, masked.evaluated), base);

  std::remove(store_path.c_str());
}

}  // namespace
}  // namespace vmcons::core
