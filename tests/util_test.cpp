// Tests for CSV, ASCII tables, flags, thread pool, and parallel_for.
#include <atomic>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/ascii_table.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"

namespace vmcons {
namespace {

TEST(Csv, FormatsAndQuotes) {
  EXPECT_EQ(csv_format_cell(CsvCell{std::string("plain")}), "plain");
  EXPECT_EQ(csv_format_cell(CsvCell{std::string("a,b")}), "\"a,b\"");
  EXPECT_EQ(csv_format_cell(CsvCell{std::string("say \"hi\"")}),
            "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_format_cell(CsvCell{42ll}), "42");
  EXPECT_EQ(csv_format_cell(CsvCell{2.5}), "2.5");
}

TEST(Csv, WriterRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"name", "value"});
  writer.row({std::string("alpha, beta"), 1.25});
  writer.row({std::string("gamma"), 7ll});
  EXPECT_EQ(writer.rows_written(), 2u);

  const CsvDocument document = csv_parse(out.str());
  ASSERT_EQ(document.header.size(), 2u);
  ASSERT_EQ(document.rows.size(), 2u);
  EXPECT_EQ(document.rows[0][document.column("name")], "alpha, beta");
  EXPECT_EQ(document.rows[0][document.column("value")], "1.25");
  EXPECT_EQ(document.rows[1][0], "gamma");
}

TEST(Csv, WriterEnforcesProtocol) {
  std::ostringstream out;
  CsvWriter writer(out);
  EXPECT_THROW(writer.row({1.0}), InvalidArgument);  // header first
  writer.header({"a", "b"});
  EXPECT_THROW(writer.row({1.0}), InvalidArgument);  // width mismatch
  EXPECT_THROW(writer.header({"again"}), InvalidArgument);
}

TEST(Csv, ParseHandlesQuotedNewlineFreeFields) {
  const auto fields = csv_parse_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(Csv, MissingColumnThrows) {
  const CsvDocument document = csv_parse("a,b\n1,2\n");
  EXPECT_THROW(document.column("missing"), InvalidArgument);
}

TEST(AsciiTable, RendersAlignedBox) {
  AsciiTable table;
  table.set_header({"name", "count"});
  table.add_row({"web", "100"});
  table.add_row({"db", "7"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name | count |"), std::string::npos);
  // Numeric cells right-align.
  EXPECT_NE(text.find("|   100 |"), std::string::npos);
  EXPECT_NE(text.find("|     7 |"), std::string::npos);
}

TEST(AsciiTable, NumericRowHelper) {
  AsciiTable table;
  table.set_header({"row", "a", "b"});
  table.add_numeric_row("x", {1.23456, 2.0}, 2);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.to_string().find("1.23"), std::string::npos);
}

TEST(AsciiTable, EnforcesWidths) {
  AsciiTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(table.add_numeric_row("x", {1.0, 2.0}), InvalidArgument);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3",  "--beta", "4.5", "--gamma",
                        "pos1", "--flag"};
  Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 4.5);
  EXPECT_EQ(flags.get_string("gamma", ""), "pos1");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_int("missing", 9), 9);
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--on=yes", "--off=0", "--bad=maybe"};
  Flags flags(4, argv);
  EXPECT_TRUE(flags.get_bool("on", false));
  EXPECT_FALSE(flags.get_bool("off", true));
  EXPECT_THROW(flags.get_bool("bad", false), InvalidArgument);
}

TEST(Flags, TypeErrorsThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.get_int("n", 0), InvalidArgument);
  EXPECT_THROW(flags.get_double("n", 0.0), InvalidArgument);
}

TEST(Flags, TracksUnknownFlags) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  Flags flags(3, argv);
  flags.get_int("known", 0);
  const auto unknown = flags.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(1000, [&](std::size_t i) { ++visits[i]; }, pool);
  for (const auto& visit : visits) {
    EXPECT_EQ(visit.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   100,
                   [](std::size_t i) {
                     if (i == 50) {
                       throw InvalidArgument("bad index");
                     }
                   },
                   pool),
               InvalidArgument);
}

TEST(ParallelFor, ExplicitGrainVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {1u, 7u, 64u, 1000u, 5000u}) {
    std::vector<std::atomic<int>> visits(1000);
    parallel_for(
        1000, [&](std::size_t i) { ++visits[i]; }, pool, grain);
    for (const auto& visit : visits) {
      ASSERT_EQ(visit.load(), 1) << "grain " << grain;
    }
  }
}

TEST(ParallelFor, GrainLargerThanCountRunsSerially) {
  ThreadPool pool(4);
  // grain >= count must not dispatch to the pool at all: every index runs
  // on the calling thread.
  std::vector<int> visits(64, 0);  // unsynchronized on purpose
  bool on_worker = false;
  parallel_for(
      64,
      [&](std::size_t i) {
        ++visits[i];
        on_worker = on_worker || ThreadPool::on_worker_thread();
      },
      pool, 64);
  EXPECT_FALSE(on_worker);
  for (const int visit : visits) {
    EXPECT_EQ(visit, 1);
  }
}

TEST(ParallelMap, GrainPreservesOrder) {
  ThreadPool pool(4);
  const auto squares = parallel_map(
      100, [](std::size_t i) { return i * i; }, pool, 9);
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, DetectsWorkerThreads) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  auto probe = pool.submit([] { return ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(probe.get());
  EXPECT_FALSE(ThreadPool::on_worker_thread());  // flag is per-thread
}

TEST(ParallelFor, NestedTwoDeepOnSmallPoolCompletes) {
  // Regression: a parallel_for issued from a pool worker used to block on
  // future.get() for chunks queued behind it — with every worker of a
  // 2-thread pool parked that way, the pool deadlocked. Nested loops now
  // run inline on the worker.
  ThreadPool pool(2);
  std::atomic<int> visits{0};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(
            8,
            [&](std::size_t) {
              parallel_for(
                  4, [&](std::size_t) { ++visits; }, pool);
            },
            pool);
      },
      pool);
  EXPECT_EQ(visits.load(), 8 * 8 * 4);
}

TEST(ParallelFor, NestedStillRethrowsExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   4,
                   [&](std::size_t) {
                     parallel_for(
                         4,
                         [](std::size_t i) {
                           if (i == 2) {
                             throw InvalidArgument("inner failure");
                           }
                         },
                         pool);
                   },
                   pool),
               InvalidArgument);
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const auto squares =
      parallel_map(50, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(squares.size(), 50u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

namespace {
// Deliberately awkward result type: no default constructor, move-only.
struct TaggedResult {
  explicit TaggedResult(std::size_t i) : tag(i) {}
  TaggedResult(TaggedResult&&) = default;
  TaggedResult& operator=(TaggedResult&&) = default;
  TaggedResult(const TaggedResult&) = delete;
  TaggedResult& operator=(const TaggedResult&) = delete;
  std::size_t tag;
};
}  // namespace

TEST(ParallelMap, SupportsNonDefaultConstructibleResults) {
  static_assert(!std::is_default_constructible_v<TaggedResult>);
  ThreadPool pool(4);
  const auto results = parallel_map(
      64, [](std::size_t i) { return TaggedResult(i); }, pool);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].tag, i);
  }
}

}  // namespace
}  // namespace vmcons
