// Remaining odds and ends: logging levels, the contract macros, engine
// edge cases, and the determinism-across-thread-counts guarantee.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/replication.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace vmcons {
namespace {

TEST(Logging, LevelGateIsRespected) {
  const log::Level previous = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  // Nothing observable to assert on stderr here; exercise the builders so
  // the gate path runs both suppressed and emitted branches.
  log::debug() << "suppressed " << 42;
  log::error() << "emitted " << 43;
  log::set_level(previous);
}

TEST(ErrorMacros, RequireThrowsInvalidArgumentWithMessage) {
  try {
    VMCONS_REQUIRE(false, "custom message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& error) {
    EXPECT_STREQ(error.what(), "custom message");
  }
}

TEST(ErrorMacros, AssertThrowsLogicErrorWithLocation) {
  try {
    VMCONS_ASSERT(1 + 1 == 3);
    FAIL() << "should have thrown";
  } catch (const LogicError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(what.find("misc_test.cpp"), std::string::npos);
  }
}

TEST(ErrorMacros, HierarchyCatchesAsBase) {
  EXPECT_THROW(throw NumericError("n"), Error);
  EXPECT_THROW(throw IoError("i"), Error);
  EXPECT_THROW(throw InvalidArgument("a"), Error);
}

TEST(EngineEdge, RunUntilSkipsCancelledTopEvent) {
  sim::Engine engine;
  int fired = 0;
  const sim::EventId id = engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.cancel(id);
  engine.run_until(1.5);  // the cancelled event is the only one <= 1.5
  EXPECT_EQ(fired, 0);
  engine.run_until(3.0);
  EXPECT_EQ(fired, 1);
}

TEST(EngineEdge, StopInsideRunUntilPreservesClock) {
  sim::Engine engine;
  engine.schedule_at(1.0, [&] { engine.stop(); });
  engine.schedule_at(2.0, [] {});
  engine.run_until(5.0);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);  // stopped mid-run, no jump to horizon
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Determinism, ReplicationResultsIndependentOfThreadCount) {
  auto experiment = [](std::size_t, Rng& rng) {
    double total = 0.0;
    for (int i = 0; i < 1000; ++i) {
      total += rng.exponential(2.0);
    }
    return total;
  };
  ThreadPool single(1);
  ThreadPool many(8);
  const auto serial =
      parallel_map(16, [&](std::size_t i) {
        Rng rng = make_stream(99, i);
        return experiment(i, rng);
      }, single);
  const auto parallel =
      parallel_map(16, [&](std::size_t i) {
        Rng rng = make_stream(99, i);
        return experiment(i, rng);
      }, many);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
  }
}

TEST(Determinism, ReplicateScalarIsStable) {
  auto fn = [](std::size_t, Rng& rng) { return rng.uniform(); };
  const auto first = sim::replicate_scalar(12, 7, fn);
  const auto second = sim::replicate_scalar(12, 7, fn);
  EXPECT_DOUBLE_EQ(first.summary.mean(), second.summary.mean());
  EXPECT_DOUBLE_EQ(first.interval.half_width, second.interval.half_width);
}

}  // namespace
}  // namespace vmcons
