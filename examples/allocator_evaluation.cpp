// Evaluating a resource-allocation algorithm against the model's bound —
// the paper's Section III-B4(1) application, end to end.
//
// We take the group-1 consolidated pool, compute the model's optimal
// delivered throughput (1 - B) at equal server counts, then measure three
// concrete allocation policies in the simulator and score each one as
// measured / bound. A perfect on-demand resource-flowing implementation
// (like the paper's Rainbow) scores ~1; rigid or expensive policies score
// lower.
//
// Run: ./build/examples/example_allocator_evaluation
#include <iostream>

#include "core/applications.hpp"
#include "core/model.hpp"
#include "datacenter/cluster.hpp"
#include "datacenter/pool_sim.hpp"
#include "sim/replication.hpp"
#include "util/ascii_table.hpp"

int main() {
  using namespace vmcons;

  // The paper's case-study services at group-1 intensity.
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 3, inputs.target_loss);
  db.arrival_rate = core::intensive_workload(db, 3, inputs.target_loss);
  inputs.services = {web, db};

  // The model's bound with M = N = 6 servers.
  const core::QosBound bound = core::allocation_qos_bound(inputs, {3, 3});
  const core::QosBound ideal = core::virtualization_qos_bound(inputs, {3, 3});

  std::cout << "Allocator evaluation against the utility-model bound\n\n";
  print_kv(std::cout, "equalized servers (M = N)", bound.servers, 0);
  print_kv(std::cout, "dedicated loss B", bound.dedicated_loss, 5);
  print_kv(std::cout, "consolidated loss B (model)", bound.consolidated_loss, 5);
  print_kv(std::cout, "QoS improvement bound (1-B ratio)", bound.improvement, 4);
  print_kv(std::cout, "zero-overhead virtualization bound", ideal.improvement, 4);
  std::cout << '\n';

  // Measure real policies at N = 6 consolidated servers, 6 slots each.
  const unsigned servers = 6;
  const unsigned slots = 6;
  dc::PoolConfig config;
  for (const auto& service : inputs.services) {
    config.arrival_rates.push_back(service.arrival_rate);
    config.service_rates.push_back(
        dc::consolidated_slot_rate(service, 2, slots));
  }
  config.servers = servers;
  config.slots_per_server = slots;
  config.horizon = 2000.0;
  config.warmup = 200.0;

  const double dedicated_delivery = 1.0 - bound.dedicated_loss;

  AsciiTable table;
  table.set_header({"policy", "measured loss", "improvement vs dedicated",
                    "score vs bound"});
  struct Candidate {
    const char* name;
    dc::AllocationPolicy policy;
    double overhead;
  };
  for (const Candidate candidate :
       {Candidate{"on-demand flowing (Rainbow-like)",
                  dc::AllocationPolicy::kOnDemandFlowing, 0.0},
        Candidate{"static partition",
                  dc::AllocationPolicy::kStaticPartition, 0.0},
        Candidate{"proportional w/ 1s realloc cost",
                  dc::AllocationPolicy::kProportionalShare, 1.0}}) {
    dc::PoolConfig variant = config;
    variant.allocation = candidate.policy;
    variant.realloc_overhead = candidate.overhead;
    variant.realloc_interval = 10.0;
    const auto loss = sim::replicate_scalar(
        8, 2009, [&](std::size_t, Rng& rng) {
          return dc::simulate_pool(variant, rng).overall_loss();
        });
    const double improvement =
        (1.0 - loss.summary.mean()) / dedicated_delivery;
    table.add_row({candidate.name,
                   AsciiTable::format(loss.summary.mean(), 5),
                   AsciiTable::format(improvement, 4),
                   AsciiTable::format(
                       core::allocation_algorithm_score(bound, improvement),
                       4)});
  }
  table.print(std::cout);

  std::cout << "\nReading the scores: 1.0 means the policy extracts all the "
               "QoS the model says consolidation can deliver at this server "
               "count; the gap below 1.0 is the price of rigidity or "
               "reallocation overhead.\n";
  return 0;
}
