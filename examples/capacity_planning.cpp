// Capacity planning for a heterogeneous data center.
//
// Scenario: an operator runs an e-commerce Web service and an e-book DB
// service (the paper's case study) and owns a mixed fleet — a few dual
// quad-core machines and a shelf of older single quad-cores. The planner
// answers, before deploying anything:
//   1. how many (normalized) servers each deployment style needs;
//   2. which real machines to rack for the consolidated plan;
//   3. how the plan moves as the traffic grows 2x and 4x;
//   4. how expensive tighter loss targets are;
//   5. the full loss-target x growth grid in one parallel sweep;
//   6. how the model itself staffs a two-class fleet (dc::Fleet): per-class
//      server counts and the power split between generations.
//
// Run: ./build/examples/example_capacity_planning
#include <iostream>

#include "core/planner.hpp"
#include "core/sweep.hpp"
#include "util/ascii_table.hpp"

int main() {
  using namespace vmcons;

  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 3, 0.01);
  db.arrival_rate = core::intensive_workload(db, 3, 0.01);

  core::ConsolidationPlanner planner;
  planner.set_target_loss(0.01)
      .add_service(web)
      .add_service(db)
      .add_server_class({"dual-quad-2.0GHz", 1.0, 4, dc::PowerModel{}})
      .add_server_class({"single-quad-2.0GHz", 0.5, 12, dc::PowerModel{}});

  std::cout << "Capacity planning: Web + DB on a mixed fleet\n\n";

  // --- 1+2: today's plan ---------------------------------------------------
  const core::PlanReport today = planner.plan();
  std::cout << "today's workloads: lambda_w = "
            << AsciiTable::format(today.arrival_rates[0], 1)
            << " req/s, lambda_d = "
            << AsciiTable::format(today.arrival_rates[1], 1) << " req/s\n";
  std::cout << "dedicated deployment needs " << today.model.dedicated_servers
            << " reference servers; consolidated needs "
            << today.model.consolidated_servers << ".\n";
  std::cout << "consolidated racking plan: ";
  for (const auto& [name, count] : today.consolidated_assignment.picked) {
    std::cout << count << "x " << name << "  ";
  }
  std::cout << (today.consolidated_assignment.feasible ? "(feasible)"
                                                       : "(INFEASIBLE)")
            << "\n\n";

  // --- 3: growth what-ifs --------------------------------------------------
  AsciiTable growth;
  growth.set_header({"traffic", "M (dedicated)", "N (consolidated)",
                     "power saving %", "plan feasible"});
  for (const double scale : {1.0, 2.0, 4.0}) {
    core::ConsolidationPlanner what_if = planner;
    what_if.scale_workloads(scale);
    const core::PlanReport report = what_if.plan();
    growth.add_row({AsciiTable::format(scale, 0) + "x",
                    std::to_string(report.model.dedicated_servers),
                    std::to_string(report.model.consolidated_servers),
                    AsciiTable::format(report.model.power_saving * 100.0, 1),
                    report.consolidated_assignment.feasible ? "yes" : "NO"});
  }
  growth.print(std::cout, "growth what-ifs");

  // --- 4: the price of nines ----------------------------------------------
  const std::vector<double> targets{0.05, 0.01, 0.001, 0.0001};
  const auto reports = planner.sweep_target_loss(targets);
  AsciiTable nines;
  nines.set_header({"loss target B", "M", "N", "blocking at N"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    nines.add_row({AsciiTable::format(targets[i], 4),
                   std::to_string(reports[i].model.dedicated_servers),
                   std::to_string(reports[i].model.consolidated_servers),
                   AsciiTable::format(reports[i].model.consolidated_blocking, 5)});
  }
  nines.print(std::cout, "\nthe price of nines (same workloads)");

  // --- 5: the joint grid ---------------------------------------------------
  // Sections 3 and 4 one axis at a time; SweepGrid crosses them. The 12
  // plans become one columnar core::ScenarioBatch evaluated in shards over
  // the thread pool through one memoized Erlang kernel, and the cells come
  // back in grid index order (loss varies fastest) no matter how many
  // workers ran them — bit-identical to solving each point on its own.
  core::SweepGrid grid;
  grid.target_losses(targets).workload_scales({1.0, 2.0, 4.0});
  const auto cells = planner.sweep(grid);
  AsciiTable joint;
  joint.set_header({"traffic", "B=0.05", "B=0.01", "B=0.001", "B=0.0001"});
  for (std::size_t row = 0; row < 3; ++row) {
    std::vector<std::string> line{
        AsciiTable::format(*cells[row * targets.size()].point.workload_scale,
                           0) +
        "x"};
    for (std::size_t col = 0; col < targets.size(); ++col) {
      line.push_back(std::to_string(
          cells[row * targets.size() + col].report.model.consolidated_servers));
    }
    joint.add_row(line);
  }
  joint.print(std::cout, "\nconsolidated servers N, loss target x growth");

  // --- 6: fleet-aware staffing --------------------------------------------
  // The inventory above assigns machines *after* the model solves in
  // reference units; a dc::Fleet moves the machine mix *into* the model.
  // Here: a shelf of reference-speed old machines plus six new boxes that
  // are twice as fast but hungrier. The fastest class fills first, so the
  // new generation absorbs the consolidated load and the old shelf only
  // backfills what is left.
  dc::Fleet fleet;
  fleet.add(dc::ServerClass::reference("old-gen",
                                       dc::PowerModel{250.0, 292.5}));
  dc::ServerClass new_gen;
  new_gen.name = "new-gen";
  for (const dc::Resource resource : dc::all_resources()) {
    new_gen.capacity[resource] = 2.0;
  }
  new_gen.power = dc::PowerModel{310.0, 390.0};
  new_gen.count = 6;
  fleet.add(new_gen);

  core::ConsolidationPlanner fleet_planner = planner;
  fleet_planner.set_fleet(fleet);
  const core::ModelResult fleet_plan = fleet_planner.plan().model;
  AsciiTable fleet_table;
  fleet_table.set_header(
      {"class", "speed", "M_c", "N_c", "P_M (W)", "P_N (W)"});
  for (const core::ClassAllocation& alloc : fleet_plan.fleet.classes) {
    fleet_table.add_row(
        {alloc.name, AsciiTable::format(alloc.speed, 1),
         std::to_string(alloc.dedicated_servers),
         std::to_string(alloc.consolidated_servers),
         AsciiTable::format(alloc.dedicated_power_watts, 1),
         AsciiTable::format(alloc.consolidated_power_watts, 1)});
  }
  fleet_table.print(std::cout, "\ntwo-class fleet staffing (model-level)");
  std::cout << "fleet totals: M = " << fleet_plan.fleet.dedicated_total()
            << " physical servers (vs " << fleet_plan.dedicated_servers
            << " reference), N = " << fleet_plan.fleet.consolidated_total()
            << " (vs " << fleet_plan.consolidated_servers << "); power "
            << AsciiTable::format(fleet_plan.dedicated_power_watts, 0)
            << " W -> "
            << AsciiTable::format(fleet_plan.consolidated_power_watts, 0)
            << " W consolidated.\n";

  std::cout << "\nTakeaway: consolidation halves the fleet at every growth "
               "step, and each order of magnitude on the loss target costs "
               "at most one extra shared server at this scale.\n";
  return 0;
}
