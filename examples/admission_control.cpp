// Admission control for a running consolidated pool — the model inverted.
//
// The pool from the paper's group-1 plan (3 consolidated servers) is live.
// Product asks: "can we also host the mail service? at what traffic? and
// how much can existing traffic grow before we must buy server #4?"
// Every answer is one call against the same Erlang machinery.
//
// Run: ./build/examples/example_admission_control
#include <iostream>

#include "core/admission.hpp"
#include "core/model.hpp"
#include "util/ascii_table.hpp"

int main() {
  using namespace vmcons;

  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 3, inputs.target_loss);
  db.arrival_rate = core::intensive_workload(db, 3, inputs.target_loss);
  inputs.services = {web, db};

  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  const auto n = plan.consolidated_servers;

  std::cout << "Admission control on the live consolidated pool\n\n";
  print_kv(std::cout, "pool size N", static_cast<double>(n), 0);
  print_kv(std::cout, "current loss at N", model.consolidated_loss(n), 4);

  // 1. Organic growth headroom.
  const double growth = core::max_workload_scale(inputs, n);
  print_kv(std::cout, "max uniform traffic growth before N+1 (x)", growth, 3);

  // 2. A new service asking to move in.
  dc::ServiceSpec mail;
  mail.name = "mail";
  mail.demand(dc::Resource::kCpu, 250.0, virt::Impact::constant(0.85));
  mail.demand(dc::Resource::kDiskIo, 600.0, virt::Impact::constant(0.8));

  AsciiTable table;
  table.set_header({"pool size", "admissible mail traffic (req/s)"});
  for (std::uint64_t servers = n; servers <= n + 3; ++servers) {
    const double headroom = core::admission_headroom(inputs, mail, servers);
    table.add_row({std::to_string(servers), AsciiTable::format(headroom, 1)});
  }
  table.print(std::cout, "\nadmitting the mail service");

  std::cout << "\nReading: at the planned N the pool runs close to its loss "
               "budget, so the admissible mail traffic is small; each "
               "additional server buys a large block of admissible traffic "
               "(Erlang economies of scale).\n";
  return 0;
}
