// Quickstart: plan a consolidation with the utility analytic model.
//
// Reproduces the paper's case study in a dozen lines: two services (an
// e-commerce Web service and an e-book DB service), a target request-loss
// probability, and the model answers — before running anything — how many
// dedicated servers the services would need, how many consolidated VM-based
// servers suffice for the same QoS, and what that saves in power.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <iostream>

#include "core/model.hpp"
#include "util/ascii_table.hpp"

int main() {
  using namespace vmcons;

  // The paper's case-study services (Section IV-C2). Arrival rates are the
  // "intensive workloads" a 3-server dedicated pool can just afford.
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;  // lose at most 1% of requests

  dc::ServiceSpec web = dc::paper_web_service();  // mu_wi=420, mu_wc=3360
  dc::ServiceSpec db = dc::paper_db_service();    // mu_dc=100
  web.arrival_rate = core::intensive_workload(web, 3, inputs.target_loss);
  db.arrival_rate = core::intensive_workload(db, 3, inputs.target_loss);
  inputs.services = {web, db};

  core::UtilityAnalyticModel model(inputs);
  const core::ModelResult result = model.solve();

  std::cout << "Utility analytic model -- consolidation plan\n\n";
  AsciiTable table;
  table.set_header({"quantity", "dedicated", "consolidated"});
  table.add_row({"servers", std::to_string(result.dedicated_servers),
                 std::to_string(result.consolidated_servers)});
  table.add_row({"utilization", AsciiTable::format(result.dedicated_utilization),
                 AsciiTable::format(result.consolidated_utilization)});
  table.add_row({"power (W)", AsciiTable::format(result.dedicated_power_watts, 1),
                 AsciiTable::format(result.consolidated_power_watts, 1)});
  table.print(std::cout);

  std::cout << '\n';
  print_kv(std::cout, "web workload lambda_w (req/s)", web.arrival_rate, 1);
  print_kv(std::cout, "db workload lambda_d (req/s)", db.arrival_rate, 1);
  print_kv(std::cout, "infrastructure saving", result.infrastructure_saving * 100.0, 1);
  print_kv(std::cout, "power saving (%)", result.power_saving * 100.0, 1);
  print_kv(std::cout, "utilization improvement (x)", result.utilization_improvement, 2);
  print_kv(std::cout, "consolidated blocking at N",
           result.consolidated_blocking, 4);
  return 0;
}
