// Trace-driven planning: record a bursty arrival trace, inspect its
// statistics, and see how the plan changes when the Poisson assumption is
// replaced by what the trace actually shows.
//
// Workflow an operator would follow:
//   1. capture production arrival timestamps (here: a recorded MMPP trace
//      standing in for a real log, exportable/importable as CSV);
//   2. check the Poisson assumption with the dispersion diagnostics;
//   3. plan with the model, then stress the plan in the simulator using the
//      trace's burstiness instead of Poisson arrivals.
//
// Run: ./build/examples/example_trace_replay
#include <iostream>
#include <sstream>

#include "core/model.hpp"
#include "datacenter/loss_network.hpp"
#include "sim/replication.hpp"
#include "util/ascii_table.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace vmcons;

  // --- 1. "production" trace ----------------------------------------------
  Rng recorder(20090831);
  const auto trace =
      workload::ArrivalTrace::record_mmpp(/*mean_rate=*/130.0,
                                          /*burst_ratio=*/4.0,
                                          /*duration=*/3600.0, recorder);
  std::ostringstream csv;
  trace.to_csv(csv);
  const auto reloaded = workload::ArrivalTrace::from_csv(csv.str());

  std::cout << "Trace-driven consolidation planning\n\n";
  print_kv(std::cout, "trace arrivals", static_cast<double>(reloaded.size()), 0);
  print_kv(std::cout, "trace mean rate (req/s)", reloaded.mean_rate(), 1);
  print_kv(std::cout, "index of dispersion (5s windows)",
           reloaded.index_of_dispersion(5.0), 2);
  print_kv(std::cout, "peak-to-mean (5s windows)", reloaded.peak_to_mean(5.0), 2);
  std::cout << "  -> dispersion >> 1: the Poisson assumption is violated\n\n";

  // --- 2. the model's plan at the trace's mean rate ------------------------
  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = reloaded.mean_rate();
  db.arrival_rate = core::intensive_workload(db, 3, inputs.target_loss);
  inputs.services = {web, db};
  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  print_kv(std::cout, "model plan N (Poisson assumption)",
           static_cast<double>(plan.consolidated_servers), 0);

  // --- 3. stress the plan with the trace's burstiness ----------------------
  AsciiTable table;
  table.set_header({"servers", "loss (Poisson)", "loss (trace burstiness)"});
  const double dispersion = reloaded.index_of_dispersion(5.0);
  for (unsigned extra = 0; extra <= 2; ++extra) {
    const auto servers =
        static_cast<unsigned>(plan.consolidated_servers) + extra;
    auto loss_with = [&](double burst_ratio) {
      dc::LossNetworkConfig config;
      config.services = inputs.services;
      config.servers = servers;
      config.vm_count = 2;
      config.horizon = 3000.0;
      config.warmup = 300.0;
      config.burst_ratio = burst_ratio;
      return sim::replicate_scalar(5, 42, [&](std::size_t, Rng& rng) {
               return simulate_loss_network(config, rng).pool.overall_loss();
             })
          .summary.mean();
    };
    table.add_row({std::to_string(servers),
                   AsciiTable::format(loss_with(1.0), 4),
                   AsciiTable::format(loss_with(dispersion), 4)});
  }
  table.print(std::cout, "\nplan under Poisson vs trace-level burstiness");

  std::cout << "\nTakeaway: the trace's burstiness (dispersion ~"
            << AsciiTable::format(dispersion, 1)
            << ") pushes the planned fleet one server higher than the "
               "Poisson model suggests -- measure before you trust "
               "assumption 2.\n";
  return 0;
}
