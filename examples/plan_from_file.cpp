// Plan a consolidation from a scenario file — no recompilation needed.
//
// Usage:
//   ./build/examples/example_plan_from_file [path/to/scenario.ini]
// Defaults to the bundled case-study scenario. The scenario format is
// documented in src/core/scenario_io.hpp.
#include <iostream>

#include "core/report.hpp"
#include "core/scenario_io.hpp"
#include "util/ascii_table.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace vmcons;

  const std::string path =
      argc > 1 ? argv[1] : "examples/scenarios/case_study.ini";
  std::cout << "Planning from scenario: " << path << "\n\n";

  try {
    const core::ConsolidationPlanner planner = core::load_scenario(path);
    const core::PlanReport report = planner.plan();

    core::print_model_result(std::cout, report.model);

    if (!report.consolidated_assignment.picked.empty()) {
      std::cout << "\nconsolidated inventory assignment:\n";
      for (const auto& [name, count] : report.consolidated_assignment.picked) {
        print_kv(std::cout, name, static_cast<double>(count), 0);
      }
      print_kv(std::cout, "assignment feasible",
               std::string(report.consolidated_assignment.feasible ? "yes"
                                                                   : "NO"));
    }
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
