// Power analysis of a consolidation decision — what the CFO asks.
//
// For the paper's group-2 deployment (8 dedicated -> 4 consolidated), this
// example integrates simulated energy over a day of operation and prints
// the kWh and the split between idle draw and workload draw, for both
// platforms — then projects a year of savings.
//
// Run: ./build/examples/example_power_analysis
#include <iostream>

#include "core/model.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"
#include "util/ascii_table.hpp"

int main() {
  using namespace vmcons;

  core::ModelInputs inputs;
  inputs.target_loss = 0.01;
  dc::ServiceSpec web = dc::paper_web_service();
  dc::ServiceSpec db = dc::paper_db_service();
  web.arrival_rate = core::intensive_workload(web, 4, inputs.target_loss);
  db.arrival_rate = core::intensive_workload(db, 4, inputs.target_loss);
  inputs.services = {web, db};

  dc::ScenarioOptions scenario;
  scenario.horizon = 2000.0;
  scenario.warmup = 200.0;

  struct EnergyBreakdown {
    double total_watts = 0.0;
    double idle_watts = 0.0;
  };
  const auto dedicated = sim::replicate(
      6, 3001, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_dedicated(inputs.services, {4, 4}, scenario, rng);
        return EnergyBreakdown{
            outcome.mean_power_watts,
            outcome.idle_energy_joules / outcome.measured_span};
      });
  const auto consolidated = sim::replicate(
      6, 3002, [&](std::size_t, Rng& rng) {
        const auto outcome =
            dc::simulate_consolidated(inputs.services, 4, scenario, rng);
        return EnergyBreakdown{
            outcome.mean_power_watts,
            outcome.idle_energy_joules / outcome.measured_span};
      });

  auto mean = [](const std::vector<EnergyBreakdown>& rows) {
    EnergyBreakdown out;
    for (const auto& row : rows) {
      out.total_watts += row.total_watts;
      out.idle_watts += row.idle_watts;
    }
    out.total_watts /= static_cast<double>(rows.size());
    out.idle_watts /= static_cast<double>(rows.size());
    return out;
  };
  const EnergyBreakdown ded = mean(dedicated);
  const EnergyBreakdown con = mean(consolidated);

  const double hours_per_day = 24.0;
  auto kwh_per_day = [&](double watts) { return watts * hours_per_day / 1000.0; };

  std::cout << "Power analysis: 8 dedicated Linux vs 4 consolidated Xen\n\n";
  AsciiTable table;
  table.set_header({"deployment", "mean power (W)", "idle share (W)",
                    "workload share (W)", "kWh/day"});
  table.add_row({"8 dedicated", AsciiTable::format(ded.total_watts, 1),
                 AsciiTable::format(ded.idle_watts, 1),
                 AsciiTable::format(ded.total_watts - ded.idle_watts, 1),
                 AsciiTable::format(kwh_per_day(ded.total_watts), 1)});
  table.add_row({"4 consolidated", AsciiTable::format(con.total_watts, 1),
                 AsciiTable::format(con.idle_watts, 1),
                 AsciiTable::format(con.total_watts - con.idle_watts, 1),
                 AsciiTable::format(kwh_per_day(con.total_watts), 1)});
  table.print(std::cout);

  const double saving_watts = ded.total_watts - con.total_watts;
  std::cout << '\n';
  print_kv(std::cout, "power saving (%)",
           saving_watts / ded.total_watts * 100.0, 1);
  print_kv(std::cout, "energy saved per day (kWh)", kwh_per_day(saving_watts), 1);
  print_kv(std::cout, "energy saved per year (MWh)",
           kwh_per_day(saving_watts) * 365.0 / 1000.0, 2);

  // The model's own prediction, for comparison (Eq. 12-14).
  core::UtilityAnalyticModel model(inputs);
  const auto plan = model.solve();
  print_kv(std::cout, "model-predicted power saving (%)",
           plan.power_saving * 100.0, 1);

  std::cout << "\nNote how the bill is dominated by idle draw: the big lever "
               "is powering off half the servers, exactly the paper's point; "
               "the Xen platform's 9% idle and 30% dynamic discounts are the "
               "second-order terms.\n";
  return 0;
}
