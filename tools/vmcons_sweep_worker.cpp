// vmcons_sweep_worker: the multi-process face of ShardedSweepDriver.
//
// One binary, four modes:
//
//   --mode worker   claim + evaluate shards of --store through the claim
//                   ledger at --ledger until every shard is committed, then
//                   write this worker's metrics file. The unit a scheduler
//                   (or `--mode run`) launches once per core.
//   --mode merge    fold every committed result file, in shard order, into
//                   one report; print it (add --json for the summed worker
//                   metrics as JSON). Fails loudly on missing, corrupt, or
//                   wrong-store result files.
//   --mode run      fork --workers N worker children over one store, wait
//                   for them, then merge. The parent stays single-threaded
//                   until every fork has happened (workers force
//                   batch.parallel = false), so forking is safe.
//   --mode selftest end-to-end smoke for scripts/tier1.sh: build a small
//                   store in a temp dir, run it through `--mode run`
//                   in-process (optionally killing one worker mid-shard
//                   with _exit), and require the merged report to be
//                   bit-identical to a 1-process StreamingSweep.
//
// Crash drill: `--kill-on-shard K` makes a worker _exit(137) immediately
// after its claim on shard K becomes durable — exactly the kill -9 window
// the lease protocol exists for. A peer (or a relaunched worker) detects
// the dead pid and reclaims the shard.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/scenario_store.hpp"
#include "core/sharded_sweep.hpp"
#include "core/streaming_sweep.hpp"
#include "core/sweep.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "virt/impact.hpp"

namespace {

using namespace vmcons;
using core::MergedSweep;
using core::ScenarioStore;
using core::ShardedSweepDriver;
using core::ShardedSweepOptions;
using core::WorkerReport;

struct Args {
  std::string mode;
  std::string store;
  std::string ledger;
  std::string worker_id;
  int workers = 2;
  long lease_ms = 30000;
  long poll_ms = 25;
  long kill_on_shard = -1;  ///< worker: _exit(137) after claiming this shard
  int kill_worker = -1;     ///< run/selftest: which child gets kill_on_shard
  bool kill_one = false;    ///< selftest: kill worker 0 on its first claim
  bool lease_only = false;  ///< host-portable staleness: no dead-pid probe
  bool json = false;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --mode worker|merge|run|selftest\n"
      << "  --store PATH     scenario store file (worker/merge/run)\n"
      << "  --ledger DIR     claim ledger directory (worker/merge/run)\n"
      << "  --worker-id ID   stable worker name (default w<pid>)\n"
      << "  --workers N      child processes for run/selftest (default 2)\n"
      << "  --lease-ms N     claim lease in ms (default 30000)\n"
      << "  --poll-ms N      idle poll in ms (default 25)\n"
      << "  --kill-on-shard K  _exit(137) after claiming shard K (worker),\n"
      << "                     or in child --kill-worker (run/selftest)\n"
      << "  --kill-worker I  which child of --mode run gets the kill\n"
      << "  --kill-one       selftest: kill one worker on its first claim\n"
      << "  --lease-only     reclaim strictly by lease expiry (disable the\n"
      << "                   same-host dead-pid fast path; the mode for\n"
      << "                   ledgers on shared filesystems)\n"
      << "  --json           machine-readable metrics output\n";
  return 2;
}

std::optional<Args> parse_args(int argc, char** argv) {
  Args args;
  // Fleet width defaults to VMCONS_WORKERS (the knob CI and wrapper scripts
  // set once for the machine); --workers still overrides per invocation.
  if (const char* env = std::getenv("VMCONS_WORKERS")) {
    const int workers = std::atoi(env);
    if (workers >= 1) {
      args.workers = workers;
    }
  }
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--json") {
      args.json = true;
    } else if (flag == "--kill-one") {
      args.kill_one = true;
    } else if (flag == "--lease-only") {
      args.lease_only = true;
    } else if ((v = value(i)) == nullptr) {
      std::cerr << flag << " needs a value\n";
      return std::nullopt;
    } else if (flag == "--mode") {
      args.mode = v;
    } else if (flag == "--store") {
      args.store = v;
    } else if (flag == "--ledger") {
      args.ledger = v;
    } else if (flag == "--worker-id") {
      args.worker_id = v;
    } else if (flag == "--workers") {
      args.workers = std::atoi(v);
    } else if (flag == "--lease-ms") {
      args.lease_ms = std::atol(v);
    } else if (flag == "--poll-ms") {
      args.poll_ms = std::atol(v);
    } else if (flag == "--kill-on-shard") {
      args.kill_on_shard = std::atol(v);
    } else if (flag == "--kill-worker") {
      args.kill_worker = std::atoi(v);
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return std::nullopt;
    }
  }
  return args;
}

ShardedSweepOptions driver_options(const Args& args) {
  ShardedSweepOptions options;
  // Processes are the parallelism: one worker per core, serial inside. This
  // also keeps the parent fork-safe in --mode run (no threads pre-fork).
  options.batch.parallel = false;
  options.batch.policy = core::FailurePolicy::kQuarantine;
  options.ledger_dir = args.ledger;
  options.worker_id = args.worker_id;
  options.lease = std::chrono::milliseconds(args.lease_ms);
  options.poll = std::chrono::milliseconds(args.poll_ms);
  options.lease_only = args.lease_only;
  if (args.kill_on_shard >= 0) {
    const auto target = static_cast<std::size_t>(args.kill_on_shard);
    options.on_claimed = [target](std::size_t shard) {
      if (shard == target) {
        // Simulated kill -9: no destructors, no release — the claim file
        // stays behind with our (about to be dead) pid in it.
        ::_exit(137);
      }
    };
  }
  return options;
}

int run_worker(const Args& args) {
  const ScenarioStore store(args.store);
  const ShardedSweepDriver driver(driver_options(args));
  const WorkerReport report = driver.run_worker(store);
  driver.write_worker_metrics();
  if (args.json) {
    core::print_metrics_json(std::cout);
    std::cout << '\n';
  } else {
    std::cout << "worker " << driver.worker_id() << ": evaluated "
              << report.shards_evaluated << " shards ("
              << report.scenarios_evaluated << " scenarios), reclaimed "
              << report.leases_reclaimed << " leases"
              << (report.cancelled ? ", cancelled" : "")
              << (report.deadline_exceeded ? ", deadline exceeded" : "")
              << "\n";
  }
  return report.cancelled || report.deadline_exceeded ? 1 : 0;
}

int run_merge(const Args& args) {
  const ScenarioStore store(args.store);
  const ShardedSweepDriver driver(driver_options(args));
  const MergedSweep merged = driver.merge(store);
  std::cout << "merged " << merged.report.shards_completed << "/"
            << merged.report.shards_total << " shards, "
            << merged.report.scenarios_evaluated << " scenarios, "
            << merged.report.failures.size() << " quarantined, "
            << merged.metrics_files << " worker metrics files\n";
  if (args.json) {
    std::cout << "{\"worker_metrics\": {";
    bool first = true;
    for (const auto& [name, sum] : merged.worker_metrics) {
      std::cout << (first ? "" : ", ") << '"' << name << "\": " << sum;
      first = false;
    }
    std::cout << "}}\n";
  }
  return 0;
}

/// Forks `workers` children, each running the worker loop in-process; waits
/// for all of them; reports per-child exits. Child `kill_worker` gets the
/// --kill-on-shard hook (on its *first* claim when kill_on_shard is -1 but
/// kill_worker is set). Returns the count of children that died abnormally
/// for reasons OTHER than the requested kill.
int fork_workers(const Args& args, const std::string& store_path,
                 const std::string& ledger_dir, bool quiet) {
  std::vector<::pid_t> children;
  for (int w = 0; w < args.workers; ++w) {
    const ::pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return -1;
    }
    if (pid == 0) {
      Args child = args;
      child.store = store_path;
      child.ledger = ledger_dir;
      child.worker_id = "w" + std::to_string(w);
      child.json = false;
      if (w != args.kill_worker) {
        child.kill_on_shard = -1;
      } else if (child.kill_on_shard < 0) {
        // "kill this worker on whatever it claims first": shard index 0 is
        // not guaranteed to be its first claim, so hook every shard.
        ShardedSweepOptions options = driver_options(child);
        options.worker_id = child.worker_id;
        options.on_claimed = [](std::size_t) { ::_exit(137); };
        try {
          const ScenarioStore store(child.store);
          const ShardedSweepDriver driver(std::move(options));
          driver.run_worker(store);
          driver.write_worker_metrics();
        } catch (const std::exception& error) {
          std::cerr << "worker " << child.worker_id << ": " << error.what()
                    << "\n";
          ::_exit(1);
        }
        ::_exit(0);
      }
      try {
        ::_exit(run_worker(child));
      } catch (const std::exception& error) {
        std::cerr << "worker " << child.worker_id << ": " << error.what()
                  << "\n";
        ::_exit(1);
      }
    }
    children.push_back(pid);
  }

  int unexpected = 0;
  for (int w = 0; w < static_cast<int>(children.size()); ++w) {
    int status = 0;
    if (::waitpid(children[w], &status, 0) < 0) {
      std::perror("waitpid");
      ++unexpected;
      continue;
    }
    const bool killed_on_purpose =
        w == args.kill_worker && WIFEXITED(status) &&
        WEXITSTATUS(status) == 137;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!quiet) {
      std::cout << "worker w" << w << ": "
                << (clean ? "ok"
                          : killed_on_purpose ? "killed mid-shard (drill)"
                                              : "FAILED")
                << "\n";
    }
    if (!clean && !killed_on_purpose) {
      ++unexpected;
    }
  }
  return unexpected;
}

int run_fleet(const Args& args) {
  if (args.workers < 1) {
    std::cerr << "--workers must be >= 1\n";
    return 2;
  }
  const int unexpected = fork_workers(args, args.store, args.ledger, false);
  if (unexpected != 0) {
    std::cerr << unexpected << " workers failed unexpectedly\n";
    return 1;
  }
  if (args.kill_worker >= 0) {
    // The killed worker's shards are still unclaimed or stale-leased; one
    // relaunched worker sweeps up the remainder before the merge.
    Args sweeper = args;
    sweeper.kill_worker = -1;
    sweeper.kill_on_shard = -1;
    sweeper.worker_id = "sweeper";
    sweeper.json = false;
    const int rc = run_worker(sweeper);
    if (rc != 0) {
      return rc;
    }
  }
  return run_merge(args);
}

// --- selftest -------------------------------------------------------------

/// The streaming-sweep test suite's small scenario space: two services,
/// 12 grid points, shard size 2 -> 6 shards.
core::ConsolidationPlanner small_planner() {
  core::ConsolidationPlanner planner;
  planner.set_target_loss(0.01);
  dc::ServiceSpec web;
  web.name = "web";
  web.arrival_rate = 120.0;
  web.demand(dc::Resource::kCpu, 180.0, virt::Impact::constant(0.8));
  web.demand(dc::Resource::kNetwork, 400.0, virt::Impact::constant(0.9));
  planner.add_service(web);
  dc::ServiceSpec db;
  db.name = "db";
  db.arrival_rate = 60.0;
  db.demand(dc::Resource::kCpu, 90.0, virt::Impact::constant(0.75));
  db.demand(dc::Resource::kDiskIo, 150.0, virt::Impact::constant(0.7));
  planner.add_service(db);
  return planner;
}

core::SweepGrid small_grid() {
  core::SweepGrid grid;
  grid.target_losses({0.005, 0.01, 0.05})
      .vms_per_server({2, 3})
      .workload_scales({1.0, 1.4});
  return grid;
}

int run_selftest(const Args& args) {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/vmcons_sweep_selftest_" +
                           std::to_string(static_cast<long long>(::getpid()));
  const std::string store_path = base + ".store";
  const std::string ledger_dir = base + ".ledger";

  const core::ConsolidationPlanner planner = small_planner();
  core::write_sweep_store(planner, small_grid(), store_path, 2);
  const ScenarioStore store(store_path);

  // Reference: 1-process StreamingSweep, serial, no checkpoint.
  core::StreamingSweepOptions reference_options;
  reference_options.batch.parallel = false;
  reference_options.batch.policy = core::FailurePolicy::kQuarantine;
  const core::StreamingSweep reference(reference_options);
  const core::StreamingSweepReport expected = reference.run(store);

  Args fleet = args;
  fleet.store = store_path;
  fleet.ledger = ledger_dir;
  // Short lease: the drill must reclaim the killed worker's shard quickly.
  fleet.lease_ms = std::min(fleet.lease_ms, 2000L);
  if (args.kill_one) {
    fleet.kill_worker = 0;
  }
  const int unexpected = fork_workers(fleet, store_path, ledger_dir, true);
  if (unexpected != 0) {
    std::cerr << "selftest: " << unexpected << " workers failed\n";
    return 1;
  }
  if (args.kill_one) {
    Args sweeper = fleet;
    sweeper.kill_worker = -1;
    sweeper.kill_on_shard = -1;
    sweeper.worker_id = "sweeper";
    sweeper.json = false;
    if (run_worker(sweeper) != 0) {
      std::cerr << "selftest: sweeper worker failed\n";
      return 1;
    }
  }

  const ShardedSweepDriver merger(driver_options(fleet));
  const MergedSweep merged = merger.merge(store);

  bool identical =
      merged.report.shards_completed == expected.shards_total &&
      merged.report.scenarios_evaluated == expected.scenarios_evaluated &&
      merged.report.shard_checksums == expected.shard_checksums &&
      merged.report.failures.size() == expected.failures.size();
  if (!identical) {
    std::cerr << "selftest: merged report differs from 1-process streaming "
                 "sweep (shards "
              << merged.report.shards_completed << "/"
              << expected.shards_total << ", scenarios "
              << merged.report.scenarios_evaluated << "/"
              << expected.scenarios_evaluated << ")\n";
    for (std::size_t i = 0; i < expected.shard_checksums.size(); ++i) {
      if (i >= merged.report.shard_checksums.size() ||
          merged.report.shard_checksums[i] != expected.shard_checksums[i]) {
        std::cerr << "  shard " << i << " checksum mismatch\n";
      }
    }
    return 1;
  }

  std::cout << "selftest ok: " << fleet.workers << " workers"
            << (args.lease_only ? " [lease-only staleness]" : "")
            << (args.kill_one ? " (one killed mid-shard and reclaimed)" : "")
            << ", " << merged.report.shards_completed
            << " shards merged bit-identical to 1-process streaming sweep\n";

  // Best-effort cleanup; a leftover temp dir is not a test failure.
  std::remove(store_path.c_str());
  std::error_code ec;
  std::filesystem::remove_all(ledger_dir, ec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> args = parse_args(argc, argv);
  if (!args.has_value()) {
    return usage(argv[0]);
  }
  try {
    if (args->mode == "worker") {
      return run_worker(*args);
    }
    if (args->mode == "merge") {
      return run_merge(*args);
    }
    if (args->mode == "run") {
      return run_fleet(*args);
    }
    if (args->mode == "selftest") {
      return run_selftest(*args);
    }
    return usage(argv[0]);
  } catch (const std::exception& error) {
    std::cerr << argv[0] << ": " << error.what() << "\n";
    return 1;
  }
}
