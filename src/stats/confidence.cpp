#include "stats/confidence.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace vmcons {

ConfidenceInterval mean_confidence_interval(const Summary& summary,
                                            double confidence) {
  VMCONS_REQUIRE(summary.count() >= 2,
                 "confidence interval needs at least two samples");
  const double dof = static_cast<double>(summary.count() - 1);
  const double t = student_t_critical(confidence, dof);
  ConfidenceInterval interval;
  interval.mean = summary.mean();
  interval.half_width = t * summary.stderror();
  interval.lower = interval.mean - interval.half_width;
  interval.upper = interval.mean + interval.half_width;
  return interval;
}

ConfidenceInterval proportion_confidence_interval(double successes,
                                                  double trials,
                                                  double confidence) {
  VMCONS_REQUIRE(trials > 0.0, "proportion interval needs trials > 0");
  VMCONS_REQUIRE(successes >= 0.0 && successes <= trials,
                 "successes must lie in [0, trials]");
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double p = successes / trials;
  const double z2 = z * z;
  const double denominator = 1.0 + z2 / trials;
  const double center = (p + z2 / (2.0 * trials)) / denominator;
  const double spread =
      z * std::sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)) /
      denominator;
  ConfidenceInterval interval;
  interval.mean = p;
  interval.lower = center - spread;
  interval.upper = center + spread;
  interval.half_width = spread;
  return interval;
}

}  // namespace vmcons
