// Batch-means confidence intervals for single-run simulation output.
//
// Replicated runs (sim/replication.hpp) are the library's default output-
// analysis method; batch means is the classical alternative when only one
// long run is affordable: split the post-warmup observations into B
// contiguous batches, treat the batch means as (approximately) independent
// samples, and form a t-interval over them. The lag-1 autocorrelation of
// the batch means diagnoses whether the batches are long enough.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/confidence.hpp"

namespace vmcons {

struct BatchMeansResult {
  double mean = 0.0;
  ConfidenceInterval interval;
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  /// Lag-1 autocorrelation of the batch means; |r1| < ~0.2 suggests the
  /// batches are long enough for the independence approximation.
  double lag1_autocorrelation = 0.0;
  bool batches_look_independent = false;
};

/// Batch-means analysis of a stationary observation sequence.
/// Requires observations.size() >= 2 * batches; trailing remainder
/// observations are dropped so batches are equal-sized.
BatchMeansResult batch_means(const std::vector<double>& observations,
                             std::size_t batches = 20,
                             double confidence = 0.95);

/// Lag-k autocorrelation of a sequence (biased estimator, standard for
/// output analysis).
double autocorrelation(const std::vector<double>& series, std::size_t lag);

}  // namespace vmcons
