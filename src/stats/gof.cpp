#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"
#include "util/error.hpp"

namespace vmcons {

GofResult chi_squared_test(const std::vector<double>& observed,
                           const std::vector<double>& expected,
                           std::size_t estimated_parameters) {
  VMCONS_REQUIRE(observed.size() == expected.size() && observed.size() >= 2,
                 "chi-squared test needs matching categories (>= 2)");
  // Pool sparse categories left to right so each pooled expected >= 5.
  std::vector<double> pooled_observed;
  std::vector<double> pooled_expected;
  double acc_observed = 0.0;
  double acc_expected = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_observed += observed[i];
    acc_expected += expected[i];
    if (acc_expected >= 5.0) {
      pooled_observed.push_back(acc_observed);
      pooled_expected.push_back(acc_expected);
      acc_observed = 0.0;
      acc_expected = 0.0;
    }
  }
  if (acc_expected > 0.0) {
    if (pooled_expected.empty()) {
      pooled_observed.push_back(acc_observed);
      pooled_expected.push_back(acc_expected);
    } else {
      pooled_observed.back() += acc_observed;
      pooled_expected.back() += acc_expected;
    }
  }
  VMCONS_REQUIRE(pooled_expected.size() >= 2,
                 "chi-squared test has too few categories after pooling");

  GofResult result;
  for (std::size_t i = 0; i < pooled_expected.size(); ++i) {
    const double delta = pooled_observed[i] - pooled_expected[i];
    result.statistic += delta * delta / pooled_expected[i];
  }
  const double dof = static_cast<double>(pooled_expected.size()) - 1.0 -
                     static_cast<double>(estimated_parameters);
  result.dof = std::max(1.0, dof);
  result.p_value = 1.0 - chi_squared_cdf(result.statistic, result.dof);
  return result;
}

GofResult poisson_gof(const std::vector<std::uint64_t>& counts, double mean) {
  VMCONS_REQUIRE(!counts.empty(), "poisson_gof needs samples");
  VMCONS_REQUIRE(mean > 0.0, "poisson_gof needs mean > 0");
  const std::uint64_t max_count =
      *std::max_element(counts.begin(), counts.end());
  const std::size_t categories = static_cast<std::size_t>(max_count) + 2;
  std::vector<double> observed(categories, 0.0);
  for (const std::uint64_t c : counts) {
    observed[static_cast<std::size_t>(c)] += 1.0;
  }
  const double n = static_cast<double>(counts.size());
  std::vector<double> expected(categories, 0.0);
  double cumulative = 0.0;
  for (std::size_t k = 0; k + 1 < categories; ++k) {
    expected[k] = n * poisson_pmf(k, mean);
    cumulative += expected[k];
  }
  expected[categories - 1] = std::max(0.0, n - cumulative);  // tail mass
  return chi_squared_test(observed, expected, /*estimated_parameters=*/0);
}

GofResult exponential_gof(const std::vector<double>& samples, double rate,
                          std::size_t bins) {
  VMCONS_REQUIRE(samples.size() >= bins * 5, "exponential_gof needs >= 5 per bin");
  VMCONS_REQUIRE(rate > 0.0 && bins >= 2, "exponential_gof domain error");
  // Equal-probability bins: edges at quantiles k/bins of Exp(rate).
  std::vector<double> observed(bins, 0.0);
  for (const double sample : samples) {
    const double u = exponential_cdf(sample, rate);
    auto index = static_cast<std::size_t>(u * static_cast<double>(bins));
    observed[std::min(index, bins - 1)] += 1.0;
  }
  const double per_bin = static_cast<double>(samples.size()) / static_cast<double>(bins);
  std::vector<double> expected(bins, per_bin);
  return chi_squared_test(observed, expected, /*estimated_parameters=*/0);
}

}  // namespace vmcons
