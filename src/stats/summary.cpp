#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace vmcons {

void Summary::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::stderror() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace vmcons
