#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vmcons {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  VMCONS_REQUIRE(hi > lo, "histogram range must be nonempty");
  VMCONS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const auto index = static_cast<std::size_t>((value - lo_) / width_);
  ++counts_[std::min(index, counts_.size() - 1)];
}

double Histogram::bin_center(std::size_t index) const {
  VMCONS_REQUIRE(index < counts_.size(), "histogram bin index out of range");
  return lo_ + (static_cast<double>(index) + 0.5) * width_;
}

double Histogram::quantile(double q) const {
  VMCONS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = seen + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double fraction = (target - seen) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + fraction) * width_;
    }
    seen = next;
  }
  return hi_;
}

PercentileSketch::PercentileSketch(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  VMCONS_REQUIRE(capacity > 0, "sketch capacity must be positive");
  samples_.reserve(std::min<std::size_t>(capacity, 4096));
}

void PercentileSketch::add(double value) {
  ++seen_;
  sorted_ = false;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  // Vitter's algorithm R: replace a random retained sample with
  // probability capacity/seen.
  const std::uint64_t slot = rng_.uniform_index(seen_);
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = value;
  }
}

double PercentileSketch::quantile(double q) const {
  VMCONS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double position = q * static_cast<double>(samples_.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lower] * (1.0 - fraction) + samples_[lower + 1] * fraction;
}

}  // namespace vmcons
