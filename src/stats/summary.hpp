// Streaming summary statistics (Welford) with exact merge.
//
// Used by every measurement path in the library: response times, power
// samples, per-replication loss probabilities. Merge allows per-thread
// accumulators in parallel sweeps to combine without double counting.
#pragma once

#include <cstdint>
#include <limits>

namespace vmcons {

class Summary {
 public:
  /// Adds one observation.
  void add(double value) noexcept;

  /// Merges another summary (Chan et al. parallel-variance formula).
  void merge(const Summary& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Standard error of the mean; 0 when fewer than two samples.
  double stderror() const noexcept;

  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vmcons
