#include "stats/timeweighted.hpp"

#include <algorithm>

namespace vmcons {

void TimeWeighted::set(double now, double value) noexcept {
  if (now > last_time_) {
    accumulated_ += value_ * (now - last_time_);
    last_time_ = now;
  }
  value_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeighted::integral(double now) const noexcept {
  double total = accumulated_;
  if (now > last_time_) {
    total += value_ * (now - last_time_);
  }
  return total;
}

double TimeWeighted::average(double now) const noexcept {
  const double span = now - start_time_;
  if (span <= 0.0) {
    return value_;
  }
  return integral(now) / span;
}

}  // namespace vmcons
