#include "stats/distributions.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace vmcons {
namespace {

// Lanczos g=7, n=9 coefficients.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

double gamma_series(double a, double x) {
  // Series representation of P(a,x), converges fast for x < a + 1.
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

double gamma_continued_fraction(double a, double x) {
  // Lentz's algorithm for Q(a,x), converges fast for x >= a + 1.
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) {
      d = tiny;
    }
    c = b + an / c;
    if (std::abs(c) < tiny) {
      c = tiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double log_gamma(double x) {
  VMCONS_REQUIRE(x > 0.0, "log_gamma requires x > 0");
  if (x < 0.5) {
    // Reflection formula keeps accuracy near zero.
    return std::log(std::numbers::pi / std::sin(std::numbers::pi * x)) -
           log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczos[0];
  for (int i = 1; i < 9; ++i) {
    sum += kLanczos[i] / (z + static_cast<double>(i));
  }
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * std::numbers::pi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double regularized_gamma_p(double a, double x) {
  VMCONS_REQUIRE(a > 0.0 && x >= 0.0, "regularized_gamma_p domain error");
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return gamma_series(a, x);
  }
  return 1.0 - gamma_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  VMCONS_REQUIRE(a > 0.0 && x >= 0.0, "regularized_gamma_q domain error");
  if (x == 0.0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - gamma_series(a, x);
  }
  return gamma_continued_fraction(a, x);
}

double normal_pdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double normal_quantile(double p) {
  VMCONS_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double error = normal_cdf(x) - p;
  const double u = error * std::sqrt(2.0 * std::numbers::pi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double poisson_pmf(std::uint64_t k, double mean) {
  VMCONS_REQUIRE(mean > 0.0, "poisson_pmf requires mean > 0");
  const double kd = static_cast<double>(k);
  return std::exp(kd * std::log(mean) - mean - log_gamma(kd + 1.0));
}

double poisson_cdf(std::uint64_t k, double mean) {
  VMCONS_REQUIRE(mean > 0.0, "poisson_cdf requires mean > 0");
  return regularized_gamma_q(static_cast<double>(k) + 1.0, mean);
}

double exponential_cdf(double x, double rate) {
  VMCONS_REQUIRE(rate > 0.0, "exponential_cdf requires rate > 0");
  if (x <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-rate * x);
}

double chi_squared_cdf(double x, double dof) {
  VMCONS_REQUIRE(dof > 0.0, "chi_squared_cdf requires dof > 0");
  if (x <= 0.0) {
    return 0.0;
  }
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

double student_t_critical(double confidence, double dof) {
  VMCONS_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0,1)");
  VMCONS_REQUIRE(dof >= 1.0, "dof must be >= 1");
  const double z = normal_quantile(0.5 + confidence / 2.0);
  if (dof >= 200.0) {
    return z;
  }
  // Cornish-Fisher style expansion of the t quantile around the normal one.
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
  const double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
  return z + g1 / dof + g2 / (dof * dof) + g3 / (dof * dof * dof);
}

}  // namespace vmcons
