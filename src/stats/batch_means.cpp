#include "stats/batch_means.hpp"

#include <cmath>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace vmcons {

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  VMCONS_REQUIRE(series.size() > lag + 1, "series too short for this lag");
  Summary summary;
  for (const double value : series) {
    summary.add(value);
  }
  const double mean = summary.mean();
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    denominator += (series[i] - mean) * (series[i] - mean);
    if (i + lag < series.size()) {
      numerator += (series[i] - mean) * (series[i + lag] - mean);
    }
  }
  if (denominator <= 0.0) {
    return 0.0;
  }
  return numerator / denominator;
}

BatchMeansResult batch_means(const std::vector<double>& observations,
                             std::size_t batches, double confidence) {
  VMCONS_REQUIRE(batches >= 2, "need at least two batches");
  VMCONS_REQUIRE(observations.size() >= 2 * batches,
                 "need at least two observations per batch");

  BatchMeansResult result;
  result.batches = batches;
  result.batch_size = observations.size() / batches;

  std::vector<double> means;
  means.reserve(batches);
  Summary across;
  for (std::size_t b = 0; b < batches; ++b) {
    Summary batch;
    for (std::size_t i = 0; i < result.batch_size; ++i) {
      batch.add(observations[b * result.batch_size + i]);
    }
    means.push_back(batch.mean());
    across.add(batch.mean());
  }
  result.mean = across.mean();
  result.interval = mean_confidence_interval(across, confidence);
  result.lag1_autocorrelation = autocorrelation(means, 1);
  result.batches_look_independent =
      std::abs(result.lag1_autocorrelation) < 0.2;
  return result;
}

}  // namespace vmcons
