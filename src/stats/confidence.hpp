// Confidence intervals for replicated-simulation estimates.
#pragma once

#include "stats/summary.hpp"

namespace vmcons {

struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double half_width = 0.0;

  bool contains(double value) const noexcept {
    return value >= lower && value <= upper;
  }
};

/// Student-t confidence interval for the mean of the summarized samples.
/// Requires at least two samples; `confidence` defaults to 95%.
ConfidenceInterval mean_confidence_interval(const Summary& summary,
                                            double confidence = 0.95);

/// Wilson score interval for a binomial proportion (loss probabilities from
/// counted arrivals), which stays valid near p = 0 where the Wald interval
/// collapses.
ConfidenceInterval proportion_confidence_interval(double successes,
                                                  double trials,
                                                  double confidence = 0.95);

}  // namespace vmcons
