// Time-weighted average of a piecewise-constant signal.
//
// Server utilization, busy-server counts, and instantaneous power are all
// step functions of simulated time; their averages must be weighted by how
// long each level was held, not by how many transitions occurred.
#pragma once

namespace vmcons {

class TimeWeighted {
 public:
  /// Starts the signal at `value` at time `start`.
  explicit TimeWeighted(double start_time = 0.0, double initial_value = 0.0) noexcept
      : last_time_(start_time), value_(initial_value) {}

  /// Records that the signal changed to `value` at time `now` (now must be
  /// monotonically nondecreasing; equal times are allowed and contribute 0).
  void set(double now, double value) noexcept;

  /// Adds `delta` to the current level at time `now`.
  void add(double now, double delta) noexcept { set(now, value_ + delta); }

  /// Current level.
  double value() const noexcept { return value_; }

  /// Integral of the signal from start to `now` (closing the last segment).
  double integral(double now) const noexcept;

  /// Time-average of the signal over [start, now].
  double average(double now) const noexcept;

  /// Maximum level observed so far.
  double peak() const noexcept { return peak_; }

 private:
  double last_time_;
  double value_;
  double accumulated_ = 0.0;
  double start_time_ = last_time_;
  double peak_ = value_;
};

}  // namespace vmcons
