// Probability distributions: pdf/cdf/quantiles needed by the queueing
// solvers, confidence intervals, and goodness-of-fit tests.
//
// All functions are pure and validated against reference values in the test
// suite. Incomplete-gamma based CDFs use Lentz continued fractions / series,
// accurate to ~1e-12 over the parameter ranges exercised here.
#pragma once

#include <cstdint>

namespace vmcons {

/// ln Γ(x) for x > 0 (Lanczos approximation).
double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Standard normal pdf.
double normal_pdf(double x);

/// Standard normal cdf via erfc.
double normal_cdf(double x);

/// Inverse standard normal cdf (Acklam's rational approximation, refined by
/// one Halley step); p in (0, 1).
double normal_quantile(double p);

/// Poisson pmf P(X = k) for mean > 0.
double poisson_pmf(std::uint64_t k, double mean);

/// Poisson cdf P(X <= k).
double poisson_cdf(std::uint64_t k, double mean);

/// Exponential cdf with given rate.
double exponential_cdf(double x, double rate);

/// Chi-square cdf with k degrees of freedom.
double chi_squared_cdf(double x, double dof);

/// Student-t two-sided critical value t such that P(|T| <= t) = confidence,
/// for the given degrees of freedom. Exact normal limit for dof >= 200;
/// otherwise uses a bisection on the incomplete-beta-free Hill approximation
/// (adequate to ~1e-3, plenty for simulation CIs).
double student_t_critical(double confidence, double dof);

}  // namespace vmcons
