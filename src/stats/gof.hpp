// Chi-square goodness-of-fit tests for the workload generators.
//
// Used by tests and by the burstiness ablation to confirm that the Poisson
// arrival generator really produces Poisson counts and that exponential
// service draws really are exponential.
#pragma once

#include <cstdint>
#include <vector>

namespace vmcons {

struct GofResult {
  double statistic = 0.0;  ///< chi-square statistic
  double dof = 0.0;        ///< degrees of freedom after pooling
  double p_value = 0.0;    ///< P(chi2 >= statistic) under H0

  /// True if the hypothesis is NOT rejected at the given significance.
  bool accept(double significance = 0.01) const noexcept {
    return p_value >= significance;
  }
};

/// Tests observed category counts against expected counts. Categories with
/// expected count < 5 are pooled into their neighbour, per standard practice.
GofResult chi_squared_test(const std::vector<double>& observed,
                           const std::vector<double>& expected,
                           std::size_t estimated_parameters = 0);

/// Tests integer counts (e.g. arrivals per interval) against Poisson(mean).
GofResult poisson_gof(const std::vector<std::uint64_t>& counts, double mean);

/// Tests nonnegative samples against Exponential(rate) using equal-probability
/// bins.
GofResult exponential_gof(const std::vector<double>& samples, double rate,
                          std::size_t bins = 20);

}  // namespace vmcons
