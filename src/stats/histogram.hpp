// Fixed-bin histogram plus exact percentiles from retained samples.
//
// Histogram: O(1) insert into uniform bins over [lo, hi) with underflow and
// overflow buckets — used for response-time distributions in the workload
// drivers. PercentileSketch: retains (optionally reservoir-sampled) values
// and answers arbitrary quantiles exactly over what it kept.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace vmcons {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside land in under/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t index) const { return counts_.at(index); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Midpoint of a bin, for plotting.
  double bin_center(std::size_t index) const;

  /// Approximate quantile (linear within the containing bin).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

class PercentileSketch {
 public:
  /// Keeps at most `capacity` samples; beyond that, reservoir-samples with
  /// the provided seed so quantiles stay unbiased.
  explicit PercentileSketch(std::size_t capacity = 1 << 16,
                            std::uint64_t seed = 0x5ca1ab1e);

  void add(double value);

  std::uint64_t count() const noexcept { return seen_; }

  /// Exact quantile over retained samples; q in [0, 1].
  double quantile(double q) const;

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  mutable bool sorted_ = false;
  mutable std::vector<double> samples_;
  Rng rng_;
};

}  // namespace vmcons
