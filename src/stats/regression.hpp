// Least-squares fitting used by the virtualization-impact calibration.
//
// The paper fits its impact-factor curves with ordinary linear regression
// (Figs. 5b, 6b) and a rational curve for the DB service (Fig. 8b). We
// provide:
//   * fit_linear        y = slope*x + intercept        (closed form)
//   * fit_polynomial    y = sum c_k x^k                (normal equations)
//   * fit_rational_sat  y = A x^2 / (x^2 + Bsq)        (1-D golden search
//                        over Bsq with A solved in closed form)
// each reporting R^2 against the input samples.
#pragma once

#include <cstddef>
#include <vector>

namespace vmcons {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;

  double operator()(double x) const noexcept { return slope * x + intercept; }
};

struct PolynomialFit {
  std::vector<double> coefficients;  ///< c0 + c1 x + c2 x^2 + ...
  double r_squared = 0.0;

  double operator()(double x) const noexcept;
};

struct RationalSaturatingFit {
  double amplitude = 0.0;   ///< A in A x^2 / (x^2 + Bsq)
  double half_point = 0.0;  ///< Bsq
  double r_squared = 0.0;

  double operator()(double x) const noexcept {
    const double xx = x * x;
    return amplitude * xx / (xx + half_point);
  }
};

/// Ordinary least squares for y = slope*x + intercept. Needs >= 2 points
/// with distinct x.
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Polynomial least squares of the given degree via normal equations with
/// Gaussian elimination (degree <= 6 supported; inputs are well-conditioned
/// for VM counts 1..16).
PolynomialFit fit_polynomial(const std::vector<double>& x,
                             const std::vector<double>& y, std::size_t degree);

/// Fits y = A x^2 / (x^2 + Bsq), the DB impact-factor shape of Fig. 8(b).
RationalSaturatingFit fit_rational_saturating(const std::vector<double>& x,
                                              const std::vector<double>& y);

/// Coefficient of determination of predictions vs observations.
double r_squared(const std::vector<double>& observed,
                 const std::vector<double>& predicted);

}  // namespace vmcons
