#include "stats/regression.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vmcons {
namespace {

void check_xy(const std::vector<double>& x, const std::vector<double>& y,
              std::size_t minimum) {
  VMCONS_REQUIRE(x.size() == y.size(), "regression inputs differ in length");
  VMCONS_REQUIRE(x.size() >= minimum, "regression needs more samples");
}

/// Solves the square system a*x = b in place; returns x. The matrices built
/// from Vandermonde normal equations at degree <= 6 are small and well
/// conditioned for the VM-count domains used here.
std::vector<double> solve_gauss(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) {
        pivot = row;
      }
    }
    if (std::abs(a[pivot][col]) < 1e-14) {
      throw NumericError("singular normal equations in polynomial fit");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= a[i][k] * x[k];
    }
    x[i] = sum / a[i][i];
  }
  return x;
}

}  // namespace

double r_squared(const std::vector<double>& observed,
                 const std::vector<double>& predicted) {
  VMCONS_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
                 "r_squared inputs differ in length or are empty");
  double mean = 0.0;
  for (const double value : observed) {
    mean += value;
  }
  mean /= static_cast<double>(observed.size());
  double ss_total = 0.0;
  double ss_residual = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_total += (observed[i] - mean) * (observed[i] - mean);
    ss_residual += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  if (ss_total <= 0.0) {
    return ss_residual <= 1e-30 ? 1.0 : 0.0;
  }
  return 1.0 - ss_residual / ss_total;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  check_xy(x, y, 2);
  const double n = static_cast<double>(x.size());
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xx += x[i] * x[i];
    sum_xy += x[i] * y[i];
  }
  const double denominator = n * sum_xx - sum_x * sum_x;
  if (std::abs(denominator) < 1e-14) {
    throw NumericError("linear fit requires at least two distinct x values");
  }
  LinearFit fit;
  fit.slope = (n * sum_xy - sum_x * sum_y) / denominator;
  fit.intercept = (sum_y - fit.slope * sum_x) / n;
  std::vector<double> predicted(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    predicted[i] = fit(x[i]);
  }
  fit.r_squared = r_squared(y, predicted);
  return fit;
}

double PolynomialFit::operator()(double x) const noexcept {
  double result = 0.0;
  for (std::size_t k = coefficients.size(); k-- > 0;) {
    result = result * x + coefficients[k];
  }
  return result;
}

PolynomialFit fit_polynomial(const std::vector<double>& x,
                             const std::vector<double>& y, std::size_t degree) {
  VMCONS_REQUIRE(degree <= 6, "polynomial fit supports degree <= 6");
  check_xy(x, y, degree + 1);
  const std::size_t terms = degree + 1;
  std::vector<std::vector<double>> normal(terms, std::vector<double>(terms, 0.0));
  std::vector<double> rhs(terms, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double power_row = 1.0;
    std::vector<double> powers(2 * degree + 1);
    powers[0] = 1.0;
    for (std::size_t p = 1; p < powers.size(); ++p) {
      power_row *= x[i];
      powers[p] = power_row;
    }
    for (std::size_t r = 0; r < terms; ++r) {
      for (std::size_t c = 0; c < terms; ++c) {
        normal[r][c] += powers[r + c];
      }
      rhs[r] += powers[r] * y[i];
    }
  }
  PolynomialFit fit;
  fit.coefficients = solve_gauss(std::move(normal), std::move(rhs));
  std::vector<double> predicted(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    predicted[i] = fit(x[i]);
  }
  fit.r_squared = r_squared(y, predicted);
  return fit;
}

RationalSaturatingFit fit_rational_saturating(const std::vector<double>& x,
                                              const std::vector<double>& y) {
  check_xy(x, y, 2);
  // For fixed Bsq, the optimal A is a closed-form least-squares ratio;
  // golden-section search over Bsq in [1e-6, 100] (VM counts are small).
  auto amplitude_for = [&](double bsq) {
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double basis = x[i] * x[i] / (x[i] * x[i] + bsq);
      numerator += basis * y[i];
      denominator += basis * basis;
    }
    return denominator > 0.0 ? numerator / denominator : 0.0;
  };
  auto sse_for = [&](double bsq) {
    const double a = amplitude_for(bsq);
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double predicted = a * x[i] * x[i] / (x[i] * x[i] + bsq);
      sse += (y[i] - predicted) * (y[i] - predicted);
    }
    return sse;
  };

  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1e-6;
  double hi = 100.0;
  double c = hi - phi * (hi - lo);
  double d = lo + phi * (hi - lo);
  double f_c = sse_for(c);
  double f_d = sse_for(d);
  for (int iteration = 0; iteration < 200 && (hi - lo) > 1e-10; ++iteration) {
    if (f_c < f_d) {
      hi = d;
      d = c;
      f_d = f_c;
      c = hi - phi * (hi - lo);
      f_c = sse_for(c);
    } else {
      lo = c;
      c = d;
      f_c = f_d;
      d = lo + phi * (hi - lo);
      f_d = sse_for(d);
    }
  }
  RationalSaturatingFit fit;
  fit.half_point = 0.5 * (lo + hi);
  fit.amplitude = amplitude_for(fit.half_point);
  std::vector<double> predicted(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    predicted[i] = fit(x[i]);
  }
  fit.r_squared = r_squared(y, predicted);
  return fit;
}

}  // namespace vmcons
