#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "stats/summary.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "workload/arrival.hpp"

namespace vmcons::workload {

ArrivalTrace::ArrivalTrace(std::vector<double> arrival_times)
    : times_(std::move(arrival_times)) {
  for (std::size_t i = 0; i < times_.size(); ++i) {
    VMCONS_REQUIRE(times_[i] >= 0.0, "arrival times must be >= 0");
    VMCONS_REQUIRE(i == 0 || times_[i] >= times_[i - 1],
                   "arrival times must be nondecreasing");
  }
}

ArrivalTrace ArrivalTrace::record_poisson(double rate, double duration,
                                          Rng& rng) {
  VMCONS_REQUIRE(rate > 0.0 && duration > 0.0,
                 "rate and duration must be positive");
  PoissonProcess process(rate);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rate * duration * 1.1) + 16);
  double clock = 0.0;
  for (;;) {
    clock += process.next_gap(rng);
    if (clock > duration) {
      break;
    }
    times.push_back(clock);
  }
  return ArrivalTrace(std::move(times));
}

ArrivalTrace ArrivalTrace::record_mmpp(double mean_rate, double burst_ratio,
                                       double duration, Rng& rng) {
  VMCONS_REQUIRE(duration > 0.0, "duration must be positive");
  Mmpp2Process process = Mmpp2Process::with_mean_rate(mean_rate, burst_ratio);
  std::vector<double> times;
  double clock = 0.0;
  for (;;) {
    clock += process.next_gap(rng);
    if (clock > duration) {
      break;
    }
    times.push_back(clock);
  }
  return ArrivalTrace(std::move(times));
}

ArrivalTrace ArrivalTrace::from_csv(const std::string& text) {
  const CsvDocument document = csv_parse(text);
  const std::size_t column = document.column("arrival_time");
  std::vector<double> times;
  times.reserve(document.rows.size());
  for (const auto& row : document.rows) {
    times.push_back(std::stod(row.at(column)));
  }
  std::sort(times.begin(), times.end());
  return ArrivalTrace(std::move(times));
}

void ArrivalTrace::to_csv(std::ostream& out) const {
  CsvWriter writer(out);
  writer.header({"arrival_time"});
  for (const double time : times_) {
    writer.row({time});
  }
}

double ArrivalTrace::duration() const noexcept {
  return times_.empty() ? 0.0 : times_.back();
}

double ArrivalTrace::mean_rate() const {
  VMCONS_REQUIRE(times_.size() >= 2, "trace too short for a mean rate");
  return static_cast<double>(times_.size()) / duration();
}

std::vector<double> ArrivalTrace::counts_per_window(
    double window_seconds) const {
  VMCONS_REQUIRE(window_seconds > 0.0, "window must be positive");
  VMCONS_REQUIRE(!times_.empty(), "trace is empty");
  const auto windows =
      static_cast<std::size_t>(std::ceil(duration() / window_seconds));
  std::vector<double> counts(std::max<std::size_t>(windows, 1), 0.0);
  for (const double time : times_) {
    auto index = static_cast<std::size_t>(time / window_seconds);
    counts[std::min(index, counts.size() - 1)] += 1.0;
  }
  return counts;
}

double ArrivalTrace::index_of_dispersion(double window_seconds) const {
  const std::vector<double> counts = counts_per_window(window_seconds);
  VMCONS_REQUIRE(counts.size() >= 2, "too few windows for dispersion");
  Summary summary;
  for (const double count : counts) {
    summary.add(count);
  }
  VMCONS_REQUIRE(summary.mean() > 0.0, "trace has empty windows only");
  return summary.variance() / summary.mean();
}

double ArrivalTrace::peak_to_mean(double window_seconds) const {
  const std::vector<double> counts = counts_per_window(window_seconds);
  Summary summary;
  for (const double count : counts) {
    summary.add(count);
  }
  VMCONS_REQUIRE(summary.mean() > 0.0, "trace has empty windows only");
  return summary.max() / summary.mean();
}

ArrivalTrace ArrivalTrace::scaled(double factor) const {
  VMCONS_REQUIRE(factor > 0.0, "scale factor must be positive");
  std::vector<double> times(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) {
    times[i] = times_[i] / factor;
  }
  return ArrivalTrace(std::move(times));
}

}  // namespace vmcons::workload
