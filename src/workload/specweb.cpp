#include "workload/specweb.hpp"

#include <deque>

#include "sim/engine.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "virt/impact.hpp"

namespace vmcons::workload {

SpecwebGenerator::SpecwebGenerator(SpecwebConfig config)
    : config_(config) {
  VMCONS_REQUIRE(config_.file_count >= 2, "file set needs at least two files");
  VMCONS_REQUIRE(config_.mean_file_kb > 0.0, "mean file size must be positive");
  VMCONS_REQUIRE(config_.cache_fraction >= 0.0 && config_.cache_fraction <= 1.0,
                 "cache fraction must be in [0, 1]");
  VMCONS_REQUIRE(config_.disk_bandwidth_mbps > 0.0,
                 "disk bandwidth must be positive");
}

SpecwebRequest SpecwebGenerator::sample(Rng& rng) const {
  SpecwebRequest request;
  request.file_rank = rng.zipf(config_.file_count, config_.zipf_exponent);
  // Heavy-tailed sizes: gamma(shape 0.6) keeps the mean while producing the
  // many-small/few-huge mix of a real document set.
  request.size_kb = rng.gamma(0.6, config_.mean_file_kb / 0.6);
  const auto cache_limit = static_cast<std::uint64_t>(
      config_.cache_fraction * static_cast<double>(config_.file_count));
  request.cache_hit = request.file_rank < cache_limit;
  request.disk_seconds =
      request.cache_hit
          ? 0.0
          : request.size_kb / (config_.disk_bandwidth_mbps * 1024.0);
  request.cpu_seconds = (config_.cpu_per_request_us +
                         config_.cpu_per_kb_us * request.size_kb) *
                        1e-6;
  return request;
}

SpecwebGenerator::RateEstimate SpecwebGenerator::estimate_rates(
    Rng& rng, std::size_t samples) const {
  VMCONS_REQUIRE(samples >= 1000, "rate estimate needs >= 1000 samples");
  double disk_total = 0.0;
  double cpu_total = 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const SpecwebRequest request = sample(rng);
    disk_total += request.disk_seconds;
    cpu_total += request.cpu_seconds;
    hits += request.cache_hit ? 1 : 0;
  }
  RateEstimate estimate;
  const double n = static_cast<double>(samples);
  estimate.disk_rate = disk_total > 0.0 ? n / disk_total : 0.0;
  estimate.cpu_rate = cpu_total > 0.0 ? n / cpu_total : 0.0;
  estimate.cache_hit_ratio = static_cast<double>(hits) / n;
  return estimate;
}

dc::ServiceSpec SpecwebGenerator::derive_service_spec(
    const RateEstimate& rates, double arrival_rate) const {
  dc::ServiceSpec spec;
  spec.name = "specweb";
  spec.arrival_rate = arrival_rate;
  if (rates.disk_rate > 0.0) {
    spec.demand(dc::Resource::kDiskIo, rates.disk_rate,
                virt::Impact::paper_web_disk_io());
  }
  if (rates.cpu_rate > 0.0) {
    spec.demand(dc::Resource::kCpu, rates.cpu_rate,
                virt::Impact::paper_web_cpu());
  }
  return spec;
}

namespace {

/// Closed-loop session pool: per-server FCFS with a rate-capacity completion
/// clock, sessions routed to the least-loaded server.
class SessionsSimulation {
 public:
  SessionsSimulation(const SpecwebSessionsConfig& config, unsigned sessions,
                     Rng& rng)
      : config_(config), sessions_(sessions), rng_(rng),
        generator_(config.generator), queues_(config.servers),
        serving_(config.servers, false) {
    VMCONS_REQUIRE(config.servers >= 1, "pool needs a server");
    VMCONS_REQUIRE(sessions >= 1, "need at least one session");
    VMCONS_REQUIRE(config.per_server_capacity > 0.0,
                   "capacity must be positive");
  }

  SpecwebSessionsPoint run() {
    for (unsigned session = 0; session < sessions_; ++session) {
      schedule_think();
    }
    engine_.schedule_at(config_.warmup, [this] {
      completed_ = 0;
      refused_ = 0;
      issued_ = 0;
      response_ = Summary{};
    });
    engine_.run_until(config_.warmup + config_.duration);

    SpecwebSessionsPoint point;
    point.sessions = sessions_;
    point.mean_response = response_.mean();
    point.throughput = static_cast<double>(completed_) / config_.duration;
    point.refusal_ratio =
        issued_ == 0 ? 0.0
                     : static_cast<double>(refused_) /
                           static_cast<double>(issued_);
    return point;
  }

 private:
  void schedule_think() {
    engine_.schedule_in(rng_.exponential(1.0 / config_.think_time),
                        [this] { on_request(); });
  }

  void on_request() {
    ++issued_;
    // Least-loaded dispatch across the pool.
    std::size_t best = 0;
    for (std::size_t s = 1; s < queues_.size(); ++s) {
      if (queues_[s].size() < queues_[best].size()) {
        best = s;
      }
    }
    if (queues_[best].size() >= config_.max_connections_per_server) {
      ++refused_;
      schedule_think();  // the session retries after thinking again
      return;
    }
    queues_[best].push_back(engine_.now());
    if (!serving_[best]) {
      schedule_completion(best);
    }
  }

  void schedule_completion(std::size_t server) {
    serving_[server] = true;
    engine_.schedule_in(service_duration(),
                        [this, server] { on_completion(server); });
  }

  double service_duration() {
    if (!config_.sample_from_generator) {
      return rng_.exponential(config_.per_server_capacity);
    }
    // Heterogeneous per-request demand from the file-set model: the disk
    // read and the CPU work serialize on the serving path.
    const SpecwebRequest request = generator_.sample(rng_);
    return request.disk_seconds + request.cpu_seconds;
  }

  void on_completion(std::size_t server) {
    serving_[server] = false;
    if (!queues_[server].empty()) {
      const double start = queues_[server].front();
      queues_[server].pop_front();
      ++completed_;
      response_.add(engine_.now() - start);
      schedule_think();
    }
    if (!queues_[server].empty()) {
      schedule_completion(server);
    }
  }

  const SpecwebSessionsConfig& config_;
  unsigned sessions_;
  Rng& rng_;
  SpecwebGenerator generator_;
  sim::Engine engine_;
  std::vector<std::deque<double>> queues_;  // request start times per server
  std::vector<bool> serving_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t refused_ = 0;
  Summary response_;
};

}  // namespace

SpecwebSessionsPoint specweb_sessions_run(const SpecwebSessionsConfig& config,
                                          unsigned sessions, Rng& rng) {
  SessionsSimulation simulation(config, sessions, rng);
  return simulation.run();
}

std::vector<SpecwebSessionsPoint> specweb_sessions_sweep(
    const SpecwebSessionsConfig& config, const std::vector<unsigned>& sessions,
    std::uint64_t seed) {
  return parallel_map(sessions.size(), [&](std::size_t i) {
    Rng rng = make_stream(seed, i);
    return specweb_sessions_run(config, sessions[i], rng);
  });
}

}  // namespace vmcons::workload
