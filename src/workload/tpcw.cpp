#include "workload/tpcw.hpp"

#include <deque>

#include "datacenter/vm.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace vmcons::workload {

double tpcw_mix_cost_factor(TpcwMix mix) {
  // Relative DB work per interaction: the write-heavy order path costs
  // roughly a third more than the shopping mix; the browse-only mix is
  // cheaper (read caches hit more).
  switch (mix) {
    case TpcwMix::kBrowsing: return 0.85;
    case TpcwMix::kShopping: return 1.0;
    case TpcwMix::kOrdering: return 1.35;
  }
  return 1.0;
}

double tpcw_capacity(const TpcwConfig& config) {
  VMCONS_REQUIRE(config.native_capacity > 0.0, "capacity must be positive");
  // The case study's mu_dc is the *native* rate, which already includes the
  // single-OS software ceiling; lift it to get hardware capacity.
  const double hardware = config.native_capacity / virt::kSingleOsCeiling;
  double capacity;
  if (config.vm_count == 0) {
    capacity = hardware * virt::software_ceiling(1);
  } else {
    // The raw impact curve is measured relative to native, so rebase it to
    // hardware: a_raw(1) ~ 1.0 means one VM performs like (ceilinged) native.
    capacity = config.native_capacity * config.impact.raw_factor(config.vm_count);
  }
  capacity *= dc::db_vcpu_throughput_factor(config.vcpus, config.vcpu_mode,
                                            config.total_cores,
                                            config.domain0_cores);
  return capacity / tpcw_mix_cost_factor(config.mix);
}

namespace {

class ClosedLoopSimulation {
 public:
  ClosedLoopSimulation(const TpcwConfig& config, unsigned ebs, Rng& rng)
      : config_(config), ebs_(ebs), capacity_(tpcw_capacity(config)), rng_(rng) {
    VMCONS_REQUIRE(ebs >= 1, "need at least one emulated browser");
  }

  TpcwPoint run() {
    // Stagger initial think times so the population desynchronizes.
    for (unsigned browser = 0; browser < ebs_; ++browser) {
      schedule_think();
    }
    engine_.schedule_at(config_.warmup, [this] {
      completed_ = 0;
      response_ = Summary{};
    });
    engine_.run_until(config_.warmup + config_.duration);

    TpcwPoint point;
    point.ebs = ebs_;
    point.wips = static_cast<double>(completed_) / config_.duration;
    point.mean_response = response_.mean();
    point.wips_upper_limit = static_cast<double>(ebs_) / config_.think_time;
    return point;
  }

 private:
  void schedule_think() {
    engine_.schedule_in(rng_.exponential(1.0 / config_.think_time),
                        [this] { on_request(); });
  }

  void on_request() {
    if (in_system_ >= config_.max_concurrency) {
      // Connection refused; the EB backs off and thinks again.
      schedule_think();
      return;
    }
    ++in_system_;
    queue_.push_back(engine_.now());
    if (!serving_) {
      schedule_completion();
    }
  }

  void schedule_completion() {
    serving_ = true;
    engine_.schedule_in(rng_.exponential(capacity_), [this] { on_completion(); });
  }

  void on_completion() {
    serving_ = false;
    if (!queue_.empty()) {
      const double start = queue_.front();
      queue_.pop_front();
      --in_system_;
      ++completed_;
      response_.add(engine_.now() - start);
      schedule_think();  // the EB that owned this interaction thinks again
    }
    if (!queue_.empty()) {
      schedule_completion();
    }
  }

  const TpcwConfig& config_;
  unsigned ebs_;
  double capacity_;
  Rng& rng_;
  sim::Engine engine_;
  std::deque<double> queue_;  // interaction start times, FCFS
  unsigned in_system_ = 0;
  bool serving_ = false;
  std::uint64_t completed_ = 0;
  Summary response_;
};

}  // namespace

TpcwPoint tpcw_run(const TpcwConfig& config, unsigned ebs, Rng& rng) {
  ClosedLoopSimulation simulation(config, ebs, rng);
  return simulation.run();
}

std::vector<TpcwPoint> tpcw_sweep(const TpcwConfig& config,
                                  const std::vector<unsigned>& eb_points,
                                  std::uint64_t seed) {
  return parallel_map(eb_points.size(), [&](std::size_t i) {
    Rng rng = make_stream(seed, i);
    return tpcw_run(config, eb_points[i], rng);
  });
}

}  // namespace vmcons::workload
