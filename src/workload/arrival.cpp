#include "workload/arrival.hpp"

#include "util/error.hpp"

namespace vmcons::workload {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  VMCONS_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

double PoissonProcess::next_gap(Rng& rng) { return rng.exponential(rate_); }

DeterministicProcess::DeterministicProcess(double rate) : rate_(rate) {
  VMCONS_REQUIRE(rate > 0.0, "arrival rate must be positive");
}

double DeterministicProcess::next_gap(Rng&) { return 1.0 / rate_; }

Mmpp2Process::Mmpp2Process(double rate_calm, double rate_burst,
                           double mean_dwell_calm, double mean_dwell_burst)
    : rates_{rate_calm, rate_burst},
      dwell_means_{mean_dwell_calm, mean_dwell_burst} {
  VMCONS_REQUIRE(rate_calm > 0.0 && rate_burst > 0.0,
                 "MMPP rates must be positive");
  VMCONS_REQUIRE(mean_dwell_calm > 0.0 && mean_dwell_burst > 0.0,
                 "MMPP dwell times must be positive");
}

double Mmpp2Process::mean_rate() const noexcept {
  return (rates_[0] * dwell_means_[0] + rates_[1] * dwell_means_[1]) /
         (dwell_means_[0] + dwell_means_[1]);
}

Mmpp2Process Mmpp2Process::with_mean_rate(double mean_rate, double burst_ratio,
                                          double mean_dwell) {
  VMCONS_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  VMCONS_REQUIRE(burst_ratio > 1.0, "burst ratio must exceed 1");
  // Equal dwells: mean = (r_calm + r_burst)/2 = r_calm (1 + ratio)/2.
  const double rate_calm = 2.0 * mean_rate / (1.0 + burst_ratio);
  return Mmpp2Process(rate_calm, rate_calm * burst_ratio, mean_dwell,
                      mean_dwell);
}

double Mmpp2Process::next_gap(Rng& rng) {
  if (!initialized_) {
    state_time_left_ = rng.exponential(1.0 / dwell_means_[state_]);
    initialized_ = true;
  }
  double gap = 0.0;
  for (;;) {
    const double candidate = rng.exponential(rates_[state_]);
    if (candidate <= state_time_left_) {
      state_time_left_ -= candidate;
      return gap + candidate;
    }
    // The state flips before the candidate arrival; advance to the flip and
    // redraw in the new state (memorylessness makes this exact).
    gap += state_time_left_;
    state_ = 1 - state_;
    state_time_left_ = rng.exponential(1.0 / dwell_means_[state_]);
  }
}

double next_gap(ArrivalProcess& process, Rng& rng) {
  return std::visit([&rng](auto& p) { return p.next_gap(rng); }, process);
}

double mean_rate(const ArrivalProcess& process) {
  return std::visit(
      [](const auto& p) -> double {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Mmpp2Process>) {
          return p.mean_rate();
        } else {
          return p.rate();
        }
      },
      process);
}

}  // namespace vmcons::workload
