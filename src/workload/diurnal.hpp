// Diurnal (day-shaped) workload profiles — the shapes behind the paper's
// Fig. 2, where three applications with different peak hours consolidate
// onto shared servers and the consolidated peak is far below the sum of the
// dedicated peaks.
//
// A profile is a deterministic rate curve lambda(t) (sinusoid with phase,
// plus an optional weekly weekend dip) from which noisy per-interval
// demand samples are drawn. Helpers compute the peak statistics and the
// "servers needed at a probability level" that Fig. 2 sketches.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace vmcons::workload {

struct DiurnalProfile {
  double base_rate = 100.0;   ///< mean request rate
  double amplitude = 0.5;     ///< day/night swing as a fraction of base
  double period = 86400.0;    ///< seconds per cycle (a day)
  double phase = 0.0;         ///< seconds; shifts the peak hour
  double weekend_dip = 0.0;   ///< fractional rate reduction on days 6-7
  double noise_cv = 0.05;     ///< multiplicative lognormal noise per sample

  /// Deterministic rate at time t (before noise).
  double rate_at(double t) const;

  /// Noisy demand sample at time t.
  double sample(double t, Rng& rng) const;
};

/// Demand trajectories of several services over a horizon.
struct DemandSeries {
  std::vector<double> times;
  /// per_service[i][k] = demand of service i at times[k].
  std::vector<std::vector<double>> per_service;
  /// total[k] = sum over services at times[k].
  std::vector<double> total;
};

/// Samples all profiles on a regular grid of `steps` points over `horizon`.
DemandSeries sample_demands(const std::vector<DiurnalProfile>& profiles,
                            double horizon, std::size_t steps, Rng& rng);

/// Peak of one series.
double series_peak(const std::vector<double>& series);

/// Value the series stays below for `quantile` of the samples — the
/// "probability level" line of Fig. 2.
double series_quantile(const std::vector<double>& series, double quantile);

/// Peak-multiplexing gain: sum of per-service peaks divided by the peak of
/// the summed series (> 1 whenever the peaks do not align).
double multiplexing_gain(const DemandSeries& demands);

}  // namespace vmcons::workload
