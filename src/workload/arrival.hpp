// Arrival processes.
//
// The model assumes Poisson arrivals (Section III-B1, assumption 2, citing
// the user-initiated-TCP-session evidence). The simulator also provides
// deterministic and 2-state MMPP (bursty) processes so the burstiness
// ablation can quantify how sensitive the model's staffing is to that
// assumption.
#pragma once

#include <variant>

#include "util/rng.hpp"

namespace vmcons::workload {

/// Memoryless inter-arrival gaps: the model's assumption.
class PoissonProcess {
 public:
  explicit PoissonProcess(double rate);
  double next_gap(Rng& rng);
  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Fixed gaps (1/rate): the most regular traffic possible.
class DeterministicProcess {
 public:
  explicit DeterministicProcess(double rate);
  double next_gap(Rng& rng);
  double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Two-state Markov-modulated Poisson process: alternates between a calm
/// and a burst state with exponential dwell times. Mean rate is
///   (rate_calm * mean_dwell_calm + rate_burst * mean_dwell_burst) /
///   (mean_dwell_calm + mean_dwell_burst).
class Mmpp2Process {
 public:
  Mmpp2Process(double rate_calm, double rate_burst, double mean_dwell_calm,
               double mean_dwell_burst);
  double next_gap(Rng& rng);
  double mean_rate() const noexcept;

  /// Builds an MMPP with the given mean rate and a burstiness knob:
  /// burst_ratio = rate_burst / rate_calm (> 1), equal dwell times.
  static Mmpp2Process with_mean_rate(double mean_rate, double burst_ratio,
                                     double mean_dwell = 10.0);

 private:
  double rates_[2];
  double dwell_means_[2];
  int state_ = 0;
  double state_time_left_ = 0.0;
  bool initialized_ = false;
};

/// Type-erased arrival process for drivers that accept any of the above.
using ArrivalProcess =
    std::variant<PoissonProcess, DeterministicProcess, Mmpp2Process>;

/// Draws the next inter-arrival gap from whichever process is held.
double next_gap(ArrivalProcess& process, Rng& rng);

/// Mean arrival rate of whichever process is held.
double mean_rate(const ArrivalProcess& process);

}  // namespace vmcons::workload
