#include "workload/diurnal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace vmcons::workload {

double DiurnalProfile::rate_at(double t) const {
  double rate = base_rate *
                (1.0 + amplitude * std::sin(2.0 * std::numbers::pi *
                                            (t - phase) / period));
  if (weekend_dip > 0.0) {
    const double day = std::fmod(t / 86400.0, 7.0);
    if (day >= 5.0) {
      rate *= 1.0 - weekend_dip;
    }
  }
  return std::max(0.0, rate);
}

double DiurnalProfile::sample(double t, Rng& rng) const {
  const double rate = rate_at(t);
  if (noise_cv <= 0.0) {
    return rate;
  }
  const double sigma2 = std::log(1.0 + noise_cv * noise_cv);
  return rate * std::exp(rng.normal(-0.5 * sigma2, std::sqrt(sigma2)));
}

DemandSeries sample_demands(const std::vector<DiurnalProfile>& profiles,
                            double horizon, std::size_t steps, Rng& rng) {
  VMCONS_REQUIRE(!profiles.empty(), "need at least one profile");
  VMCONS_REQUIRE(horizon > 0.0 && steps >= 2, "need a horizon and >= 2 steps");
  for (const auto& profile : profiles) {
    VMCONS_REQUIRE(profile.base_rate > 0.0 && profile.period > 0.0,
                   "profile rate and period must be positive");
    VMCONS_REQUIRE(profile.amplitude >= 0.0 && profile.amplitude <= 1.0,
                   "amplitude must be in [0, 1]");
  }
  DemandSeries series;
  series.times.resize(steps);
  series.per_service.assign(profiles.size(), std::vector<double>(steps));
  series.total.assign(steps, 0.0);
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = horizon * static_cast<double>(k) /
                     static_cast<double>(steps - 1);
    series.times[k] = t;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      const double demand = profiles[i].sample(t, rng);
      series.per_service[i][k] = demand;
      series.total[k] += demand;
    }
  }
  return series;
}

double series_peak(const std::vector<double>& series) {
  VMCONS_REQUIRE(!series.empty(), "empty series");
  return *std::max_element(series.begin(), series.end());
}

double series_quantile(const std::vector<double>& series, double quantile) {
  VMCONS_REQUIRE(!series.empty(), "empty series");
  VMCONS_REQUIRE(quantile >= 0.0 && quantile <= 1.0,
                 "quantile must be in [0, 1]");
  std::vector<double> sorted = series;
  std::sort(sorted.begin(), sorted.end());
  const double position =
      quantile * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double multiplexing_gain(const DemandSeries& demands) {
  double sum_of_peaks = 0.0;
  for (const auto& series : demands.per_service) {
    sum_of_peaks += series_peak(series);
  }
  const double peak_of_sum = series_peak(demands.total);
  VMCONS_REQUIRE(peak_of_sum > 0.0, "degenerate demand series");
  return sum_of_peaks / peak_of_sum;
}

}  // namespace vmcons::workload
