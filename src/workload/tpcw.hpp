// TPC-W-style closed-loop e-book database workload — Figs. 7, 8, 9(a).
//
// A fixed population of EBs (Emulated Browsers) cycles: think for an
// exponential think time, issue one web interaction against the DB server,
// wait for completion, repeat. The metric is WIPS (Web Interactions Per
// Second). The DB host is CPU-bound (the 2.7 GB book database fits the
// testbed's RAM) and carries two platform effects:
//
//   * software ceiling — a single OS instance (native Linux or one VM) caps
//     MySQL at ~1/1.85 of hardware capacity; two or more VMs escape it
//     (Fig. 8a's "native and one VM reach only about half of multiple VMs");
//   * vCPU provisioning — throughput scales with pinned vCPUs up to the
//     cores left over from Domain-0, and loses kXenSchedulerPenalty when
//     scheduling is left to Xen (Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "virt/impact.hpp"
#include "virt/overhead.hpp"

namespace vmcons::workload {

/// The three standard TPC-W traffic mixes. They differ in the share of
/// write-path (buy/order) interactions, which cost more DB work each:
/// browsing is the lightest (WIPSb), ordering the heaviest (WIPSo).
enum class TpcwMix { kBrowsing, kShopping, kOrdering };

/// Relative per-interaction DB cost of a mix (shopping = 1).
double tpcw_mix_cost_factor(TpcwMix mix);

struct TpcwConfig {
  /// Hardware capacity of the host in interactions/s with the software
  /// ceiling lifted (i.e., the multi-VM plateau). mu_dc = 100 in the case
  /// study refers to the *native* (ceilinged) rate; hardware capacity is
  /// native / kSingleOsCeiling.
  double native_capacity = 100.0;
  /// Impact curve for the DB service (raw values may exceed 1).
  virt::Impact impact = virt::Impact::paper_db_cpu();
  /// Number of co-resident VMs; 0 = native Linux.
  unsigned vm_count = 0;
  /// vCPUs given to each DB VM and how they are scheduled (Fig. 7).
  unsigned vcpus = 6;
  virt::VcpuMode vcpu_mode = virt::VcpuMode::kPinned;
  unsigned total_cores = 8;
  unsigned domain0_cores = 2;
  /// Traffic mix (the paper's e-book workload is the shopping mix).
  TpcwMix mix = TpcwMix::kShopping;
  /// Mean EB think time, seconds (TPC-W uses 7s; the WIPS upper limit of
  /// Fig. 9a is EBs / think_time).
  double think_time = 7.0;
  /// Concurrency limit of the DB tier (connection pool size).
  unsigned max_concurrency = 512;
  double duration = 600.0;
  double warmup = 60.0;
};

struct TpcwPoint {
  unsigned ebs = 0;            ///< emulated browsers
  double wips = 0.0;           ///< web interactions per second
  double mean_response = 0.0;  ///< seconds per interaction
  double wips_upper_limit = 0.0;  ///< EBs / think_time (closed-loop bound)
};

/// Effective DB capacity (interactions/s) for the configuration: hardware
/// capacity x software ceiling (vm_count <= 1) or raw impact (vm_count >= 1),
/// x the vCPU provisioning factor.
double tpcw_capacity(const TpcwConfig& config);

/// Runs one closed-loop measurement with the given EB population.
TpcwPoint tpcw_run(const TpcwConfig& config, unsigned ebs, Rng& rng);

/// Sweeps EB populations; each point uses its own stream from `seed`.
std::vector<TpcwPoint> tpcw_sweep(const TpcwConfig& config,
                                  const std::vector<unsigned>& eb_points,
                                  std::uint64_t seed);

}  // namespace vmcons::workload
