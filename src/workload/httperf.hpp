// httperf-style open-loop load driver against one physical server — the
// microbenchmark of Figs. 5 and 6.
//
// The server is modelled as the paper's testbed behaves: a processor-shared
// host with aggregate capacity `capacity(v)` requests/s when v VMs share it,
// a bounded accept queue, and a per-rejected-connection overhead (connection
// churn) that bites just past saturation and then saturates itself —
// producing exactly the paper's observed shape: throughput rises with
// offered load, dips past the knee, then remains stable.
//
// Workload presets mirror the paper:
//   * disk-bound: ordered access of a 5.7 GB SPECweb2005 file set (>> RAM),
//     native capacity mu_disk, impact curve Fig. 5(b);
//   * cpu-bound: one cached 8 KB file, native capacity mu_cpu, impact curve
//     Fig. 6(b).
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "virt/impact.hpp"

namespace vmcons::workload {

struct HttperfConfig {
  /// Native (no virtualization) aggregate capacity, requests/second.
  double native_capacity = 420.0;
  /// Impact curve translating VM count to capacity degradation. The raw
  /// (unclamped) curve is used, matching what the microbenchmark measures.
  virt::Impact impact = virt::Impact::none();
  /// Number of co-resident VMs; 0 = native Linux (no hypervisor).
  unsigned vm_count = 0;
  /// Maximum requests in service + accept queue before drops begin.
  unsigned max_connections = 256;
  /// Connection-churn cost: each tracked drop inflates the next completion
  /// by this fraction of the mean service time.
  double overload_penalty_fraction = 0.2;
  /// At most this many outstanding drop-overhead units are tracked; beyond
  /// it further drops are free (the kernel's listen queue just discards),
  /// which is what makes overload throughput stable rather than collapsing.
  unsigned max_pending_overheads = 2;
  double duration = 400.0;  ///< measured seconds per sweep point
  double warmup = 50.0;
};

struct HttperfPoint {
  double offered_rate = 0.0;   ///< requests/s offered
  double reply_rate = 0.0;     ///< requests/s completed (the throughput)
  double mean_response = 0.0;  ///< seconds, completed requests
  double loss = 0.0;           ///< dropped fraction
};

/// Effective aggregate capacity at the configured VM count.
double httperf_capacity(const HttperfConfig& config);

/// Runs one open-loop measurement at the given offered rate.
HttperfPoint httperf_run(const HttperfConfig& config, double offered_rate,
                         Rng& rng);

/// Sweeps offered rates (one simulation per point, parallelized by the
/// caller if desired — each point gets its own stream from `seed`).
std::vector<HttperfPoint> httperf_sweep(const HttperfConfig& config,
                                        const std::vector<double>& offered_rates,
                                        std::uint64_t seed);

/// The paper's two microbenchmark configurations.
HttperfConfig specweb_diskio_config(unsigned vm_count);  ///< Fig. 5
HttperfConfig cached_8kb_cpu_config(unsigned vm_count);  ///< Fig. 6

}  // namespace vmcons::workload
