// Arrival-trace recording and replay.
//
// Operators rarely trust synthetic distributions alone: this module records
// the arrival instants a generator produces (or imports them from CSV) and
// replays them deterministically through the loss network or any driver.
// It also computes the trace statistics the model consumes (mean rate) and
// the burstiness diagnostics the Poisson assumption check needs (index of
// dispersion, peak-to-mean ratio).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace vmcons::workload {

class ArrivalTrace {
 public:
  ArrivalTrace() = default;

  /// Builds a trace from absolute arrival times (must be nondecreasing).
  explicit ArrivalTrace(std::vector<double> arrival_times);

  /// Records `duration` seconds of a Poisson process at `rate`.
  static ArrivalTrace record_poisson(double rate, double duration, Rng& rng);

  /// Records `duration` seconds of a 2-state MMPP (see Mmpp2Process).
  static ArrivalTrace record_mmpp(double mean_rate, double burst_ratio,
                                  double duration, Rng& rng);

  /// Parses a one-column CSV ("arrival_time" header) exported by `to_csv`.
  static ArrivalTrace from_csv(const std::string& text);

  /// Writes the trace as CSV.
  void to_csv(std::ostream& out) const;

  const std::vector<double>& arrival_times() const noexcept { return times_; }
  std::size_t size() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  /// Span from time 0 to the last arrival.
  double duration() const noexcept;

  /// Mean arrival rate over the duration.
  double mean_rate() const;

  /// Index of dispersion of counts over fixed windows: 1 for Poisson,
  /// > 1 for bursty traffic. Needs at least ~10 windows to be meaningful.
  double index_of_dispersion(double window_seconds) const;

  /// Peak-to-mean ratio of windowed arrival counts.
  double peak_to_mean(double window_seconds) const;

  /// Scales all inter-arrival gaps by 1/factor (factor 2 = twice the rate).
  ArrivalTrace scaled(double factor) const;

 private:
  std::vector<double> counts_per_window(double window_seconds) const;

  std::vector<double> times_;
};

}  // namespace vmcons::workload
