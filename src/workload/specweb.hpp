// SPECweb2005-style e-commerce workload generator — the Web side of the
// case study and the Fig. 9(b) workload-selection curve.
//
// Two layers:
//   * SpecwebGenerator — samples individual requests: Zipf file popularity
//     over a file set much larger than RAM, heavy-tailed file sizes, cache
//     hits for the hot ranks, and per-request disk/CPU demands. Its
//     estimated mean service rates feed dc::ServiceSpec, connecting the
//     synthetic workload to the analytic model's mu_wi / mu_wc inputs.
//   * specweb_sessions_run — a closed-loop session driver against a server
//     pool (the paper's "Workload (sessions)" axis): each session thinks,
//     issues a request to the least-loaded server, and repeats; the output
//     is mean response time and throughput versus session count.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/service_spec.hpp"
#include "util/rng.hpp"

namespace vmcons::workload {

struct SpecwebConfig {
  std::uint64_t file_count = 100000;   ///< x 57 KB mean = 5.7 GB file set
  double zipf_exponent = 0.8;          ///< file popularity skew
  double mean_file_kb = 57.0;
  double cache_fraction = 0.12;        ///< hot ranks resident in RAM
  double disk_bandwidth_mbps = 24.0;   ///< effective random-read bandwidth
  double cpu_per_request_us = 260.0;   ///< protocol + dynamic content cost
  double cpu_per_kb_us = 0.6;          ///< copy/checksum cost per KB
};

struct SpecwebRequest {
  std::uint64_t file_rank = 0;  ///< 0 = most popular
  double size_kb = 0.0;
  bool cache_hit = false;
  double disk_seconds = 0.0;  ///< disk service demand
  double cpu_seconds = 0.0;   ///< CPU service demand
};

class SpecwebGenerator {
 public:
  explicit SpecwebGenerator(SpecwebConfig config);

  const SpecwebConfig& config() const { return config_; }

  /// Samples one request.
  SpecwebRequest sample(Rng& rng) const;

  struct RateEstimate {
    double disk_rate = 0.0;  ///< requests/s one server's disk sustains
    double cpu_rate = 0.0;   ///< requests/s one server's CPU sustains
    double cache_hit_ratio = 0.0;
  };

  /// Monte-Carlo estimate of the mean per-request demands (the Zipf/cache
  /// interaction has no convenient closed form).
  RateEstimate estimate_rates(Rng& rng, std::size_t samples = 200000) const;

  /// Builds the analytic-model service spec from the estimated rates, with
  /// the paper's Web impact curves attached.
  dc::ServiceSpec derive_service_spec(const RateEstimate& rates,
                                      double arrival_rate) const;

 private:
  SpecwebConfig config_;
};

/// Closed-loop session driver over a pool of identical servers.
struct SpecwebSessionsConfig {
  unsigned servers = 4;
  double per_server_capacity = 420.0;  ///< requests/s per server
  double think_time = 2.0;             ///< seconds between a session's requests
  unsigned max_connections_per_server = 256;
  double duration = 600.0;
  double warmup = 60.0;
  /// When set, per-request service times are sampled from the SPECweb
  /// generator (disk + CPU demand of a Zipf-drawn file) instead of being
  /// exponential at per_server_capacity — heterogeneous, heavy-tailed
  /// service like the real file set produces. per_server_capacity is then
  /// ignored.
  bool sample_from_generator = false;
  SpecwebConfig generator;
};

struct SpecwebSessionsPoint {
  unsigned sessions = 0;
  double mean_response = 0.0;  ///< seconds
  double throughput = 0.0;     ///< requests/s across the pool
  double refusal_ratio = 0.0;  ///< requests refused at full concurrency
};

SpecwebSessionsPoint specweb_sessions_run(const SpecwebSessionsConfig& config,
                                          unsigned sessions, Rng& rng);

std::vector<SpecwebSessionsPoint> specweb_sessions_sweep(
    const SpecwebSessionsConfig& config, const std::vector<unsigned>& sessions,
    std::uint64_t seed);

}  // namespace vmcons::workload
