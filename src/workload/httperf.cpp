#include "workload/httperf.hpp"

#include <deque>

#include "sim/engine.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace vmcons::workload {

double httperf_capacity(const HttperfConfig& config) {
  if (config.vm_count == 0) {
    return config.native_capacity;
  }
  // Raw (unclamped) factor: the microbenchmark measures whatever the
  // platform delivers, including >1 effects.
  return config.native_capacity * config.impact.raw_factor(config.vm_count);
}

namespace {

/// Processor-shared single host: completions fire at the aggregate capacity
/// whenever work is present; FCFS completion order approximates fair
/// sharing for the throughput/mean-response metrics we report.
class HostSimulation {
 public:
  HostSimulation(const HttperfConfig& config, double offered_rate, Rng& rng)
      : config_(config), rate_(offered_rate), capacity_(httperf_capacity(config)), rng_(rng) {
    VMCONS_REQUIRE(offered_rate > 0.0, "offered rate must be positive");
    VMCONS_REQUIRE(capacity_ > 0.0, "capacity must be positive");
  }

  HttperfPoint run() {
    schedule_arrival();
    engine_.schedule_at(config_.warmup, [this] {
      completed_ = 0;
      dropped_ = 0;
      arrived_ = 0;
      response_ = Summary{};
    });
    engine_.run_until(config_.warmup + config_.duration);

    HttperfPoint point;
    point.offered_rate = rate_;
    point.reply_rate = static_cast<double>(completed_) / config_.duration;
    point.mean_response = response_.mean();
    point.loss = arrived_ == 0 ? 0.0
                               : static_cast<double>(dropped_) /
                                     static_cast<double>(arrived_);
    return point;
  }

 private:
  void schedule_arrival() {
    engine_.schedule_in(rng_.exponential(rate_), [this] {
      on_arrival();
      schedule_arrival();
    });
  }

  void on_arrival() {
    ++arrived_;
    if (connections_.size() >= config_.max_connections) {
      ++dropped_;
      // Connection churn burns server time, but only while the kernel still
      // engages with the flood; beyond max_pending_overheads drops are free.
      if (pending_overheads_ < config_.max_pending_overheads) {
        ++pending_overheads_;
      }
      return;
    }
    connections_.push_back(engine_.now());
    if (!serving_) {
      schedule_completion();
    }
  }

  void schedule_completion() {
    serving_ = true;
    double delay = rng_.exponential(capacity_);
    // Connection churn since the last completion steals server time; the
    // cap on tracked overheads keeps overload throughput stable instead of
    // collapsing toward zero.
    if (pending_overheads_ > 0) {
      delay += static_cast<double>(pending_overheads_) *
               config_.overload_penalty_fraction / capacity_;
      pending_overheads_ = 0;
    }
    engine_.schedule_in(delay, [this] { on_completion(); });
  }

  void on_completion() {
    serving_ = false;
    if (!connections_.empty()) {
      const double arrival_time = connections_.front();
      connections_.pop_front();
      ++completed_;
      response_.add(engine_.now() - arrival_time);
    }
    if (!connections_.empty()) {
      schedule_completion();
    }
  }

  const HttperfConfig& config_;
  double rate_;
  double capacity_;
  Rng& rng_;
  sim::Engine engine_;
  std::deque<double> connections_;  // arrival times, FCFS
  bool serving_ = false;
  unsigned pending_overheads_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  Summary response_;
};

}  // namespace

HttperfPoint httperf_run(const HttperfConfig& config, double offered_rate,
                         Rng& rng) {
  HostSimulation host(config, offered_rate, rng);
  return host.run();
}

std::vector<HttperfPoint> httperf_sweep(const HttperfConfig& config,
                                        const std::vector<double>& offered_rates,
                                        std::uint64_t seed) {
  return parallel_map(offered_rates.size(), [&](std::size_t i) {
    Rng rng = make_stream(seed, i);
    return httperf_run(config, offered_rates[i], rng);
  });
}

HttperfConfig specweb_diskio_config(unsigned vm_count) {
  HttperfConfig config;
  config.native_capacity = 420.0;  // mu_wi of the case study
  config.impact = virt::Impact::paper_web_disk_io();
  config.vm_count = vm_count;
  config.max_connections = 256;
  config.overload_penalty_fraction = 0.25;  // disk-path churn is expensive
  return config;
}

HttperfConfig cached_8kb_cpu_config(unsigned vm_count) {
  HttperfConfig config;
  config.native_capacity = 3360.0;  // mu_wc of the case study
  config.impact = virt::Impact::paper_web_cpu();
  config.vm_count = vm_count;
  config.max_connections = 512;
  config.overload_penalty_fraction = 0.12;
  return config;
}

}  // namespace vmcons::workload
