// A simulated physical server: capacity slots, busy tracking, energy.
//
// Following the queueing abstraction of the paper, a physical server offers
// `slots` concurrent service positions (slots = 1 gives the exact Erlang
// picture of one request in service per server; slots > 1 models a host
// whose capacity is subdivided among vCPU-like shares for the scheduler
// studies). Utilization is busy_slots / slots, integrated over time for the
// power model of Eq. (12)-(13).
#pragma once

#include <cstdint>

#include "datacenter/power.hpp"
#include "stats/timeweighted.hpp"
#include "util/error.hpp"

namespace vmcons::dc {

class PhysicalServer {
 public:
  PhysicalServer(std::uint32_t id, unsigned slots, PowerModel power)
      : id_(id), slots_(slots), busy_(0.0, 0.0), meter_(power) {
    VMCONS_REQUIRE(slots >= 1, "server needs at least one slot");
  }

  std::uint32_t id() const noexcept { return id_; }
  unsigned slots() const noexcept { return slots_; }
  unsigned busy() const noexcept { return busy_count_; }
  unsigned free() const noexcept { return slots_ - busy_count_; }
  bool has_free_slot() const noexcept { return busy_count_ < slots_; }

  /// Claims one slot at simulated time `now`.
  void occupy(double now) {
    VMCONS_ASSERT(busy_count_ < slots_);
    ++busy_count_;
    record(now);
  }

  /// Releases one slot at simulated time `now`.
  void release(double now) {
    VMCONS_ASSERT(busy_count_ > 0);
    --busy_count_;
    record(now);
  }

  /// Instantaneous utilization in [0, 1].
  double utilization() const noexcept {
    return static_cast<double>(busy_count_) / static_cast<double>(slots_);
  }

  /// Time-averaged utilization over [0, now].
  double mean_utilization(double now) const { return busy_.average(now) / slots_; }

  /// Integral of busy slots over time (slot-seconds of work served).
  double busy_integral(double now) const { return busy_.integral(now); }

  double energy_joules(double now) const { return meter_.energy_joules(now); }
  double idle_energy_joules(double now) const {
    return meter_.idle_energy_joules(now);
  }
  double mean_watts(double now) const { return meter_.mean_watts(now); }

 private:
  void record(double now) {
    busy_.set(now, static_cast<double>(busy_count_));
    meter_.set_utilization(now, utilization());
  }

  std::uint32_t id_;
  unsigned slots_;
  unsigned busy_count_ = 0;
  TimeWeighted busy_;
  EnergyMeter meter_;
};

}  // namespace vmcons::dc
