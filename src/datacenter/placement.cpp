#include "datacenter/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace vmcons::dc {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

struct HostLoad {
  unsigned cores = 0;
  double memory = 0.0;
  std::vector<bool> services;  // service present on this host?
};

bool fits(const VmRequirement& vm, const HostLoad& load, const HostShape& host,
          bool anti_affinity) {
  if (load.cores + vm.vcpus > host.usable_cores()) {
    return false;
  }
  if (load.memory + vm.memory_gb > host.usable_memory_gb() + 1e-12) {
    return false;
  }
  if (anti_affinity && vm.service < load.services.size() &&
      load.services[vm.service]) {
    return false;
  }
  return true;
}

void place(const VmRequirement& vm, HostLoad& load) {
  load.cores += vm.vcpus;
  load.memory += vm.memory_gb;
  if (vm.service >= load.services.size()) {
    load.services.resize(vm.service + 1, false);
  }
  load.services[vm.service] = true;
}

void validate_shape(const HostShape& host) {
  VMCONS_REQUIRE(host.cpu_cores > host.reserved_cores,
                 "host has no usable cores");
  VMCONS_REQUIRE(host.memory_gb > host.reserved_memory_gb,
                 "host has no usable memory");
}

void validate_vms(const std::vector<VmRequirement>& vms,
                  const HostShape& host) {
  for (const auto& vm : vms) {
    VMCONS_REQUIRE(vm.vcpus >= 1, "VM '" + vm.name + "' needs >= 1 vCPU");
    VMCONS_REQUIRE(vm.memory_gb > 0.0,
                   "VM '" + vm.name + "' needs positive memory");
    VMCONS_REQUIRE(vm.vcpus <= host.usable_cores() &&
                       vm.memory_gb <= host.usable_memory_gb() + 1e-12,
                   "VM '" + vm.name + "' does not fit any host");
  }
}

}  // namespace

Placement pack_vms(const std::vector<VmRequirement>& vms,
                   const HostShape& host, std::size_t max_hosts,
                   PackingHeuristic heuristic,
                   bool one_vm_per_service_per_host) {
  validate_shape(host);
  validate_vms(vms, host);

  // Order: decreasing "size" (cores dominant, memory tie-break) for FFD;
  // input order for best-fit.
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  if (heuristic == PackingHeuristic::kFirstFitDecreasing) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (vms[a].vcpus != vms[b].vcpus) {
        return vms[a].vcpus > vms[b].vcpus;
      }
      return vms[a].memory_gb > vms[b].memory_gb;
    });
  }

  Placement placement;
  std::vector<HostLoad> loads;
  placement.feasible = true;
  for (const std::size_t index : order) {
    const VmRequirement& vm = vms[index];
    std::size_t chosen = kNpos;
    if (heuristic == PackingHeuristic::kBestFit) {
      // Host with the least remaining cores that still fits.
      unsigned best_slack = std::numeric_limits<unsigned>::max();
      for (std::size_t h = 0; h < loads.size(); ++h) {
        if (!fits(vm, loads[h], host, one_vm_per_service_per_host)) {
          continue;
        }
        const unsigned slack = host.usable_cores() - loads[h].cores - vm.vcpus;
        if (slack < best_slack) {
          best_slack = slack;
          chosen = h;
        }
      }
    } else {
      for (std::size_t h = 0; h < loads.size(); ++h) {
        if (fits(vm, loads[h], host, one_vm_per_service_per_host)) {
          chosen = h;
          break;
        }
      }
    }
    if (chosen == kNpos) {
      if (loads.size() >= max_hosts) {
        placement.feasible = false;
        continue;  // keep packing the rest for the partial answer
      }
      loads.emplace_back();
      placement.assignments.emplace_back();
      chosen = loads.size() - 1;
    }
    place(vm, loads[chosen]);
    placement.assignments[chosen].push_back(index);
  }
  return placement;
}

ClassedPlacement pack_vms_classed(const std::vector<VmRequirement>& vms,
                                  const std::vector<HostClassSpec>& classes,
                                  PackingHeuristic heuristic,
                                  bool one_vm_per_service_per_host) {
  VMCONS_REQUIRE(!classes.empty(), "need at least one host class");
  for (const HostClassSpec& spec : classes) {
    VMCONS_REQUIRE(!spec.name.empty(), "host class needs a name");
    validate_shape(spec.shape);
  }
  for (const auto& vm : vms) {
    VMCONS_REQUIRE(vm.vcpus >= 1, "VM '" + vm.name + "' needs >= 1 vCPU");
    VMCONS_REQUIRE(vm.memory_gb > 0.0,
                   "VM '" + vm.name + "' needs positive memory");
    const bool fits_somewhere =
        std::any_of(classes.begin(), classes.end(),
                    [&](const HostClassSpec& spec) {
                      return vm.vcpus <= spec.shape.usable_cores() &&
                             vm.memory_gb <=
                                 spec.shape.usable_memory_gb() + 1e-12;
                    });
    VMCONS_REQUIRE(fits_somewhere,
                   "VM '" + vm.name + "' does not fit any host class");
  }

  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), 0);
  if (heuristic == PackingHeuristic::kFirstFitDecreasing) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (vms[a].vcpus != vms[b].vcpus) {
        return vms[a].vcpus > vms[b].vcpus;
      }
      return vms[a].memory_gb > vms[b].memory_gb;
    });
  }

  ClassedPlacement classed;
  classed.placement.feasible = true;
  std::vector<HostLoad> loads;
  std::vector<std::size_t> opened(classes.size(), 0);
  for (const std::size_t index : order) {
    const VmRequirement& vm = vms[index];
    std::size_t chosen = kNpos;
    if (heuristic == PackingHeuristic::kBestFit) {
      unsigned best_slack = std::numeric_limits<unsigned>::max();
      for (std::size_t h = 0; h < loads.size(); ++h) {
        const HostShape& shape = classes[classed.host_class[h]].shape;
        if (!fits(vm, loads[h], shape, one_vm_per_service_per_host)) {
          continue;
        }
        const unsigned slack = shape.usable_cores() - loads[h].cores - vm.vcpus;
        if (slack < best_slack) {
          best_slack = slack;
          chosen = h;
        }
      }
    } else {
      for (std::size_t h = 0; h < loads.size(); ++h) {
        if (fits(vm, loads[h], classes[classed.host_class[h]].shape,
                 one_vm_per_service_per_host)) {
          chosen = h;
          break;
        }
      }
    }
    if (chosen == kNpos) {
      for (std::size_t c = 0; c < classes.size(); ++c) {
        if (opened[c] >= classes[c].count) {
          continue;
        }
        if (vm.vcpus > classes[c].shape.usable_cores() ||
            vm.memory_gb > classes[c].shape.usable_memory_gb() + 1e-12) {
          continue;
        }
        ++opened[c];
        loads.emplace_back();
        classed.placement.assignments.emplace_back();
        classed.host_class.push_back(c);
        chosen = loads.size() - 1;
        break;
      }
    }
    if (chosen == kNpos) {
      classed.placement.feasible = false;
      continue;  // keep packing the rest for the partial answer
    }
    place(vm, loads[chosen]);
    classed.placement.assignments[chosen].push_back(index);
  }
  return classed;
}

std::size_t min_hosts(const std::vector<VmRequirement>& vms,
                      const HostShape& host, PackingHeuristic heuristic,
                      bool one_vm_per_service_per_host) {
  if (vms.empty()) {
    return 0;
  }
  const Placement placement =
      pack_vms(vms, host, vms.size(), heuristic, one_vm_per_service_per_host);
  VMCONS_ASSERT(placement.feasible);
  return placement.hosts_used();
}

Replan replan_minimal_migrations(const std::vector<VmRequirement>& vms,
                                 const std::vector<std::size_t>& current,
                                 const HostShape& host,
                                 std::size_t max_hosts) {
  validate_shape(host);
  validate_vms(vms, host);
  VMCONS_REQUIRE(current.size() == vms.size(),
                 "one current host per VM required (npos if unplaced)");

  Replan replan;
  std::vector<HostLoad> loads(max_hosts);
  replan.placement.assignments.resize(max_hosts);
  replan.placement.feasible = true;

  // Pass 1: keep every VM whose current host still fits it.
  std::vector<std::size_t> displaced;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const std::size_t h = current[i];
    if (h != kNpos && h < max_hosts && fits(vms[i], loads[h], host, false)) {
      place(vms[i], loads[h]);
      replan.placement.assignments[h].push_back(i);
    } else {
      displaced.push_back(i);
    }
  }
  // Pass 2: first-fit the displaced VMs into the remaining capacity,
  // largest first (fewer dead ends).
  std::sort(displaced.begin(), displaced.end(),
            [&](std::size_t a, std::size_t b) {
              return vms[a].vcpus > vms[b].vcpus;
            });
  for (const std::size_t i : displaced) {
    std::size_t chosen = kNpos;
    for (std::size_t h = 0; h < max_hosts; ++h) {
      if (fits(vms[i], loads[h], host, false)) {
        chosen = h;
        break;
      }
    }
    if (chosen == kNpos) {
      replan.placement.feasible = false;
      continue;
    }
    place(vms[i], loads[chosen]);
    replan.placement.assignments[chosen].push_back(i);
    if (current[i] != kNpos) {
      ++replan.migrations;  // it had a host and moved
    }
  }
  // Trim empty trailing hosts for a tidy hosts_used().
  while (!replan.placement.assignments.empty() &&
         replan.placement.assignments.back().empty()) {
    replan.placement.assignments.pop_back();
  }
  return replan;
}

VmRequirement paper_web_vm_requirement(std::uint32_t index) {
  return {"web-vm-" + std::to_string(index), 1, 1.0, 0};
}

VmRequirement paper_db_vm_requirement(std::uint32_t index) {
  return {"db-vm-" + std::to_string(index), 6, 1.0, 1};
}

}  // namespace vmcons::dc
