#include "datacenter/pool_sim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "datacenter/server.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace vmcons::dc {
namespace {

struct QueuedRequest {
  std::size_t service;
  double arrival_time;
};

std::size_t total_servers(const PoolConfig& config) {
  if (config.groups.empty()) {
    return config.servers;
  }
  std::size_t total = 0;
  for (const ServerGroup& group : config.groups) {
    total += group.servers;
  }
  return total;
}

class PoolSimulation {
 public:
  PoolSimulation(const PoolConfig& config, Rng& rng)
      : config_(config),
        rng_(rng),
        dispatcher_(config.dispatch, total_servers(config)),
        outcome_() {
    validate();
    if (config_.groups.empty()) {
      servers_.reserve(config_.servers);
      for (unsigned s = 0; s < config_.servers; ++s) {
        servers_.emplace_back(s, config_.slots_per_server, config_.power);
      }
      rate_multiplier_.assign(config_.servers, 1.0);
    } else {
      servers_.reserve(total_servers(config_));
      std::uint32_t id = 0;
      for (const ServerGroup& group : config_.groups) {
        for (unsigned s = 0; s < group.servers; ++s) {
          servers_.emplace_back(id++, group.slots_per_server, group.power);
          rate_multiplier_.push_back(group.rate_multiplier);
        }
      }
    }
    busy_per_service_.assign(
        servers_.size(), std::vector<unsigned>(service_count(), 0));
    quotas_ = initial_quotas();
    window_arrivals_.assign(service_count(), 0);
    outcome_.services.resize(service_count());
  }

  PoolOutcome run() {
    for (std::size_t i = 0; i < service_count(); ++i) {
      if (config_.arrival_rates[i] > 0.0) {
        schedule_arrival(i);
      }
    }
    engine_.schedule_at(config_.warmup, [this] { reset_statistics(); });
    if (config_.allocation == AllocationPolicy::kProportionalShare) {
      engine_.schedule_at(config_.realloc_interval, [this] { reallocate(); });
    }
    engine_.run_until(config_.horizon);
    finalize();
    return std::move(outcome_);
  }

 private:
  std::size_t service_count() const { return config_.arrival_rates.size(); }

  void validate() const {
    VMCONS_REQUIRE(!config_.arrival_rates.empty(),
                   "pool needs at least one service");
    VMCONS_REQUIRE(config_.service_rates.size() == config_.arrival_rates.size(),
                   "arrival/service rate vectors differ in length");
    for (const double rate : config_.service_rates) {
      VMCONS_REQUIRE(rate > 0.0, "per-slot service rates must be positive");
    }
    for (const double rate : config_.arrival_rates) {
      VMCONS_REQUIRE(rate >= 0.0, "arrival rates must be >= 0");
    }
    if (config_.groups.empty()) {
      VMCONS_REQUIRE(config_.servers >= 1, "pool needs at least one server");
      VMCONS_REQUIRE(config_.slots_per_server >= 1,
                     "need at least one slot");
    } else {
      // Per-service quotas meter slots uniformly across servers, which has
      // no meaning when servers differ in shape — so grouped pools require
      // the work-conserving policy.
      VMCONS_REQUIRE(config_.allocation == AllocationPolicy::kOnDemandFlowing,
                     "heterogeneous server groups require on-demand flowing "
                     "allocation");
      std::size_t grouped = 0;
      for (const ServerGroup& group : config_.groups) {
        VMCONS_REQUIRE(!group.name.empty(), "server group needs a name");
        VMCONS_REQUIRE(group.slots_per_server >= 1,
                       "group '" + group.name +
                           "' needs at least one slot per server");
        VMCONS_REQUIRE(group.rate_multiplier > 0.0,
                       "group '" + group.name +
                           "' needs a positive rate multiplier");
        grouped += group.servers;
      }
      VMCONS_REQUIRE(grouped >= 1, "server groups declare no servers");
    }
    VMCONS_REQUIRE(config_.horizon > config_.warmup && config_.warmup >= 0.0,
                   "horizon must exceed warmup");
    if (config_.allocation == AllocationPolicy::kProportionalShare) {
      VMCONS_REQUIRE(config_.realloc_interval > 0.0,
                     "reallocation interval must be positive");
    }
  }

  std::vector<unsigned> initial_quotas() const {
    if (config_.allocation == AllocationPolicy::kOnDemandFlowing) {
      return {};
    }
    if (!config_.static_quotas.empty()) {
      VMCONS_REQUIRE(config_.static_quotas.size() == service_count(),
                     "one static quota per service required");
      const unsigned total = std::accumulate(config_.static_quotas.begin(),
                                             config_.static_quotas.end(), 0u);
      VMCONS_REQUIRE(total <= config_.slots_per_server,
                     "static quotas exceed slots per server");
      return config_.static_quotas;
    }
    // Even split; remainder slots go to the first services.
    std::vector<unsigned> quotas(service_count(),
                                 config_.slots_per_server /
                                     static_cast<unsigned>(service_count()));
    unsigned remainder = config_.slots_per_server %
                         static_cast<unsigned>(service_count());
    for (std::size_t i = 0; i < service_count() && remainder > 0; ++i, --remainder) {
      ++quotas[i];
    }
    return quotas;
  }

  bool admits(std::size_t server, std::size_t service) const {
    if (!servers_[server].has_free_slot()) {
      return false;
    }
    if (config_.allocation == AllocationPolicy::kOnDemandFlowing) {
      return true;
    }
    return busy_per_service_[server][service] < quotas_[service];
  }

  void schedule_arrival(std::size_t service) {
    const double gap = rng_.exponential(config_.arrival_rates[service]);
    engine_.schedule_in(gap, [this, service] {
      on_arrival(service);
      schedule_arrival(service);
    });
  }

  void on_arrival(std::size_t service) {
    ++outcome_.services[service].arrivals;
    ++window_arrivals_[service];
    if (frozen_) {
      enqueue_or_drop(service);
      return;
    }
    const std::size_t target = dispatcher_.select(
        [&](std::size_t s) { return admits(s, service); },
        [&](std::size_t s) { return static_cast<double>(servers_[s].busy()); },
        rng_);
    if (target == Dispatcher::npos) {
      enqueue_or_drop(service);
      return;
    }
    ++outcome_.services[service].admitted;
    begin_service(target, service, engine_.now());
  }

  void enqueue_or_drop(std::size_t service) {
    if (queue_.size() < config_.queue_capacity) {
      ++outcome_.services[service].admitted;
      queue_.push_back({service, engine_.now()});
    } else {
      ++outcome_.services[service].lost;
    }
  }

  void begin_service(std::size_t server, std::size_t service,
                     double arrival_time) {
    const double now = engine_.now();
    servers_[server].occupy(now);
    if (config_.allocation != AllocationPolicy::kOnDemandFlowing) {
      ++busy_per_service_[server][service];
    }
    // A faster server class serves every request proportionally quicker;
    // the homogeneous path multiplies by exactly 1.0 (a bit-level identity).
    const double duration = rng_.exponential(config_.service_rates[service] *
                                             rate_multiplier_[server]);
    engine_.schedule_in(duration, [this, server, service, arrival_time] {
      on_departure(server, service, arrival_time);
    });
  }

  void on_departure(std::size_t server, std::size_t service,
                    double arrival_time) {
    const double now = engine_.now();
    servers_[server].release(now);
    if (config_.allocation != AllocationPolicy::kOnDemandFlowing) {
      VMCONS_ASSERT(busy_per_service_[server][service] > 0);
      --busy_per_service_[server][service];
    }
    auto& stats = outcome_.services[service];
    ++stats.completed;
    stats.response_time.add(now - arrival_time);
    if (!frozen_) {
      admit_from_queue(server);
    }
  }

  void admit_from_queue(std::size_t server) {
    if (queue_.empty() || !servers_[server].has_free_slot()) {
      return;
    }
    // FIFO among requests this server may serve under the current quotas.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (admits(server, it->service)) {
        const QueuedRequest request = *it;
        queue_.erase(it);
        begin_service(server, request.service, request.arrival_time);
        return;
      }
    }
  }

  void reallocate() {
    // Quotas follow the observed offered *work* of the last window:
    // arrivals weighted by mean service time. Weighting by raw arrival
    // counts misallocates badly when services' service times differ (a
    // web request is ~4x cheaper than a DB interaction in the case study).
    double total = 0.0;
    std::vector<double> work(service_count(), 0.0);
    for (std::size_t i = 0; i < service_count(); ++i) {
      work[i] = static_cast<double>(window_arrivals_[i]) /
                config_.service_rates[i];
      total += work[i];
    }
    if (total > 0.0) {
      std::vector<unsigned> next(service_count(), 0);
      unsigned assigned = 0;
      for (std::size_t i = 0; i < service_count(); ++i) {
        const double share = work[i] / total;
        next[i] = std::max(
            1u, static_cast<unsigned>(share * config_.slots_per_server + 0.5));
        assigned += next[i];
      }
      // Trim overshoot from the largest quotas so the sum fits.
      while (assigned > config_.slots_per_server) {
        auto largest = std::max_element(next.begin(), next.end());
        if (*largest <= 1) {
          break;
        }
        --*largest;
        --assigned;
      }
      quotas_ = std::move(next);
    }
    std::fill(window_arrivals_.begin(), window_arrivals_.end(), 0);

    if (config_.realloc_overhead > 0.0) {
      frozen_ = true;
      engine_.schedule_in(config_.realloc_overhead, [this] {
        frozen_ = false;
        // Drain whatever the freeze let pile up.
        for (std::size_t s = 0; s < servers_.size(); ++s) {
          while (!queue_.empty() && servers_[s].has_free_slot()) {
            const std::size_t before = queue_.size();
            admit_from_queue(s);
            if (queue_.size() == before) {
              break;  // nothing admissible on this server
            }
          }
        }
      });
    }
    engine_.schedule_in(config_.realloc_interval, [this] { reallocate(); });
  }

  void reset_statistics() {
    for (auto& stats : outcome_.services) {
      stats = ServiceOutcome{};
    }
    for (const auto& server : servers_) {
      warmup_energy_ += server.energy_joules(engine_.now());
      warmup_idle_energy_ += server.idle_energy_joules(engine_.now());
      warmup_busy_integral_ += server.busy_integral(engine_.now());
    }
  }

  void finalize() {
    const double now = config_.horizon;
    outcome_.measured_span = now - config_.warmup;
    double energy = 0.0;
    double idle_energy = 0.0;
    double busy_integral = 0.0;
    for (const auto& server : servers_) {
      energy += server.energy_joules(now);
      idle_energy += server.idle_energy_joules(now);
      busy_integral += server.busy_integral(now);
    }
    outcome_.energy_joules = energy - warmup_energy_;
    outcome_.idle_energy_joules = idle_energy - warmup_idle_energy_;
    double total_slots = 0.0;
    for (const auto& server : servers_) {
      total_slots += static_cast<double>(server.slots());
    }
    const double slot_seconds = outcome_.measured_span * total_slots;
    outcome_.mean_utilization =
        slot_seconds <= 0.0
            ? 0.0
            : (busy_integral - warmup_busy_integral_) / slot_seconds;
    outcome_.mean_power_watts = outcome_.measured_span <= 0.0
                                    ? 0.0
                                    : outcome_.energy_joules /
                                          outcome_.measured_span;
  }

  const PoolConfig& config_;
  Rng& rng_;
  sim::Engine engine_;
  Dispatcher dispatcher_;
  std::vector<PhysicalServer> servers_;
  std::vector<double> rate_multiplier_;  ///< per server, 1.0 when homogeneous
  std::vector<std::vector<unsigned>> busy_per_service_;
  std::vector<unsigned> quotas_;
  std::vector<std::uint64_t> window_arrivals_;
  std::deque<QueuedRequest> queue_;
  bool frozen_ = false;
  double warmup_energy_ = 0.0;
  double warmup_idle_energy_ = 0.0;
  double warmup_busy_integral_ = 0.0;
  PoolOutcome outcome_;
};

}  // namespace

std::uint64_t PoolOutcome::total_arrivals() const {
  std::uint64_t total = 0;
  for (const auto& service : services) {
    total += service.arrivals;
  }
  return total;
}

std::uint64_t PoolOutcome::total_lost() const {
  std::uint64_t total = 0;
  for (const auto& service : services) {
    total += service.lost;
  }
  return total;
}

double PoolOutcome::overall_loss() const {
  const std::uint64_t arrivals = total_arrivals();
  return arrivals == 0 ? 0.0
                       : static_cast<double>(total_lost()) /
                             static_cast<double>(arrivals);
}

double PoolOutcome::total_throughput() const {
  double total = 0.0;
  for (const auto& service : services) {
    total += service.throughput(measured_span);
  }
  return total;
}

PoolOutcome simulate_pool(const PoolConfig& config, Rng& rng) {
  PoolSimulation simulation(config, rng);
  return simulation.run();
}

}  // namespace vmcons::dc
