// Tandem loss network: multi-tier requests flowing through tiered pools.
//
// The paper's Related Work (Section II-A) stresses that "different tiers of
// a multi-tiered service have various characteristics on resource
// requirement, which results in various performance impacts" — and that the
// model therefore evaluates virtualization impact per tier, not integrally.
// This module simulates that situation: a request enters tier 1, holds a
// server there for an exponential time, then proceeds to tier 2, and so on;
// it is LOST if the next tier has no free server (no buffering between
// tiers, matching the loss-model picture).
#pragma once

#include <vector>

#include "datacenter/pool_sim.hpp"  // ServiceOutcome
#include "datacenter/power.hpp"
#include "datacenter/service_spec.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {

struct TierConfig {
  std::string name;
  double service_rate = 1.0;  ///< per-server holding rate at this tier
  unsigned servers = 1;
};

struct TandemConfig {
  double arrival_rate = 1.0;  ///< front-end request rate (Poisson)
  std::vector<TierConfig> tiers;
  PowerModel power;
  double horizon = 2000.0;
  double warmup = 200.0;
};

struct TierOutcome {
  std::string name;
  std::uint64_t offered = 0;   ///< requests reaching this tier
  std::uint64_t blocked = 0;   ///< lost at this tier's admission
  double mean_utilization = 0.0;

  double blocking() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(blocked) /
                              static_cast<double>(offered);
  }
};

struct TandemOutcome {
  std::vector<TierOutcome> tiers;
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;  ///< made it through every tier
  std::uint64_t lost = 0;       ///< blocked at some tier
  Summary end_to_end_response;
  double measured_span = 0.0;

  double loss_probability() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(lost) /
                               static_cast<double>(arrivals);
  }
};

/// Simulates the tandem loss network.
TandemOutcome simulate_tandem(const TandemConfig& config, Rng& rng);

}  // namespace vmcons::dc
