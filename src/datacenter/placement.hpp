// VM-to-host placement: the feasibility check behind the model's N.
//
// The Erlang staffing says how many servers the *rates* need; the VMs also
// have discrete footprints (vCPUs, memory). This module packs VM
// requirements onto hosts (first-fit-decreasing and best-fit heuristics),
// verifies that the model's N is footprint-feasible (in the paper's
// testbed: 1 Web VM + 1 DB VM + Domain-0 per host), and replans with
// minimal migrations when the VM set changes — the Entropy/ReCon-style
// dynamic-consolidation baseline of the paper's Related Work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vmcons::dc {

struct VmRequirement {
  std::string name;
  unsigned vcpus = 1;
  double memory_gb = 1.0;
  std::uint32_t service = 0;  ///< owning service (for anti-affinity rules)
};

struct HostShape {
  unsigned cpu_cores = 8;
  double memory_gb = 8.0;
  /// Capacity reserved for the hypervisor (the paper's Domain-0 keeps two
  /// cores and the leftover memory).
  unsigned reserved_cores = 2;
  double reserved_memory_gb = 1.0;

  unsigned usable_cores() const { return cpu_cores - reserved_cores; }
  double usable_memory_gb() const { return memory_gb - reserved_memory_gb; }
};

struct Placement {
  /// assignments[h] lists the indices (into the input VM vector) on host h.
  std::vector<std::vector<std::size_t>> assignments;
  bool feasible = false;

  std::size_t hosts_used() const { return assignments.size(); }
};

enum class PackingHeuristic { kFirstFitDecreasing, kBestFit };

/// One class of hosts available to the heterogeneous packer — the placement
/// face of a dc::ServerClass. `count` bounds how many hosts of this class
/// may be opened (use kUnlimitedHosts for an unbounded class).
inline constexpr std::size_t kUnlimitedHosts = static_cast<std::size_t>(-1);
struct HostClassSpec {
  std::string name;
  HostShape shape;
  std::size_t count = kUnlimitedHosts;
};

/// A Placement whose hosts carry a class tag: host h was opened from
/// classes[host_class[h]].
struct ClassedPlacement {
  Placement placement;
  std::vector<std::size_t> host_class;  ///< per opened host, class index
};

/// Packs the VMs onto at most `max_hosts` hosts of the given shape.
/// Infeasible results still return the partial packing (assignments cover
/// the prefix of VMs that fit) with feasible = false.
/// When `one_vm_per_service_per_host` is set, two VMs of the same service
/// never share a host (the paper's deployment: each host runs one Web VM
/// and one DB VM).
Placement pack_vms(const std::vector<VmRequirement>& vms,
                   const HostShape& host, std::size_t max_hosts,
                   PackingHeuristic heuristic = PackingHeuristic::kFirstFitDecreasing,
                   bool one_vm_per_service_per_host = false);

/// Packs the VMs onto a heterogeneous fleet of host classes. VMs are placed
/// first-fit (decreasing size for kFirstFitDecreasing) over the hosts opened
/// so far; when none fits, a new host is opened from the first class in
/// declaration order that still has remaining count and whose shape can hold
/// the VM — so listing the preferred (e.g. newest) class first biases the
/// packing toward it. A VM that fits no class's shape throws InvalidArgument
/// naming the VM; running out of hosts yields feasible = false with the
/// partial packing, like pack_vms.
ClassedPlacement pack_vms_classed(
    const std::vector<VmRequirement>& vms,
    const std::vector<HostClassSpec>& classes,
    PackingHeuristic heuristic = PackingHeuristic::kFirstFitDecreasing,
    bool one_vm_per_service_per_host = false);

/// Minimum hosts needed for the VM set (scans upward from the volume bound).
std::size_t min_hosts(const std::vector<VmRequirement>& vms,
                      const HostShape& host,
                      PackingHeuristic heuristic = PackingHeuristic::kFirstFitDecreasing,
                      bool one_vm_per_service_per_host = false);

struct Replan {
  Placement placement;
  std::size_t migrations = 0;  ///< VMs that changed host
};

/// Re-places `vms` given their current placement, preferring to keep every
/// VM where it is (Entropy-style minimal reconfiguration): VMs that still
/// fit on their current host stay; the rest are packed into the remaining
/// capacity. `current` maps VM index -> host index (npos = not placed).
Replan replan_minimal_migrations(const std::vector<VmRequirement>& vms,
                                 const std::vector<std::size_t>& current,
                                 const HostShape& host,
                                 std::size_t max_hosts);

/// The paper's VM footprints: Web VM (1 vCPU, 1 GB), DB VM (6 vCPUs, 1 GB).
VmRequirement paper_web_vm_requirement(std::uint32_t index);
VmRequirement paper_db_vm_requirement(std::uint32_t index);

}  // namespace vmcons::dc
