#include "datacenter/service_spec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vmcons::dc {

ServiceSpec& ServiceSpec::demand(Resource resource, double native_rate,
                                 virt::Impact impact) {
  VMCONS_REQUIRE(native_rate >= 0.0, "native rate must be >= 0");
  native_rates[resource] = native_rate;
  impacts[static_cast<std::size_t>(resource)] = std::move(impact);
  return *this;
}

double ServiceSpec::native_bottleneck_rate() const {
  const double rate =
      native_rates.min_positive(std::numeric_limits<double>::infinity());
  VMCONS_REQUIRE(rate != std::numeric_limits<double>::infinity(),
                 "service '" + name + "' demands no resource");
  return rate;
}

double ServiceSpec::effective_rate(unsigned vm_count) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Resource resource : all_resources()) {
    const double mu = native_rates[resource];
    if (mu <= 0.0) {
      continue;
    }
    best = std::min(best, mu * impact_factor(resource, vm_count));
  }
  VMCONS_REQUIRE(best != std::numeric_limits<double>::infinity(),
                 "service '" + name + "' demands no resource");
  return best;
}

double ServiceSpec::impact_factor(Resource resource, unsigned vm_count) const {
  return impacts[static_cast<std::size_t>(resource)].factor(vm_count);
}

ServiceSpec paper_web_service() {
  ServiceSpec spec;
  spec.name = "web";
  spec.demand(Resource::kDiskIo, 420.0, virt::Impact::constant(0.8));
  spec.demand(Resource::kCpu, 3360.0, virt::Impact::constant(0.65));
  return spec;
}

ServiceSpec paper_db_service() {
  ServiceSpec spec;
  spec.name = "db";
  spec.demand(Resource::kCpu, 100.0, virt::Impact::constant(0.9));
  return spec;
}

}  // namespace vmcons::dc
