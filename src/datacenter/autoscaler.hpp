// Reactive cluster autoscaler — the baseline class the paper contrasts with.
//
// Related work (Section II-B) saves energy by "dynamically reconfiguring
// (or shrinking) the cluster to operate with fewer nodes under light load";
// the paper's model instead plans the scale proactively, and argues the two
// compose. This module implements the reactive side so the composition can
// be measured: a watermark controller that powers servers on/off in
// response to observed utilization, with realistic boot latency and boot
// energy, driven by an optionally diurnal (sinusoidally modulated Poisson)
// workload.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/pool_sim.hpp"  // ServiceOutcome
#include "datacenter/power.hpp"
#include "datacenter/service_spec.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {

struct AutoscalerConfig {
  std::vector<ServiceSpec> services;
  /// Fleet bounds: the controller moves within [min_servers, max_servers].
  unsigned max_servers = 8;
  unsigned min_servers = 1;
  unsigned initial_servers = 1;
  /// Consolidated VM count for the impact curves (0 = native rates).
  unsigned vm_count = 0;
  /// Controller: sample utilization every interval; scale up when above the
  /// high watermark, down when below the low watermark.
  double control_interval = 30.0;
  double high_watermark = 0.7;
  double low_watermark = 0.3;
  /// A powered-on server becomes usable only after boot_delay seconds, and
  /// draws idle power while booting; each boot also costs boot_energy extra.
  double boot_delay = 120.0;
  double boot_energy_joules = 15000.0;  // ~60 s of idle draw
  PowerModel power;
  double horizon = 4000.0;
  double warmup = 400.0;
  /// Diurnal modulation: lambda(t) = lambda * (1 + amplitude *
  /// sin(2 pi t / period)). amplitude = 0 disables it.
  double diurnal_amplitude = 0.0;
  double diurnal_period = 3600.0;
};

struct AutoscalerOutcome {
  std::vector<ServiceOutcome> services;
  double measured_span = 0.0;
  double mean_active_servers = 0.0;  ///< time-average usable servers
  double energy_joules = 0.0;        ///< active + booting + boot transitions
  double mean_power_watts = 0.0;
  std::uint64_t boots = 0;           ///< scale-up transitions
  std::uint64_t shutdowns = 0;       ///< scale-down transitions

  double overall_loss() const;
};

/// Runs one replication of the reactive cluster.
AutoscalerOutcome simulate_autoscaler(const AutoscalerConfig& config, Rng& rng);

}  // namespace vmcons::dc
