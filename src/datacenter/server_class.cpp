#include "datacenter/server_class.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace vmcons::dc {
namespace {

/// "class 'legacy': cpu capacity = -1" — every validation error names the
/// class and the offending field so operators can find the line.
std::string class_field_value(const std::string& name, const std::string& field,
                              double value) {
  std::ostringstream out;
  out.precision(17);
  out << "class '" << name << "': " << field << " = " << value;
  return out.str();
}

}  // namespace

ResourceVector ServerClass::unit_capacity() {
  ResourceVector capacity;
  for (const Resource resource : all_resources()) {
    capacity[resource] = 1.0;
  }
  return capacity;
}

double ServerClass::speed() const {
  double slowest = std::numeric_limits<double>::infinity();
  for (const Resource resource : all_resources()) {
    slowest = std::min(slowest, capacity[resource]);
  }
  return slowest;
}

ServerClass ServerClass::reference(std::string name, PowerModel power,
                                   std::uint64_t count) {
  ServerClass server_class;
  server_class.name = std::move(name);
  server_class.power = power;
  server_class.count = count;
  return server_class;
}

void validate_server_class(const ServerClass& server_class) {
  VMCONS_REQUIRE(!server_class.name.empty(),
                 "server class needs a non-empty name");
  for (const Resource resource : all_resources()) {
    const double capacity = server_class.capacity[resource];
    const std::string field =
        std::string(resource_name(resource)) + " capacity";
    VMCONS_REQUIRE(std::isfinite(capacity),
                   class_field_value(server_class.name, field, capacity) +
                       " must be finite");
    VMCONS_REQUIRE(capacity > 0.0,
                   class_field_value(server_class.name, field, capacity) +
                       " must be > 0 (relative to the reference server)");
  }
  const double base = server_class.power.base_watts;
  const double max = server_class.power.max_watts;
  VMCONS_REQUIRE(std::isfinite(base),
                 class_field_value(server_class.name, "base_watts", base) +
                     " must be finite");
  VMCONS_REQUIRE(std::isfinite(max),
                 class_field_value(server_class.name, "max_watts", max) +
                     " must be finite");
  VMCONS_REQUIRE(base > 0.0,
                 class_field_value(server_class.name, "base_watts", base) +
                     " must be > 0");
  VMCONS_REQUIRE(max >= base,
                 class_field_value(server_class.name, "max_watts", max) +
                     " must be >= base_watts (a negative dynamic range would "
                     "reward utilization with phantom savings)");
}

Fleet& Fleet::add(ServerClass server_class) {
  validate_server_class(server_class);
  for (const ServerClass& existing : classes_) {
    VMCONS_REQUIRE(existing.name != server_class.name,
                   "fleet already has a class named '" + server_class.name +
                       "'");
  }
  classes_.push_back(std::move(server_class));
  return *this;
}

Fleet Fleet::with_counts(const std::vector<std::uint64_t>& counts) const {
  VMCONS_REQUIRE(counts.size() == classes_.size(),
                 "fleet mix has " + std::to_string(counts.size()) +
                     " counts but the fleet declares " +
                     std::to_string(classes_.size()) + " classes");
  Fleet fleet;
  fleet.classes_ = classes_;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    fleet.classes_[i].count = counts[i];
  }
  return fleet;
}

}  // namespace vmcons::dc
