// Scenario builders: the paper's two deployments (Fig. 1/Fig. 3).
//
// Dedicated:    each service gets its own pool of native-Linux servers; a
//               request holds each resource it demands at the native rate.
//               No capacity flows between services (Fig. 3a).
// Consolidated: one shared pool of Xen servers, each hosting one VM per
//               service; on-demand resource flowing lets any request use any
//               free resource unit, at the virtualization-degraded rate
//               (Fig. 3b). Power uses the Xen platform deltas.
//
// Both deployments are simulated as multi-resource Erlang loss networks
// (datacenter/loss_network.hpp). For scheduler/dispatcher studies that need
// slots, queues, and allocation policies, use datacenter/pool_sim.hpp
// directly.
#pragma once

#include <vector>

#include "datacenter/loss_network.hpp"
#include "datacenter/pool_sim.hpp"
#include "datacenter/service_spec.hpp"

namespace vmcons::dc {

/// Knobs shared by both deployments.
struct ScenarioOptions {
  double horizon = 2000.0;
  double warmup = 200.0;
  /// Co-resident VMs per consolidated server; 0 = one VM per service.
  unsigned vms_per_server = 0;
};

/// Simulates the dedicated deployment: services[i] runs alone on
/// servers_per_service[i] native servers. Outcomes are merged (per-service
/// stats in order; energy and utilization aggregated across all pools).
PoolOutcome simulate_dedicated(const std::vector<ServiceSpec>& services,
                               const std::vector<unsigned>& servers_per_service,
                               const ScenarioOptions& options, Rng& rng);

/// Simulates the consolidated deployment on `servers` shared Xen hosts, each
/// hosting one VM per service (so the impact curves see v = services.size()
/// co-resident VMs unless options.vms_per_server overrides it).
PoolOutcome simulate_consolidated(const std::vector<ServiceSpec>& services,
                                  unsigned servers,
                                  const ScenarioOptions& options, Rng& rng);

/// As simulate_consolidated but returning per-resource utilizations too
/// (the CPU utilization is what the paper's Fig. 11 claim measures).
LossNetworkOutcome simulate_consolidated_detailed(
    const std::vector<ServiceSpec>& services, unsigned servers,
    const ScenarioOptions& options, Rng& rng);

/// Per-slot service rate used for service i in a consolidated PoolSim with
/// one VM per service per host: min_j mu_ij * a_ij(v) / slots_per_server.
double consolidated_slot_rate(const ServiceSpec& service, unsigned vm_count,
                              unsigned slots_per_server);

/// Per-slot rate in a dedicated native PoolSim: bottleneck mu / slots.
double dedicated_slot_rate(const ServiceSpec& service,
                           unsigned slots_per_server);

}  // namespace vmcons::dc
