#include "datacenter/cluster.hpp"

#include "util/error.hpp"

namespace vmcons::dc {

double dedicated_slot_rate(const ServiceSpec& service,
                           unsigned slots_per_server) {
  VMCONS_REQUIRE(slots_per_server >= 1, "need at least one slot");
  return service.native_bottleneck_rate() /
         static_cast<double>(slots_per_server);
}

double consolidated_slot_rate(const ServiceSpec& service, unsigned vm_count,
                              unsigned slots_per_server) {
  VMCONS_REQUIRE(slots_per_server >= 1, "need at least one slot");
  return service.effective_rate(vm_count) /
         static_cast<double>(slots_per_server);
}

PoolOutcome simulate_dedicated(const std::vector<ServiceSpec>& services,
                               const std::vector<unsigned>& servers_per_service,
                               const ScenarioOptions& options, Rng& rng) {
  VMCONS_REQUIRE(!services.empty(), "need at least one service");
  VMCONS_REQUIRE(services.size() == servers_per_service.size(),
                 "one server count per service required");

  PoolOutcome merged;
  merged.measured_span = options.horizon - options.warmup;
  double busy_weighted_utilization = 0.0;
  unsigned total_servers = 0;

  for (std::size_t i = 0; i < services.size(); ++i) {
    LossNetworkConfig config;
    config.services = {services[i]};
    config.servers = servers_per_service[i];
    config.vm_count = 0;  // native Linux
    config.power = PowerModel::paper_default(Platform::kNativeLinux);
    config.horizon = options.horizon;
    config.warmup = options.warmup;

    const LossNetworkOutcome outcome = simulate_loss_network(config, rng);
    merged.services.push_back(outcome.pool.services.front());
    merged.energy_joules += outcome.pool.energy_joules;
    merged.idle_energy_joules += outcome.pool.idle_energy_joules;
    busy_weighted_utilization +=
        outcome.pool.mean_utilization *
        static_cast<double>(servers_per_service[i]);
    total_servers += servers_per_service[i];
  }
  merged.mean_utilization =
      total_servers == 0
          ? 0.0
          : busy_weighted_utilization / static_cast<double>(total_servers);
  merged.mean_power_watts = merged.measured_span <= 0.0
                                ? 0.0
                                : merged.energy_joules / merged.measured_span;
  return merged;
}

LossNetworkOutcome simulate_consolidated_detailed(
    const std::vector<ServiceSpec>& services, unsigned servers,
    const ScenarioOptions& options, Rng& rng) {
  VMCONS_REQUIRE(!services.empty(), "need at least one service");
  LossNetworkConfig config;
  config.services = services;
  config.servers = servers;
  config.vm_count = options.vms_per_server != 0
                        ? options.vms_per_server
                        : static_cast<unsigned>(services.size());
  config.power = PowerModel::paper_default(Platform::kXen);
  config.horizon = options.horizon;
  config.warmup = options.warmup;
  return simulate_loss_network(config, rng);
}

PoolOutcome simulate_consolidated(const std::vector<ServiceSpec>& services,
                                  unsigned servers,
                                  const ScenarioOptions& options, Rng& rng) {
  return simulate_consolidated_detailed(services, servers, options, rng).pool;
}

}  // namespace vmcons::dc
