// Physical resource kinds and per-resource vectors.
//
// The paper considers R resource types per server (CPU, disk I/O, ...),
// assumed independent (Section III-B1 assumption 3). A ResourceVector holds
// one double per kind; rates of 0 mean "this service does not demand this
// resource" (e.g. the DB service's disk demand, mu_di ~ 0 in the case study,
// which the model treats as 'no constraint from this resource').
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace vmcons::dc {

enum class Resource : std::size_t {
  kCpu = 0,
  kDiskIo = 1,
  kMemory = 2,
  kNetwork = 3,
};

inline constexpr std::size_t kResourceCount = 4;

constexpr std::string_view resource_name(Resource resource) {
  switch (resource) {
    case Resource::kCpu: return "cpu";
    case Resource::kDiskIo: return "disk_io";
    case Resource::kMemory: return "memory";
    case Resource::kNetwork: return "network";
  }
  return "unknown";
}

constexpr std::array<Resource, kResourceCount> all_resources() {
  return {Resource::kCpu, Resource::kDiskIo, Resource::kMemory,
          Resource::kNetwork};
}

/// Per-resource doubles (service rates, capacities, utilizations).
class ResourceVector {
 public:
  constexpr ResourceVector() : values_{} {}

  constexpr double& operator[](Resource resource) {
    return values_[static_cast<std::size_t>(resource)];
  }
  constexpr double operator[](Resource resource) const {
    return values_[static_cast<std::size_t>(resource)];
  }

  /// Smallest strictly-positive entry, or `fallback` if all entries are 0.
  /// Used to find a service's bottleneck service rate.
  double min_positive(double fallback) const {
    double best = fallback;
    bool found = false;
    for (const double value : values_) {
      if (value > 0.0 && (!found || value < best)) {
        best = value;
        found = true;
      }
    }
    return found ? best : fallback;
  }

  constexpr bool any_positive() const {
    for (const double value : values_) {
      if (value > 0.0) {
        return true;
      }
    }
    return false;
  }

 private:
  std::array<double, kResourceCount> values_;
};

}  // namespace vmcons::dc
