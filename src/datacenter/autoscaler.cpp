#include "datacenter/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sim/engine.hpp"
#include "stats/timeweighted.hpp"
#include "util/error.hpp"

namespace vmcons::dc {
namespace {

class AutoscalerSimulation {
 public:
  AutoscalerSimulation(const AutoscalerConfig& config, Rng& rng)
      : config_(config), rng_(rng) {
    VMCONS_REQUIRE(!config_.services.empty(), "autoscaler needs services");
    VMCONS_REQUIRE(config_.min_servers >= 1 &&
                       config_.min_servers <= config_.max_servers,
                   "need 1 <= min_servers <= max_servers");
    VMCONS_REQUIRE(config_.initial_servers >= config_.min_servers &&
                       config_.initial_servers <= config_.max_servers,
                   "initial_servers out of range");
    VMCONS_REQUIRE(config_.control_interval > 0.0,
                   "control interval must be positive");
    VMCONS_REQUIRE(config_.low_watermark >= 0.0 &&
                       config_.low_watermark < config_.high_watermark &&
                       config_.high_watermark <= 1.0,
                   "watermarks must satisfy 0 <= low < high <= 1");
    VMCONS_REQUIRE(config_.diurnal_amplitude >= 0.0 &&
                       config_.diurnal_amplitude <= 1.0,
                   "diurnal amplitude must be in [0, 1]");
    VMCONS_REQUIRE(config_.horizon > config_.warmup, "horizon <= warmup");
    active_ = config_.initial_servers;
    for (const auto& service : config_.services) {
      const double mu = config_.vm_count == 0
                            ? service.native_bottleneck_rate()
                            : service.effective_rate(config_.vm_count);
      service_rates_.push_back(mu);
    }
    outcome_.services.resize(config_.services.size());
  }

  AutoscalerOutcome run() {
    for (std::size_t i = 0; i < config_.services.size(); ++i) {
      if (config_.services[i].arrival_rate > 0.0) {
        schedule_arrival(i);
      }
    }
    engine_.schedule_at(config_.control_interval, [this] { control(); });
    engine_.schedule_at(config_.warmup, [this] { reset_statistics(); });
    engine_.run_until(config_.horizon);
    finalize();
    return std::move(outcome_);
  }

 private:
  // --- workload ------------------------------------------------------------
  double rate_scale(double now) const {
    if (config_.diurnal_amplitude == 0.0) {
      return 1.0;
    }
    return 1.0 + config_.diurnal_amplitude *
                     std::sin(2.0 * std::numbers::pi * now /
                              config_.diurnal_period);
  }

  void schedule_arrival(std::size_t service) {
    // Thinning of a non-homogeneous Poisson process: generate at the peak
    // rate and accept with probability lambda(t)/lambda_peak.
    const double peak =
        config_.services[service].arrival_rate *
        (1.0 + config_.diurnal_amplitude);
    engine_.schedule_in(rng_.exponential(peak), [this, service, peak] {
      const double accept = config_.services[service].arrival_rate *
                            rate_scale(engine_.now()) / peak;
      if (rng_.bernoulli(accept)) {
        on_arrival(service);
      }
      schedule_arrival(service);
    });
  }

  void on_arrival(std::size_t service) {
    auto& stats = outcome_.services[service];
    ++stats.arrivals;
    ++window_arrivals_;
    if (busy_ >= active_) {
      ++stats.lost;
      ++window_lost_;
      return;
    }
    ++stats.admitted;
    set_busy(busy_ + 1);
    const double arrival_time = engine_.now();
    engine_.schedule_in(rng_.exponential(service_rates_[service]),
                        [this, service, arrival_time] {
                          set_busy(busy_ - 1);
                          auto& done = outcome_.services[service];
                          ++done.completed;
                          done.response_time.add(engine_.now() - arrival_time);
                        });
  }

  // --- controller ----------------------------------------------------------
  void control() {
    // Window-averaged utilization: instantaneous samples of a loss system
    // are far too noisy to act on (they cause shrink/boot thrash). Any
    // request loss in the window is treated as a saturated signal.
    const double now = engine_.now();
    const double busy_delta = busy_tw_.integral(now) - last_busy_integral_;
    const double active_delta =
        active_tw_.integral(now) - last_active_integral_;
    last_busy_integral_ = busy_tw_.integral(now);
    last_active_integral_ = active_tw_.integral(now);
    const double utilization =
        active_delta <= 0.0 ? 1.0 : busy_delta / active_delta;
    const bool losing =
        window_lost_ > 0 &&
        static_cast<double>(window_lost_) >
            0.005 * static_cast<double>(std::max<std::uint64_t>(
                        window_arrivals_, 1));
    window_arrivals_ = 0;
    window_lost_ = 0;

    if ((utilization > config_.high_watermark || losing) &&
        active_ + booting_ < config_.max_servers) {
      ++booting_;
      ++outcome_.boots;
      record_fleet();
      engine_.schedule_in(config_.boot_delay, [this] {
        --booting_;
        set_active(active_ + 1);
      });
      boot_energy_total_ += config_.boot_energy_joules;
    } else if (utilization < config_.low_watermark &&
               active_ > config_.min_servers && busy_ < active_) {
      // Drain-free shutdown: only allowed when a server is actually idle.
      ++outcome_.shutdowns;
      set_active(active_ - 1);
    }
    engine_.schedule_in(config_.control_interval, [this] { control(); });
  }

  // --- accounting ----------------------------------------------------------
  void set_busy(unsigned busy) {
    VMCONS_ASSERT(busy <= active_);
    busy_ = busy;
    record_fleet();
  }

  void set_active(unsigned active) {
    active_ = active;
    record_fleet();
  }

  void record_fleet() {
    const double now = engine_.now();
    active_tw_.set(now, static_cast<double>(active_));
    busy_tw_.set(now, static_cast<double>(busy_));
    // Power: busy servers at full dynamic draw, the rest of the active
    // fleet plus booting servers at idle draw, powered-off servers at zero.
    const double idle = config_.power.watts(0.0);
    const double full = config_.power.watts(1.0);
    const double busy_servers =
        std::min(static_cast<double>(busy_), static_cast<double>(active_));
    const double watts = busy_servers * full +
                         (static_cast<double>(active_) - busy_servers) * idle +
                         static_cast<double>(booting_) * idle;
    power_tw_.set(now, watts);
  }

  void reset_statistics() {
    for (auto& stats : outcome_.services) {
      stats = ServiceOutcome{};
    }
    const double now = engine_.now();
    warmup_energy_ = power_tw_.integral(now) + boot_energy_total_;
    warmup_active_integral_ = active_tw_.integral(now);
    outcome_.boots = 0;
    outcome_.shutdowns = 0;
  }

  void finalize() {
    const double now = config_.horizon;
    outcome_.measured_span = now - config_.warmup;
    outcome_.energy_joules =
        power_tw_.integral(now) + boot_energy_total_ - warmup_energy_;
    outcome_.mean_power_watts =
        outcome_.measured_span <= 0.0
            ? 0.0
            : outcome_.energy_joules / outcome_.measured_span;
    outcome_.mean_active_servers =
        outcome_.measured_span <= 0.0
            ? 0.0
            : (active_tw_.integral(now) - warmup_active_integral_) /
                  outcome_.measured_span;
  }

  const AutoscalerConfig& config_;
  Rng& rng_;
  sim::Engine engine_;
  std::vector<double> service_rates_;
  unsigned active_ = 0;
  unsigned booting_ = 0;
  unsigned busy_ = 0;
  TimeWeighted active_tw_;
  TimeWeighted busy_tw_;
  TimeWeighted power_tw_;
  double last_busy_integral_ = 0.0;
  double last_active_integral_ = 0.0;
  std::uint64_t window_arrivals_ = 0;
  std::uint64_t window_lost_ = 0;
  double boot_energy_total_ = 0.0;
  double warmup_energy_ = 0.0;
  double warmup_active_integral_ = 0.0;
  AutoscalerOutcome outcome_;
};

}  // namespace

double AutoscalerOutcome::overall_loss() const {
  std::uint64_t arrivals = 0;
  std::uint64_t lost = 0;
  for (const auto& service : services) {
    arrivals += service.arrivals;
    lost += service.lost;
  }
  return arrivals == 0 ? 0.0
                       : static_cast<double>(lost) /
                             static_cast<double>(arrivals);
}

AutoscalerOutcome simulate_autoscaler(const AutoscalerConfig& config,
                                      Rng& rng) {
  AutoscalerSimulation simulation(config, rng);
  return simulation.run();
}

}  // namespace vmcons::dc
