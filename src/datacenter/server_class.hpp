// Heterogeneous server classes — lifting the one-machine-type assumption.
//
// The paper's model (Section III-B1 assumption 1) normalizes every physical
// server to one reference machine: a single set of native rates mu_ij and
// one S_base/S_max wattage pair. Real fleets mix generations. A ServerClass
// describes one machine type relative to that reference server:
//
//   * per-resource capacity multipliers (a class with cpu capacity 2.0
//     serves CPU-bound work twice as fast as the reference machine);
//   * its own wattage pair (S_base/S_max); the deployment decides the
//     platform — dedicated plans evaluate it as native Linux, consolidated
//     plans as Xen, exactly like the scenario-level PowerModel columns;
//   * how many the operator owns (or kUnbounded for "buy as needed").
//
// A Fleet is the validated list of classes a scenario may staff from. The
// model still solves M and N in reference-server units (so the staffing,
// blocking, and utilization answers are bit-identical with or without a
// fleet); a fleet-aware allocation pass then maps those reference counts
// onto per-class physical counts (see batch_kernels::staff_fleet). A
// class's *speed* — its worst-resource capacity multiplier — is how many
// reference-equivalents one of its servers safely covers: capacity has to
// hold on every resource the merged stream may bottleneck on, so the min
// is the only sound scalarization.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "datacenter/power.hpp"
#include "datacenter/resource.hpp"

namespace vmcons::dc {

/// One machine type of a heterogeneous fleet.
struct ServerClass {
  /// Count sentinel: the operator can rack as many of these as needed.
  static constexpr std::uint64_t kUnbounded =
      std::numeric_limits<std::uint64_t>::max();

  std::string name;
  /// Per-resource native capacity relative to the reference server; every
  /// entry must be finite and > 0 (1.0 everywhere = the reference machine).
  ResourceVector capacity = unit_capacity();
  /// This class's S_base/S_max pair. The platform field is ignored: the
  /// dedicated deployment evaluates the pair as native Linux and the
  /// consolidated deployment as Xen, mirroring the [power] INI convention.
  PowerModel power;
  /// How many of these exist (0 = owned but none available), or kUnbounded.
  std::uint64_t count = kUnbounded;

  /// Reference-equivalents one server of this class covers: the minimum
  /// capacity multiplier over all resources (the class is only as fast as
  /// its slowest resource lets the merged stream run).
  double speed() const;

  /// All-ones capacity vector (the reference machine).
  static ResourceVector unit_capacity();

  /// The reference machine itself: unit capacity, the given wattage pair.
  static ServerClass reference(std::string name, PowerModel power = {},
                               std::uint64_t count = kUnbounded);
};

/// Throws InvalidArgument naming the offending class and field if the class
/// is malformed (empty name, non-positive/non-finite capacity, bad watts).
void validate_server_class(const ServerClass& server_class);

/// A validated, ordered list of server classes. The only mutator is add(),
/// which validates loudly — so any Fleet reachable by client code is valid
/// and downstream layers (batch columns, kernels) never re-check.
class Fleet {
 public:
  Fleet() = default;

  /// Validates and appends one class; throws InvalidArgument on a malformed
  /// class or a duplicate name.
  Fleet& add(ServerClass server_class);

  bool empty() const noexcept { return classes_.empty(); }
  std::size_t size() const noexcept { return classes_.size(); }
  const std::vector<ServerClass>& classes() const noexcept { return classes_; }
  const ServerClass& at(std::size_t index) const { return classes_[index]; }

  /// This fleet with every class's count replaced (declaration order); the
  /// counts span must match size(). The sweep fleet_mix axis applies here.
  Fleet with_counts(const std::vector<std::uint64_t>& counts) const;

 private:
  std::vector<ServerClass> classes_;
};

}  // namespace vmcons::dc
