// Request dispatchers (the LVS layer of the testbed).
//
// The paper fronts both services with LVS using round-robin; the simulator
// also offers least-loaded and uniform-random for the dispatch ablation.
// A dispatcher only picks among servers the allocation policy admits, so the
// same component serves dedicated pools, work-conserving consolidated pools,
// and partitioned pools.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace vmcons::dc {

enum class DispatchPolicy {
  kRoundRobin,   ///< LVS rr, the paper's configuration
  kLeastLoaded,  ///< fewest busy slots first
  kRandom,       ///< uniform among admissible servers
};

class Dispatcher {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Dispatcher(DispatchPolicy policy, std::size_t server_count)
      : policy_(policy), server_count_(server_count) {}

  /// Chooses a server index in [0, server_count) among those for which
  /// admissible(s) is true, following the policy; returns npos when no
  /// server is admissible. `load(s)` returns the busy-slot count used by
  /// the least-loaded policy.
  template <typename AdmitFn, typename LoadFn>
  std::size_t select(AdmitFn&& admissible, LoadFn&& load, Rng& rng) {
    switch (policy_) {
      case DispatchPolicy::kRoundRobin: {
        for (std::size_t step = 0; step < server_count_; ++step) {
          const std::size_t candidate = (cursor_ + step) % server_count_;
          if (admissible(candidate)) {
            cursor_ = (candidate + 1) % server_count_;
            return candidate;
          }
        }
        return npos;
      }
      case DispatchPolicy::kLeastLoaded: {
        std::size_t best = npos;
        double best_load = 0.0;
        for (std::size_t s = 0; s < server_count_; ++s) {
          if (!admissible(s)) {
            continue;
          }
          const double current = load(s);
          if (best == npos || current < best_load) {
            best = s;
            best_load = current;
          }
        }
        return best;
      }
      case DispatchPolicy::kRandom: {
        candidates_.clear();
        for (std::size_t s = 0; s < server_count_; ++s) {
          if (admissible(s)) {
            candidates_.push_back(s);
          }
        }
        if (candidates_.empty()) {
          return npos;
        }
        return candidates_[rng.uniform_index(candidates_.size())];
      }
    }
    return npos;
  }

  DispatchPolicy policy() const noexcept { return policy_; }

 private:
  DispatchPolicy policy_;
  std::size_t server_count_;
  std::size_t cursor_ = 0;
  std::vector<std::size_t> candidates_;  // scratch for kRandom
};

}  // namespace vmcons::dc
