#include "datacenter/vm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vmcons::dc {

Vm Vm::web_vm(std::uint32_t service_index, std::uint32_t host) {
  Vm vm;
  vm.name = "web-vm-" + std::to_string(host);
  vm.service_index = service_index;
  vm.host_server = host;
  vm.vcpus = 1;
  vm.vcpu_mode = virt::VcpuMode::kPinned;
  vm.memory_gb = 1.0;
  return vm;
}

Vm Vm::db_vm(std::uint32_t service_index, std::uint32_t host) {
  Vm vm;
  vm.name = "db-vm-" + std::to_string(host);
  vm.service_index = service_index;
  vm.host_server = host;
  vm.vcpus = 6;
  vm.vcpu_mode = virt::VcpuMode::kPinned;
  vm.memory_gb = 1.0;
  return vm;
}

double db_vcpu_throughput_factor(unsigned vcpus, virt::VcpuMode mode,
                                 unsigned total_cores, unsigned domain0_cores) {
  VMCONS_REQUIRE(vcpus >= 1, "VM needs at least one vCPU");
  VMCONS_REQUIRE(total_cores > domain0_cores,
                 "Domain-0 cannot reserve every core");
  const unsigned usable = total_cores - domain0_cores;
  // Throughput scales with the vCPUs the VM can actually run concurrently.
  const double parallel = static_cast<double>(std::min(vcpus, usable));
  double factor = parallel / static_cast<double>(usable);
  if (mode == virt::VcpuMode::kXenScheduled) {
    factor *= virt::kXenSchedulerPenalty;
  }
  return factor;
}

}  // namespace vmcons::dc
