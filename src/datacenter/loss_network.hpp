// Multi-resource Erlang loss network — the simulated stand-in for the
// paper's resource-flowing consolidated platform (and, with one service per
// network, for dedicated pools).
//
// Semantics (Fig. 3b): a pool of `servers` homogeneous hosts offers, per
// resource kind, `servers` capacity units that flow freely among VMs. A
// request of service i needs one unit of every resource it demands, holds
// each for an independent exponential time with rate mu_ij (times the
// clamped impact factor a_ij(v) when virtualized), and is LOST if any
// demanded resource has no free unit on arrival. This is the classical
// Erlang loss network whose per-resource marginal the analytic model solves
// with Erlang-B; simulating the joint process also captures the blocking
// correlation the model's per-resource treatment ignores.
//
// Power/utilization: the fraction of busy physical servers is approximated
// by max_j busy_j / servers — under work-conserving packing, the number of
// occupied hosts is driven by the busiest resource.
#pragma once

#include "datacenter/pool_sim.hpp"  // PoolOutcome / ServiceOutcome
#include "datacenter/power.hpp"
#include "datacenter/resource.hpp"
#include "datacenter/service_spec.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {

struct LossNetworkConfig {
  std::vector<ServiceSpec> services;
  unsigned servers = 1;
  /// 0 = native deployment (no virtualization: raw mu_ij); v >= 1 =
  /// consolidated with v co-resident VMs (mu_ij * a_ij(v), clamped).
  unsigned vm_count = 0;
  PowerModel power;
  double horizon = 2000.0;
  double warmup = 200.0;
  /// Arrival burstiness: 1.0 = Poisson (the model's assumption); > 1 swaps
  /// in a 2-state MMPP with this burst/calm rate ratio and equal dwells,
  /// keeping the same mean rate (the burstiness ablation's knob).
  double burst_ratio = 1.0;
  double burst_dwell = 10.0;  ///< mean seconds per MMPP state
};

/// Per-resource time-average utilization, alongside the pool outcome.
struct LossNetworkOutcome {
  PoolOutcome pool;
  ResourceVector resource_utilization;  ///< busy_j / servers, time-averaged
};

LossNetworkOutcome simulate_loss_network(const LossNetworkConfig& config,
                                         Rng& rng);

}  // namespace vmcons::dc
