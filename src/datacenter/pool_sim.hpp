// Loss/queueing simulation of a server pool hosting one or more services.
//
// This is the simulated stand-in for the paper's testbed. A pool is a set of
// homogeneous physical servers, each offering `slots_per_server` concurrent
// service positions. Requests of service i arrive as a Poisson process with
// rate lambda_i and hold one slot for an exponential time with the
// per-slot rate supplied by the caller (native bottleneck rate for dedicated
// pools; Eq. (4)-style virtualization-degraded rate for consolidated ones).
//
//   * queue_capacity = 0 reproduces the pure Erlang loss system the model
//     assumes (requests finding no slot are lost);
//   * queue_capacity > 0 adds a shared FIFO waiting room (M/M/c/K), used by
//     the response-time experiments (Fig. 9) and the waiting-room extension;
//   * the allocation policy decides which slots a service may use, modelling
//     on-demand resource flowing vs static partitioning (Section III-B4).
//   * a non-empty `groups` list replaces the homogeneous server block with
//     class-tagged sub-pools (per-group slot counts, wattages, and service
//     rate multipliers), the simulator-side face of dc::ServerClass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/dispatcher.hpp"
#include "datacenter/power.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace vmcons::dc {

enum class AllocationPolicy {
  /// Ideal on-demand resource flowing among VMs: any request may use any
  /// free slot on any server (work conserving) — the model's assumption 4.
  kOnDemandFlowing,
  /// Each service owns a fixed quota of slots on every server; unused
  /// capacity cannot flow to other services.
  kStaticPartition,
  /// Quotas recomputed every realloc_interval proportionally to the recent
  /// arrival mix; each reallocation freezes admission for realloc_overhead
  /// seconds (the cost of reconfiguring VMs).
  kProportionalShare,
};

/// One homogeneous sub-pool of a heterogeneous pool — the simulator-side
/// face of a dc::ServerClass. When PoolConfig::groups is non-empty the pool
/// is the concatenation of the groups (server ids assigned group by group,
/// declaration order) and the scalar servers/slots_per_server/power fields
/// are ignored.
struct ServerGroup {
  std::string name;
  unsigned servers = 1;
  unsigned slots_per_server = 1;
  /// Service-rate multiplier vs the reference server (ServerClass::speed()):
  /// requests served on this group's slots complete this much faster.
  double rate_multiplier = 1.0;
  PowerModel power;
};

struct PoolConfig {
  std::vector<double> arrival_rates;  ///< lambda per service (req/s)
  std::vector<double> service_rates;  ///< per-slot service rate per service
  unsigned servers = 1;
  unsigned slots_per_server = 1;
  /// Class-tagged servers; non-empty requires kOnDemandFlowing (per-service
  /// quotas assume one slot shape on every server).
  std::vector<ServerGroup> groups;
  unsigned queue_capacity = 0;  ///< shared waiting places (0 = pure loss)
  DispatchPolicy dispatch = DispatchPolicy::kLeastLoaded;
  AllocationPolicy allocation = AllocationPolicy::kOnDemandFlowing;
  /// Per-service slots per server for kStaticPartition (must sum to at most
  /// slots_per_server); also the starting quotas for kProportionalShare.
  /// Empty = split slots evenly.
  std::vector<unsigned> static_quotas;
  double realloc_interval = 5.0;   ///< seconds between quota recomputations
  double realloc_overhead = 0.0;   ///< admission freeze per reallocation
  PowerModel power;
  double horizon = 2000.0;  ///< simulated seconds
  double warmup = 200.0;    ///< stats reset point
};

struct ServiceOutcome {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;   ///< entered service or queue
  std::uint64_t lost = 0;
  std::uint64_t completed = 0;
  Summary response_time;        ///< wait + service of completed requests

  double loss_probability() const {
    return arrivals == 0
               ? 0.0
               : static_cast<double>(lost) / static_cast<double>(arrivals);
  }
  double throughput(double span) const {
    return span <= 0.0 ? 0.0 : static_cast<double>(completed) / span;
  }
};

struct PoolOutcome {
  std::vector<ServiceOutcome> services;
  double measured_span = 0.0;        ///< horizon - warmup
  double mean_utilization = 0.0;     ///< busy slots / total slots, time avg
  double energy_joules = 0.0;        ///< all servers, over measured span
  double idle_energy_joules = 0.0;   ///< idle draw over the same span
  double mean_power_watts = 0.0;

  std::uint64_t total_arrivals() const;
  std::uint64_t total_lost() const;
  double overall_loss() const;
  double total_throughput() const;
};

/// Runs one replication of the pool simulation.
PoolOutcome simulate_pool(const PoolConfig& config, Rng& rng);

}  // namespace vmcons::dc
