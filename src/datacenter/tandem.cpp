#include "datacenter/tandem.hpp"

#include "sim/engine.hpp"
#include "stats/timeweighted.hpp"
#include "util/error.hpp"

namespace vmcons::dc {
namespace {

class TandemSimulation {
 public:
  TandemSimulation(const TandemConfig& config, Rng& rng)
      : config_(config), rng_(rng) {
    VMCONS_REQUIRE(config_.arrival_rate > 0.0, "arrival rate must be > 0");
    VMCONS_REQUIRE(!config_.tiers.empty(), "tandem needs at least one tier");
    for (const auto& tier : config_.tiers) {
      VMCONS_REQUIRE(tier.service_rate > 0.0 && tier.servers >= 1,
                     "tier '" + tier.name + "' misconfigured");
    }
    VMCONS_REQUIRE(config_.horizon > config_.warmup && config_.warmup >= 0.0,
                   "horizon must exceed warmup");
    busy_.assign(config_.tiers.size(), 0);
    busy_tw_.assign(config_.tiers.size(), TimeWeighted{});
    outcome_.tiers.resize(config_.tiers.size());
    for (std::size_t t = 0; t < config_.tiers.size(); ++t) {
      outcome_.tiers[t].name = config_.tiers[t].name;
    }
  }

  TandemOutcome run() {
    schedule_arrival();
    engine_.schedule_at(config_.warmup, [this] { reset_statistics(); });
    engine_.run_until(config_.horizon);
    finalize();
    return std::move(outcome_);
  }

 private:
  void schedule_arrival() {
    engine_.schedule_in(rng_.exponential(config_.arrival_rate), [this] {
      ++outcome_.arrivals;
      enter_tier(0, engine_.now());
      schedule_arrival();
    });
  }

  void enter_tier(std::size_t tier, double start_time) {
    auto& stats = outcome_.tiers[tier];
    ++stats.offered;
    if (busy_[tier] >= config_.tiers[tier].servers) {
      ++stats.blocked;
      ++outcome_.lost;
      return;
    }
    ++busy_[tier];
    busy_tw_[tier].set(engine_.now(), busy_[tier]);
    engine_.schedule_in(
        rng_.exponential(config_.tiers[tier].service_rate),
        [this, tier, start_time] {
          --busy_[tier];
          busy_tw_[tier].set(engine_.now(), busy_[tier]);
          if (tier + 1 < config_.tiers.size()) {
            enter_tier(tier + 1, start_time);
          } else {
            ++outcome_.completed;
            outcome_.end_to_end_response.add(engine_.now() - start_time);
          }
        });
  }

  void reset_statistics() {
    outcome_.arrivals = 0;
    outcome_.completed = 0;
    outcome_.lost = 0;
    outcome_.end_to_end_response = Summary{};
    for (std::size_t t = 0; t < outcome_.tiers.size(); ++t) {
      outcome_.tiers[t].offered = 0;
      outcome_.tiers[t].blocked = 0;
      warmup_busy_integral_.push_back(busy_tw_[t].integral(engine_.now()));
    }
  }

  void finalize() {
    const double now = config_.horizon;
    outcome_.measured_span = now - config_.warmup;
    for (std::size_t t = 0; t < outcome_.tiers.size(); ++t) {
      const double warmup_integral =
          t < warmup_busy_integral_.size() ? warmup_busy_integral_[t] : 0.0;
      const double denominator =
          outcome_.measured_span *
          static_cast<double>(config_.tiers[t].servers);
      outcome_.tiers[t].mean_utilization =
          denominator <= 0.0
              ? 0.0
              : (busy_tw_[t].integral(now) - warmup_integral) / denominator;
    }
  }

  const TandemConfig& config_;
  Rng& rng_;
  sim::Engine engine_;
  std::vector<unsigned> busy_;
  std::vector<TimeWeighted> busy_tw_;
  std::vector<double> warmup_busy_integral_;
  TandemOutcome outcome_;
};

}  // namespace

TandemOutcome simulate_tandem(const TandemConfig& config, Rng& rng) {
  TandemSimulation simulation(config, rng);
  return simulation.run();
}

}  // namespace vmcons::dc
