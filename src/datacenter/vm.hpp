// Virtual machine descriptor.
//
// In the paper's consolidated deployment every physical server hosts one VM
// per service (a "Web VM" with 1 vCPU and a "DB VM" with 6 pinned vCPUs in
// the case study), and all VMs of a service map onto all physical servers.
// Vm carries that placement/configuration metadata; the performance effect
// of the configuration is computed through virt::OverheadConfig.
#pragma once

#include <cstdint>
#include <string>

#include "virt/overhead.hpp"

namespace vmcons::dc {

struct Vm {
  std::string name;
  std::uint32_t service_index = 0;  ///< which service this VM hosts
  std::uint32_t host_server = 0;    ///< physical server id
  unsigned vcpus = 1;
  virt::VcpuMode vcpu_mode = virt::VcpuMode::kPinned;
  double memory_gb = 1.0;  ///< each VM gets 1 GB in the case study

  /// The paper's Web VM: 1 vCPU, 1 GB.
  static Vm web_vm(std::uint32_t service_index, std::uint32_t host);
  /// The paper's DB VM: 6 vCPUs pinned to physical cores, 1 GB.
  static Vm db_vm(std::uint32_t service_index, std::uint32_t host);
};

/// Throughput multiplier of a DB VM as a function of vCPU count and
/// scheduling mode — the relationship of Fig. 7. With `total_cores` physical
/// cores (8 on the testbed, 2 reserved for Domain-0), throughput scales
/// nearly linearly in pinned vCPUs up to the 6 usable cores; leaving
/// scheduling to Xen costs kXenSchedulerPenalty.
double db_vcpu_throughput_factor(unsigned vcpus, virt::VcpuMode mode,
                                 unsigned total_cores = 8,
                                 unsigned domain0_cores = 2);

}  // namespace vmcons::dc
