#include "datacenter/loss_network.hpp"

#include <array>
#include <memory>

#include "sim/engine.hpp"
#include "stats/timeweighted.hpp"
#include "util/error.hpp"
#include "workload/arrival.hpp"

namespace vmcons::dc {
namespace {

class NetworkSimulation {
 public:
  NetworkSimulation(const LossNetworkConfig& config, Rng& rng)
      : config_(config), rng_(rng), meter_(config.power) {
    VMCONS_REQUIRE(!config_.services.empty(), "network needs a service");
    VMCONS_REQUIRE(config_.servers >= 1, "network needs a server");
    VMCONS_REQUIRE(config_.horizon > config_.warmup && config_.warmup >= 0.0,
                   "horizon must exceed warmup");
    for (const auto& service : config_.services) {
      VMCONS_REQUIRE(service.native_rates.any_positive(),
                     "service '" + service.name + "' demands no resource");
      // Effective holding rate per (service, resource).
      ResourceVector rates;
      for (const Resource resource : all_resources()) {
        const double mu = service.native_rates[resource];
        if (mu <= 0.0) {
          continue;
        }
        rates[resource] = config_.vm_count == 0
                              ? mu
                              : mu * service.impact_factor(resource,
                                                           config_.vm_count);
      }
      effective_rates_.push_back(rates);
    }
    outcome_.pool.services.resize(config_.services.size());
  }

  LossNetworkOutcome run() {
    VMCONS_REQUIRE(config_.burst_ratio >= 1.0,
                   "burst ratio must be >= 1 (1 = Poisson)");
    for (std::size_t i = 0; i < config_.services.size(); ++i) {
      const double lambda = config_.services[i].arrival_rate;
      if (lambda <= 0.0) {
        arrivals_.emplace_back(workload::PoissonProcess(1.0));  // unused
        continue;
      }
      if (config_.burst_ratio > 1.0) {
        arrivals_.emplace_back(workload::Mmpp2Process::with_mean_rate(
            lambda, config_.burst_ratio, config_.burst_dwell));
      } else {
        arrivals_.emplace_back(workload::PoissonProcess(lambda));
      }
      schedule_arrival(i);
    }
    engine_.schedule_at(config_.warmup, [this] { reset_statistics(); });
    engine_.run_until(config_.horizon);
    finalize();
    return std::move(outcome_);
  }

 private:
  void schedule_arrival(std::size_t service) {
    engine_.schedule_in(workload::next_gap(arrivals_[service], rng_),
                        [this, service] {
                          on_arrival(service);
                          schedule_arrival(service);
                        });
  }

  void on_arrival(std::size_t service) {
    auto& stats = outcome_.pool.services[service];
    ++stats.arrivals;
    // Admission: every demanded resource needs a free unit.
    for (const Resource resource : all_resources()) {
      if (effective_rates_[service][resource] > 0.0 &&
          busy_[index(resource)] >= config_.servers) {
        ++stats.lost;
        return;
      }
    }
    ++stats.admitted;
    const double arrival_time = engine_.now();
    // Independent holding per resource; the request completes when the last
    // resource releases.
    auto remaining = std::make_shared<unsigned>(0);
    for (const Resource resource : all_resources()) {
      const double rate = effective_rates_[service][resource];
      if (rate <= 0.0) {
        continue;
      }
      ++*remaining;
      acquire(resource);
      engine_.schedule_in(rng_.exponential(rate),
                          [this, service, resource, arrival_time, remaining] {
                            release(resource);
                            if (--*remaining == 0) {
                              auto& done = outcome_.pool.services[service];
                              ++done.completed;
                              done.response_time.add(engine_.now() -
                                                     arrival_time);
                            }
                          });
    }
  }

  static std::size_t index(Resource resource) {
    return static_cast<std::size_t>(resource);
  }

  void acquire(Resource resource) {
    auto& busy = busy_[index(resource)];
    VMCONS_ASSERT(busy < config_.servers);
    ++busy;
    record(resource);
  }

  void release(Resource resource) {
    auto& busy = busy_[index(resource)];
    VMCONS_ASSERT(busy > 0);
    --busy;
    record(resource);
  }

  void record(Resource resource) {
    const double now = engine_.now();
    busy_tw_[index(resource)].set(now, busy_[index(resource)]);
    unsigned peak = 0;
    for (const unsigned busy : busy_) {
      peak = std::max(peak, busy);
    }
    occupied_tw_.set(now, static_cast<double>(peak));
    meter_.set_utilization(now,
                           static_cast<double>(peak) / config_.servers);
  }

  void reset_statistics() {
    for (auto& stats : outcome_.pool.services) {
      stats = ServiceOutcome{};
    }
    const double now = engine_.now();
    warmup_energy_ = meter_.energy_joules(now);
    warmup_idle_energy_ = meter_.idle_energy_joules(now);
    warmup_occupied_integral_ = occupied_tw_.integral(now);
    for (std::size_t j = 0; j < kResourceCount; ++j) {
      warmup_busy_integral_[j] = busy_tw_[j].integral(now);
    }
  }

  void finalize() {
    const double now = config_.horizon;
    auto& pool = outcome_.pool;
    pool.measured_span = now - config_.warmup;
    pool.energy_joules =
        config_.servers * (meter_.energy_joules(now) - warmup_energy_);
    pool.idle_energy_joules =
        config_.servers *
        (meter_.idle_energy_joules(now) - warmup_idle_energy_);
    pool.mean_power_watts =
        pool.measured_span <= 0.0 ? 0.0
                                  : pool.energy_joules / pool.measured_span;
    const double denominator =
        pool.measured_span * static_cast<double>(config_.servers);
    pool.mean_utilization =
        denominator <= 0.0
            ? 0.0
            : (occupied_tw_.integral(now) - warmup_occupied_integral_) /
                  denominator;
    for (const Resource resource : all_resources()) {
      const std::size_t j = index(resource);
      outcome_.resource_utilization[resource] =
          denominator <= 0.0
              ? 0.0
              : (busy_tw_[j].integral(now) - warmup_busy_integral_[j]) /
                    denominator;
    }
  }

  const LossNetworkConfig& config_;
  Rng& rng_;
  sim::Engine engine_;
  std::vector<workload::ArrivalProcess> arrivals_;
  std::vector<ResourceVector> effective_rates_;
  std::array<unsigned, kResourceCount> busy_{};
  std::array<TimeWeighted, kResourceCount> busy_tw_{};
  TimeWeighted occupied_tw_;
  // One meter models the whole pool: utilization is the busy-host fraction,
  // so total energy = servers * per-host-profile energy at that fraction.
  EnergyMeter meter_;
  double warmup_energy_ = 0.0;
  double warmup_idle_energy_ = 0.0;
  double warmup_occupied_integral_ = 0.0;
  std::array<double, kResourceCount> warmup_busy_integral_{};
  LossNetworkOutcome outcome_;
};

}  // namespace

LossNetworkOutcome simulate_loss_network(const LossNetworkConfig& config,
                                         Rng& rng) {
  NetworkSimulation simulation(config, rng);
  return simulation.run();
}

}  // namespace vmcons::dc
