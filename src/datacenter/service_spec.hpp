// Service specification shared by the analytic model and the simulator.
//
// A service is characterized exactly as in Section III-B2: an average
// arrival rate lambda_i, a per-resource native serving rate mu_ij (requests
// per second that one dedicated physical server sustains when that resource
// is the only constraint; 0 = the service does not demand the resource),
// and a virtualization impact curve a_ij per resource.
#pragma once

#include <array>
#include <limits>
#include <string>

#include "datacenter/resource.hpp"
#include "virt/impact.hpp"

namespace vmcons::dc {

struct ServiceSpec {
  std::string name;
  double arrival_rate = 0.0;   ///< lambda_i, requests/second
  ResourceVector native_rates; ///< mu_ij per dedicated server (0 = no demand)
  std::array<virt::Impact, kResourceCount> impacts;  ///< a_ij(v) curves

  /// Sets the native rate and impact curve of one resource.
  ServiceSpec& demand(Resource resource, double native_rate,
                      virt::Impact impact = virt::Impact::none());

  /// Bottleneck native rate: the smallest positive mu_ij. This is the
  /// per-server service rate of requests on a dedicated native server.
  double native_bottleneck_rate() const;

  /// Effective per-server service rate when hosted in one of `vm_count`
  /// co-resident VMs: min over demanded resources of mu_ij * a_ij(v),
  /// with a clamped to (0, 1] as in the model's definition.
  double effective_rate(unsigned vm_count) const;

  /// Impact factor of one resource at the given VM count (clamped).
  double impact_factor(Resource resource, unsigned vm_count) const;
};

/// The paper's case-study services (Section IV-C2 inputs):
///   Web: mu_wi = 420 (disk I/O), mu_wc = 3360 (CPU); a_wi = 0.8, a_wc = 0.65
///   DB:  mu_dc = 100 (CPU); disk demand ~ 0; a_dc = 0.9
/// `arrival_rate` is left 0; the caller sets the workload point.
ServiceSpec paper_web_service();
ServiceSpec paper_db_service();

}  // namespace vmcons::dc
