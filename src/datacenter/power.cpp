#include "datacenter/power.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vmcons::dc {

double PowerModel::watts(double utilization) const {
  VMCONS_REQUIRE(utilization >= 0.0 && utilization <= 1.0 + 1e-9,
                 "utilization must be in [0, 1]");
  utilization = std::clamp(utilization, 0.0, 1.0);
  double base = base_watts;
  double dynamic_range = max_watts - base_watts;
  if (platform == Platform::kXen) {
    base *= kXenIdleFactor;
    dynamic_range *= kXenDynamicFactor;
  }
  return base + dynamic_range * utilization;
}

PowerModel PowerModel::paper_default(Platform platform) {
  PowerModel model;
  model.platform = platform;
  return model;
}

void watts_many(std::span<const PowerModel> models,
                std::span<const double> utilization, std::span<double> out) {
  VMCONS_REQUIRE(models.size() == utilization.size() &&
                     models.size() == out.size(),
                 "watts_many spans must have equal length");
  for (std::size_t i = 0; i < models.size(); ++i) {
    out[i] = models[i].watts(utilization[i]);
  }
}

double EnergyMeter::energy_joules(double now) const {
  // E = P_idle * T + P_dynamic_range * integral(u dt).
  const double span = now - start_time_;
  if (span <= 0.0) {
    return 0.0;
  }
  const double idle = model_.watts(0.0);
  const double busy = model_.watts(1.0);
  return idle * span + (busy - idle) * utilization_.integral(now);
}

double EnergyMeter::mean_watts(double now) const {
  const double span = now - start_time_;
  if (span <= 0.0) {
    return model_.watts(utilization_.value());
  }
  return energy_joules(now) / span;
}

double EnergyMeter::idle_energy_joules(double now) const {
  const double span = now - start_time_;
  return span <= 0.0 ? 0.0 : model_.watts(0.0) * span;
}

}  // namespace vmcons::dc
