// Linear-utilization power model and energy integration — Eq. (12)-(13).
//
// The paper models server power as S_base + (S_max - S_base) * u over time t.
// Two platform effects observed in Section IV-C2 are parameterized here:
//   * an idle Xen platform draws ~9% less than idle native Linux;
//   * the same workload hosted on consolidated Xen costs ~30% less dynamic
//     (above-idle) power than on dedicated Linux.
// Default wattages follow the 17% busy-over-idle delta of Fig. 12 on the
// paper's 2x Quad-Core Opteron testbed.
#pragma once

#include <span>

#include "stats/timeweighted.hpp"

namespace vmcons::dc {

/// Host platform, for the idle/dynamic power deltas of Section IV-C2.
enum class Platform { kNativeLinux, kXen };

struct PowerModel {
  double base_watts = 250.0;  ///< S_base: power when on but idle
  double max_watts = 292.5;   ///< S_max: power at 100% utilization (+17%)
  Platform platform = Platform::kNativeLinux;

  /// Idle draw reduction of the Xen platform vs native Linux (Fig. 12).
  static constexpr double kXenIdleFactor = 0.91;
  /// Dynamic (above-idle) power reduction of workloads on Xen (Fig. 13).
  static constexpr double kXenDynamicFactor = 0.70;

  /// Instantaneous power at utilization u in [0, 1].
  double watts(double utilization) const;

  /// Idle draw for this platform.
  double idle_watts() const { return watts(0.0); }

  /// The paper's default testbed server, per platform.
  static PowerModel paper_default(Platform platform);
};

/// Span form of PowerModel::watts for the batch path: out[i] =
/// models[i].watts(utilization[i]), bit-identical to the scalar calls.
/// All three spans must have the same length.
void watts_many(std::span<const PowerModel> models,
                std::span<const double> utilization, std::span<double> out);

/// Integrates energy (joules) of one server from a utilization step signal.
class EnergyMeter {
 public:
  explicit EnergyMeter(PowerModel model, double start_time = 0.0)
      : model_(model), utilization_(start_time, 0.0), start_time_(start_time) {}

  /// Records a utilization change at simulated time `now`.
  void set_utilization(double now, double utilization) {
    utilization_.set(now, utilization);
  }

  /// Total energy consumed in [start, now], joules.
  double energy_joules(double now) const;

  /// Mean power over [start, now], watts.
  double mean_watts(double now) const;

  /// Energy the server would have consumed idling over the same span.
  double idle_energy_joules(double now) const;

  const PowerModel& model() const { return model_; }

 private:
  PowerModel model_;
  TimeWeighted utilization_;
  double start_time_;
};

}  // namespace vmcons::dc
