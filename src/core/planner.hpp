// ConsolidationPlanner: the high-level planning API on top of the model.
//
// Adds the two things a data-center operator needs beyond the raw model:
//   * heterogeneous-server normalization (Section III-B1 assumption 1 and
//     the paper's stated future work): servers of differing capacity are
//     normalized against a reference server before solving, and the
//     resulting normalized server count is mapped back onto the actual
//     inventory;
//   * what-if sweeps over the target loss probability and workload scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/sweep.hpp"

namespace vmcons::core {

/// One physical server type in a heterogeneous inventory.
struct ServerClass {
  std::string name;
  /// Capacity relative to the reference server (the paper's example: two
  /// 2.0 GHz quad-cores = 1.0, one quad-core = 0.5).
  double capacity_factor = 1.0;
  /// How many of these the operator owns.
  unsigned available = 0;
  dc::PowerModel power;
};

/// Mapping of a normalized server requirement onto real inventory.
struct InventoryAssignment {
  std::vector<std::pair<std::string, unsigned>> picked;  ///< class -> count
  double normalized_capacity = 0.0;  ///< total capacity of picked servers
  bool feasible = false;             ///< inventory covered the requirement
};

struct PlanReport {
  ModelResult model;
  /// lambda per service actually used (after any scaling).
  std::vector<double> arrival_rates;
  InventoryAssignment dedicated_assignment;
  InventoryAssignment consolidated_assignment;
};

/// One evaluated grid point of a sweep. `evaluated` is false for cells a
/// quarantined sweep isolated (see SweepOutcome::failures) or a stop left
/// unreached; their report is default-constructed.
struct SweepCell {
  SweepPoint point;
  PlanReport report;
  bool evaluated = true;
};

/// Fault-tolerant sweep result: every grid cell plus the structured record
/// of what went wrong (quarantined cells, cancellation, deadline expiry).
struct SweepOutcome {
  std::vector<SweepCell> cells;
  /// Failed cells under FailurePolicy::kQuarantine, sorted by grid index
  /// (CellFailure::scenario_index is the SweepPoint index).
  std::vector<CellFailure> failures;
  bool cancelled = false;
  bool deadline_exceeded = false;
  bool complete() const noexcept {
    return failures.empty() && !cancelled && !deadline_exceeded;
  }
};

class ConsolidationPlanner {
 public:
  ConsolidationPlanner& set_target_loss(double b);
  ConsolidationPlanner& add_service(dc::ServiceSpec service);
  ConsolidationPlanner& set_vms_per_server(unsigned vms);
  /// Registers heterogeneous inventory; when empty, planning stays in
  /// normalized (homogeneous reference) units.
  ConsolidationPlanner& add_server_class(ServerClass server_class);

  /// Sets the model-level heterogeneous fleet (dc::Fleet): the solver's
  /// staff_fleet pass maps M and N onto per-class counts and derives power
  /// from per-class wattages (ModelResult::fleet). Orthogonal to
  /// add_server_class, which only post-maps normalized counts onto
  /// inventory without touching the model's power answers.
  ConsolidationPlanner& set_fleet(dc::Fleet fleet);
  const dc::Fleet& fleet() const { return fleet_; }

  /// Scales every service's arrival rate by `factor` (what-if growth).
  ConsolidationPlanner& scale_workloads(double factor);

  /// Solves the model and maps the result onto the inventory (if any).
  PlanReport plan() const;

  /// Evaluates every point of `grid` (loss x scale x VMs-per-server what-if
  /// cartesian product), returning cells in grid index order. By default the
  /// points fan out over the shared thread pool and share one memoized
  /// Erlang kernel; both are pure accelerations — output is bit-identical
  /// to a serial, unmemoized run. Implemented in sweep.cpp.
  std::vector<SweepCell> sweep(const SweepGrid& grid,
                               const SweepOptions& options = {}) const;

  /// The fault-tolerant face of sweep(): honors options.policy and
  /// options.control, reporting quarantined cells and aborts in the
  /// SweepOutcome instead of throwing. Healthy cells are bit-identical to
  /// the same cells of a clean sweep() run. Implemented in sweep.cpp.
  SweepOutcome sweep_all(const SweepGrid& grid,
                         const SweepOptions& options = {}) const;

  /// Sweeps the target loss probability, returning one report per point.
  /// Thin wrapper over sweep() with a single-axis grid.
  std::vector<PlanReport> sweep_target_loss(const std::vector<double>& losses) const;

  /// Model inputs for one grid point: this planner's configuration with the
  /// point's set axes applied. A pure function of (planner, point), so a
  /// streaming sweep can rebuild any scenario range of a grid without ever
  /// materializing the whole grid. Implemented in sweep.cpp.
  ModelInputs point_inputs(const SweepPoint& point) const;

  const std::vector<dc::ServiceSpec>& services() const { return services_; }

 private:
  ModelInputs make_inputs() const;
  /// plan() with every Erlang-B evaluation routed through `kernel`
  /// (nullptr = the stateless free functions).
  PlanReport plan_with(queueing::ErlangKernel* kernel) const;
  InventoryAssignment assign(double normalized_servers) const;

  double target_loss_ = 0.01;
  std::vector<dc::ServiceSpec> services_;
  std::vector<ServerClass> inventory_;
  dc::Fleet fleet_;
  std::optional<unsigned> vms_per_server_;
  double workload_scale_ = 1.0;
};

}  // namespace vmcons::core
