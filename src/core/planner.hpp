// ConsolidationPlanner: the high-level planning API on top of the model.
//
// Adds the two things a data-center operator needs beyond the raw model:
//   * heterogeneous-server normalization (Section III-B1 assumption 1 and
//     the paper's stated future work): servers of differing capacity are
//     normalized against a reference server before solving, and the
//     resulting normalized server count is mapped back onto the actual
//     inventory;
//   * what-if sweeps over the target loss probability and workload scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace vmcons::core {

/// One physical server type in a heterogeneous inventory.
struct ServerClass {
  std::string name;
  /// Capacity relative to the reference server (the paper's example: two
  /// 2.0 GHz quad-cores = 1.0, one quad-core = 0.5).
  double capacity_factor = 1.0;
  /// How many of these the operator owns.
  unsigned available = 0;
  dc::PowerModel power;
};

/// Mapping of a normalized server requirement onto real inventory.
struct InventoryAssignment {
  std::vector<std::pair<std::string, unsigned>> picked;  ///< class -> count
  double normalized_capacity = 0.0;  ///< total capacity of picked servers
  bool feasible = false;             ///< inventory covered the requirement
};

struct PlanReport {
  ModelResult model;
  /// lambda per service actually used (after any scaling).
  std::vector<double> arrival_rates;
  InventoryAssignment dedicated_assignment;
  InventoryAssignment consolidated_assignment;
};

class ConsolidationPlanner {
 public:
  ConsolidationPlanner& set_target_loss(double b);
  ConsolidationPlanner& add_service(dc::ServiceSpec service);
  ConsolidationPlanner& set_vms_per_server(unsigned vms);
  /// Registers heterogeneous inventory; when empty, planning stays in
  /// normalized (homogeneous reference) units.
  ConsolidationPlanner& add_server_class(ServerClass server_class);

  /// Scales every service's arrival rate by `factor` (what-if growth).
  ConsolidationPlanner& scale_workloads(double factor);

  /// Solves the model and maps the result onto the inventory (if any).
  PlanReport plan() const;

  /// Sweeps the target loss probability, returning one report per point.
  std::vector<PlanReport> sweep_target_loss(const std::vector<double>& losses) const;

  const std::vector<dc::ServiceSpec>& services() const { return services_; }

 private:
  ModelInputs make_inputs() const;
  InventoryAssignment assign(double normalized_servers) const;

  double target_loss_ = 0.01;
  std::vector<dc::ServiceSpec> services_;
  std::vector<ServerClass> inventory_;
  std::optional<unsigned> vms_per_server_;
  double workload_scale_ = 1.0;
};

}  // namespace vmcons::core
