#include "core/scenario_batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {

std::size_t ScenarioBatch::append(const ModelInputs& inputs) {
  // Same preconditions as the UtilityAnalyticModel constructor, so a batch
  // can only hold scenarios the scalar path would also accept.
  VMCONS_REQUIRE(inputs.target_loss > 0.0 && inputs.target_loss < 1.0,
                 "target loss must be in (0, 1)");
  VMCONS_REQUIRE(!inputs.services.empty(), "model needs at least one service");
  for (const auto& service : inputs.services) {
    VMCONS_REQUIRE(service.arrival_rate > 0.0,
                   "service '" + service.name + "' needs arrival rate > 0");
    VMCONS_REQUIRE(service.native_rates.any_positive(),
                   "service '" + service.name + "' demands no resource");
  }

  const std::size_t scenario = size();
  const unsigned v = inputs.vms_per_server.value_or(
      static_cast<unsigned>(inputs.services.size()));
  target_loss_.push_back(inputs.target_loss);
  vm_count_.push_back(v);
  dedicated_power_.push_back(inputs.dedicated_power);
  consolidated_power_.push_back(inputs.consolidated_power);

  const std::size_t first_row = service_rows();
  const std::size_t count = inputs.services.size();
  row_begin_.push_back(first_row + count);

  for (const auto& service : inputs.services) {
    arrival_rate_.push_back(service.arrival_rate);
    service_name_.push_back(service.name);
  }

  // Impact factors are evaluated per-column: gather one resource's curves
  // across the scenario's services, evaluate the whole column at v, and
  // derive the native/impact rate columns from the same values.
  std::vector<const virt::Impact*> curves(count);
  std::vector<double> factors(count);
  for (const dc::Resource resource : dc::all_resources()) {
    const auto r = static_cast<std::size_t>(resource);
    for (std::size_t i = 0; i < count; ++i) {
      curves[i] = &inputs.services[i].impacts[r];
    }
    virt::fill_factors(curves, v, factors);
    for (std::size_t i = 0; i < count; ++i) {
      native_rate_[r].push_back(inputs.services[i].native_rates[resource]);
      impact_[r].push_back(factors[i]);
    }
  }

  // Derived rate columns, with the exact arithmetic of the scalar accessors
  // (ServiceSpec::native_bottleneck_rate / effective_rate): resources in
  // all_resources() order, zero rates skipped, min-accumulation.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = first_row + i;
    double bottleneck = std::numeric_limits<double>::infinity();
    double effective = std::numeric_limits<double>::infinity();
    for (const dc::Resource resource : dc::all_resources()) {
      const auto r = static_cast<std::size_t>(resource);
      const double mu = native_rate_[r][row];
      if (mu <= 0.0) {
        continue;
      }
      bottleneck = std::min(bottleneck, mu);
      effective = std::min(effective, mu * impact_[r][row]);
    }
    bottleneck_rate_.push_back(bottleneck);
    effective_rate_.push_back(effective);
  }

  // Fleet-class rows. A Fleet is valid by construction (its only mutator
  // validates), so the columns adopt the classes as-is; speed is derived
  // here with ServerClass::speed()'s exact min-accumulation.
  class_begin_.push_back(class_rows() + inputs.fleet.size());
  for (const dc::ServerClass& server_class : inputs.fleet.classes()) {
    class_name_.push_back(server_class.name);
    for (const dc::Resource resource : dc::all_resources()) {
      class_capacity_[static_cast<std::size_t>(resource)].push_back(
          server_class.capacity[resource]);
    }
    class_base_watts_.push_back(server_class.power.base_watts);
    class_max_watts_.push_back(server_class.power.max_watts);
    class_count_.push_back(server_class.count);
    class_speed_.push_back(server_class.speed());
  }
  return scenario;
}

ScenarioBatch ScenarioBatch::from_columns(Columns&& columns) {
  const std::size_t scenarios = columns.target_loss.size();
  VMCONS_REQUIRE(columns.vm_count.size() == scenarios &&
                     columns.dedicated_power.size() == scenarios &&
                     columns.consolidated_power.size() == scenarios,
                 "scenario columns disagree on the scenario count");
  VMCONS_REQUIRE(columns.row_begin.size() == scenarios + 1,
                 "row_begin must hold scenario count + 1 offsets");
  VMCONS_REQUIRE(columns.row_begin.front() == 0,
                 "row_begin must start at offset 0");
  for (std::size_t s = 0; s < scenarios; ++s) {
    VMCONS_REQUIRE(columns.row_begin[s] < columns.row_begin[s + 1],
                   "row_begin must be strictly increasing (every scenario "
                   "needs at least one service)");
  }
  const std::size_t rows = columns.row_begin.back();
  bool rows_consistent =
      columns.arrival_rate.size() == rows &&
      columns.bottleneck_rate.size() == rows &&
      columns.effective_rate.size() == rows &&
      columns.service_name.size() == rows;
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    rows_consistent = rows_consistent && columns.native_rate[r].size() == rows &&
                      columns.impact[r].size() == rows;
  }
  VMCONS_REQUIRE(rows_consistent,
                 "service-row columns disagree with the row_begin offsets");
  for (std::size_t s = 0; s < scenarios; ++s) {
    VMCONS_REQUIRE(
        columns.target_loss[s] > 0.0 && columns.target_loss[s] < 1.0,
        "target loss must be in (0, 1)");
    VMCONS_REQUIRE(columns.vm_count[s] >= 1, "need at least one VM per server");
  }
  for (std::size_t row = 0; row < rows; ++row) {
    VMCONS_REQUIRE(columns.arrival_rate[row] > 0.0,
                   "service '" + columns.service_name[row] +
                       "' needs arrival rate > 0");
  }

  if (columns.class_begin.empty()) {
    // Pre-fleet column sets (and hand-built legacy Columns) carry no class
    // offsets at all; that is the "no scenario owns a fleet" shape.
    columns.class_begin.assign(scenarios + 1, 0);
  }
  VMCONS_REQUIRE(columns.class_begin.size() == scenarios + 1,
                 "class_begin must hold scenario count + 1 offsets");
  VMCONS_REQUIRE(columns.class_begin.front() == 0,
                 "class_begin must start at offset 0");
  for (std::size_t s = 0; s < scenarios; ++s) {
    VMCONS_REQUIRE(columns.class_begin[s] <= columns.class_begin[s + 1],
                   "class_begin must be non-decreasing (a scenario may own "
                   "zero class rows, never a negative count)");
  }
  const std::size_t class_rows = columns.class_begin.back();
  bool class_rows_consistent =
      columns.class_name.size() == class_rows &&
      columns.class_base_watts.size() == class_rows &&
      columns.class_max_watts.size() == class_rows &&
      columns.class_count.size() == class_rows &&
      columns.class_speed.size() == class_rows;
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    class_rows_consistent =
        class_rows_consistent && columns.class_capacity[r].size() == class_rows;
  }
  VMCONS_REQUIRE(class_rows_consistent,
                 "fleet-class columns disagree with the class_begin offsets");
  for (std::size_t row = 0; row < class_rows; ++row) {
    // Rebuild the class and run the same validation Fleet::add applies, so
    // corrupted columns cannot smuggle in a class append() would reject.
    dc::ServerClass server_class;
    server_class.name = columns.class_name[row];
    for (const dc::Resource resource : dc::all_resources()) {
      server_class.capacity[resource] =
          columns.class_capacity[static_cast<std::size_t>(resource)][row];
    }
    server_class.power.base_watts = columns.class_base_watts[row];
    server_class.power.max_watts = columns.class_max_watts[row];
    server_class.count = columns.class_count[row];
    dc::validate_server_class(server_class);
    VMCONS_REQUIRE(columns.class_speed[row] > 0.0 &&
                       std::isfinite(columns.class_speed[row]),
                   "class '" + server_class.name +
                       "' stores a non-positive derived speed");
  }

  ScenarioBatch batch;
  batch.target_loss_ = std::move(columns.target_loss);
  batch.vm_count_ = std::move(columns.vm_count);
  batch.dedicated_power_ = std::move(columns.dedicated_power);
  batch.consolidated_power_ = std::move(columns.consolidated_power);
  batch.row_begin_ = std::move(columns.row_begin);
  batch.arrival_rate_ = std::move(columns.arrival_rate);
  batch.native_rate_ = std::move(columns.native_rate);
  batch.impact_ = std::move(columns.impact);
  batch.bottleneck_rate_ = std::move(columns.bottleneck_rate);
  batch.effective_rate_ = std::move(columns.effective_rate);
  batch.service_name_ = std::move(columns.service_name);
  batch.class_begin_ = std::move(columns.class_begin);
  batch.class_name_ = std::move(columns.class_name);
  batch.class_capacity_ = std::move(columns.class_capacity);
  batch.class_base_watts_ = std::move(columns.class_base_watts);
  batch.class_max_watts_ = std::move(columns.class_max_watts);
  batch.class_count_ = std::move(columns.class_count);
  batch.class_speed_ = std::move(columns.class_speed);
  return batch;
}

ScenarioBatch ScenarioBatch::from_inputs(std::span<const ModelInputs> inputs) {
  ScenarioBatch batch;
  batch.target_loss_.reserve(inputs.size());
  for (const ModelInputs& scenario : inputs) {
    batch.append(scenario);
  }
  return batch;
}

}  // namespace vmcons::core
