#include "core/sweep.hpp"

#include <algorithm>
#include <sstream>

#include "core/batch_eval.hpp"
#include "core/planner.hpp"
#include "core/scenario_batch.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {

SweepGrid& SweepGrid::target_losses(std::vector<double> losses) {
  for (const double loss : losses) {
    VMCONS_REQUIRE(loss > 0.0 && loss < 1.0, "target loss must be in (0, 1)");
  }
  target_losses_ = std::move(losses);
  return *this;
}

SweepGrid& SweepGrid::workload_scales(std::vector<double> scales) {
  for (const double scale : scales) {
    VMCONS_REQUIRE(scale > 0.0, "workload scale must be positive");
  }
  workload_scales_ = std::move(scales);
  return *this;
}

SweepGrid& SweepGrid::vms_per_server(std::vector<unsigned> vms) {
  for (const unsigned v : vms) {
    VMCONS_REQUIRE(v >= 1, "need at least one VM per server");
  }
  vms_per_server_ = std::move(vms);
  return *this;
}

SweepGrid& SweepGrid::fleet_mixes(std::vector<std::vector<std::uint64_t>> mixes) {
  for (const std::vector<std::uint64_t>& mix : mixes) {
    VMCONS_REQUIRE(!mix.empty(),
                   "a fleet mix needs at least one per-class count");
    VMCONS_REQUIRE(mix.size() == mixes.front().size(),
                   "every fleet mix must list the same class count (got " +
                       std::to_string(mix.size()) + " and " +
                       std::to_string(mixes.front().size()) + ")");
  }
  fleet_mixes_ = std::move(mixes);
  return *this;
}

std::size_t SweepGrid::size() const {
  const std::size_t losses = std::max<std::size_t>(1, target_losses_.size());
  const std::size_t vms = std::max<std::size_t>(1, vms_per_server_.size());
  const std::size_t scales = std::max<std::size_t>(1, workload_scales_.size());
  const std::size_t mixes = std::max<std::size_t>(1, fleet_mixes_.size());
  std::size_t losses_vms = 0;
  std::size_t losses_vms_scales = 0;
  std::size_t total = 0;
  if (__builtin_mul_overflow(losses, vms, &losses_vms) ||
      __builtin_mul_overflow(losses_vms, scales, &losses_vms_scales) ||
      __builtin_mul_overflow(losses_vms_scales, mixes, &total)) {
    std::ostringstream why;
    why << "SweepGrid: grid size overflows std::size_t: " << losses
        << " target losses x " << vms << " VMs-per-server x " << scales
        << " workload scales x " << mixes
        << " fleet mixes; split the request into sub-grids";
    throw NumericError(why.str());
  }
  return total;
}

SweepPoint SweepGrid::point(std::size_t index) const {
  VMCONS_REQUIRE(index < size(), "sweep point index out of range");
  const std::size_t losses = std::max<std::size_t>(1, target_losses_.size());
  const std::size_t vms = std::max<std::size_t>(1, vms_per_server_.size());
  const std::size_t scales = std::max<std::size_t>(1, workload_scales_.size());
  SweepPoint point;
  point.index = index;
  const std::size_t loss_index = index % losses;
  const std::size_t vms_index = (index / losses) % vms;
  const std::size_t scale_index = index / (losses * vms) % scales;
  const std::size_t mix_index = index / (losses * vms * scales);
  if (!target_losses_.empty()) {
    point.target_loss = target_losses_[loss_index];
  }
  if (!vms_per_server_.empty()) {
    point.vms_per_server = vms_per_server_[vms_index];
  }
  if (!workload_scales_.empty()) {
    point.workload_scale = workload_scales_[scale_index];
  }
  if (!fleet_mixes_.empty()) {
    point.fleet_mix = fleet_mixes_[mix_index];
  }
  return point;
}

std::vector<SweepPoint> SweepGrid::points() const {
  std::vector<SweepPoint> all;
  all.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    all.push_back(point(i));
  }
  return all;
}

ModelInputs ConsolidationPlanner::point_inputs(const SweepPoint& point) const {
  ConsolidationPlanner instance = *this;
  if (point.target_loss) {
    instance.set_target_loss(*point.target_loss);
  }
  if (point.workload_scale) {
    instance.scale_workloads(*point.workload_scale);
  }
  if (point.vms_per_server) {
    instance.set_vms_per_server(*point.vms_per_server);
  }
  if (point.fleet_mix) {
    // Throws InvalidArgument naming both sizes if the mix length does not
    // match the planner's fleet (including the no-fleet case: 0 classes).
    instance.set_fleet(fleet_.with_counts(*point.fleet_mix));
  }
  return instance.make_inputs();
}

SweepOutcome ConsolidationPlanner::sweep_all(const SweepGrid& grid,
                                             const SweepOptions& options) const {
  const std::size_t count = grid.size();

  metrics::ScopedTimer wall(metrics::registry().timer("sweep.wall"));
  metrics::registry().counter("sweep.points").add(count);

  // Build one columnar batch for the whole grid. Each scenario derives from
  // its index alone, so the batch (and everything downstream) is
  // deterministic regardless of execution order.
  ScenarioBatch batch;
  SweepOutcome outcome;
  outcome.cells.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SweepPoint point = grid.point(i);
    batch.append(point_inputs(point));
    outcome.cells[i].point = point;
  }

  BatchOptions batch_options;
  batch_options.parallel = options.parallel;
  batch_options.memoize = options.memoize;
  batch_options.kernel = options.kernel;
  batch_options.pool = options.pool;
  batch_options.policy = options.policy;
  batch_options.control = options.control;
  BatchOutcome evaluated = BatchEvaluator(batch_options).evaluate_all(batch);
  outcome.failures = std::move(evaluated.failures);
  outcome.cancelled = evaluated.cancelled;
  outcome.deadline_exceeded = evaluated.deadline_exceeded;

  const auto arrival = batch.arrival_rate();
  for (std::size_t i = 0; i < count; ++i) {
    SweepCell& cell = outcome.cells[i];
    cell.evaluated = evaluated.evaluated[i] != 0;
    if (!cell.evaluated) {
      continue;  // quarantined or unreached: keep the default report
    }
    PlanReport& report = cell.report;
    report.model = std::move(evaluated.results[i]);
    report.arrival_rates.assign(
        arrival.begin() + static_cast<std::ptrdiff_t>(batch.services_begin(i)),
        arrival.begin() + static_cast<std::ptrdiff_t>(batch.services_end(i)));
    report.dedicated_assignment =
        assign(static_cast<double>(report.model.dedicated_servers));
    report.consolidated_assignment =
        assign(static_cast<double>(report.model.consolidated_servers));
  }
  return outcome;
}

std::vector<SweepCell> ConsolidationPlanner::sweep(
    const SweepGrid& grid, const SweepOptions& options) const {
  SweepOutcome outcome = sweep_all(grid, options);
  if (outcome.cancelled) {
    throw CancelledError("sweep cancelled by caller");
  }
  if (outcome.deadline_exceeded) {
    throw DeadlineExceededError("sweep deadline exceeded");
  }
  return std::move(outcome.cells);
}

}  // namespace vmcons::core
