#include "core/sweep.hpp"

#include <algorithm>

#include "core/planner.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel_for.hpp"

namespace vmcons::core {

SweepGrid& SweepGrid::target_losses(std::vector<double> losses) {
  for (const double loss : losses) {
    VMCONS_REQUIRE(loss > 0.0 && loss < 1.0, "target loss must be in (0, 1)");
  }
  target_losses_ = std::move(losses);
  return *this;
}

SweepGrid& SweepGrid::workload_scales(std::vector<double> scales) {
  for (const double scale : scales) {
    VMCONS_REQUIRE(scale > 0.0, "workload scale must be positive");
  }
  workload_scales_ = std::move(scales);
  return *this;
}

SweepGrid& SweepGrid::vms_per_server(std::vector<unsigned> vms) {
  for (const unsigned v : vms) {
    VMCONS_REQUIRE(v >= 1, "need at least one VM per server");
  }
  vms_per_server_ = std::move(vms);
  return *this;
}

std::size_t SweepGrid::size() const noexcept {
  const std::size_t losses = std::max<std::size_t>(1, target_losses_.size());
  const std::size_t vms = std::max<std::size_t>(1, vms_per_server_.size());
  const std::size_t scales = std::max<std::size_t>(1, workload_scales_.size());
  return losses * vms * scales;
}

SweepPoint SweepGrid::point(std::size_t index) const {
  VMCONS_REQUIRE(index < size(), "sweep point index out of range");
  const std::size_t losses = std::max<std::size_t>(1, target_losses_.size());
  const std::size_t vms = std::max<std::size_t>(1, vms_per_server_.size());
  SweepPoint point;
  point.index = index;
  const std::size_t loss_index = index % losses;
  const std::size_t vms_index = (index / losses) % vms;
  const std::size_t scale_index = index / (losses * vms);
  if (!target_losses_.empty()) {
    point.target_loss = target_losses_[loss_index];
  }
  if (!vms_per_server_.empty()) {
    point.vms_per_server = vms_per_server_[vms_index];
  }
  if (!workload_scales_.empty()) {
    point.workload_scale = workload_scales_[scale_index];
  }
  return point;
}

std::vector<SweepPoint> SweepGrid::points() const {
  std::vector<SweepPoint> all;
  all.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    all.push_back(point(i));
  }
  return all;
}

std::vector<SweepCell> ConsolidationPlanner::sweep(
    const SweepGrid& grid, const SweepOptions& options) const {
  const std::size_t count = grid.size();
  queueing::ErlangKernel* kernel =
      options.kernel != nullptr
          ? options.kernel
          : (options.memoize ? &queueing::ErlangKernel::shared() : nullptr);

  metrics::ScopedTimer wall(metrics::registry().timer("sweep.wall"));
  metrics::registry().counter("sweep.points").add(count);

  std::vector<SweepCell> cells(count);
  const auto run_point = [&](std::size_t i) {
    // Everything below derives from the index alone, so the output is
    // independent of how points are distributed over workers.
    const SweepPoint point = grid.point(i);
    ConsolidationPlanner instance = *this;
    if (point.target_loss) {
      instance.set_target_loss(*point.target_loss);
    }
    if (point.workload_scale) {
      instance.scale_workloads(*point.workload_scale);
    }
    if (point.vms_per_server) {
      instance.set_vms_per_server(*point.vms_per_server);
    }
    cells[i].point = point;
    cells[i].report = instance.plan_with(kernel);
  };

  if (options.parallel) {
    parallel_for(count, run_point);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      run_point(i);
    }
  }
  return cells;
}

}  // namespace vmcons::core
