#include "core/batch_eval.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "queueing/erlang.hpp"
#include "queueing/erlang_kernel.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "util/metrics.hpp"
#include "util/parallel_for.hpp"
#include "util/thread_pool.hpp"

namespace vmcons::core {
namespace {

/// Routes staged query lists through the memoized kernel's sorted batch
/// walk when a kernel is set, else through the stateless free functions in
/// query order. Per-query results are bit-identical either way.
///
/// Fault-injection sites erlang.eval / staffing.inverse fire here, one draw
/// per staged query, with the index derived from the query's own bit
/// pattern — so an armed fault poisons the same (rho, target) no matter
/// which shard, thread, or memoization tier answers it.
struct ErlangDispatch {
  queueing::ErlangKernel* kernel = nullptr;

  void servers_for_many(std::span<const queueing::StaffingQuery> queries,
                        std::span<std::uint64_t> out) const {
    if (queries.empty()) {
      return;
    }
    if (util::FaultInjector::enabled()) {
      const util::FaultInjector& injector = util::FaultInjector::global();
      for (const queueing::StaffingQuery& query : queries) {
        injector.check(util::fault_sites::kStaffingInverse,
                       util::fault_index(query.rho, query.target_blocking));
      }
    }
    if (kernel != nullptr) {
      kernel->servers_for_many(queries, out);
      return;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out[i] = queueing::erlang_b_servers(queries[i].rho,
                                          queries[i].target_blocking);
    }
  }

  void eval_many(std::span<const queueing::BlockingQuery> queries,
                 std::span<double> out) const {
    if (queries.empty()) {
      return;
    }
    if (util::FaultInjector::enabled()) {
      const util::FaultInjector& injector = util::FaultInjector::global();
      for (const queueing::BlockingQuery& query : queries) {
        injector.check(util::fault_sites::kErlangEval,
                       util::fault_index(query.rho, 0.0, query.servers));
      }
    }
    if (kernel != nullptr) {
      kernel->eval_many(queries, out);
      return;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out[i] = queueing::erlang_b(queries[i].servers, queries[i].rho);
    }
  }
};

}  // namespace

namespace batch_kernels {

void staff_dedicated(const ScenarioBatch& batch, std::size_t begin,
                     std::size_t end, queueing::ErlangKernel* kernel,
                     std::span<ModelResult> results) {
  const ErlangDispatch erlang{kernel};
  const auto arrival = batch.arrival_rate();
  const std::size_t row0 = batch.services_begin(begin);
  const std::size_t rows = batch.services_end(end - 1) - row0;

  // Stage 0: per-resource offered-load columns over the shard's contiguous
  // row range. The divisions are hoisted out of the per-scenario query loop
  // into one branch-free stream per resource: divide by a safe stand-in,
  // then blend, so undemanded rows (mu <= 0) come out exactly 0.0 without a
  // branch in the loop body. Demanded rows perform the very same
  // arrival/mu division the fused loop did, hence bit-identical.
  std::vector<double> rho_cols(dc::kResourceCount * rows);
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    const double* __restrict__ arr = arrival.data() + row0;
    const double* __restrict__ mu_col =
        batch.native_rate(static_cast<dc::Resource>(r)).data() + row0;
    double* __restrict__ rho = rho_cols.data() + r * rows;
    // Two passes on purpose: fusing the safe-divide with the mask gives the
    // compiler two selects on one predicate, which it re-branches around
    // the divide instead of if-converting ("control flow in loop"). Split,
    // each loop is a single blend stream and both vectorize.
    for (std::size_t i = 0; i < rows; ++i) {
      rho[i] = arr[i] / (mu_col[i] > 0.0 ? mu_col[i] : 1.0);
    }
    for (std::size_t i = 0; i < rows; ++i) {
      rho[i] = mu_col[i] > 0.0 ? rho[i] : 0.0;
    }
  }
  const auto rho_of = [&](dc::Resource resource, std::size_t row) {
    return rho_cols[static_cast<std::size_t>(resource) * rows + (row - row0)];
  };

  // Stage 1: gather every staffing query of the range, in deterministic
  // (scenario, service, resource) order, reading the staged columns.
  std::vector<queueing::StaffingQuery> staffing;
  for (std::size_t s = begin; s < end; ++s) {
    const double b = batch.target_loss(s);
    for (std::size_t row = batch.services_begin(s);
         row < batch.services_end(s); ++row) {
      for (const dc::Resource resource : dc::all_resources()) {
        if (batch.native_rate(resource)[row] > 0.0) {
          staffing.push_back({rho_of(resource, row), b});
        }
      }
    }
  }
  std::vector<std::uint64_t> staffed(staffing.size());
  erlang.servers_for_many(staffing, staffed);

  // Stage 2: consume the answers in the same order, building the per-service
  // plans (servers = max over resources, M = sum over services), and gather
  // the blocking queries at each granted staffing.
  std::vector<queueing::BlockingQuery> blocking;
  std::size_t cursor = 0;
  for (std::size_t s = begin; s < end; ++s) {
    ModelResult& result = results[s - begin];
    for (std::size_t row = batch.services_begin(s);
         row < batch.services_end(s); ++row) {
      ServicePlan plan;
      plan.name = batch.service_name(row);
      for (const dc::Resource resource : dc::all_resources()) {
        const double rho = rho_of(resource, row);
        plan.offered_load[resource] = rho;
        const std::uint64_t n = rho > 0.0 ? staffed[cursor++] : 0;
        plan.servers_per_resource[static_cast<std::size_t>(resource)] = n;
        plan.servers = std::max(plan.servers, n);
      }
      for (const dc::Resource resource : dc::all_resources()) {
        if (plan.offered_load[resource] > 0.0) {
          blocking.push_back({plan.servers, plan.offered_load[resource]});
        }
      }
      result.dedicated_servers += plan.servers;
      result.dedicated.push_back(std::move(plan));
    }
  }
  std::vector<double> blocked(blocking.size());
  erlang.eval_many(blocking, blocked);

  // Stage 3: per-service blocking is the worst demanded resource.
  cursor = 0;
  for (std::size_t s = begin; s < end; ++s) {
    for (ServicePlan& plan : results[s - begin].dedicated) {
      double worst = 0.0;
      for (const dc::Resource resource : dc::all_resources()) {
        if (plan.offered_load[resource] > 0.0) {
          worst = std::max(worst, blocked[cursor++]);
        }
      }
      plan.blocking = worst;
    }
  }
}

void staff_consolidated(const ScenarioBatch& batch, std::size_t begin,
                        std::size_t end, queueing::ErlangKernel* kernel,
                        std::span<ModelResult> results) {
  const ErlangDispatch erlang{kernel};
  const auto arrival = batch.arrival_rate();
  const std::size_t row0 = batch.services_begin(begin);
  const std::size_t rows = batch.services_end(end - 1) - row0;

  // Stage 0: masked per-row merge terms of Eq. 4/5 as contiguous columns,
  // the columnar twin of UtilityAnalyticModel::consolidated_offered_load.
  // Undemanded rows (mu <= 0) contribute exact +0.0; arrival rates and
  // weighted capacities are non-negative, so x + 0.0 is a bit-level
  // identity on every partial sum and accumulating the masked columns in
  // row order is bit-identical to the fused loop that skipped those rows.
  std::vector<double> merge_cols(2 * dc::kResourceCount * rows);
  for (std::size_t r = 0; r < dc::kResourceCount; ++r) {
    const dc::Resource resource = static_cast<dc::Resource>(r);
    const double* __restrict__ arr = arrival.data() + row0;
    const double* __restrict__ mu_col =
        batch.native_rate(resource).data() + row0;
    const double* __restrict__ imp = batch.impact(resource).data() + row0;
    double* __restrict__ lam = merge_cols.data() + (2 * r) * rows;
    double* __restrict__ wcap = merge_cols.data() + (2 * r + 1) * rows;
    for (std::size_t i = 0; i < rows; ++i) {
      const double mu = mu_col[i];
      lam[i] = mu > 0.0 ? arr[i] : 0.0;
      // sum_i lambda_i * mu_ij * a_ij, same operand order as the fused loop
      wcap[i] = mu > 0.0 ? arr[i] * mu * imp[i] : 0.0;
    }
  }

  // Stage 1: merged offered loads per (scenario, resource) — forward sums
  // of the staged columns — and the staffing queries for every demanded
  // resource.
  std::vector<queueing::StaffingQuery> staffing;
  for (std::size_t s = begin; s < end; ++s) {
    ModelResult& result = results[s - begin];
    const double b = batch.target_loss(s);
    for (const dc::Resource resource : dc::all_resources()) {
      const std::size_t r = static_cast<std::size_t>(resource);
      auto& plan = result.consolidated[r];
      plan.resource = resource;
      const double* __restrict__ lam = merge_cols.data() + (2 * r) * rows;
      const double* __restrict__ wcap =
          merge_cols.data() + (2 * r + 1) * rows;
      double merged_lambda = 0.0;
      double weighted_capacity = 0.0;
      for (std::size_t row = batch.services_begin(s);
           row < batch.services_end(s); ++row) {
        merged_lambda += lam[row - row0];
        weighted_capacity += wcap[row - row0];
      }
      // rho' = lambda / mu' with mu' = weighted_capacity / lambda (Eq. 4).
      plan.offered_load =
          merged_lambda <= 0.0
              ? 0.0
              : merged_lambda * merged_lambda / weighted_capacity;
      plan.merged_arrival_rate = merged_lambda;
      plan.demanded = plan.offered_load > 0.0;
      if (plan.demanded) {
        plan.effective_service_rate = merged_lambda / plan.offered_load;
        staffing.push_back({plan.offered_load, b});
      }
    }
  }
  std::vector<std::uint64_t> staffed(staffing.size());
  erlang.servers_for_many(staffing, staffed);

  // Stage 2: N = max over resources; gather the blocking queries at N.
  std::vector<queueing::BlockingQuery> blocking;
  std::size_t cursor = 0;
  for (std::size_t s = begin; s < end; ++s) {
    ModelResult& result = results[s - begin];
    for (const dc::Resource resource : dc::all_resources()) {
      auto& plan = result.consolidated[static_cast<std::size_t>(resource)];
      if (plan.demanded) {
        plan.servers = staffed[cursor++];
        result.consolidated_servers =
            std::max(result.consolidated_servers, plan.servers);
      }
    }
    for (const dc::Resource resource : dc::all_resources()) {
      const auto& plan =
          result.consolidated[static_cast<std::size_t>(resource)];
      if (plan.demanded) {
        blocking.push_back({result.consolidated_servers, plan.offered_load});
      }
    }
  }
  std::vector<double> blocked(blocking.size());
  erlang.eval_many(blocking, blocked);

  // Stage 3: consolidated blocking is the worst demanded resource at N.
  cursor = 0;
  for (std::size_t s = begin; s < end; ++s) {
    ModelResult& result = results[s - begin];
    double worst = 0.0;
    for (const dc::Resource resource : dc::all_resources()) {
      if (result.consolidated[static_cast<std::size_t>(resource)].demanded) {
        worst = std::max(worst, blocked[cursor++]);
      }
    }
    result.consolidated_blocking = worst;
  }
}

void staff_fleet(const ScenarioBatch& batch, std::size_t begin,
                 std::size_t end, std::span<ModelResult> results) {
  if (begin == end) {
    return;
  }
  const std::size_t c0 = batch.classes_begin(begin);
  const std::size_t crows = batch.classes_end(end - 1) - c0;
  if (crows == 0) {
    return;  // no scenario in the range carries a fleet
  }

  // Stage 0: fill-priority tie-break column — reference-equivalents per
  // peak watt — as one dense divide stream over the shard's class rows.
  // max_watts is validated >= base_watts > 0, so the divide is safe.
  std::vector<double> efficiency(crows);
  {
    const double* __restrict__ speed = batch.class_speed().data() + c0;
    const double* __restrict__ peak = batch.class_max_watts().data() + c0;
    double* __restrict__ eff = efficiency.data();
    for (std::size_t i = 0; i < crows; ++i) {
      eff[i] = speed[i] / peak[i];
    }
  }

  const auto available = batch.class_available();
  const auto speeds = batch.class_speed();
  std::vector<std::size_t> order;
  for (std::size_t s = begin; s < end; ++s) {
    const std::size_t cb = batch.classes_begin(s);
    const std::size_t ce = batch.classes_end(s);
    if (cb == ce) {
      continue;  // homogeneous scenario: FleetPlan stays unplanned
    }
    ModelResult& result = results[s - begin];
    FleetPlan& plan = result.fleet;
    plan.planned = true;
    const std::size_t classes = ce - cb;
    plan.classes.resize(classes);
    for (std::size_t local = 0; local < classes; ++local) {
      ClassAllocation& alloc = plan.classes[local];
      alloc.name = batch.class_name(cb + local);
      alloc.speed = speeds[cb + local];
      alloc.available = available[cb + local];
    }

    // Fill order: fastest class first. Greedy on speed is exactly "take the
    // fastest remaining server, one at a time", so the physical count is
    // minimal and adding a class never increases a feasible total. A
    // per-watt-first order would NOT be monotone: a slightly slower but
    // thriftier class can displace part of a fast class's coverage and
    // force an extra machine. Efficiency only breaks exact speed ties;
    // name and declaration order make the plan fully deterministic.
    order.resize(classes);
    for (std::size_t i = 0; i < classes; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (speeds[cb + a] != speeds[cb + b]) {
                  return speeds[cb + a] > speeds[cb + b];
                }
                if (efficiency[cb + a - c0] != efficiency[cb + b - c0]) {
                  return efficiency[cb + a - c0] > efficiency[cb + b - c0];
                }
                if (batch.class_name(cb + a) != batch.class_name(cb + b)) {
                  return batch.class_name(cb + a) < batch.class_name(cb + b);
                }
                return a < b;
              });

    // Cover `target` reference-equivalents from the ordered classes. Counts
    // cast exactly: targets are Erlang staffing answers (far below 2^53)
    // and kUnbounded rounds to 2^64, which only ever relaxes the min.
    const auto allocate = [&](std::uint64_t target,
                              std::uint64_t ClassAllocation::*granted,
                              bool& feasible, double& shortfall) {
      double remaining = static_cast<double>(target);
      for (const std::size_t local : order) {
        if (remaining <= 0.0) {
          break;  // later classes keep their zero-initialized grant
        }
        ClassAllocation& alloc = plan.classes[local];
        const double want = std::ceil(remaining / alloc.speed);
        // Branch keeps the uint64 cast in range: `want` is only converted
        // when it is provably below the available count (and so below 2^64).
        std::uint64_t take = alloc.available;
        if (want < static_cast<double>(alloc.available)) {
          take = static_cast<std::uint64_t>(want);
        }
        alloc.*granted = take;
        remaining -= static_cast<double>(take) * alloc.speed;
      }
      feasible = remaining <= 0.0;
      shortfall = std::max(0.0, remaining);
    };
    allocate(result.dedicated_servers, &ClassAllocation::dedicated_servers,
             plan.dedicated_feasible, plan.dedicated_shortfall);
    allocate(result.consolidated_servers,
             &ClassAllocation::consolidated_servers,
             plan.consolidated_feasible, plan.consolidated_shortfall);
  }
}

void derive_utility(const ScenarioBatch& batch, std::size_t begin,
                    std::size_t end, std::span<ModelResult> results) {
  const auto arrival = batch.arrival_rate();
  const auto bottleneck = batch.bottleneck_rate();
  const auto effective = batch.effective_rate();
  if (begin == end) {
    return;
  }

  // Pass 1: per-row work terms over the shard's contiguous row range. The
  // loops are branch-free streams over dense columns, so the compiler can
  // vectorize the divisions; summing the staged terms afterwards in row
  // order is the same operation order as the fused loop, hence
  // bit-identical.
  const std::size_t row0 = batch.services_begin(begin);
  const std::size_t row_end = batch.services_end(end - 1);
  const std::size_t rows = row_end - row0;
  std::vector<double> dedicated_terms(rows);
  std::vector<double> consolidated_terms(rows);
  {
    const double* __restrict__ arr = arrival.data() + row0;
    const double* __restrict__ bot = bottleneck.data() + row0;
    const double* __restrict__ eff = effective.data() + row0;
    double* __restrict__ ded = dedicated_terms.data();
    double* __restrict__ con = consolidated_terms.data();
    for (std::size_t r = 0; r < rows; ++r) {
      ded[r] = arr[r] / bot[r];
    }
    for (std::size_t r = 0; r < rows; ++r) {
      con[r] = arr[r] / eff[r];
    }
  }

  // Pass 2: per-scenario forward sums and the Eq. 8-11 ratios.
  for (std::size_t s = begin; s < end; ++s) {
    ModelResult& result = results[s - begin];
    double dedicated_work = 0.0;
    double consolidated_work = 0.0;
    for (std::size_t row = batch.services_begin(s);
         row < batch.services_end(s); ++row) {
      dedicated_work += dedicated_terms[row - row0];
      consolidated_work += consolidated_terms[row - row0];
    }
    if (result.dedicated_servers > 0) {
      result.dedicated_utilization =
          dedicated_work / static_cast<double>(result.dedicated_servers);
    }
    if (result.consolidated_servers > 0) {
      result.consolidated_utilization =
          consolidated_work / static_cast<double>(result.consolidated_servers);
    }
    if (result.dedicated_utilization > 0.0) {
      result.utilization_improvement =
          result.consolidated_utilization / result.dedicated_utilization;
    }
  }
}

void derive_power(const ScenarioBatch& batch, std::size_t begin,
                  std::size_t end, std::span<ModelResult> results) {
  const std::size_t count = end - begin;
  // One scratch block, both deployments staged before any scatter: the
  // clamp loops are branch-free min-streams and watts_many runs over dense
  // columns, so all four passes vectorize.
  std::vector<double> scratch(count * 4);
  const std::span<double> dedicated_clamped(scratch.data(), count);
  const std::span<double> consolidated_clamped(scratch.data() + count, count);
  const std::span<double> dedicated_watts(scratch.data() + 2 * count, count);
  const std::span<double> consolidated_watts(scratch.data() + 3 * count,
                                             count);

  {
    // Gather pass: strided reads out of the result structs into the dense
    // clamp columns, no stores anywhere else (restrict), so the min-streams
    // stay branch-free and pack.
    const ModelResult* __restrict__ res = results.data();
    double* __restrict__ ded = dedicated_clamped.data();
    double* __restrict__ con = consolidated_clamped.data();
    for (std::size_t k = 0; k < count; ++k) {
      ded[k] = std::min(1.0, res[k].dedicated_utilization);
    }
    for (std::size_t k = 0; k < count; ++k) {
      con[k] = std::min(1.0, res[k].consolidated_utilization);
    }
  }
  dc::watts_many(batch.dedicated_power().subspan(begin, count),
                 dedicated_clamped, dedicated_watts);
  dc::watts_many(batch.consolidated_power().subspan(begin, count),
                 consolidated_clamped, consolidated_watts);

  // Single fused finalize: per-server watts scaled to fleets, then the
  // Eq. 12-14 saving ratios.
  for (std::size_t k = 0; k < count; ++k) {
    ModelResult& result = results[k];
    result.dedicated_power_watts =
        static_cast<double>(result.dedicated_servers) * dedicated_watts[k];
    result.consolidated_power_watts =
        static_cast<double>(result.consolidated_servers) *
        consolidated_watts[k];
    if (result.dedicated_power_watts > 0.0) {
      result.power_ratio =
          result.consolidated_power_watts / result.dedicated_power_watts;
      result.power_saving = 1.0 - result.power_ratio;
    }
    if (result.dedicated_servers > 0) {
      result.infrastructure_saving =
          1.0 - static_cast<double>(result.consolidated_servers) /
                    static_cast<double>(result.dedicated_servers);
    }
  }

  // Heterogeneous tail: scenarios with fleet-class rows re-derive P_M/P_N
  // from per-class wattages. The class-major watts passes keep the exact
  // operand grouping of PowerModel::watts — native `base + (max-base)*u`
  // for the dedicated deployment, Xen idle/dynamic scaling for the
  // consolidated one — so a single-class fleet whose wattage pair matches
  // the scenario's reproduces the homogeneous answer bit for bit.
  if (begin == end) {
    return;
  }
  const std::size_t c0 = batch.classes_begin(begin);
  const std::size_t crows = batch.classes_end(end - 1) - c0;
  if (crows == 0) {
    return;
  }
  std::vector<double> class_scratch(crows * 4);
  double* const u_ded = class_scratch.data();
  double* const u_con = class_scratch.data() + crows;
  double* const w_ded = class_scratch.data() + 2 * crows;
  double* const w_con = class_scratch.data() + 3 * crows;
  // Broadcast each scenario's clamped utilizations across its class rows so
  // the watts passes below run over dense, scenario-free columns.
  for (std::size_t s = begin; s < end; ++s) {
    const double ded = dedicated_clamped[s - begin];
    const double con = consolidated_clamped[s - begin];
    for (std::size_t row = batch.classes_begin(s); row < batch.classes_end(s);
         ++row) {
      u_ded[row - c0] = ded;
      u_con[row - c0] = con;
    }
  }
  {
    const double* __restrict__ base = batch.class_base_watts().data() + c0;
    const double* __restrict__ peak = batch.class_max_watts().data() + c0;
    const double* __restrict__ ud = u_ded;
    const double* __restrict__ uc = u_con;
    double* __restrict__ wd = w_ded;
    double* __restrict__ wc = w_con;
    for (std::size_t i = 0; i < crows; ++i) {
      wd[i] = base[i] + (peak[i] - base[i]) * ud[i];
    }
    for (std::size_t i = 0; i < crows; ++i) {
      wc[i] = base[i] * dc::PowerModel::kXenIdleFactor +
              ((peak[i] - base[i]) * dc::PowerModel::kXenDynamicFactor) *
                  uc[i];
    }
  }

  // Fleet finalize: per-class watts scaled by the granted counts, summed
  // into the scenario's P_M/P_N, and the Eq. 14 ratios recomputed from the
  // per-class sums. The homogeneous fields written above are overwritten
  // only for scenarios that actually planned a fleet.
  for (std::size_t s = begin; s < end; ++s) {
    const std::size_t cb = batch.classes_begin(s);
    const std::size_t ce = batch.classes_end(s);
    if (cb == ce) {
      continue;
    }
    ModelResult& result = results[s - begin];
    double p_m = 0.0;
    double p_n = 0.0;
    for (std::size_t local = 0; local < ce - cb; ++local) {
      ClassAllocation& alloc = result.fleet.classes[local];
      alloc.dedicated_power_watts =
          static_cast<double>(alloc.dedicated_servers) * w_ded[cb - c0 + local];
      alloc.consolidated_power_watts =
          static_cast<double>(alloc.consolidated_servers) *
          w_con[cb - c0 + local];
      p_m += alloc.dedicated_power_watts;
      p_n += alloc.consolidated_power_watts;
    }
    result.dedicated_power_watts = p_m;
    result.consolidated_power_watts = p_n;
    result.power_ratio = 0.0;
    result.power_saving = 0.0;
    if (p_m > 0.0) {
      result.power_ratio = p_n / p_m;
      result.power_saving = 1.0 - result.power_ratio;
    }
  }
}

}  // namespace batch_kernels

std::vector<ModelResult> BatchEvaluator::evaluate(
    const ScenarioBatch& batch) const {
  BatchOutcome outcome = evaluate_all(batch);
  if (outcome.cancelled) {
    throw CancelledError("batch evaluation cancelled after " +
                         std::to_string(outcome.evaluated_count()) + " of " +
                         std::to_string(batch.size()) + " scenarios");
  }
  if (outcome.deadline_exceeded) {
    throw DeadlineExceededError("batch evaluation deadline exceeded after " +
                                std::to_string(outcome.evaluated_count()) +
                                " of " + std::to_string(batch.size()) +
                                " scenarios");
  }
  return std::move(outcome.results);
}

BatchOutcome BatchEvaluator::evaluate_all(const ScenarioBatch& batch) const {
  const std::size_t count = batch.size();
  BatchOutcome outcome;
  outcome.results.resize(count);
  outcome.evaluated.assign(count, 0);
  if (count == 0) {
    return outcome;
  }
  queueing::ErlangKernel* kernel =
      options_.kernel != nullptr
          ? options_.kernel
          : (options_.memoize ? &queueing::ErlangKernel::shared() : nullptr);

  auto& registry = metrics::registry();
  metrics::ScopedTimer wall(registry.timer(metrics::names::kBatchWall));
  registry.counter(metrics::names::kBatchEvaluations).add();
  registry.counter(metrics::names::kBatchScenarios).add(count);

  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::shared();
  // Workers that can claim at least min_scenarios_per_worker scenarios;
  // a tiny batch caps this at 1 and skips pool dispatch entirely.
  const std::size_t workers = std::max<std::size_t>(1, pool.size());
  std::size_t active_workers = workers;
  if (options_.min_scenarios_per_worker > 0) {
    active_workers = std::clamp<std::size_t>(
        count / options_.min_scenarios_per_worker, std::size_t{1}, workers);
  }
  std::size_t shard = options_.shard_size;
  if (shard == 0) {
    // ~4 shards per active worker: enough slack to balance heterogeneous
    // scenario costs, big enough that each staged kernel walk amortizes its
    // sort.
    shard = std::max<std::size_t>(
        1, (count + active_workers * 4 - 1) / (active_workers * 4));
  }
  const std::size_t shard_count = (count + shard - 1) / shard;
  registry.counter(metrics::names::kBatchShards).add(shard_count);

  // Cache behavior attributable to this batch: the delta of the kernel's
  // counters across the evaluation. Concurrent users of a shared kernel
  // blur the attribution; this is telemetry, not program state.
  const queueing::ErlangKernel::Stats before =
      kernel != nullptr ? kernel->stats() : queueing::ErlangKernel::Stats{};

  const RunControl& control = options_.control;
  const bool quarantine = options_.policy == FailurePolicy::kQuarantine;
  std::mutex failures_mutex;  // shards append failures; sorted afterwards

  const auto evaluate_range = [&](std::size_t first, std::size_t last,
                                  std::span<ModelResult> out) {
    batch_kernels::staff_dedicated(batch, first, last, kernel, out);
    batch_kernels::staff_consolidated(batch, first, last, kernel, out);
    batch_kernels::staff_fleet(batch, first, last, out);
    batch_kernels::derive_utility(batch, first, last, out);
    batch_kernels::derive_power(batch, first, last, out);
  };

  const auto run_shard = [&](std::size_t index) {
    const std::size_t first = index * shard;
    const std::size_t last = std::min(count, first + shard);
    if (control.stop_requested()) {
      return;
    }
    const std::span<ModelResult> out(outcome.results.data() + first,
                                     last - first);
    try {
      if (util::FaultInjector::enabled()) {
        const util::FaultInjector& injector = util::FaultInjector::global();
        injector.check(util::fault_sites::kBatchShard, index);
        for (std::size_t s = first; s < last; ++s) {
          injector.check(util::fault_sites::kBatchCell, s);
        }
      }
      evaluate_range(first, last, out);
      std::fill(outcome.evaluated.begin() + static_cast<std::ptrdiff_t>(first),
                outcome.evaluated.begin() + static_cast<std::ptrdiff_t>(last),
                std::uint8_t{1});
    } catch (...) {
      if (!quarantine) {
        throw;  // kFailFast: parallel_for joins all shards, then rethrows
      }
      // Quarantine fallback: isolate the failing cell(s) by re-running this
      // shard cell-at-a-time. Each cell is a batch of one — the same four
      // span kernels over the range [s, s+1) — so healthy cells produce
      // bit-identical results to the staged whole-shard walk, and the
      // memoized kernel's answers are order-independent by construction.
      for (std::size_t s = first; s < last; ++s) {
        if (control.stop_requested()) {
          return;
        }
        ModelResult& slot = outcome.results[s];
        slot = ModelResult{};  // discard partial fast-path writes
        try {
          if (util::FaultInjector::enabled()) {
            util::FaultInjector::global().check(util::fault_sites::kBatchCell,
                                                s);
          }
          evaluate_range(s, s + 1, std::span<ModelResult>(&slot, 1));
          outcome.evaluated[s] = 1;
        } catch (const Error& error) {
          slot = ModelResult{};
          const std::lock_guard<std::mutex> lock(failures_mutex);
          outcome.failures.push_back({s, error.code(), error.what()});
        } catch (const std::exception& error) {
          slot = ModelResult{};
          const std::lock_guard<std::mutex> lock(failures_mutex);
          outcome.failures.push_back({s, ErrorCode::kUnknown, error.what()});
        }
      }
    }
  };
  if (options_.parallel && shard_count > 1 && active_workers > 1) {
    parallel_for(shard_count, run_shard, pool, 0, &control);
  } else {
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (control.stop_requested()) {
        break;
      }
      run_shard(i);
    }
  }

  // Shards append failures in completion order; report them in scenario
  // order so the record is deterministic regardless of the worker count.
  std::sort(outcome.failures.begin(), outcome.failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.scenario_index < b.scenario_index;
            });
  registry.counter(metrics::names::kBatchQuarantined)
      .add(outcome.failures.size());

  // A stop only counts as an abort if it actually left cells unhandled;
  // a deadline expiring as the last shard retires is not an abort.
  if (outcome.evaluated_count() + outcome.failures.size() < count) {
    switch (control.stop_reason()) {
      case StopReason::kCancelled:
        outcome.cancelled = true;
        registry.counter(metrics::names::kBatchCancelled).add();
        break;
      case StopReason::kDeadlineExceeded:
        outcome.deadline_exceeded = true;
        registry.counter(metrics::names::kBatchDeadlineExceeded).add();
        break;
      case StopReason::kNone:
        break;  // unreachable: only a stop skips cells without recording
    }
  }

  if (kernel != nullptr) {
    // Batch completion ends a merge epoch: fold every worker's private
    // recursion extensions into a fresh snapshot so the next batch (or any
    // direct kernel query) starts lock-free. This is the only serialized
    // section on the batch path; its cost is the contention bill.
    {
      metrics::ScopedTimer merge_wait(
          registry.timer(metrics::names::kBatchLockWait));
      kernel->publish();
    }
    const queueing::ErlangKernel::Stats after = kernel->stats();
    const std::uint64_t hits = after.cache_hits - before.cache_hits;
    const std::uint64_t misses =
        (after.evaluations - before.evaluations) - hits;
    registry.counter(metrics::names::kBatchKernelHits).add(hits);
    registry.counter(metrics::names::kBatchKernelMisses).add(misses);
  }
  return outcome;
}

}  // namespace vmcons::core
