#include "core/sharded_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <random>
#include <sstream>
#include <string_view>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include "util/backoff.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "util/file_lock.hpp"
#include "util/fs.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {
namespace {

namespace fs = std::filesystem;

// Result file layout (host-endian, like the store it mirrors):
//   magic "VMCRSLT1" | u64 store_checksum | u64 shard_index
//   | u64 scenario_begin | u64 scenarios | u64 result_checksum
//   | u64 payload_bytes | payload | u64 payload_checksum | magic "VMCREND1"
// The payload serializes the shard's BatchOutcome: evaluated flags,
// failures, then every ModelResult field in the canonical order of
// checksum_model_results (plus the fleet plan, which the digest predates).
constexpr char kResultMagic[8] = {'V', 'M', 'C', 'R', 'S', 'L', 'T', '1'};
constexpr char kResultEndMagic[8] = {'V', 'M', 'C', 'R', 'E', 'N', 'D', '1'};
constexpr std::size_t kResultHeaderBytes = sizeof(kResultMagic) + 6 * 8;

std::int64_t now_wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void ledger_fail(const std::string& path,
                              const std::string& what) {
  throw IoError("claim ledger '" + path + "': " + what);
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << value;
  return out.str();
}

std::string shard_tag(std::size_t shard) {
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%06zu", shard);
  return buffer;
}

bool filename_safe(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string format_claim(const ShardClaim& claim) {
  std::ostringstream out;
  out << claim.worker << ',' << claim.pid << ',' << claim.hostname << ','
      << hex64(claim.token) << ',' << claim.lease_deadline_ms << ','
      << hex64(claim.store_checksum) << '\n';
  return out.str();
}

std::optional<ShardClaim> parse_claim(const std::string& text) {
  std::vector<std::string> fields;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      break;
    }
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  // 6 fields since the hostname column landed; 5-field records from older
  // builds parse with an empty hostname (= written on this host).
  const bool legacy = fields.size() == 5;
  if ((fields.size() != 6 && !legacy) ||
      text.find('\n') == std::string::npos) {
    return std::nullopt;  // partial write of a crashed claimer
  }
  ShardClaim claim;
  claim.worker = fields[0];
  char* end = nullptr;
  claim.pid = std::strtoll(fields[1].c_str(), &end, 10);
  if (end == fields[1].c_str()) {
    return std::nullopt;
  }
  const std::size_t base = legacy ? 2 : 3;
  if (!legacy) {
    claim.hostname = fields[2];
  }
  claim.token = std::strtoull(fields[base].c_str(), &end, 16);
  claim.lease_deadline_ms = std::strtoll(fields[base + 1].c_str(), &end, 10);
  claim.store_checksum = std::strtoull(fields[base + 2].c_str(), &end, 16);
  return claim;
}

/// Age of a file in milliseconds via stat mtime; nullopt when it is gone.
std::optional<std::int64_t> file_age_ms(const std::string& path) {
  struct ::stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return std::nullopt;
  }
  const std::int64_t mtime_ms =
      static_cast<std::int64_t>(st.st_mtime) * 1000;
  return now_wall_ms() - mtime_ms;
}

// --- BatchOutcome (de)serialization --------------------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}
  void raw(const void* data, std::size_t bytes) {
    out_.append(static_cast<const char*>(data), bytes);
  }
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

 private:
  std::string& out_;
};

/// Bounds-checked reader over a result payload; context names the file and
/// shard so a truncated payload fails with an actionable message.
class ByteReader {
 public:
  ByteReader(const std::string& in, std::size_t begin, std::size_t end,
             const std::string& context)
      : in_(in), pos_(begin), end_(end), context_(context) {}

  void raw(void* data, std::size_t bytes) {
    if (bytes > end_ - pos_) {
      throw IoError(context_ + ": payload truncated (need " +
                    std::to_string(bytes) + " bytes at offset " +
                    std::to_string(pos_) + " of " + std::to_string(end_) +
                    ")");
    }
    std::memcpy(data, in_.data() + pos_, bytes);
    pos_ += bytes;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t length = u32();
    std::string s(length, '\0');
    raw(s.data(), length);
    return s;
  }
  std::size_t remaining() const { return end_ - pos_; }

 private:
  const std::string& in_;
  std::size_t pos_;
  std::size_t end_;
  const std::string& context_;
};

void write_model_result(ByteWriter& w, const ModelResult& result) {
  w.u64(result.dedicated.size());
  for (const ServicePlan& plan : result.dedicated) {
    w.str(plan.name);
    for (const dc::Resource resource : dc::all_resources()) {
      w.f64(plan.offered_load[resource]);
    }
    for (const std::uint64_t servers : plan.servers_per_resource) {
      w.u64(servers);
    }
    w.u64(plan.servers);
    w.f64(plan.blocking);
  }
  w.u64(result.dedicated_servers);
  for (const ConsolidatedResourcePlan& plan : result.consolidated) {
    w.u32(static_cast<std::uint32_t>(plan.resource));
    w.f64(plan.merged_arrival_rate);
    w.f64(plan.effective_service_rate);
    w.f64(plan.offered_load);
    w.u64(plan.servers);
    w.u8(plan.demanded ? 1 : 0);
  }
  w.u64(result.consolidated_servers);
  w.f64(result.consolidated_blocking);
  w.f64(result.dedicated_utilization);
  w.f64(result.consolidated_utilization);
  w.f64(result.utilization_improvement);
  w.f64(result.dedicated_power_watts);
  w.f64(result.consolidated_power_watts);
  w.f64(result.power_ratio);
  w.f64(result.power_saving);
  w.f64(result.infrastructure_saving);
  w.u8(result.fleet.planned ? 1 : 0);
  w.u64(result.fleet.classes.size());
  for (const ClassAllocation& alloc : result.fleet.classes) {
    w.str(alloc.name);
    w.f64(alloc.speed);
    w.u64(alloc.available);
    w.u64(alloc.dedicated_servers);
    w.u64(alloc.consolidated_servers);
    w.f64(alloc.dedicated_power_watts);
    w.f64(alloc.consolidated_power_watts);
  }
  w.u8(result.fleet.dedicated_feasible ? 1 : 0);
  w.u8(result.fleet.consolidated_feasible ? 1 : 0);
  w.f64(result.fleet.dedicated_shortfall);
  w.f64(result.fleet.consolidated_shortfall);
}

ModelResult read_model_result(ByteReader& r) {
  ModelResult result;
  result.dedicated.resize(r.u64());
  for (ServicePlan& plan : result.dedicated) {
    plan.name = r.str();
    for (const dc::Resource resource : dc::all_resources()) {
      plan.offered_load[resource] = r.f64();
    }
    for (std::uint64_t& servers : plan.servers_per_resource) {
      servers = r.u64();
    }
    plan.servers = r.u64();
    plan.blocking = r.f64();
  }
  result.dedicated_servers = r.u64();
  for (ConsolidatedResourcePlan& plan : result.consolidated) {
    plan.resource = static_cast<dc::Resource>(r.u32());
    plan.merged_arrival_rate = r.f64();
    plan.effective_service_rate = r.f64();
    plan.offered_load = r.f64();
    plan.servers = r.u64();
    plan.demanded = r.u8() != 0;
  }
  result.consolidated_servers = r.u64();
  result.consolidated_blocking = r.f64();
  result.dedicated_utilization = r.f64();
  result.consolidated_utilization = r.f64();
  result.utilization_improvement = r.f64();
  result.dedicated_power_watts = r.f64();
  result.consolidated_power_watts = r.f64();
  result.power_ratio = r.f64();
  result.power_saving = r.f64();
  result.infrastructure_saving = r.f64();
  result.fleet.planned = r.u8() != 0;
  result.fleet.classes.resize(r.u64());
  for (ClassAllocation& alloc : result.fleet.classes) {
    alloc.name = r.str();
    alloc.speed = r.f64();
    alloc.available = r.u64();
    alloc.dedicated_servers = r.u64();
    alloc.consolidated_servers = r.u64();
    alloc.dedicated_power_watts = r.f64();
    alloc.consolidated_power_watts = r.f64();
  }
  result.fleet.dedicated_feasible = r.u8() != 0;
  result.fleet.consolidated_feasible = r.u8() != 0;
  result.fleet.dedicated_shortfall = r.f64();
  result.fleet.consolidated_shortfall = r.f64();
  return result;
}

std::string serialize_outcome(const BatchOutcome& outcome) {
  std::string bytes;
  ByteWriter w(bytes);
  w.u64(outcome.evaluated.size());
  w.raw(outcome.evaluated.data(), outcome.evaluated.size());
  w.u64(outcome.failures.size());
  for (const CellFailure& failure : outcome.failures) {
    w.u64(failure.scenario_index);
    w.u32(static_cast<std::uint32_t>(failure.code));
    w.str(failure.message);
  }
  for (const ModelResult& result : outcome.results) {
    write_model_result(w, result);
  }
  return bytes;
}

BatchOutcome deserialize_outcome(ByteReader& r, std::size_t scenarios,
                                 const std::string& context) {
  BatchOutcome outcome;
  const std::uint64_t evaluated = r.u64();
  if (evaluated != scenarios) {
    throw IoError(context + ": payload declares " + std::to_string(evaluated) +
                  " scenarios but the header recorded " +
                  std::to_string(scenarios));
  }
  outcome.evaluated.resize(scenarios);
  r.raw(outcome.evaluated.data(), scenarios);
  outcome.failures.resize(r.u64());
  for (CellFailure& failure : outcome.failures) {
    failure.scenario_index = static_cast<std::size_t>(r.u64());
    failure.code = static_cast<ErrorCode>(r.u32());
    failure.message = r.str();
  }
  outcome.results.reserve(scenarios);
  for (std::size_t i = 0; i < scenarios; ++i) {
    outcome.results.push_back(read_model_result(r));
  }
  if (r.remaining() != 0) {
    throw IoError(context + ": " + std::to_string(r.remaining()) +
                  " trailing payload bytes past the last result");
  }
  return outcome;
}

}  // namespace

// --- ClaimLedger ----------------------------------------------------------

ClaimLedger::ClaimLedger(std::string dir, std::uint64_t store_checksum,
                         std::chrono::milliseconds lease,
                         bool dead_pid_fast_path)
    : dir_(std::move(dir)),
      store_checksum_(store_checksum),
      lease_(lease),
      dead_pid_fast_path_(dead_pid_fast_path) {
  VMCONS_REQUIRE(!dir_.empty(), "claim ledger directory must be non-empty");
  VMCONS_REQUIRE(lease_.count() > 0, "claim lease must be positive");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    ledger_fail(dir_, "cannot create directory: " + ec.message());
  }
}

std::string ClaimLedger::claim_path(std::size_t shard) const {
  return dir_ + "/claim-" + shard_tag(shard) + ".csv";
}

std::string ClaimLedger::result_path(std::size_t shard) const {
  return dir_ + "/result-" + shard_tag(shard) + ".bin";
}

std::string ClaimLedger::worker_metrics_path(
    const std::string& worker_id) const {
  return dir_ + "/worker-" + worker_id + ".metrics.json";
}

bool ClaimLedger::result_committed(std::size_t shard) const {
  return ::access(result_path(shard).c_str(), F_OK) == 0;
}

std::optional<ShardClaim> ClaimLedger::read_claim(std::size_t shard) const {
  const auto contents = util::read_file(claim_path(shard));
  if (!contents.has_value()) {
    return std::nullopt;
  }
  return parse_claim(*contents);
}

std::uint64_t ClaimLedger::make_token() {
  // Unique across this host's claim attempts: pid in the high bits, a
  // random-seeded process-local counter below.
  static std::atomic<std::uint64_t> counter = [] {
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) ^ device();
  }();
  const std::uint64_t serial = counter.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<std::uint64_t>(::getpid()) << 40) ^ serial;
}

bool ClaimLedger::try_claim(std::size_t shard, const std::string& worker_id,
                            std::uint64_t token, bool* reclaimed) const {
  if (reclaimed != nullptr) {
    *reclaimed = false;
  }
  if (result_committed(shard)) {
    return false;  // done shards are never claimable
  }
  ShardClaim mine;
  mine.worker = worker_id;
  mine.pid = static_cast<long long>(::getpid());
  mine.hostname = util::local_hostname();
  mine.token = token;
  mine.lease_deadline_ms = now_wall_ms() + lease_.count();
  mine.store_checksum = store_checksum_;
  const std::string path = claim_path(shard);

  const util::fs::Status created = util::fs::create_exclusive_file(
      path, format_claim(mine), util::fs::sites::kClaim);
  if (created.ok()) {
    return true;  // the kernel arbitrated: we own the fresh claim
  }
  if (created.err != EEXIST) {
    ledger_fail(path, "claim create failed: " + created.message());
  }

  // Held: decide staleness. The lease is the portable rule — any host may
  // reclaim an expired claim. The dead-pid probe is a same-host fast path
  // only: a remote claimer's pid number says nothing about the remote
  // process (and may name a live local one), so it never short-circuits the
  // lease for records from other hosts, and lease-only mode disables it
  // entirely. An unparseable record (claimer crashed between create and
  // write) is judged by file age against the lease.
  const auto contents = util::read_file(path);
  if (!contents.has_value()) {
    // Claim vanished between create-fail and read (peer released after
    // committing). Treat as lost; the next pass sees the result file.
    return false;
  }
  const std::optional<ShardClaim> held = parse_claim(*contents);
  bool stale = false;
  if (held.has_value()) {
    if (held->store_checksum != store_checksum_) {
      ledger_fail(path, "claim is branded for store checksum " +
                            hex64(held->store_checksum) +
                            " but this sweep runs against " +
                            hex64(store_checksum_) +
                            " (two sweeps sharing one ledger?)");
    }
    const bool held_locally = held->hostname.empty() ||
                              held->hostname == util::local_hostname();
    const bool pid_dead =
        dead_pid_fast_path_ && held_locally &&
        !util::pid_alive(static_cast<::pid_t>(held->pid));
    stale = pid_dead || now_wall_ms() > held->lease_deadline_ms;
  } else {
    const auto age = file_age_ms(path);
    stale = age.has_value() && *age > lease_.count() + 1000;
  }
  if (!stale) {
    return false;
  }

  // Takeover: rename a fresh record over the stale claim, then confirm by
  // read-back that our rename won the race. Losing is fine — the winner is
  // doing the work.
  mine.lease_deadline_ms = now_wall_ms() + lease_.count();
  const util::fs::Status committed = util::fs::commit_file(
      path, format_claim(mine), hex64(token), util::fs::sites::kClaim);
  if (!committed.ok()) {
    ledger_fail(path, "claim takeover failed: " + committed.message());
  }
  const auto after = util::read_file(path);
  if (!after.has_value()) {
    return false;
  }
  const std::optional<ShardClaim> now_held = parse_claim(*after);
  const bool won = now_held.has_value() && now_held->token == token;
  if (won && reclaimed != nullptr) {
    *reclaimed = true;
  }
  return won;
}

void ClaimLedger::release_if_ours(std::size_t shard,
                                  std::uint64_t token) const {
  const std::optional<ShardClaim> held = read_claim(shard);
  if (held.has_value() && held->token == token) {
    util::fs::unlink_file(claim_path(shard), util::fs::sites::kClaim);
  }
}

// --- ShardedSweepDriver ---------------------------------------------------

ShardedSweepDriver::ShardedSweepDriver(ShardedSweepOptions options)
    : options_(std::move(options)) {
  VMCONS_REQUIRE(!options_.ledger_dir.empty(),
                 "ShardedSweepOptions::ledger_dir must be set");
  worker_id_ = options_.worker_id.empty()
                   ? "w" + std::to_string(static_cast<long long>(::getpid()))
                   : options_.worker_id;
  VMCONS_REQUIRE(filename_safe(worker_id_),
                 "worker id '" + worker_id_ +
                     "' must be non-empty and use only [A-Za-z0-9._-]");
}

WorkerReport ShardedSweepDriver::run_worker(const ScenarioStore& store) const {
  const ClaimLedger ledger(options_.ledger_dir, store.checksum(),
                           options_.lease, !options_.lease_only);
  const BatchEvaluator evaluator(options_.batch);
  WorkerReport report;
  auto& evaluated_counter =
      metrics::registry().counter(metrics::names::kDriverShardsEvaluated);
  auto& reclaimed_counter =
      metrics::registry().counter(metrics::names::kDriverLeasesReclaimed);
  auto& conflict_counter =
      metrics::registry().counter(metrics::names::kDriverClaimConflicts);

  const std::size_t shard_count = store.shard_count();
  // Workers start their scan at different offsets so N fresh workers fan
  // out over N different shards instead of queuing on claim 0. Claims
  // arbitrate correctness; the offset only reduces conflict churn.
  const std::size_t offset =
      shard_count == 0
          ? 0
          : fnv1a64(worker_id_.data(), worker_id_.size()) % shard_count;

  // Contention backoff: deterministic per worker (seeded by its id), so a
  // pinned-seed fault test replays the exact same wait schedule while real
  // fleets still desynchronize their polls.
  util::Backoff idle_backoff(
      util::Backoff::Options{
          .initial = std::chrono::duration_cast<std::chrono::microseconds>(
              options_.poll),
          .max = std::max(std::chrono::duration_cast<std::chrono::microseconds>(
                              32 * options_.poll),
                          std::chrono::microseconds(1))},
      fnv1a64(worker_id_.data(), worker_id_.size()));

  bool done = shard_count == 0;
  while (!done) {
    bool progressed = false;
    done = true;
    for (std::size_t k = 0; k < shard_count; ++k) {
      const std::size_t shard = (offset + k) % shard_count;
      if (options_.batch.control.stop_requested()) {
        break;
      }
      if (ledger.result_committed(shard)) {
        continue;
      }
      done = false;
      if (util::FaultInjector::enabled()) {
        util::FaultInjector::global().check(util::fault_sites::kDriverClaim,
                                            shard);
      }
      bool reclaimed = false;
      const std::uint64_t token = ClaimLedger::make_token();
      if (!ledger.try_claim(shard, worker_id_, token, &reclaimed)) {
        conflict_counter.add();
        continue;
      }
      // A peer may have committed between our result_committed check and
      // the claim win (it released its claim right after its commit, which
      // is what let our create succeed). Once we hold the claim no one else
      // can commit, so this re-check conclusively prevents re-evaluating an
      // already-committed shard.
      if (ledger.result_committed(shard)) {
        ledger.release_if_ours(shard, token);
        continue;
      }
      if (options_.on_claimed) {
        options_.on_claimed(shard);
      }
      // Kill-while-leasing test hook: fires with the claim durable but the
      // result uncommitted, so an injected error leaves exactly the stale
      // lease a kill -9 would.
      if (util::FaultInjector::enabled()) {
        util::FaultInjector::global().check(util::fault_sites::kDriverShard,
                                            shard);
      }

      const ShardInfo& info = store.shard(shard);
      BatchOutcome outcome;
      try {
        const ScenarioBatch batch = store.read_shard(shard);
        outcome = evaluator.evaluate_all(batch);
      } catch (...) {
        // kFailFast evaluation failure (or a corrupt shard read): release
        // the claim so a peer retries immediately, then propagate.
        ledger.release_if_ours(shard, token);
        throw;
      }
      if (outcome.cancelled || outcome.deadline_exceeded) {
        // Partial shard: never commit it. Release the claim so a peer can
        // take over immediately instead of waiting out the lease.
        ledger.release_if_ours(shard, token);
        break;
      }

      const std::uint64_t result_checksum =
          checksum_model_results(outcome.results, outcome.evaluated);
      std::string file;
      file.reserve(kResultHeaderBytes);
      {
        ByteWriter w(file);
        w.raw(kResultMagic, sizeof kResultMagic);
        w.u64(store.checksum());
        w.u64(shard);
        w.u64(info.scenario_begin);
        w.u64(info.scenarios);
        w.u64(result_checksum);
        const std::string payload = serialize_outcome(outcome);
        w.u64(payload.size());
        file += payload;
        ByteWriter t(file);
        t.u64(fnv1a64(payload.data(), payload.size()));
        t.raw(kResultEndMagic, sizeof kResultEndMagic);
      }
      // Durable commit point: write + fsync a temporary, rename onto the
      // result name, fsync the ledger directory. A duplicate commit after a
      // lease expired mid-evaluation overwrites with identical bytes (the
      // evaluation is deterministic), so last-writer-wins is safe. A failed
      // commit releases the claim and propagates — the shard stays
      // uncommitted for a peer rather than half-written.
      const util::fs::Status committed =
          util::fs::commit_file(ledger.result_path(shard), file, hex64(token),
                                util::fs::sites::kResultCommit);
      if (!committed.ok()) {
        ledger.release_if_ours(shard, token);
        ledger_fail(ledger.result_path(shard),
                    "result commit for shard " + std::to_string(shard) +
                        " failed: " + committed.message());
      }
      ledger.release_if_ours(shard, token);

      report.shards_evaluated += 1;
      report.leases_reclaimed += reclaimed ? 1 : 0;
      report.scenarios_evaluated += outcome.evaluated_count();
      evaluated_counter.add();
      if (reclaimed) {
        reclaimed_counter.add();
      }
      progressed = true;
    }
    if (options_.batch.control.stop_requested()) {
      break;
    }
    if (!done && !progressed) {
      // Every unfinished shard is held by a live peer: wait for commits or
      // lease expiries rather than spinning on the claim files, backing off
      // further each empty pass.
      std::this_thread::sleep_for(idle_backoff.next());
    } else {
      idle_backoff.reset();
    }
  }

  switch (options_.batch.control.stop_reason()) {
    case StopReason::kCancelled:
      report.cancelled = true;
      break;
    case StopReason::kDeadlineExceeded:
      report.deadline_exceeded = true;
      break;
    case StopReason::kNone:
      break;
  }
  return report;
}

void ShardedSweepDriver::write_worker_metrics() const {
  const ClaimLedger ledger(options_.ledger_dir, 0, options_.lease,
                           !options_.lease_only);
  const std::string path = ledger.worker_metrics_path(worker_id_);
  const util::fs::Status committed =
      util::fs::commit_file(path, metrics::to_json_string(), worker_id_,
                            util::fs::sites::kMetricsCommit);
  if (!committed.ok()) {
    ledger_fail(path, "metrics commit failed: " + committed.message());
  }
}

MergedSweep ShardedSweepDriver::merge(const ScenarioStore& store,
                                      const ShardSink& sink) const {
  const ClaimLedger ledger(options_.ledger_dir, store.checksum(),
                           options_.lease, !options_.lease_only);
  auto& merged_counter =
      metrics::registry().counter(metrics::names::kDriverShardsMerged);
  metrics::ScopedTimer merge_timer(
      metrics::registry().timer(metrics::names::kDriverMergeWall));

  MergedSweep merged;
  merged.report.shards_total = store.shard_count();
  merged.report.shard_checksums.assign(merged.report.shards_total, 0);

  for (std::size_t shard = 0; shard < store.shard_count(); ++shard) {
    const std::string path = ledger.result_path(shard);
    const std::string context =
        "result file '" + path + "' (shard " + std::to_string(shard) + ")";
    const auto contents = util::read_file(path);
    if (!contents.has_value()) {
      throw IoError(context + ": missing — worker crashed before commit? "
                              "re-run workers to fill the gap, then merge");
    }
    const std::string& file = *contents;
    if (file.size() < kResultHeaderBytes + 8 + sizeof(kResultEndMagic) ||
        std::memcmp(file.data(), kResultMagic, sizeof kResultMagic) != 0) {
      throw IoError(context + ": bad magic or truncated header (not a "
                              "sharded-sweep result file)");
    }
    ByteReader header(file, sizeof kResultMagic, file.size(), context);
    const std::uint64_t store_checksum = header.u64();
    const std::uint64_t shard_index = header.u64();
    const std::uint64_t scenario_begin = header.u64();
    const std::uint64_t scenarios = header.u64();
    const std::uint64_t result_checksum = header.u64();
    const std::uint64_t payload_bytes = header.u64();
    if (store_checksum != store.checksum()) {
      throw IoError(context + ": was evaluated against store checksum " +
                    hex64(store_checksum) + " but this store is " +
                    hex64(store.checksum()) +
                    " (mixed-store ledger; refusing to merge)");
    }
    const ShardInfo& info = store.shard(shard);
    if (shard_index != shard || scenario_begin != info.scenario_begin ||
        scenarios != info.scenarios) {
      throw IoError(context + ": header geometry (shard " +
                    std::to_string(shard_index) + ", first scenario " +
                    std::to_string(scenario_begin) + ", " +
                    std::to_string(scenarios) +
                    " scenarios) disagrees with the store footer");
    }
    const std::size_t payload_begin = kResultHeaderBytes;
    if (file.size() !=
        payload_begin + payload_bytes + 8 + sizeof(kResultEndMagic)) {
      throw IoError(context + ": file length disagrees with the declared "
                              "payload size (truncated or overgrown)");
    }
    if (std::memcmp(file.data() + file.size() - sizeof(kResultEndMagic),
                    kResultEndMagic, sizeof kResultEndMagic) != 0) {
      throw IoError(context + ": bad end magic (partial write?)");
    }
    ByteReader trailer(file, payload_begin + payload_bytes, file.size(),
                       context);
    const std::uint64_t payload_checksum = trailer.u64();
    const std::uint64_t actual_checksum =
        fnv1a64(file.data() + payload_begin, payload_bytes);
    if (payload_checksum != actual_checksum) {
      throw IoError(context + ": payload checksum mismatch (recorded " +
                    hex64(payload_checksum) + ", actual " +
                    hex64(actual_checksum) + "): corrupted result file");
    }

    ByteReader payload(file, payload_begin, payload_begin + payload_bytes,
                       context);
    BatchOutcome outcome = deserialize_outcome(
        payload, static_cast<std::size_t>(scenarios), context);
    // End-to-end digest: the deserialized results must reproduce the digest
    // the evaluating worker recorded, so a serialization bug (or payload
    // corruption that collides fnv) cannot smuggle altered numbers through.
    const std::uint64_t recomputed =
        checksum_model_results(outcome.results, outcome.evaluated);
    if (recomputed != result_checksum) {
      throw IoError(context + ": result digest mismatch (recorded " +
                    hex64(result_checksum) + ", deserialized " +
                    hex64(recomputed) + ")");
    }

    merged.report.shard_checksums[shard] = result_checksum;
    merged.report.scenarios_evaluated += outcome.evaluated_count();
    for (const CellFailure& failure : outcome.failures) {
      CellFailure global = failure;
      global.scenario_index += static_cast<std::size_t>(scenario_begin);
      merged.report.failures.push_back(std::move(global));
    }
    merged.report.shards_completed += 1;
    merged_counter.add();
    if (sink) {
      sink(ShardOutcome{shard, static_cast<std::size_t>(scenario_begin),
                        std::move(outcome), result_checksum});
    }
  }

  // Sum worker counters shipped as metrics::to_json files. Metrics are
  // telemetry: a malformed file fails loudly (parse_json throws) because a
  // silent partial sum would misreport the fleet's work.
  std::map<std::string, double> sums;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.ledger_dir, ec)) {
    const std::string name = entry.path().filename().string();
    // Exact suffix match: a crashed commit's leftover temporary is named
    // "<file>.tmp.<tag>" and must never be summed as a metrics file.
    constexpr std::string_view kSuffix = ".metrics.json";
    if (name.rfind("worker-", 0) != 0 || name.size() < kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const auto contents = util::read_file(entry.path().string());
    if (!contents.has_value()) {
      continue;
    }
    for (const auto& row : metrics::parse_json(*contents)) {
      sums[row.name] += row.value;
    }
    merged.metrics_files += 1;
  }
  merged.worker_metrics.assign(sums.begin(), sums.end());
  return merged;
}

}  // namespace vmcons::core
