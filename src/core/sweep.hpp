// Cartesian what-if grids for the ConsolidationPlanner.
//
// The paper's whole point is cheap offline what-if analysis: sweep the
// target loss B, the workload scale, and the consolidation density (VMs per
// server) and read off M vs N before deploying anything. SweepGrid
// enumerates such a grid deterministically — point(i) is a pure function of
// the index, independent of thread count — so ConsolidationPlanner::sweep
// can fan the points out over the shared thread pool and still return
// results in a stable, reproducible order.
//
// Axis semantics: an axis left empty contributes one point that inherits
// the planner's current setting (so a grid with only target_losses set is
// exactly the classic sweep_target_loss). The loss axis varies fastest,
// which keeps points that share an offered load adjacent — the order in
// which the memoized Erlang kernel reuses its recursion prefixes best.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/batch_eval.hpp"
#include "util/run_control.hpp"

namespace vmcons {
class ThreadPool;
namespace queueing {
class ErlangKernel;
}  // namespace queueing
}  // namespace vmcons

namespace vmcons::core {

/// One grid point; unset fields inherit the planner's configuration.
struct SweepPoint {
  std::size_t index = 0;
  std::optional<double> target_loss;
  std::optional<double> workload_scale;
  std::optional<unsigned> vms_per_server;
  /// Per-class owned counts applied to the planner's fleet via
  /// Fleet::with_counts (declaration order; ServerClass::kUnbounded allowed).
  std::optional<std::vector<std::uint64_t>> fleet_mix;
};

class SweepGrid {
 public:
  /// Target loss probabilities B, each in (0, 1).
  SweepGrid& target_losses(std::vector<double> losses);
  /// Multiplicative workload scales, each > 0.
  SweepGrid& workload_scales(std::vector<double> scales);
  /// Consolidation densities (VMs per server), each >= 1.
  SweepGrid& vms_per_server(std::vector<unsigned> vms);
  /// Fleet-mix axis: each entry is one vector of per-class owned counts
  /// (declaration order), applied via Fleet::with_counts at point_inputs
  /// time — so a mismatched length fails loudly there, naming both sizes.
  /// Every mix must have the same length; the planner it is swept against
  /// must carry a fleet of that many classes.
  SweepGrid& fleet_mixes(std::vector<std::vector<std::uint64_t>> mixes);

  /// Number of grid points: the product of the (non-empty) axis sizes.
  /// Throws NumericError (with the axis sizes in the message) if the product
  /// overflows std::size_t — a wrapped grid size would otherwise make a
  /// 10^7-point request silently iterate the wrong cell count.
  std::size_t size() const;

  /// The index-derived point: loss varies fastest, then VMs, then scale,
  /// then fleet mix (slowest — mixes change the staffing envelope most, so
  /// adjacent points keep sharing memoized Erlang prefixes).
  SweepPoint point(std::size_t index) const;

  /// All points in index order.
  std::vector<SweepPoint> points() const;

 private:
  std::vector<double> target_losses_;
  std::vector<double> workload_scales_;
  std::vector<unsigned> vms_per_server_;
  std::vector<std::vector<std::uint64_t>> fleet_mixes_;
};

/// Execution knobs for ConsolidationPlanner::sweep.
struct SweepOptions {
  /// Fan points out over a thread pool (results stay in index order and
  /// bit-identical to a serial run).
  bool parallel = true;
  /// Route Erlang-B evaluations through a memoized incremental kernel.
  /// The sweep is one batch, so it ends with one merge epoch: the kernel
  /// publishes every recursion prefix the grid touched into its lock-free
  /// snapshot tier.
  bool memoize = true;
  /// Kernel override (implies memoize); nullptr uses the process-wide
  /// ErlangKernel::shared() when memoize is set.
  queueing::ErlangKernel* kernel = nullptr;
  /// Pool to fan out over; nullptr uses ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Failure handling for degenerate grid cells: kFailFast propagates the
  /// first cell's exception (classic behavior); kQuarantine isolates
  /// failing cells as CellFailures so the rest of the grid survives.
  FailurePolicy policy = FailurePolicy::kFailFast;
  /// Cooperative cancellation + deadline for the whole sweep.
  RunControl control;
};

}  // namespace vmcons::core
