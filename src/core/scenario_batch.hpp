// Columnar (structure-of-arrays) storage for many model scenarios.
//
// The analytic model is cheap per point; the system's value at scale is
// answering *many* points at once — what-if grids, robustness envelopes,
// placement searches over thousands of services. Object-at-a-time
// evaluation re-materializes a vector<ServiceSpec> per grid cell and
// hammers the Erlang kernel with scalar queries. ScenarioBatch instead
// stores every scenario's inputs as contiguous columns:
//
//   per scenario   target loss B, resolved VM count v, the two PowerModels,
//                  the half-open row range of its services, and the
//                  half-open row range of its fleet classes;
//   per service    arrival rate lambda_i, native rate mu_ij per resource,
//   row            the clamped impact factor a_ij(v) per resource (evaluated
//                  per-column at append time via virt::fill_factors), the
//                  bottleneck native rate, and the effective consolidated
//                  rate mu_i'(v) — all flattened across scenarios;
//   per class      name, per-resource capacity multiplier, S_base/S_max
//   row            watts, the owned count, and the derived speed (worst
//                  resource capacity) — flattened across scenarios with
//                  class_begin offsets, mirroring the service-row scheme.
//                  Scenarios without a fleet own zero class rows.
//
// BatchEvaluator (batch_eval.hpp) runs the Fig. 4 staffing algorithm and
// the Eq. 8-14 derivations over whole batches of these columns; the
// single-scenario UtilityAnalyticModel::solve() is a thin view over a
// batch of one, so the two paths are bit-identical by construction.
//
// Derived columns follow the exact arithmetic of the scalar accessors they
// replace (same operand order, same clamping), which is what makes batch
// results interchangeable with scalar ones.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "datacenter/power.hpp"
#include "datacenter/resource.hpp"
#include "datacenter/server_class.hpp"

namespace vmcons::core {

class ScenarioBatch {
 public:
  /// Number of scenarios appended so far.
  std::size_t size() const noexcept { return target_loss_.size(); }
  bool empty() const noexcept { return target_loss_.empty(); }

  /// Total service rows across all scenarios (the length of the flat
  /// service-level columns).
  std::size_t service_rows() const noexcept { return arrival_rate_.size(); }

  /// Total fleet-class rows across all scenarios (the length of the flat
  /// class-level columns; scenarios without a fleet contribute none).
  std::size_t class_rows() const noexcept { return class_name_.size(); }

  /// Validates and appends one scenario (same preconditions as the
  /// UtilityAnalyticModel constructor), returning its index. Impact curves
  /// are evaluated per-column at the scenario's resolved VM count here, so
  /// evaluation never touches virt code.
  std::size_t append(const ModelInputs& inputs);

  /// Builds a batch from a span of inputs (append in order).
  static ScenarioBatch from_inputs(std::span<const ModelInputs> inputs);

  /// Raw column contents of a batch, mirroring the private members exactly.
  /// This is the serialization face used by core::ScenarioStore: a batch
  /// round-tripped through Columns is bit-identical to the original,
  /// including the derived columns (which are stored, not recomputed).
  struct Columns {
    std::vector<double> target_loss;
    std::vector<unsigned> vm_count;
    std::vector<dc::PowerModel> dedicated_power;
    std::vector<dc::PowerModel> consolidated_power;
    std::vector<std::size_t> row_begin;  ///< size()+1 offsets, row_begin[0]==0
    std::vector<double> arrival_rate;
    std::array<std::vector<double>, dc::kResourceCount> native_rate;
    std::array<std::vector<double>, dc::kResourceCount> impact;
    std::vector<double> bottleneck_rate;
    std::vector<double> effective_rate;
    std::vector<std::string> service_name;
    std::vector<std::size_t> class_begin;  ///< size()+1, class_begin[0]==0
    std::vector<std::string> class_name;
    std::array<std::vector<double>, dc::kResourceCount> class_capacity;
    std::vector<double> class_base_watts;
    std::vector<double> class_max_watts;
    std::vector<std::uint64_t> class_count;
    std::vector<double> class_speed;
  };

  /// Rebuilds a batch from raw columns (the deserialization path). Validates
  /// the structural invariants (offset monotonicity and column lengths) and
  /// the same per-scenario value preconditions append() enforces; throws
  /// InvalidArgument naming the violated invariant. Derived columns are
  /// adopted as stored so the round trip stays bit-identical.
  static ScenarioBatch from_columns(Columns&& columns);

  // --- per-scenario columns ----------------------------------------------
  double target_loss(std::size_t scenario) const {
    return target_loss_[scenario];
  }
  /// Resolved VM count: vms_per_server if set, else the service count.
  unsigned vm_count(std::size_t scenario) const { return vm_count_[scenario]; }
  std::span<const dc::PowerModel> dedicated_power() const {
    return dedicated_power_;
  }
  std::span<const dc::PowerModel> consolidated_power() const {
    return consolidated_power_;
  }

  /// Half-open row range [services_begin(s), services_end(s)) of scenario s
  /// in the flat service-level columns.
  std::size_t services_begin(std::size_t scenario) const {
    return row_begin_[scenario];
  }
  std::size_t services_end(std::size_t scenario) const {
    return row_begin_[scenario + 1];
  }
  std::size_t service_count(std::size_t scenario) const {
    return services_end(scenario) - services_begin(scenario);
  }

  // --- flat service-row columns ------------------------------------------
  std::span<const double> arrival_rate() const { return arrival_rate_; }
  std::span<const double> native_rate(dc::Resource resource) const {
    return native_rate_[static_cast<std::size_t>(resource)];
  }
  /// Clamped planning factor a_ij(v) of the owning scenario's VM count.
  std::span<const double> impact(dc::Resource resource) const {
    return impact_[static_cast<std::size_t>(resource)];
  }
  /// Smallest positive mu_ij (the dedicated bottleneck rate).
  std::span<const double> bottleneck_rate() const { return bottleneck_rate_; }
  /// min over demanded resources of mu_ij * a_ij(v) (Eq. 4 per service).
  std::span<const double> effective_rate() const { return effective_rate_; }
  const std::string& service_name(std::size_t row) const {
    return service_name_[row];
  }

  // --- flat fleet-class columns ------------------------------------------
  /// Half-open class-row range [classes_begin(s), classes_end(s)) of
  /// scenario s in the flat class-level columns (empty = no fleet).
  std::size_t classes_begin(std::size_t scenario) const {
    return class_begin_[scenario];
  }
  std::size_t classes_end(std::size_t scenario) const {
    return class_begin_[scenario + 1];
  }
  const std::string& class_name(std::size_t row) const {
    return class_name_[row];
  }
  /// Per-resource capacity multiplier relative to the reference server.
  std::span<const double> class_capacity(dc::Resource resource) const {
    return class_capacity_[static_cast<std::size_t>(resource)];
  }
  std::span<const double> class_base_watts() const { return class_base_watts_; }
  std::span<const double> class_max_watts() const { return class_max_watts_; }
  /// Owned count per class row (ServerClass::kUnbounded = unconstrained).
  std::span<const std::uint64_t> class_available() const {
    return class_count_;
  }
  /// Derived reference-equivalents per server: min capacity over resources
  /// (ServerClass::speed(), stored at append so evaluation never recomputes).
  std::span<const double> class_speed() const { return class_speed_; }

 private:
  std::vector<double> target_loss_;
  std::vector<unsigned> vm_count_;
  std::vector<dc::PowerModel> dedicated_power_;
  std::vector<dc::PowerModel> consolidated_power_;
  std::vector<std::size_t> row_begin_{0};  ///< size() + 1 offsets

  std::vector<double> arrival_rate_;
  std::array<std::vector<double>, dc::kResourceCount> native_rate_;
  std::array<std::vector<double>, dc::kResourceCount> impact_;
  std::vector<double> bottleneck_rate_;
  std::vector<double> effective_rate_;
  std::vector<std::string> service_name_;

  std::vector<std::size_t> class_begin_{0};  ///< size() + 1 offsets
  std::vector<std::string> class_name_;
  std::array<std::vector<double>, dc::kResourceCount> class_capacity_;
  std::vector<double> class_base_watts_;
  std::vector<double> class_max_watts_;
  std::vector<std::uint64_t> class_count_;
  std::vector<double> class_speed_;
};

}  // namespace vmcons::core
