#include "core/admission.hpp"

#include <sstream>

#include "util/error.hpp"

namespace vmcons::core {
namespace {

/// Bisection for the largest x in [0, hi] where predicate(x) holds;
/// predicate must be monotone (true below, false above). `context`
/// names the caller in the bracket-failure diagnostic. The RunControl is
/// polled before every predicate evaluation (each is a full model solve),
/// so a deadline bounds the whole search, spinning included.
template <typename Predicate>
double bisect_max(double hi_start, const std::string& context,
                  const RunControl& control, Predicate&& satisfied) {
  control.raise_if_stopped(context);
  if (!satisfied(1e-9)) {
    return 0.0;
  }
  double lo = 1e-9;
  double hi = hi_start;
  for (;;) {
    control.raise_if_stopped(context);
    if (!satisfied(hi)) {
      break;
    }
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12) {
      std::ostringstream why;
      why.precision(17);
      why << context << ": bisection failed to bracket: the loss target is "
          << "still met at the upper bound (bracket [" << lo << ", " << hi
          << "], search started at " << hi_start << ")";
      throw NumericError(why.str());
    }
  }
  for (int iteration = 0; iteration < 200; ++iteration) {
    control.raise_if_stopped(context);
    const double mid = 0.5 * (lo + hi);
    if (satisfied(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-9 * (1.0 + hi)) {
      break;
    }
  }
  return lo;
}

}  // namespace

double max_workload_scale(const ModelInputs& inputs, std::uint64_t servers,
                          const RunControl& control) {
  VMCONS_REQUIRE(servers >= 1, "need at least one server");
  UtilityAnalyticModel validator(inputs);  // validate inputs
  (void)validator;
  std::ostringstream context;
  context.precision(17);
  context << "max_workload_scale(target_loss = " << inputs.target_loss
          << ", servers = " << servers << ")";
  return bisect_max(1.0, context.str(), control, [&](double scale) {
    ModelInputs scaled = inputs;
    for (auto& service : scaled.services) {
      service.arrival_rate *= scale;
    }
    return UtilityAnalyticModel(scaled).consolidated_loss(servers) <=
           inputs.target_loss;
  });
}

double admission_headroom(const ModelInputs& inputs,
                          const dc::ServiceSpec& candidate,
                          std::uint64_t servers, const RunControl& control) {
  VMCONS_REQUIRE(servers >= 1, "need at least one server");
  VMCONS_REQUIRE(candidate.native_rates.any_positive(),
                 "candidate service demands no resource");
  // Existing pool must already meet the target, else nothing is admissible.
  if (UtilityAnalyticModel(inputs).consolidated_loss(servers) >
      inputs.target_loss) {
    return 0.0;
  }
  const double hint = candidate.native_bottleneck_rate();
  std::ostringstream context;
  context.precision(17);
  context << "admission_headroom(candidate '" << candidate.name
          << "', target_loss = " << inputs.target_loss
          << ", servers = " << servers << ")";
  return bisect_max(hint, context.str(), control, [&](double rate) {
    ModelInputs grown = inputs;
    dc::ServiceSpec admitted = candidate;
    admitted.arrival_rate = rate;
    grown.services.push_back(std::move(admitted));
    // Keep the impact evaluation point consistent: one more VM per host.
    grown.vms_per_server = inputs.vms_per_server.value_or(
                               static_cast<unsigned>(inputs.services.size())) +
                           1;
    return UtilityAnalyticModel(grown).consolidated_loss(servers) <=
           inputs.target_loss;
  });
}

}  // namespace vmcons::core
