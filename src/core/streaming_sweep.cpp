#include "core/streaming_sweep.hpp"

#include <cerrno>
#include <charconv>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "core/planner.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"
#include "util/file_lock.hpp"
#include "util/fs.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {
namespace {

// Manifest schema (one CSV document per sweep). Records are line-oriented
// on purpose — failure messages are sanitized of newlines — so "last line
// has no trailing newline" is a reliable crash-truncation signal.
const std::vector<std::string> kManifestHeader = {
    "kind",           "shard",         "first_scenario",
    "scenarios",      "store_checksum", "result_checksum",
    "failure_index",  "failure_code",  "failure_message"};
constexpr std::size_t kManifestColumns = 9;

[[noreturn]] void manifest_fail(const std::string& path,
                                const std::string& what) {
  throw IoError("checkpoint manifest '" + path + "': " + what);
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << value;
  return out.str();
}

std::uint64_t parse_u64(const std::string& field, int base,
                        const std::string& path, const std::string& what) {
  std::uint64_t value = 0;
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, base);
  if (ec != std::errc{} || ptr != end || field.empty()) {
    manifest_fail(path, "unparseable " + what + " '" + field + "'");
  }
  return value;
}

std::string sanitize_message(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return message;
}

/// What the manifest says about one committed shard.
struct ManifestShard {
  std::uint64_t result_checksum = 0;
  // keyed by global scenario index: re-appended failure rows from a
  // re-evaluated shard dedupe here (deterministic runs repeat them exactly).
  std::map<std::size_t, CellFailure> failures;
};

/// Parsed manifest: committed shards plus the byte length of the valid
/// prefix (everything up to and including the last newline) so a resuming
/// writer can drop a crash-truncated trailing line before appending.
struct Manifest {
  std::map<std::size_t, ManifestShard> committed;
  std::uintmax_t valid_prefix_bytes = 0;
  bool has_header = false;
};

Manifest load_manifest(const std::string& path, const ScenarioStore& store) {
  Manifest manifest;
  std::string text;
  const util::fs::Status read =
      util::fs::read_file(path, text, util::fs::sites::kManifestOpen);
  if (read.err == ENOENT) {
    return manifest;  // no manifest yet: nothing committed
  }
  if (!read.ok()) {
    manifest_fail(path, "read failed after " + std::to_string(read.bytes) +
                            " bytes: " + read.message());
  }

  // A trailing line without '\n' is the footprint of a process killed
  // mid-append; drop it (losing at most that one record) rather than
  // parsing half a row.
  const std::size_t last_newline = text.rfind('\n');
  if (last_newline == std::string::npos) {
    return manifest;  // nothing ever fully committed, start from scratch
  }
  manifest.valid_prefix_bytes = last_newline + 1;

  // Uncommitted failure rows: a shard's failures only count once its own
  // `shard` row landed, so a crash between the two re-evaluates the shard.
  std::map<std::size_t, ManifestShard> pending;
  std::size_t pos = 0;
  bool header_seen = false;
  while (pos < manifest.valid_prefix_bytes) {
    std::size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> fields;
    try {
      fields = csv_parse_line(line);
    } catch (const Error& error) {
      manifest_fail(path, std::string("corrupted line: ") + error.what());
    }
    if (!header_seen) {
      if (fields != kManifestHeader) {
        manifest_fail(path, "unexpected header (not a sweep manifest)");
      }
      header_seen = true;
      continue;
    }
    if (fields.size() != kManifestColumns) {
      manifest_fail(path, "line has " + std::to_string(fields.size()) +
                              " fields, expected " +
                              std::to_string(kManifestColumns));
    }
    const std::string& kind = fields[0];
    const std::size_t shard = static_cast<std::size_t>(
        parse_u64(fields[1], 10, path, "shard index"));
    if (kind == "failure") {
      CellFailure failure;
      failure.scenario_index = static_cast<std::size_t>(
          parse_u64(fields[6], 10, path, "failure index"));
      failure.code = static_cast<ErrorCode>(
          parse_u64(fields[7], 10, path, "failure code"));
      failure.message = fields[8];
      pending[shard].failures.insert_or_assign(failure.scenario_index,
                                               std::move(failure));
    } else if (kind == "shard") {
      if (shard >= store.shard_count()) {
        manifest_fail(path, "records shard " + std::to_string(shard) +
                                " but the store has only " +
                                std::to_string(store.shard_count()));
      }
      const std::uint64_t store_checksum =
          parse_u64(fields[4], 16, path, "store checksum");
      if (store_checksum != store.checksum()) {
        manifest_fail(path,
                      "store checksum mismatch: the manifest checkpoints a "
                      "different store (refusing to resume)");
      }
      const ShardInfo& info = store.shard(shard);
      if (parse_u64(fields[2], 10, path, "first scenario") !=
              info.scenario_begin ||
          parse_u64(fields[3], 10, path, "scenario count") != info.scenarios) {
        manifest_fail(path, "shard " + std::to_string(shard) +
                                " geometry disagrees with the store footer");
      }
      ManifestShard committed = std::move(pending[shard]);
      pending.erase(shard);
      committed.result_checksum =
          parse_u64(fields[5], 16, path, "result checksum");
      manifest.committed.insert_or_assign(shard, std::move(committed));
    } else {
      manifest_fail(path, "unknown record kind '" + kind + "'");
    }
  }
  manifest.has_header = header_seen;
  return manifest;
}

void append_shard_records(CsvWriter& writer, std::size_t shard,
                          const ShardInfo& info, std::uint64_t store_checksum,
                          std::uint64_t result_checksum,
                          std::span<const CellFailure> failures,
                          std::size_t scenario_begin) {
  for (const CellFailure& failure : failures) {
    writer.row({std::string("failure"),
                static_cast<long long>(shard),
                static_cast<long long>(info.scenario_begin),
                static_cast<long long>(info.scenarios),
                std::string(),
                std::string(),
                static_cast<long long>(scenario_begin +
                                       failure.scenario_index),
                static_cast<long long>(static_cast<std::uint32_t>(
                    failure.code)),
                sanitize_message(failure.message)});
  }
  // The shard row is the commit point: failures above only become durable
  // when this row's newline hits the file.
  writer.row({std::string("shard"),
              static_cast<long long>(shard),
              static_cast<long long>(info.scenario_begin),
              static_cast<long long>(info.scenarios),
              hex64(store_checksum),
              hex64(result_checksum),
              0LL,
              0LL,
              std::string()});
}

}  // namespace

ScenarioStoreWriter::Summary write_sweep_store(
    const ConsolidationPlanner& planner, const SweepGrid& grid,
    const std::string& path, std::size_t shard_size,
    const RunControl& control) {
  ScenarioStoreWriter writer(path, shard_size);
  const std::size_t points = grid.size();
  for (std::size_t i = 0; i < points; ++i) {
    if (i % shard_size == 0) {
      control.raise_if_stopped("write_sweep_store");
    }
    writer.append(planner.point_inputs(grid.point(i)));
  }
  return writer.finish();
}

std::uint64_t checksum_model_results(std::span<const ModelResult> results,
                                     std::span<const std::uint8_t> evaluated) {
  VMCONS_REQUIRE(results.size() == evaluated.size(),
                 "results and evaluated flags must have the same length");
  std::uint64_t hash = fnv1a64(nullptr, 0);
  const auto mix = [&hash](const void* data, std::size_t bytes) {
    hash = fnv1a64(data, bytes, hash);
  };
  const auto mix_f64 = [&mix](double value) { mix(&value, sizeof value); };
  const auto mix_u64 = [&mix](std::uint64_t value) {
    mix(&value, sizeof value);
  };
  for (std::size_t i = 0; i < results.size(); ++i) {
    mix_u64(evaluated[i]);
    if (!evaluated[i]) {
      continue;
    }
    const ModelResult& result = results[i];
    mix_u64(result.dedicated.size());
    for (const ServicePlan& plan : result.dedicated) {
      mix_u64(plan.name.size());
      mix(plan.name.data(), plan.name.size());
      for (const dc::Resource resource : dc::all_resources()) {
        mix_f64(plan.offered_load[resource]);
      }
      for (const std::uint64_t servers : plan.servers_per_resource) {
        mix_u64(servers);
      }
      mix_u64(plan.servers);
      mix_f64(plan.blocking);
    }
    mix_u64(result.dedicated_servers);
    for (const ConsolidatedResourcePlan& plan : result.consolidated) {
      mix_u64(static_cast<std::uint64_t>(plan.resource));
      mix_f64(plan.merged_arrival_rate);
      mix_f64(plan.effective_service_rate);
      mix_f64(plan.offered_load);
      mix_u64(plan.servers);
      mix_u64(plan.demanded ? 1 : 0);
    }
    mix_u64(result.consolidated_servers);
    mix_f64(result.consolidated_blocking);
    mix_f64(result.dedicated_utilization);
    mix_f64(result.consolidated_utilization);
    mix_f64(result.utilization_improvement);
    mix_f64(result.dedicated_power_watts);
    mix_f64(result.consolidated_power_watts);
    mix_f64(result.power_ratio);
    mix_f64(result.power_saving);
    mix_f64(result.infrastructure_saving);
  }
  return hash;
}

StreamingSweep::StreamingSweep(StreamingSweepOptions options)
    : options_(std::move(options)) {}

StreamingSweepReport StreamingSweep::run(const ScenarioStore& store,
                                         const ShardSink& sink) const {
  StreamingSweepReport report;
  report.shards_total = store.shard_count();
  report.shard_checksums.assign(report.shards_total, 0);

  const bool checkpointing = !options_.checkpoint_path.empty();

  // The manifest assumes a single writer: two sweeps appending to the same
  // checkpoint would interleave rows and corrupt both runs' resume state.
  // An exclusive pid lock makes the second sweep fail fast and loudly; a
  // lock left by a crashed sweep (dead pid) is detected as stale and taken
  // over, so a kill-and-resume cycle never wedges on its own leftovers.
  std::optional<util::PidLockFile> manifest_lock;
  if (checkpointing) {
    manifest_lock.emplace(options_.checkpoint_path + ".lock",
                          "checkpoint manifest '" + options_.checkpoint_path +
                              "'");
  }

  Manifest manifest;
  if (checkpointing && options_.resume) {
    manifest = load_manifest(options_.checkpoint_path, store);
  }

  // Durable manifest writer: rows go through util::fs (site
  // fs.manifest.append) so every append is checked, and commit() fsyncs —
  // the per-shard fsync is what turns the shard row into a real commit
  // point that survives power loss, not just a process kill.
  util::fs::File manifest_file;
  CsvWriter writer(manifest_file, util::fs::sites::kManifestAppend);
  if (checkpointing) {
    if (manifest.has_header) {
      // Appending: first drop the crash-truncated tail (if any), then adopt
      // the existing header so new records extend the same document.
      const util::fs::Status truncated = util::fs::truncate_file(
          options_.checkpoint_path, manifest.valid_prefix_bytes,
          util::fs::sites::kManifestOpen);
      if (!truncated.ok()) {
        manifest_fail(options_.checkpoint_path,
                      "cannot drop the torn tail at byte " +
                          std::to_string(manifest.valid_prefix_bytes) + ": " +
                          truncated.message());
      }
      const util::fs::Status opened = util::fs::open_append(
          options_.checkpoint_path, util::fs::sites::kManifestOpen,
          manifest_file);
      if (!opened.ok()) {
        manifest_fail(options_.checkpoint_path,
                      "cannot open for appending: " + opened.message());
      }
      writer.continue_rows(kManifestColumns);
    } else {
      const util::fs::Status opened = util::fs::create_truncate(
          options_.checkpoint_path, util::fs::sites::kManifestOpen,
          manifest_file);
      if (!opened.ok()) {
        manifest_fail(options_.checkpoint_path,
                      "cannot open for writing: " + opened.message());
      }
      writer.header(kManifestHeader);
      writer.commit();
    }
  }

  BatchEvaluator evaluator(options_.batch);
  auto& resumed_counter =
      metrics::registry().counter(metrics::names::kSweepShardsResumed);
  auto& completed_counter =
      metrics::registry().counter(metrics::names::kSweepShardsCompleted);

  for (std::size_t shard = 0; shard < report.shards_total; ++shard) {
    if (const auto it = manifest.committed.find(shard);
        it != manifest.committed.end()) {
      // Committed by an earlier run: restore its report entries without
      // touching the store.
      const ShardInfo& info = store.shard(shard);
      report.shard_checksums[shard] = it->second.result_checksum;
      report.scenarios_evaluated +=
          info.scenarios - it->second.failures.size();
      for (const auto& [global_index, failure] : it->second.failures) {
        report.failures.push_back(failure);
      }
      ++report.shards_resumed;
      resumed_counter.add();
      continue;
    }

    if (options_.batch.control.stop_requested()) {
      break;
    }
    // Kill-and-resume test hook: fires with the global shard index, outside
    // the evaluator's quarantine, so an injected error escapes run() with
    // every earlier shard already committed — exactly like a process kill.
    if (util::FaultInjector::enabled()) {
      util::FaultInjector::global().check(util::fault_sites::kSweepShard,
                                          shard);
    }

    const ShardInfo& info = store.shard(shard);
    const ScenarioBatch batch = store.read_shard(shard);
    BatchOutcome outcome = evaluator.evaluate_all(batch);
    if (outcome.cancelled || outcome.deadline_exceeded) {
      // The shard is partial: do not commit it, do not deliver it. The next
      // run re-evaluates it from the store.
      break;
    }

    const std::uint64_t result_checksum =
        checksum_model_results(outcome.results, outcome.evaluated);
    report.shard_checksums[shard] = result_checksum;
    report.scenarios_evaluated += outcome.evaluated_count();
    const std::size_t scenario_begin =
        static_cast<std::size_t>(info.scenario_begin);
    for (const CellFailure& failure : outcome.failures) {
      CellFailure global = failure;
      global.scenario_index += scenario_begin;
      report.failures.push_back(std::move(global));
    }

    if (checkpointing) {
      try {
        append_shard_records(writer, shard, info, store.checksum(),
                             result_checksum, outcome.failures,
                             scenario_begin);
        // fsync: the shard row only counts as committed once it is durable.
        writer.commit();
      } catch (const IoError& error) {
        manifest_fail(options_.checkpoint_path,
                      "write failed while committing shard " +
                          std::to_string(shard) + ": " + error.what());
      }
      // Progress point: keep the manifest lock fresh so remote hosts never
      // see a live single-writer as lease-stale.
      manifest_lock->refresh();
    }
    ++report.shards_completed;
    completed_counter.add();
    if (sink) {
      sink(ShardOutcome{shard, scenario_begin, std::move(outcome),
                        result_checksum});
    }
  }

  switch (options_.batch.control.stop_reason()) {
    case StopReason::kCancelled:
      report.cancelled = true;
      break;
    case StopReason::kDeadlineExceeded:
      report.deadline_exceeded = true;
      break;
    case StopReason::kNone:
      break;
  }
  return report;
}

}  // namespace vmcons::core
