// Out-of-core scenario storage: ScenarioBatch contents as a chunked
// columnar file.
//
// The columnar batch stack (scenario_batch.hpp / batch_eval.hpp) is
// RAM-bound: a 10^6-10^7-cell what-if grid does not fit as one in-memory
// ScenarioBatch, and a sweep that dies at cell 900k restarts from zero.
// ScenarioStore fixes the first half of that (streaming_sweep.hpp fixes the
// second): scenarios are written through a ScenarioStoreWriter into
// fixed-size *shards* — each shard is one ScenarioBatch's columns,
// serialized contiguously — followed by a footer of per-shard
// {offset, bytes, scenario counts, checksum} records and a fixed-size
// trailer locating the footer. A reader then materializes any single shard
// as a ScenarioBatch without touching the rest of the file, so the working
// set of a streaming sweep is one shard, independent of the store size.
//
// Integrity is end-to-end: every shard payload carries an FNV-1a checksum
// in the footer, the footer itself is checksummed from the trailer, and a
// file missing its trailer (a crashed writer) is rejected at open. The
// format is host-endian — a cache/checkpoint format for one machine, not a
// portable interchange format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario_batch.hpp"
#include "util/fs.hpp"

namespace vmcons::core {

/// FNV-1a 64-bit over a byte range. Pass a previous digest as `seed` to
/// chain incremental updates; the default seed is the FNV offset basis.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Location + integrity record of one shard, as stored in the footer.
struct ShardInfo {
  std::uint64_t offset = 0;         ///< payload start, bytes from file begin
  std::uint64_t bytes = 0;          ///< payload length
  std::uint64_t scenarios = 0;      ///< scenario count in this shard
  std::uint64_t service_rows = 0;   ///< flat service rows in this shard
  std::uint64_t checksum = 0;       ///< fnv1a64 of the payload bytes
  std::uint64_t scenario_begin = 0; ///< global index of the first scenario
};

/// Streams scenarios into a store file, flushing a shard every `shard_size`
/// appends. Memory high-water mark is one shard's ScenarioBatch regardless
/// of how many scenarios pass through. All I/O goes through util::fs (sites
/// fs.store.open / fs.store.shard / fs.store.finish): every write is
/// checked at the call that issued it, and a failure raises IoError naming
/// the path, the shard index, and the errno. The file is only valid once
/// finish() has written the footer and trailer; finish() fsyncs the payload
/// and footer *before* the trailer lands and fsyncs again after, so a file
/// whose trailer validates is durable end to end — the trailer is the
/// commit point. A writer destroyed early (or crashed mid-write) leaves a
/// trailerless file every ScenarioStore constructor rejects.
class ScenarioStoreWriter {
 public:
  ScenarioStoreWriter(std::string path, std::size_t shard_size);
  ~ScenarioStoreWriter();

  ScenarioStoreWriter(const ScenarioStoreWriter&) = delete;
  ScenarioStoreWriter& operator=(const ScenarioStoreWriter&) = delete;

  /// Validates and buffers one scenario (ScenarioBatch::append semantics),
  /// returning its global index; flushes a shard when the buffer is full.
  std::size_t append(const ModelInputs& inputs);

  /// What finish() wrote, in the units resume logic needs.
  struct Summary {
    std::uint64_t scenarios = 0;
    std::uint64_t shards = 0;
    std::uint64_t checksum = 0;  ///< footer checksum = the store's identity
  };

  /// Flushes the partial shard, writes the footer + trailer (with the
  /// fsync-before-trailer ordering described above), and closes the file.
  /// Must be called exactly once; append() is invalid afterwards.
  Summary finish();

 private:
  /// Checked write at `site`; on failure marks the writer broken and throws
  /// IoError naming path, current shard, and errno.
  void write_checked(const void* data, std::size_t bytes,
                     std::string_view site);
  void flush_shard();

  std::string path_;
  util::fs::File file_;
  std::uint64_t offset_ = 0;  ///< bytes written so far = next write offset
  std::size_t shard_size_;
  ScenarioBatch buffer_;
  std::vector<ShardInfo> shards_;
  std::uint64_t scenario_count_ = 0;
  bool finished_ = false;
  bool broken_ = false;  ///< a write failed; further use is invalid
};

/// Read face: opens a finished store, validates trailer + footer, and
/// materializes single shards as ScenarioBatches on demand.
///
/// Shard reads are *positional* (pread on one file descriptor held for the
/// store's lifetime): there is no shared file offset to race on, so any
/// number of threads in one process — and any number of processes opening
/// the same store — can call read_shard concurrently. Every read failure
/// and checksum mismatch names the store path and the shard index, so a
/// worker's error report identifies the exact corrupt region.
class ScenarioStore {
 public:
  /// Opens and validates the file's trailer and footer (magic, version,
  /// checksum, offset sanity). Throws IoError naming the defect on any
  /// truncation or corruption; a store that opens is safe to iterate.
  explicit ScenarioStore(std::string path);
  ~ScenarioStore();

  ScenarioStore(const ScenarioStore&) = delete;
  ScenarioStore& operator=(const ScenarioStore&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::uint64_t scenario_count() const noexcept { return scenario_count_; }
  const ShardInfo& shard(std::size_t index) const;
  const std::string& path() const noexcept { return path_; }

  /// Footer checksum: identifies this store's exact contents, so a
  /// checkpoint manifest can refuse to resume against a different store.
  std::uint64_t checksum() const noexcept { return checksum_; }

  /// Reads, checksum-verifies, and deserializes one shard via a positional
  /// read (safe to call concurrently from any number of threads). Throws
  /// IoError naming the store path and shard index if the payload fails its
  /// footer checksum or is structurally truncated.
  ScenarioBatch read_shard(std::size_t index) const;

  /// On-disk format version the file was written with (new stores write
  /// version 2, which appends fleet-class columns; version 1 still reads).
  std::uint32_t format_version() const noexcept { return version_; }

 private:
  std::string path_;
  std::vector<ShardInfo> shards_;
  std::uint64_t scenario_count_ = 0;
  std::uint64_t checksum_ = 0;
  std::uint32_t version_ = 0;
  /// Read-only descriptor shared by every read_shard call; positional reads
  /// (fs::pread_all at fs.store.read) keep concurrent readers from racing
  /// on a file offset.
  util::fs::File file_;
};

}  // namespace vmcons::core
