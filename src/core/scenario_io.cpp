#include "core/scenario_io.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

struct ResourceKey {
  dc::Resource resource;
  const char* rate_key;
  const char* impact_key;
};

constexpr ResourceKey kResourceKeys[] = {
    {dc::Resource::kCpu, "cpu_rate", "cpu_impact"},
    {dc::Resource::kDiskIo, "disk_rate", "disk_impact"},
    {dc::Resource::kMemory, "memory_rate", "memory_impact"},
    {dc::Resource::kNetwork, "network_rate", "network_impact"},
};

/// "service 'web': cpu_impact = 1.5" — the shared prefix of every
/// field-level validation error, so users can find the offending line.
std::string field_value(const std::string& service, const char* field,
                        double value) {
  std::ostringstream out;
  out.precision(17);
  out << "service '" << service << "': " << field << " = " << value;
  return out.str();
}

/// "[power]: base_watts = inf" — the section-level analogue of field_value
/// for keys that do not belong to a [service].
std::string section_field_value(const char* section, const char* field,
                                double value) {
  std::ostringstream out;
  out.precision(17);
  out << "[" << section << "]: " << field << " = " << value;
  return out.str();
}

constexpr const char* kCapacityKeys[dc::kResourceCount] = {
    "cpu_capacity", "disk_capacity", "memory_capacity", "network_capacity"};

/// Parses one `[class.NAME]` section into a ServerClass. Every field error
/// names the section and the key ("[class.old-gen]: cpu_capacity = -1 ...")
/// so operators can find the offending line; structural validation
/// (positive finite capacities, max_watts >= base_watts) is re-checked by
/// Fleet::add with class-naming messages.
dc::ServerClass parse_server_class(const IniSection& section,
                                   const std::string& class_name) {
  const std::string label = "[" + section.name + "]";
  dc::ServerClass server_class;
  server_class.name = class_name;

  const double uniform = section.get_double("capacity", 1.0);
  VMCONS_REQUIRE(std::isfinite(uniform) && uniform > 0.0,
                 label + ": capacity = " + std::to_string(uniform) +
                     " must be finite and > 0 (relative to the reference "
                     "server)");
  for (const dc::Resource resource : dc::all_resources()) {
    const char* key = kCapacityKeys[static_cast<std::size_t>(resource)];
    const double capacity = section.get_double(key, uniform);
    VMCONS_REQUIRE(std::isfinite(capacity) && capacity > 0.0,
                   label + ": " + key + " = " + std::to_string(capacity) +
                       " must be finite and > 0");
    server_class.capacity[resource] = capacity;
  }

  const dc::PowerModel defaults;
  const double base = section.get_double("base_watts", defaults.base_watts);
  const double max = section.get_double("max_watts", defaults.max_watts);
  VMCONS_REQUIRE(std::isfinite(base) && base > 0.0,
                 section_field_value(section.name.c_str(), "base_watts",
                                     base) +
                     " must be finite and > 0");
  VMCONS_REQUIRE(std::isfinite(max),
                 section_field_value(section.name.c_str(), "max_watts", max) +
                     " must be finite");
  VMCONS_REQUIRE(max >= base,
                 section_field_value(section.name.c_str(), "max_watts", max) +
                     " must be >= base_watts");
  server_class.power.base_watts = base;
  server_class.power.max_watts = max;

  if (section.has("count")) {
    const long long count = section.get_int("count", 0);
    VMCONS_REQUIRE(count >= 0,
                   label + ": count = " + std::to_string(count) +
                       " must be >= 0 (omit the key for an unbounded class)");
    server_class.count = static_cast<std::uint64_t>(count);
  }
  return server_class;
}

dc::ServiceSpec parse_service(const IniSection& section) {
  dc::ServiceSpec spec;
  spec.name = section.get("name", "service");
  for (const auto& key : kResourceKeys) {
    const double rate = section.get_double(key.rate_key, 0.0);
    // NaN/inf rates would propagate silently through the Erlang recursion
    // (every comparison against a target is false for NaN), so they are
    // rejected here at the boundary, before any model code runs.
    VMCONS_REQUIRE(std::isfinite(rate),
                   field_value(spec.name, key.rate_key, rate) +
                       " must be finite");
    VMCONS_REQUIRE(rate >= 0.0,
                   field_value(spec.name, key.rate_key, rate) +
                       " must be >= 0 (omit the key for no demand)");
    if (rate > 0.0) {
      const double impact = section.get_double(key.impact_key, 1.0);
      VMCONS_REQUIRE(std::isfinite(impact),
                     field_value(spec.name, key.impact_key, impact) +
                         " must be finite");
      VMCONS_REQUIRE(impact > 0.0 && impact <= 1.0,
                     field_value(spec.name, key.impact_key, impact) +
                         " must be in (0, 1]");
      spec.demand(key.resource, rate, virt::Impact::constant(impact));
    }
  }
  VMCONS_REQUIRE(spec.native_rates.any_positive(),
                 "service '" + spec.name +
                     "' declares no resource rates: set at least one of "
                     "cpu_rate, disk_rate, memory_rate, network_rate");
  return spec;
}

}  // namespace

ModelInputs scenario_inputs(const IniDocument& document) {
  ModelInputs inputs;
  if (const IniSection* plan = document.first("plan")) {
    inputs.target_loss = plan->get_double("target_loss", 0.01);
    VMCONS_REQUIRE(std::isfinite(inputs.target_loss),
                   section_field_value("plan", "target_loss",
                                       inputs.target_loss) +
                       " must be finite");
    const long long vms = plan->get_int("vms_per_server", 0);
    if (vms > 0) {
      inputs.vms_per_server = static_cast<unsigned>(vms);
    }
  }
  if (const IniSection* power = document.first("power")) {
    const dc::PowerModel defaults;
    const double base = power->get_double("base_watts", defaults.base_watts);
    const double max = power->get_double("max_watts", defaults.max_watts);
    VMCONS_REQUIRE(std::isfinite(base),
                   section_field_value("power", "base_watts", base) +
                       " must be finite");
    VMCONS_REQUIRE(std::isfinite(max),
                   section_field_value("power", "max_watts", max) +
                       " must be finite");
    VMCONS_REQUIRE(base > 0.0,
                   section_field_value("power", "base_watts", base) +
                       " must be > 0");
    VMCONS_REQUIRE(max >= base,
                   section_field_value("power", "max_watts", max) +
                       " must be >= base_watts");
    // One testbed wattage pair drives both deployments; the platform
    // deltas (idle/dynamic Xen factors) stay inside PowerModel::watts.
    inputs.dedicated_power.base_watts = base;
    inputs.dedicated_power.max_watts = max;
    inputs.consolidated_power.base_watts = base;
    inputs.consolidated_power.max_watts = max;
  }
  // Heterogeneous fleet: one [class.NAME] section per server class, in
  // declaration order. Fleet::add rejects duplicates loudly.
  constexpr const char* kClassPrefix = "class.";
  for (const IniSection& section : document.sections) {
    if (section.name.rfind(kClassPrefix, 0) != 0) {
      continue;
    }
    const std::string class_name =
        section.name.substr(std::string(kClassPrefix).size());
    VMCONS_REQUIRE(!class_name.empty(),
                   "[" + section.name +
                       "]: section header needs a class name after 'class.'");
    inputs.fleet.add(parse_server_class(section, class_name));
  }
  const auto services = document.all("service");
  VMCONS_REQUIRE(!services.empty(), "scenario declares no [service] sections");
  for (const IniSection* section : services) {
    dc::ServiceSpec spec = parse_service(*section);
    const double arrival = section->get_double("arrival_rate", 0.0);
    VMCONS_REQUIRE(std::isfinite(arrival),
                   field_value(spec.name, "arrival_rate", arrival) +
                       " must be finite");
    const long long dedicated = section->get_int("dedicated_servers", 0);
    if (arrival > 0.0) {
      spec.arrival_rate = arrival;
    } else if (dedicated > 0) {
      spec.arrival_rate = intensive_workload(
          spec, static_cast<std::uint64_t>(dedicated), inputs.target_loss);
    } else {
      std::ostringstream why;
      why.precision(17);
      why << "service '" << spec.name
          << "': set arrival_rate or dedicated_servers to a positive value";
      if (arrival != 0.0) {
        why << " (got arrival_rate = " << arrival << ")";
      }
      if (dedicated != 0) {
        why << " (got dedicated_servers = " << dedicated << ")";
      }
      throw InvalidArgument(why.str());
    }
    inputs.services.push_back(std::move(spec));
  }
  return inputs;
}

ConsolidationPlanner scenario_planner(const IniDocument& document) {
  const ModelInputs inputs = scenario_inputs(document);
  ConsolidationPlanner planner;
  planner.set_target_loss(inputs.target_loss);
  if (inputs.vms_per_server) {
    planner.set_vms_per_server(*inputs.vms_per_server);
  }
  if (!inputs.fleet.empty()) {
    planner.set_fleet(inputs.fleet);
  }
  for (const auto& service : inputs.services) {
    planner.add_service(service);
  }
  for (const IniSection* section : document.all("server_class")) {
    ServerClass server_class;
    server_class.name = section->get("name", "class");
    server_class.capacity_factor = section->get_double("capacity", 1.0);
    server_class.available =
        static_cast<unsigned>(section->get_int("available", 0));
    planner.add_server_class(std::move(server_class));
  }
  return planner;
}

ConsolidationPlanner load_scenario(const std::string& path) {
  return scenario_planner(ini_parse_file(path));
}

std::string scenario_to_ini(const ModelInputs& inputs) {
  std::ostringstream out;
  out.precision(17);  // lossless double round-trip
  out << "[plan]\n";
  out << "target_loss = " << inputs.target_loss << "\n";
  if (inputs.vms_per_server) {
    out << "vms_per_server = " << *inputs.vms_per_server << "\n";
  }
  for (const dc::ServerClass& server_class : inputs.fleet.classes()) {
    out << "\n[class." << server_class.name << "]\n";
    for (const dc::Resource resource : dc::all_resources()) {
      out << kCapacityKeys[static_cast<std::size_t>(resource)] << " = "
          << server_class.capacity[resource] << "\n";
    }
    out << "base_watts = " << server_class.power.base_watts << "\n";
    out << "max_watts = " << server_class.power.max_watts << "\n";
    if (server_class.count != dc::ServerClass::kUnbounded) {
      out << "count = " << server_class.count << "\n";
    }
  }
  const unsigned vm_count = inputs.vms_per_server.value_or(
      static_cast<unsigned>(inputs.services.size()));
  for (const auto& service : inputs.services) {
    out << "\n[service]\n";
    out << "name = " << service.name << "\n";
    out << "arrival_rate = " << service.arrival_rate << "\n";
    for (const auto& key : kResourceKeys) {
      const double rate = service.native_rates[key.resource];
      if (rate > 0.0) {
        out << key.rate_key << " = " << rate << "\n";
        out << key.impact_key << " = "
            << service.impact_factor(key.resource, vm_count) << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace vmcons::core
