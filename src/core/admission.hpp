// Admission headroom: "my consolidated pool is built — what more can it
// take?" The inverse question operators ask after the paper's planning
// question is answered. Both answers come from the same Erlang machinery,
// inverted over the workload instead of the server count.
#pragma once

#include <cstdint>

#include "core/model.hpp"
#include "util/run_control.hpp"

namespace vmcons::core {

// Both searches are iterated bisections over full model solves; on a
// degenerate input the bracket can fail (NumericError, code kNumericError,
// message naming the caller and the bracket endpoints) or the fixed-point
// search can spin. The RunControl bounds the latter: its deadline is
// checked every bisection step, so a stuck search raises
// DeadlineExceededError (code kDeadlineExceeded) instead of hanging the
// admission path of a long-running host.

/// Largest uniform multiplier s such that scaling every service's arrival
/// rate by s keeps the consolidated loss at `servers` within the target.
/// Returns 0 if the pool misses the target already at scale -> 0.
double max_workload_scale(const ModelInputs& inputs, std::uint64_t servers,
                          const RunControl& control = {});

/// Largest arrival rate of `candidate` (its arrival_rate field is ignored)
/// that can be admitted alongside the existing services on `servers`
/// consolidated servers without violating the loss target. Returns 0 when
/// there is no headroom.
double admission_headroom(const ModelInputs& inputs,
                          const dc::ServiceSpec& candidate,
                          std::uint64_t servers,
                          const RunControl& control = {});

}  // namespace vmcons::core
