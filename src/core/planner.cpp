#include "core/planner.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vmcons::core {

ConsolidationPlanner& ConsolidationPlanner::set_target_loss(double b) {
  VMCONS_REQUIRE(b > 0.0 && b < 1.0, "target loss must be in (0, 1)");
  target_loss_ = b;
  return *this;
}

ConsolidationPlanner& ConsolidationPlanner::add_service(dc::ServiceSpec service) {
  services_.push_back(std::move(service));
  return *this;
}

ConsolidationPlanner& ConsolidationPlanner::set_vms_per_server(unsigned vms) {
  VMCONS_REQUIRE(vms >= 1, "need at least one VM per server");
  vms_per_server_ = vms;
  return *this;
}

ConsolidationPlanner& ConsolidationPlanner::add_server_class(
    ServerClass server_class) {
  VMCONS_REQUIRE(server_class.capacity_factor > 0.0,
                 "capacity factor must be positive");
  inventory_.push_back(std::move(server_class));
  return *this;
}

ConsolidationPlanner& ConsolidationPlanner::set_fleet(dc::Fleet fleet) {
  fleet_ = std::move(fleet);
  return *this;
}

ConsolidationPlanner& ConsolidationPlanner::scale_workloads(double factor) {
  VMCONS_REQUIRE(factor > 0.0, "workload scale must be positive");
  workload_scale_ *= factor;
  return *this;
}

ModelInputs ConsolidationPlanner::make_inputs() const {
  VMCONS_REQUIRE(!services_.empty(), "planner has no services");
  ModelInputs inputs;
  inputs.target_loss = target_loss_;
  inputs.services = services_;
  for (auto& service : inputs.services) {
    service.arrival_rate *= workload_scale_;
  }
  inputs.vms_per_server = vms_per_server_;
  inputs.fleet = fleet_;
  return inputs;
}

InventoryAssignment ConsolidationPlanner::assign(double normalized_servers) const {
  InventoryAssignment assignment;
  if (inventory_.empty()) {
    return assignment;
  }
  // Largest capacity first minimizes the machine count covering the
  // normalized requirement (greedy is optimal for the covering objective
  // when larger classes dominate smaller ones, which capacity factors do).
  std::vector<const ServerClass*> ordered;
  ordered.reserve(inventory_.size());
  for (const auto& server_class : inventory_) {
    ordered.push_back(&server_class);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ServerClass* a, const ServerClass* b) {
              return a->capacity_factor > b->capacity_factor;
            });
  double remaining = normalized_servers;
  for (const ServerClass* server_class : ordered) {
    if (remaining <= 0.0) {
      break;
    }
    const auto needed = static_cast<unsigned>(
        std::min<double>(server_class->available,
                         std::ceil(remaining / server_class->capacity_factor)));
    if (needed == 0) {
      continue;
    }
    assignment.picked.emplace_back(server_class->name, needed);
    assignment.normalized_capacity +=
        server_class->capacity_factor * static_cast<double>(needed);
    remaining -= server_class->capacity_factor * static_cast<double>(needed);
  }
  assignment.feasible = remaining <= 1e-9;
  return assignment;
}

PlanReport ConsolidationPlanner::plan() const { return plan_with(nullptr); }

PlanReport ConsolidationPlanner::plan_with(
    queueing::ErlangKernel* kernel) const {
  const ModelInputs inputs = make_inputs();
  UtilityAnalyticModel model(inputs);
  model.use_kernel(kernel);
  PlanReport report;
  report.model = model.solve();
  for (const auto& service : inputs.services) {
    report.arrival_rates.push_back(service.arrival_rate);
  }
  report.dedicated_assignment =
      assign(static_cast<double>(report.model.dedicated_servers));
  report.consolidated_assignment =
      assign(static_cast<double>(report.model.consolidated_servers));
  return report;
}

std::vector<PlanReport> ConsolidationPlanner::sweep_target_loss(
    const std::vector<double>& losses) const {
  SweepGrid grid;
  grid.target_losses(losses);
  std::vector<SweepCell> cells = sweep(grid);
  std::vector<PlanReport> reports;
  reports.reserve(cells.size());
  for (auto& cell : cells) {
    reports.push_back(std::move(cell.report));
  }
  return reports;
}

}  // namespace vmcons::core
