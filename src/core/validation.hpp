// Model-vs-simulation validation harness.
//
// The paper validates the model on its Rainbow/Xen testbed (Section IV-C2);
// we validate against the discrete-event simulator: solve the model, run
// replicated simulations of both deployments at the model's staffing, and
// compare loss probability, utilization, and power. This drives the
// Fig. 10/11 benches and the model-accuracy ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "datacenter/cluster.hpp"
#include "sim/replication.hpp"
#include "util/run_control.hpp"

namespace vmcons::core {

struct DeploymentMeasurement {
  std::uint64_t servers = 0;
  sim::ReplicatedEstimate loss;         ///< overall request-loss probability
  sim::ReplicatedEstimate utilization;  ///< mean busy fraction
  sim::ReplicatedEstimate power_watts;  ///< mean electrical power
  std::vector<sim::ReplicatedEstimate> per_service_loss;
  std::vector<sim::ReplicatedEstimate> per_service_throughput;
  std::vector<sim::ReplicatedEstimate> per_service_response;
};

struct ValidationReport {
  ModelResult model;
  DeploymentMeasurement dedicated;
  DeploymentMeasurement consolidated;

  /// |simulated - predicted| for the consolidated loss probability.
  double consolidated_loss_error() const;
  /// Simulated utilization improvement (consolidated / dedicated).
  double measured_utilization_improvement() const;
  /// Simulated power saving 1 - P_cons / P_ded.
  double measured_power_saving() const;
};

struct ValidationOptions {
  std::size_t replications = 8;
  std::uint64_t seed = 2009;  // CLUSTER 2009
  dc::ScenarioOptions scenario;
  /// Override the consolidated server count (0 = use the model's N).
  std::uint64_t consolidated_servers = 0;
  /// Override dedicated staffing (empty = use the model's per-service plan).
  std::vector<unsigned> dedicated_servers;
  /// Cooperative cancellation + deadline. Checked between scenarios (and
  /// inside the analytic batch); a stop raises CancelledError /
  /// DeadlineExceededError — validation has no partial-result story.
  RunControl control;
};

/// Solves the model for `inputs` and measures both deployments. A view
/// over validate_many with a batch of one.
ValidationReport validate(const ModelInputs& inputs,
                          const ValidationOptions& options = {});

/// Validates many scenarios: every model solution comes from one columnar
/// ScenarioBatch evaluated by the BatchEvaluator (bit-identical to
/// per-scenario solve()), then each deployment pair is simulated with the
/// same options. Reports are returned in input order.
std::vector<ValidationReport> validate_many(
    std::span<const ModelInputs> inputs,
    const ValidationOptions& options = {});

/// Measures one consolidated deployment (used for the Fig. 10 sweep over
/// candidate N values).
DeploymentMeasurement measure_consolidated(const std::vector<dc::ServiceSpec>& services,
                                           unsigned servers,
                                           const ValidationOptions& options);

/// Measures one dedicated deployment.
DeploymentMeasurement measure_dedicated(const std::vector<dc::ServiceSpec>& services,
                                        const std::vector<unsigned>& servers_per_service,
                                        const ValidationOptions& options);

}  // namespace vmcons::core
