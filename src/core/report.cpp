#include "core/report.hpp"

#include <sstream>

#include "util/ascii_table.hpp"
#include "util/csv.hpp"
#include "util/metrics.hpp"

namespace vmcons::core {

void print_model_result(std::ostream& out, const ModelResult& result) {
  AsciiTable dedicated;
  dedicated.set_header({"service", "rho_cpu", "rho_disk", "servers",
                        "blocking"});
  for (const auto& plan : result.dedicated) {
    dedicated.add_row(
        {plan.name,
         AsciiTable::format(plan.offered_load[dc::Resource::kCpu], 3),
         AsciiTable::format(plan.offered_load[dc::Resource::kDiskIo], 3),
         std::to_string(plan.servers), AsciiTable::format(plan.blocking, 5)});
  }
  dedicated.print(out, "dedicated staffing (per service)");

  AsciiTable consolidated;
  consolidated.set_header({"resource", "merged lambda", "effective mu",
                           "rho'", "servers"});
  for (const auto& plan : result.consolidated) {
    if (!plan.demanded) {
      continue;
    }
    consolidated.add_row(
        {std::string(dc::resource_name(plan.resource)),
         AsciiTable::format(plan.merged_arrival_rate, 2),
         AsciiTable::format(plan.effective_service_rate, 2),
         AsciiTable::format(plan.offered_load, 3),
         std::to_string(plan.servers)});
  }
  consolidated.print(out, "\nconsolidated staffing (per resource, Eq. 4-5)");

  if (result.fleet.planned) {
    AsciiTable fleet;
    fleet.set_header({"class", "speed", "available", "M_c", "N_c", "P_M (W)",
                      "P_N (W)"});
    for (const ClassAllocation& alloc : result.fleet.classes) {
      fleet.add_row(
          {alloc.name, AsciiTable::format(alloc.speed, 2),
           alloc.available == dc::ServerClass::kUnbounded
               ? std::string("unbounded")
               : std::to_string(alloc.available),
           std::to_string(alloc.dedicated_servers),
           std::to_string(alloc.consolidated_servers),
           AsciiTable::format(alloc.dedicated_power_watts, 1),
           AsciiTable::format(alloc.consolidated_power_watts, 1)});
    }
    fleet.print(out, "\nfleet allocation (per server class)");
    if (!result.fleet.dedicated_feasible) {
      out << "dedicated shortfall: "
          << AsciiTable::format(result.fleet.dedicated_shortfall, 2)
          << " reference-equivalents uncovered\n";
    }
    if (!result.fleet.consolidated_feasible) {
      out << "consolidated shortfall: "
          << AsciiTable::format(result.fleet.consolidated_shortfall, 2)
          << " reference-equivalents uncovered\n";
    }
  }

  out << '\n' << headline(result) << '\n';
  print_kv(out, "U_M", result.dedicated_utilization);
  print_kv(out, "U_N", result.consolidated_utilization);
  print_kv(out, "utilization improvement (x)", result.utilization_improvement, 2);
  print_kv(out, "P_M (W)", result.dedicated_power_watts, 1);
  print_kv(out, "P_N (W)", result.consolidated_power_watts, 1);
}

void print_validation_report(std::ostream& out,
                             const ValidationReport& report) {
  AsciiTable table;
  table.set_header({"metric", "model", "simulated", "ci half-width"});
  table.add_row({"consolidated loss",
                 AsciiTable::format(report.model.consolidated_blocking, 5),
                 AsciiTable::format(report.consolidated.loss.summary.mean(), 5),
                 AsciiTable::format(report.consolidated.loss.interval.half_width, 5)});
  table.add_row({"consolidated utilization",
                 AsciiTable::format(report.model.consolidated_utilization, 4),
                 AsciiTable::format(report.consolidated.utilization.summary.mean(), 4),
                 AsciiTable::format(report.consolidated.utilization.interval.half_width, 4)});
  table.add_row({"dedicated utilization",
                 AsciiTable::format(report.model.dedicated_utilization, 4),
                 AsciiTable::format(report.dedicated.utilization.summary.mean(), 4),
                 AsciiTable::format(report.dedicated.utilization.interval.half_width, 4)});
  table.add_row({"power saving",
                 AsciiTable::format(report.model.power_saving, 4),
                 AsciiTable::format(report.measured_power_saving(), 4), "-"});
  table.add_row({"utilization improvement (x)",
                 AsciiTable::format(report.model.utilization_improvement, 3),
                 AsciiTable::format(report.measured_utilization_improvement(), 3),
                 "-"});
  table.print(out, "model vs simulation");
}

void write_model_result_csv(std::ostream& out, const ModelResult& result) {
  CsvWriter writer(out);
  writer.header({"section", "name", "metric", "value"});
  for (const auto& plan : result.dedicated) {
    writer.row({std::string("dedicated"), plan.name, std::string("servers"),
                static_cast<long long>(plan.servers)});
    writer.row({std::string("dedicated"), plan.name, std::string("blocking"),
                plan.blocking});
  }
  for (const auto& plan : result.consolidated) {
    if (!plan.demanded) {
      continue;
    }
    const std::string name(dc::resource_name(plan.resource));
    writer.row({std::string("consolidated"), name, std::string("rho"),
                plan.offered_load});
    writer.row({std::string("consolidated"), name, std::string("servers"),
                static_cast<long long>(plan.servers)});
  }
  for (const ClassAllocation& alloc : result.fleet.classes) {
    writer.row({std::string("fleet"), alloc.name,
                std::string("dedicated_servers"),
                static_cast<long long>(alloc.dedicated_servers)});
    writer.row({std::string("fleet"), alloc.name,
                std::string("consolidated_servers"),
                static_cast<long long>(alloc.consolidated_servers)});
    writer.row({std::string("fleet"), alloc.name,
                std::string("dedicated_power_watts"),
                alloc.dedicated_power_watts});
    writer.row({std::string("fleet"), alloc.name,
                std::string("consolidated_power_watts"),
                alloc.consolidated_power_watts});
  }
  writer.row({std::string("summary"), std::string("M"), std::string("servers"),
              static_cast<long long>(result.dedicated_servers)});
  writer.row({std::string("summary"), std::string("N"), std::string("servers"),
              static_cast<long long>(result.consolidated_servers)});
  writer.row({std::string("summary"), std::string("power"),
              std::string("saving"), result.power_saving});
  writer.row({std::string("summary"), std::string("utilization"),
              std::string("improvement"), result.utilization_improvement});
}

void print_metrics(std::ostream& out) {
  AsciiTable table;
  table.set_header({"metric", "value"});
  for (const auto& row : metrics::registry().snapshot()) {
    table.add_row({row.name, AsciiTable::format(row.value, 3)});
  }
  table.print(out, "metrics");
}

void print_metrics_json(std::ostream& out) {
  metrics::to_json(out, metrics::registry().snapshot());
}

std::string headline(const ModelResult& result) {
  std::ostringstream out;
  out << "M=" << result.dedicated_servers << " -> N="
      << result.consolidated_servers << ", saves "
      << AsciiTable::format(result.infrastructure_saving * 100.0, 1)
      << "% servers, "
      << AsciiTable::format(result.power_saving * 100.0, 1) << "% power";
  return out.str();
}

}  // namespace vmcons::core
