#include "core/validation.hpp"

#include <cmath>

#include "core/batch_eval.hpp"
#include "core/scenario_batch.hpp"
#include "util/error.hpp"

namespace vmcons::core {
namespace {

sim::ReplicatedEstimate summarize(const std::vector<double>& values) {
  sim::ReplicatedEstimate estimate;
  for (const double value : values) {
    estimate.summary.add(value);
  }
  if (estimate.summary.count() >= 2) {
    estimate.interval = mean_confidence_interval(estimate.summary);
  } else {
    estimate.interval.mean = estimate.summary.mean();
    estimate.interval.lower = estimate.interval.upper = estimate.interval.mean;
  }
  return estimate;
}

DeploymentMeasurement aggregate(const std::vector<dc::PoolOutcome>& outcomes,
                                std::uint64_t servers) {
  VMCONS_ASSERT(!outcomes.empty());
  DeploymentMeasurement measurement;
  measurement.servers = servers;

  std::vector<double> losses;
  std::vector<double> utilizations;
  std::vector<double> powers;
  const std::size_t service_count = outcomes.front().services.size();
  std::vector<std::vector<double>> service_loss(service_count);
  std::vector<std::vector<double>> service_throughput(service_count);
  std::vector<std::vector<double>> service_response(service_count);

  for (const auto& outcome : outcomes) {
    losses.push_back(outcome.overall_loss());
    utilizations.push_back(outcome.mean_utilization);
    powers.push_back(outcome.mean_power_watts);
    for (std::size_t i = 0; i < service_count; ++i) {
      const auto& service = outcome.services[i];
      service_loss[i].push_back(service.loss_probability());
      service_throughput[i].push_back(service.throughput(outcome.measured_span));
      service_response[i].push_back(service.response_time.mean());
    }
  }

  measurement.loss = summarize(losses);
  measurement.utilization = summarize(utilizations);
  measurement.power_watts = summarize(powers);
  for (std::size_t i = 0; i < service_count; ++i) {
    measurement.per_service_loss.push_back(summarize(service_loss[i]));
    measurement.per_service_throughput.push_back(summarize(service_throughput[i]));
    measurement.per_service_response.push_back(summarize(service_response[i]));
  }
  return measurement;
}

}  // namespace

double ValidationReport::consolidated_loss_error() const {
  return std::abs(consolidated.loss.summary.mean() -
                  model.consolidated_blocking);
}

double ValidationReport::measured_utilization_improvement() const {
  const double dedicated_utilization = dedicated.utilization.summary.mean();
  if (dedicated_utilization <= 0.0) {
    return 0.0;
  }
  return consolidated.utilization.summary.mean() / dedicated_utilization;
}

double ValidationReport::measured_power_saving() const {
  const double dedicated_power = dedicated.power_watts.summary.mean();
  if (dedicated_power <= 0.0) {
    return 0.0;
  }
  return 1.0 - consolidated.power_watts.summary.mean() / dedicated_power;
}

DeploymentMeasurement measure_consolidated(
    const std::vector<dc::ServiceSpec>& services, unsigned servers,
    const ValidationOptions& options) {
  VMCONS_REQUIRE(servers >= 1, "need at least one consolidated server");
  const auto outcomes =
      sim::replicate(options.replications, options.seed,
                     [&](std::size_t, Rng& rng) {
                       return dc::simulate_consolidated(services, servers,
                                                        options.scenario, rng);
                     });
  return aggregate(outcomes, servers);
}

DeploymentMeasurement measure_dedicated(
    const std::vector<dc::ServiceSpec>& services,
    const std::vector<unsigned>& servers_per_service,
    const ValidationOptions& options) {
  std::uint64_t total = 0;
  for (const unsigned count : servers_per_service) {
    total += count;
  }
  const auto outcomes =
      sim::replicate(options.replications, options.seed + 1,
                     [&](std::size_t, Rng& rng) {
                       return dc::simulate_dedicated(
                           services, servers_per_service, options.scenario, rng);
                     });
  return aggregate(outcomes, total);
}

ValidationReport validate(const ModelInputs& inputs,
                          const ValidationOptions& options) {
  return std::move(validate_many(std::span(&inputs, 1), options).front());
}

std::vector<ValidationReport> validate_many(std::span<const ModelInputs> inputs,
                                            const ValidationOptions& options) {
  // Solve every scenario through one columnar batch; the simulated
  // measurements then run per scenario at the model's staffing. The batch
  // is its own merge epoch: by the time the simulation phase starts, every
  // Erlang prefix the analytic pass touched has been published to the
  // shared kernel's snapshot tier, so nothing below contends with the
  // simulation threads.
  const ScenarioBatch batch = ScenarioBatch::from_inputs(inputs);
  BatchOptions batch_options;
  batch_options.control = options.control;
  std::vector<ModelResult> solutions =
      BatchEvaluator(batch_options).evaluate(batch);

  std::vector<ValidationReport> reports(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    // The simulation phase dwarfs the analytic solve, so scenario
    // boundaries are the abort points: latency is one scenario's
    // replications.
    options.control.raise_if_stopped("validate_many (scenario " +
                                     std::to_string(i) + ")");
    ValidationReport& report = reports[i];
    report.model = std::move(solutions[i]);

    std::vector<unsigned> dedicated_staffing = options.dedicated_servers;
    if (dedicated_staffing.empty()) {
      for (const auto& plan : report.model.dedicated) {
        dedicated_staffing.push_back(static_cast<unsigned>(plan.servers));
      }
    }
    const auto consolidated_servers = static_cast<unsigned>(
        options.consolidated_servers != 0 ? options.consolidated_servers
                                          : report.model.consolidated_servers);

    report.dedicated =
        measure_dedicated(inputs[i].services, dedicated_staffing, options);
    report.consolidated =
        measure_consolidated(inputs[i].services, consolidated_servers, options);
  }
  return reports;
}

}  // namespace vmcons::core
