#include "core/accuracy.hpp"

#include "util/error.hpp"

namespace vmcons::core {

std::vector<queueing::LossClass> consolidated_loss_classes(
    const ModelInputs& inputs) {
  VMCONS_REQUIRE(!inputs.services.empty(), "no services");
  const unsigned vm_count = inputs.vms_per_server.value_or(
      static_cast<unsigned>(inputs.services.size()));
  std::vector<queueing::LossClass> classes;
  classes.reserve(inputs.services.size());
  for (const auto& service : inputs.services) {
    queueing::LossClass loss_class;
    loss_class.arrival_rate = service.arrival_rate;
    loss_class.service_rates.assign(dc::kResourceCount, 0.0);
    for (const dc::Resource resource : dc::all_resources()) {
      const double mu = service.native_rates[resource];
      if (mu > 0.0) {
        loss_class.service_rates[static_cast<std::size_t>(resource)] =
            mu * service.impact_factor(resource, vm_count);
      }
    }
    classes.push_back(std::move(loss_class));
  }
  return classes;
}

queueing::FixedPointResult reduced_load_consolidated_loss(
    const ModelInputs& inputs, std::uint64_t servers) {
  return queueing::reduced_load_blocking(consolidated_loss_classes(inputs),
                                         servers);
}

std::uint64_t reduced_load_consolidated_servers(const ModelInputs& inputs) {
  return queueing::reduced_load_capacity(consolidated_loss_classes(inputs),
                                         inputs.target_loss);
}

}  // namespace vmcons::core
