// Applications of the utility analytic model (Section III-B4).
//
// (1) Evaluating on-demand resource allocation algorithms: with the server
//     counts equalized (M = N), the ratio of (1 - B) in consolidated vs
//     dedicated deployments bounds the QoS (throughput) improvement any
//     allocation algorithm can deliver. The closer a real algorithm's
//     measured improvement comes to this bound, the better it is.
// (2) Evaluating virtualization products: the same ratio with every impact
//     factor forced to 1 bounds what a hypothetical zero-overhead
//     virtualization product could achieve.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"

namespace vmcons::core {

struct QosBound {
  std::uint64_t servers = 0;          ///< the equalized M = N
  double dedicated_loss = 0.0;        ///< B in the dedicated deployment
  double consolidated_loss = 0.0;     ///< B in the consolidated deployment
  double improvement = 0.0;           ///< (1-B_cons) / (1-B_ded)
};

/// The Section III-B4(1) bound: dedicated servers split
/// `servers_per_service` (summing to the total), consolidated gets the same
/// total. Returns the optimal throughput-improvement ratio an on-demand
/// allocation algorithm could reach.
QosBound allocation_qos_bound(const ModelInputs& inputs,
                              const std::vector<std::uint64_t>& servers_per_service);

/// The Section III-B4(2) bound: as above but with all impact factors a = 1,
/// bounding an ideal (zero-overhead) virtualization product.
QosBound virtualization_qos_bound(const ModelInputs& inputs,
                                  const std::vector<std::uint64_t>& servers_per_service);

/// Scores a measured allocation algorithm against the model bound:
/// measured_improvement / bound.improvement, in [0, ~1] (1 = optimal).
double allocation_algorithm_score(const QosBound& bound,
                                  double measured_improvement);

}  // namespace vmcons::core
