// Robust planning under parameter uncertainty.
//
// The paper motivates itself with the "performance unpredictability" that
// keeps operators away from consolidation: arrival rates are forecasts and
// impact factors are measurements, both noisy. This module propagates that
// uncertainty through the model by Monte Carlo: sample perturbed inputs,
// solve the (cheap) model for each, and report the distribution of the
// consolidated server count N — so the operator can provision the 95th
// percentile instead of the point estimate.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/model.hpp"
#include "util/rng.hpp"
#include "util/run_control.hpp"

namespace vmcons::core {

struct ParameterUncertainty {
  /// Coefficient of variation of each service's arrival-rate forecast
  /// (lognormal multiplicative noise).
  double arrival_cv = 0.15;
  /// Coefficient of variation of the serving-rate measurements.
  double service_cv = 0.05;
  /// Additive stddev on each impact factor (truncated to (0, 1]).
  double impact_sd = 0.05;
};

struct RobustPlan {
  /// Distribution of N over the Monte Carlo samples.
  std::map<std::uint64_t, std::size_t> n_histogram;
  double mean_n = 0.0;
  std::uint64_t point_estimate_n = 0;  ///< N from the unperturbed inputs
  std::uint64_t n_at_quantile = 0;     ///< smallest N covering `quantile`
  double quantile = 0.95;
  /// Probability that the point estimate under-provisions (N_sample > N_0).
  double underprovision_risk = 0.0;
};

/// Runs `samples` Monte Carlo solves in parallel (deterministic per seed).
/// A stop requested through `control` raises CancelledError /
/// DeadlineExceededError — a truncated Monte Carlo distribution would be
/// silently biased, so there is no partial result.
RobustPlan robust_consolidated_plan(const ModelInputs& inputs,
                                    const ParameterUncertainty& uncertainty,
                                    std::size_t samples = 2000,
                                    std::uint64_t seed = 2009,
                                    double quantile = 0.95,
                                    const RunControl& control = {});

/// Applies one sampled perturbation to the inputs (exposed for testing).
ModelInputs perturb_inputs(const ModelInputs& inputs,
                           const ParameterUncertainty& uncertainty, Rng& rng);

}  // namespace vmcons::core
