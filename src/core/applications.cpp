#include "core/applications.hpp"

#include <numeric>

#include "util/error.hpp"
#include "virt/impact.hpp"

namespace vmcons::core {
namespace {

QosBound bound_for(const ModelInputs& inputs,
                   const std::vector<std::uint64_t>& servers_per_service) {
  UtilityAnalyticModel model(inputs);
  QosBound bound;
  bound.servers = std::accumulate(servers_per_service.begin(),
                                  servers_per_service.end(), std::uint64_t{0});
  VMCONS_REQUIRE(bound.servers >= 1, "need at least one server");
  bound.dedicated_loss = model.dedicated_loss(servers_per_service);
  bound.consolidated_loss = model.consolidated_loss(bound.servers);
  VMCONS_REQUIRE(bound.dedicated_loss < 1.0,
                 "dedicated deployment loses every request");
  bound.improvement =
      (1.0 - bound.consolidated_loss) / (1.0 - bound.dedicated_loss);
  return bound;
}

}  // namespace

QosBound allocation_qos_bound(
    const ModelInputs& inputs,
    const std::vector<std::uint64_t>& servers_per_service) {
  return bound_for(inputs, servers_per_service);
}

QosBound virtualization_qos_bound(
    const ModelInputs& inputs,
    const std::vector<std::uint64_t>& servers_per_service) {
  ModelInputs ideal = inputs;
  for (auto& service : ideal.services) {
    for (auto& impact : service.impacts) {
      impact = virt::Impact::none();
    }
  }
  return bound_for(ideal, servers_per_service);
}

double allocation_algorithm_score(const QosBound& bound,
                                  double measured_improvement) {
  VMCONS_REQUIRE(measured_improvement > 0.0,
                 "measured improvement must be positive");
  VMCONS_REQUIRE(bound.improvement > 0.0, "bound improvement must be positive");
  return measured_improvement / bound.improvement;
}

}  // namespace vmcons::core
