// Report rendering for model results and validation runs.
//
// One place that turns ModelResult / ValidationReport into the ASCII tables
// the bench binaries print and into CSV for downstream plotting, so every
// bench emits consistent, diffable output.
#pragma once

#include <ostream>
#include <string>

#include "core/model.hpp"
#include "core/validation.hpp"

namespace vmcons::core {

/// Prints the full model solution: per-service dedicated staffing, the
/// per-resource consolidated plan, and the utilization/power summary.
void print_model_result(std::ostream& out, const ModelResult& result);

/// Prints a validation report: model prediction next to simulated
/// measurement with confidence half-widths.
void print_validation_report(std::ostream& out, const ValidationReport& report);

/// Emits the model solution as CSV rows
/// (section,name,metric,value) for plotting pipelines.
void write_model_result_csv(std::ostream& out, const ModelResult& result);

/// One-line headline: "M=6 -> N=3, saves 50.0% servers, 53.9% power".
std::string headline(const ModelResult& result);

/// Prints the process-wide metrics registry (Erlang evaluations, kernel
/// cache hits, sweep wall-time, engine events, ...) as an ASCII table.
/// Benches call this after their measured phase.
void print_metrics(std::ostream& out);

/// The same snapshot as machine-readable JSON (metrics::to_json): the
/// `--json` face of print_metrics. Sharded-sweep worker processes write
/// this to the claim ledger so the merger can sum counters across workers.
void print_metrics_json(std::ostream& out);

}  // namespace vmcons::core
