// Multi-process sharded sweeps: N worker processes over one ScenarioStore.
//
// StreamingSweep (streaming_sweep.hpp) bounds a huge sweep's memory; this
// driver adds the scale-out axis the ROADMAP names: real multi-core (and
// multi-box-of-cores) throughput from *processes*, which share no allocator,
// no Erlang snapshot tier, and no thread pool — so worker counts scale with
// hardware instead of oversubscribing one process's scheduler.
//
// The coordination protocol is a *claim ledger*: a directory next to the
// store where every shard's ownership and result live as files.
//
//   claim-NNNNNN.csv    who owns shard N right now: worker id, pid,
//                       hostname, a per-claim token, a wall-clock lease
//                       deadline, and the store checksum. Created with
//                       O_CREAT|O_EXCL — the kernel arbitrates racing
//                       claimers — and *reclaimed* (atomically renamed
//                       over) only when its lease expired, or — as a
//                       same-host fast path — when the record names this
//                       host and its pid is dead. The pid/hostname pair is
//                       also the diagnostic trail: a stuck sweep's claim
//                       files say exactly who to look at.
//   result-NNNNNN.bin   shard N's evaluated BatchOutcome, committed by
//                       rename from a temporary, so a result file either
//                       does not exist or is complete. Carries the store
//                       checksum, the shard geometry, a result digest
//                       (checksum_model_results), and a payload checksum.
//   worker-<id>.metrics.json   the worker's metrics registry snapshot
//                       (metrics::to_json), summed by the merger.
//
// Bit-identity is the design invariant, and it holds by construction, not
// by synchronization: evaluation is deterministic (the same shard yields
// the same bytes in any process, at any worker count — the PR 4 bit-identity
// guarantee), results are committed atomically, and the merger folds result
// files in *shard order*, never completion order. So the merged sweep is
// bit-identical to a 1-process StreamingSweep over the same store no matter
// how many workers ran, how their claims interleaved, or which of them
// crashed. A worker that dies holding a claim (kill -9, fault site
// driver.shard) leaves a lease that expires — or a pid that reads as dead —
// and a peer reclaims the shard; if the dead worker had already committed,
// the reclaim never happens because committed results disqualify claims.
// Duplicate evaluation after an expiry race is possible and harmless: both
// workers commit identical bytes.
//
// The merger is strict: a result file from a different store, with garbled
// magic, a payload checksum mismatch, or a result digest that does not
// match its deserialized contents fails the merge loudly with IoError
// (ErrorCode::kIoError) naming the file and shard. Missing results are
// equally loud — merging a partial ledger is refused, not padded.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_eval.hpp"
#include "core/scenario_store.hpp"
#include "core/streaming_sweep.hpp"

namespace vmcons::core {

/// One parsed claim record.
struct ShardClaim {
  std::string worker;
  long long pid = 0;
  std::string hostname;              ///< claimer's host; empty = legacy/local
  std::uint64_t token = 0;           ///< unique per claim attempt
  std::int64_t lease_deadline_ms = 0;///< wall clock, ms since epoch
  std::uint64_t store_checksum = 0;
};

/// The filesystem protocol underneath ShardedSweepDriver, exposed so tests
/// can race claims directly. All methods are safe to call concurrently from
/// any number of threads and processes.
class ClaimLedger {
 public:
  /// Creates `dir` if needed. `store_checksum` brands every record this
  /// ledger writes; claims carrying a different brand are rejected loudly
  /// (the ledger belongs to a different store).
  ///
  /// Staleness is lease-first and host-portable: a claim is always
  /// reclaimable once its lease deadline passes, whatever host wrote it.
  /// `dead_pid_fast_path` additionally reclaims a claim *before* its lease
  /// expires when the record's hostname matches this host and its pid is
  /// dead — a pure latency optimization, only sound where kill(pid, 0) is
  /// meaningful. Disable it (lease-only mode) when the ledger lives on a
  /// shared filesystem where a remote worker's pid number could collide
  /// with an unrelated live local process.
  ClaimLedger(std::string dir, std::uint64_t store_checksum,
              std::chrono::milliseconds lease,
              bool dead_pid_fast_path = true);

  const std::string& dir() const noexcept { return dir_; }
  std::string claim_path(std::size_t shard) const;
  std::string result_path(std::size_t shard) const;
  std::string worker_metrics_path(const std::string& worker_id) const;

  /// True once shard's result file has been rename-committed.
  bool result_committed(std::size_t shard) const;

  /// Attempts to own `shard`'s claim. Returns true iff the caller owns it
  /// after the call: either the O_EXCL create won, or a stale claim (dead
  /// pid / expired lease) was taken over and the read-back confirms our
  /// token. Returns false when a live peer holds an unexpired lease or the
  /// takeover race was lost. `reclaimed` (optional) reports whether the
  /// ownership came from a takeover. Throws IoError if the existing claim
  /// was branded by a different store.
  bool try_claim(std::size_t shard, const std::string& worker_id,
                 std::uint64_t token, bool* reclaimed = nullptr) const;

  /// Removes `shard`'s claim file iff it still carries `token` (never
  /// deletes a peer's claim). Best-effort: races are benign because claims
  /// for committed shards are dead records anyway.
  void release_if_ours(std::size_t shard, std::uint64_t token) const;

  /// Parses a claim file; nullopt for missing or not-yet-written records
  /// (an O_EXCL winner crashed before its write landed — treat as a claim
  /// whose lease started at the file's birth and judge by mtime).
  std::optional<ShardClaim> read_claim(std::size_t shard) const;

  /// Process-unique token for one claim attempt.
  static std::uint64_t make_token();

 private:
  std::string dir_;
  std::uint64_t store_checksum_ = 0;
  std::chrono::milliseconds lease_{30000};
  bool dead_pid_fast_path_ = true;
};

/// Execution knobs for one sharded-sweep participant (worker or merger).
struct ShardedSweepOptions {
  /// Per-shard evaluation knobs. Worker processes default `parallel` to the
  /// caller's choice — the intended production shape is one process per
  /// core with `parallel = false`, letting processes be the parallelism.
  BatchOptions batch;
  /// The claim ledger directory (created if absent). Workers and the merger
  /// must agree on it.
  std::string ledger_dir;
  /// Stable name for this worker, used in claim records and the metrics
  /// file name; must be filename-safe ([A-Za-z0-9._-]). Empty derives
  /// "w<pid>".
  std::string worker_id;
  /// How long a claim may sit uncommitted before peers may reclaim it. Also
  /// the upper bound on work lost to a crashed worker (one shard). Dead
  /// pids are reclaimed without waiting for the lease.
  std::chrono::milliseconds lease{30000};
  /// Base sleep between passes when every unfinished shard is claimed by a
  /// live peer. The actual schedule is deterministic jittered exponential
  /// backoff (util::Backoff, seeded from the worker id) starting at `poll`,
  /// reset whenever a pass makes progress — so N blocked workers spread out
  /// instead of polling the ledger in lockstep.
  std::chrono::milliseconds poll{25};
  /// Lease-only staleness: disables the dead-pid reclaim fast path, so a
  /// claim is reclaimed strictly by lease expiry. The host-portable mode for
  /// ledgers on shared filesystems (see ClaimLedger).
  bool lease_only = false;
  /// Test hook: called after a claim becomes durable, before the shard is
  /// read or evaluated. Tests and the worker binary use it to simulate a
  /// worker dying mid-shard (throw, or _exit) while holding a lease.
  std::function<void(std::size_t shard)> on_claimed;
};

/// What one worker process did.
struct WorkerReport {
  std::size_t shards_evaluated = 0;   ///< claimed, evaluated, committed here
  std::size_t leases_reclaimed = 0;   ///< of those, taken over from a peer
  std::uint64_t scenarios_evaluated = 0;
  bool cancelled = false;
  bool deadline_exceeded = false;
};

/// What the merger folded. `report` has exactly the shape of a 1-process
/// StreamingSweep run over the same store: shard_checksums in shard order,
/// failures carrying global scenario indices in shard order — bit-identical
/// to the single-process sweep when the evaluation options match.
struct MergedSweep {
  StreamingSweepReport report;
  /// Worker counters summed across every worker-*.metrics.json in the
  /// ledger, sorted by name (timers appear as their .ms/.calls rows).
  std::vector<std::pair<std::string, double>> worker_metrics;
  std::size_t metrics_files = 0;
};

/// The multi-process face of the sweep stack. One driver instance plays one
/// role in one process: call run_worker() from N processes, then merge()
/// from one.
class ShardedSweepDriver {
 public:
  explicit ShardedSweepDriver(ShardedSweepOptions options);

  /// Claims and evaluates shards until every shard of `store` has a
  /// committed result (returns), or the RunControl stops the worker
  /// (reported in the flags, never thrown). Evaluation failures under
  /// FailurePolicy::kQuarantine are committed inside the shard's result
  /// file exactly as StreamingSweep would record them; under kFailFast the
  /// first failure propagates and the claim is released for a peer.
  WorkerReport run_worker(const ScenarioStore& store) const;

  /// Writes this worker's metrics registry snapshot to the ledger
  /// (worker-<id>.metrics.json, atomic rename), for the merger to sum.
  void write_worker_metrics() const;

  /// Folds every shard's result file, in shard order, into one report,
  /// delivering each deserialized shard to `sink` (bit-identical to what a
  /// 1-process StreamingSweep would have delivered). Throws IoError for a
  /// missing, truncated, corrupted, digest-mismatched, or wrong-store
  /// result file, naming the file and shard.
  MergedSweep merge(const ScenarioStore& store,
                    const ShardSink& sink = nullptr) const;

  const ShardedSweepOptions& options() const noexcept { return options_; }
  const std::string& worker_id() const noexcept { return worker_id_; }

 private:
  ShardedSweepOptions options_;
  std::string worker_id_;
};

}  // namespace vmcons::core
