// Bridges the utility analytic model to the reduced-load (Erlang fixed
// point) approximation, giving three accuracy tiers for the consolidated
// loss probability:
//
//   1. the paper's model       — independent per-resource Erlang-B on the
//                                Eq. (4) averaged rate (fast, optimistic);
//   2. reduced-load fixed point — couples the resources and keeps each
//                                class's own service rate (still analytic);
//   3. the loss-network simulator — ground truth.
//
// bench/ablation_fixed_point quantifies the gaps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "queueing/fixed_point.hpp"

namespace vmcons::core {

/// Converts consolidated inputs into loss-network classes: one class per
/// service, one slot per dc::Resource, service rates mu_ij * a_ij(v)
/// (clamped), zeros where undemanded.
std::vector<queueing::LossClass> consolidated_loss_classes(
    const ModelInputs& inputs);

/// Reduced-load estimate of the consolidated overall loss at N servers.
queueing::FixedPointResult reduced_load_consolidated_loss(
    const ModelInputs& inputs, std::uint64_t servers);

/// Minimum N per the reduced-load approximation (tier-2 staffing).
std::uint64_t reduced_load_consolidated_servers(const ModelInputs& inputs);

}  // namespace vmcons::core
